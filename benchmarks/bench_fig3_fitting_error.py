"""Paper Fig. 3: per-test-program fitting error of the macro-model.

Regenerates the fitting-error profile over the characterization suite
(paper: max < 8.9%, RMS 3.8%) and benchmarks one full characterization
sample — traced simulation + reference RTL estimation + variable
extraction — i.e. the per-program cost of building the macro-model.
"""

from repro.analysis import run_fig3
from repro.core import Characterizer
from repro.programs import characterization_suite


def test_fig3_fitting_errors(benchmark, ctx, save_report):
    case = characterization_suite(include_variants=False)[0]
    config, program = case.build()

    def one_characterization_sample():
        characterizer = Characterizer()
        return characterizer.add_program(config, program)

    sample = benchmark(one_characterization_sample)
    assert sample.energy > 0

    fig3 = run_fig3(ctx)
    save_report("fig3_fitting_errors", fig3.report())

    # shape criteria from DESIGN.md (paper: RMS 3.8%, max < 8.9%)
    assert fig3.rms < 6.0
    assert fig3.max_abs < 12.0
    assert fig3.rms > 0.1  # non-degenerate ground truth
