"""Suite-quality study (extension): leave-one-out cross-validation.

Not a paper artifact, but the diagnostic behind one: the paper's in-situ
characterization works only if the suite generalizes internally.  LOOCV
approximates estimating each test program with a model fitted on the
others — a suite-internal preview of Table II — and flags high-leverage
programs (the sole sample behind some variable direction).
"""

from repro.analysis import run_suite_quality


def test_suite_quality(benchmark, ctx, save_report):
    import numpy as np

    result = benchmark.pedantic(run_suite_quality, args=(ctx,), rounds=1, iterations=1)
    save_report("suite_quality", result.report())
    assert result.coverage.is_adequate
    # The suite deliberately contains designed-leverage programs (the sole
    # heavy source of an event variable, e.g. the I-cache thrash kernel);
    # LOOCV flags exactly those.  The *bulk* of the suite must cross-
    # validate in the Table II regime.
    errors = np.sort(np.abs(result.loo_percent_errors))
    bulk_rms = float(np.sqrt(np.mean(errors[:-2] ** 2)))  # drop 2 leverage pts
    assert bulk_rms < 8.0, result.report()
    worst_names = [name for name, _ in result.worst(3)]
    assert any(
        name in worst_names for name in ("tp11_icache_thrash", "tp12_uncached_kernel")
    ), "expected the designed-leverage event programs to top the LOO list"
