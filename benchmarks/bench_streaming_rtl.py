"""Streaming vs. materialized reference estimation (substrate benchmark).

The streaming RTL path (``RtlEnergyEstimator.estimate_program`` via an
observer) must deliver two things over the trace-materializing path
(``collect_trace=True`` + ``estimate(result)``):

* **O(1) trace memory** — peak allocation independent of the dynamic
  instruction count, because no ``list[TraceRecord]`` is retained;
* **no throughput regression** — one pass over the event stream instead
  of a trace-build pass plus an estimation pass.

The memory claim is demonstrated, not assumed: ``tracemalloc`` peaks of
the two paths are recorded at two run lengths and written to
``results/streaming_rtl.txt`` — the materialized peak grows with the
instruction count while the streaming peak stays flat.
"""

import tracemalloc

import pytest

from repro.asm import assemble
from repro.obs import run_session
from repro.rtl import RtlEnergyEstimator, generate_netlist
from repro.xtcore import build_processor

from bench_substrate_performance import _big_loop_source


def _workload(iterations):
    config = build_processor("stream-perf")
    program = assemble(
        _big_loop_source(iterations), f"stream-loop-{iterations}", isa=config.isa
    )
    return config, program


def _materialized_total(estimator, config, program):
    result = run_session(config, program, collect_trace=True)
    return estimator.estimate(result).total


def _streaming_total(estimator, program):
    report, _ = estimator.estimate_program(program)
    return report.total


def _peak_bytes(fn):
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def test_perf_rtl_materialized(benchmark):
    config, program = _workload(2000)
    estimator = RtlEnergyEstimator(generate_netlist(config))
    total = benchmark(lambda: _materialized_total(estimator, config, program))
    assert total > 0


def test_perf_rtl_streaming(benchmark):
    config, program = _workload(2000)
    estimator = RtlEnergyEstimator(generate_netlist(config))
    total = benchmark(lambda: _streaming_total(estimator, program))
    assert total > 0


def test_streaming_peak_memory_is_flat(benchmark, results_dir):
    """Peak RSS of the streaming path must not scale with run length."""
    # movi immediates are signed 12-bit, so 2000 is the largest convenient
    # iteration count; 4x run length is enough to expose linear growth.
    short_iters, long_iters = 500, 2000
    rows = []
    peaks = {}
    for iterations in (short_iters, long_iters):
        config, program = _workload(iterations)
        estimator = RtlEnergyEstimator(generate_netlist(config))
        materialized = _peak_bytes(
            lambda: _materialized_total(estimator, config, program)
        )
        streaming = _peak_bytes(lambda: _streaming_total(estimator, program))
        peaks[iterations] = (materialized, streaming)
        rows.append(
            f"{iterations:>10} iterations: materialized peak {materialized:>12,} B, "
            f"streaming peak {streaming:>12,} B"
        )

    # The benchmark fixture wants a timed body; time the long streaming run.
    config, program = _workload(long_iters)
    estimator = RtlEnergyEstimator(generate_netlist(config))
    benchmark(lambda: _streaming_total(estimator, program))

    short_mat, short_stream = peaks[short_iters]
    long_mat, long_stream = peaks[long_iters]
    # Materialized peak grows ~linearly with the trace; streaming must not.
    assert long_mat > short_mat * 3
    assert long_stream < short_stream * 1.5
    # Streaming must beat materialized outright on the long run.
    assert long_stream < long_mat / 5

    text = "peak tracemalloc memory, reference RTL estimation\n" + "\n".join(rows)
    (results_dir / "streaming_rtl.txt").write_text(text + "\n")
    benchmark.extra_info["materialized_peak_growth"] = long_mat / short_mat
    benchmark.extra_info["streaming_peak_growth"] = long_stream / short_stream


def test_streaming_equals_materialized(benchmark):
    """Functional guard inside the perf harness: identical totals."""
    config, program = _workload(1000)
    estimator = RtlEnergyEstimator(generate_netlist(config))
    expected = _materialized_total(estimator, config, program)
    total = benchmark(lambda: _streaming_total(estimator, program))
    assert total == pytest.approx(expected, rel=1e-9)
