"""Paper Table I: energy coefficients of the characterized processor.

Regenerates the fitted coefficient table and benchmarks the regression
step itself (paper Eq. 5 over the full characterization design matrix) —
the step that replaces per-extension re-characterization in prior art.
"""

from repro.analysis import run_table1
from repro.core.regression import fit_nnls


def test_table1_coefficients(benchmark, ctx, save_report):
    design, energies = ctx.characterization.design, ctx.characterization.energies

    result = benchmark(fit_nnls, design, energies)

    table1 = run_table1(ctx)
    save_report("table1_coefficients", table1.report())

    # the benchmarked fit must agree with the context's model
    assert result.coefficients.shape == (21,)
    for fitted, stored in zip(result.coefficients, ctx.model.coefficients):
        assert abs(fitted - stored) < 1e-6

    # Table I sanity: every coefficient physical, events dominate classes
    coefficients = ctx.model.coefficients_by_key()
    assert all(value >= 0 for value in coefficients.values())
    assert coefficients["N_cm"] > coefficients["N_a"]
