"""Suite-size study (extension): Table II error vs characterization size.

Quantifies DESIGN.md deviation D2: with only the 25-program core the
21-coefficient fit *interpolates* (tiny fit RMS) but generalizes worse;
the density/width/toggle variants trade a slightly larger fit residual
for markedly better unseen-application accuracy — the classic
overfitting-vs-generalization curve.
"""

from repro.analysis import run_suite_size_study


def test_suite_size_study(benchmark, ctx, save_report):
    result = benchmark.pedantic(run_suite_size_study, args=(ctx,), rounds=1, iterations=1)
    save_report("suite_size_study", result.report())
    first, last = result.rows[0], result.rows[-1]
    assert first.size < last.size
    # the smallest suite fits tighter (interpolation)...
    assert first.fit_rms <= last.fit_rms
    # ...but generalizes worse (the point of the variants)
    assert first.app_mean_error > last.app_mean_error
    assert first.app_max_error > last.app_max_error
    assert last.app_mean_error < 5.0
