"""Substrate performance benchmarks (not paper artifacts).

Tracks the throughput of the pieces every experiment is built on, so
performance regressions in the simulator/assembler/estimator shows up in
benchmark history:

* assembler lines/sec,
* ISS instructions/sec with and without trace collection,
* reference-estimator instructions/sec,
* resource-usage analysis + variable extraction per call.
"""

import pytest

from repro.asm import assemble
from repro.core import analyze_resource_usage, default_template, extract_variables
from repro.rtl import RtlEnergyEstimator, generate_netlist
from repro.xtcore import Simulator, build_processor


def _big_loop_source(iterations=2000):
    return f"""
    .data
arr: .space 4096
out: .word 0
    .text
main:
    movi a2, {iterations}
    la a8, arr
    movi a6, 0
loop:
    l32i a3, a8, 0
    add a6, a6, a3
    xor a4, a6, a2
    slli a5, a4, 3
    sub a6, a6, a5
    s32i a6, a8, 4
    addi a2, a2, -1
    bnez a2, loop
    la a7, out
    s32i a6, a7, 0
    halt
"""


@pytest.fixture(scope="module")
def workload():
    config = build_processor("perf")
    program = assemble(_big_loop_source(), "perf-loop", isa=config.isa)
    return config, program


def test_perf_assembler(benchmark):
    source = _big_loop_source()
    program = benchmark(assemble, source, "perf-loop")
    assert len(program) > 10


def test_perf_iss_untraced(benchmark, workload):
    config, program = workload
    result = benchmark(lambda: Simulator(config, program).run())
    benchmark.extra_info["instructions_per_sec"] = (
        result.instructions / benchmark.stats["mean"]
    )
    assert result.instructions > 10_000


def test_perf_iss_traced(benchmark, workload):
    config, program = workload
    result = benchmark(
        lambda: Simulator(config, program, collect_trace=True).run()
    )
    assert len(result.trace) == result.instructions


def test_perf_reference_estimator(benchmark, workload):
    config, program = workload
    estimator = RtlEnergyEstimator(generate_netlist(config))
    traced = Simulator(config, program, collect_trace=True).run()
    report = benchmark(estimator.estimate, traced)
    assert report.total > 0


def test_perf_variable_extraction(benchmark, workload):
    config, program = workload
    stats = Simulator(config, program).run().stats
    template = default_template()

    def extract():
        usage = analyze_resource_usage(stats, config)
        return extract_variables(stats, config, template, usage)

    vector = benchmark(extract)
    assert vector.shape == (21,)
