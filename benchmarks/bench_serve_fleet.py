"""Fleet serving: consistent-hash sharding vs one node, with a mid-soak kill.

A closed-loop load generator drives a live fleet — real node subprocesses
spawned by :class:`FleetManager` behind a real :class:`FleetRouter` — over
HTTP with a seeded zipf workload (U unique programs, skewed popularity,
every program requested at least once):

* ``single`` — a 1-node fleet: the pre-sharding baseline; every request
  funnels through one process;
* ``fleet``  — N nodes: the router shards the key space, each node
  simulates only its arc, and the shared cache tier answers duplicates
  that land anywhere;
* ``soak``   — N nodes again, but one node is SIGKILLed after half the
  requests have been answered.  Every request must still be answered
  exactly once, and the p99 must stay within a bounded factor of the
  undisturbed fleet run.

Honest-scaling note: near-linear *wall-clock* scaling needs one core per
node.  The payload records ``cpu_count``; the ``--check`` gate enforces
the throughput-scaling target only when enough cores exist to express
it, and always enforces exactly-once + dedup + the p99 kill bound.

Run as a script to (re)generate ``BENCH_SERVE_FLEET.json`` at the repo
root:

    PYTHONPATH=src python benchmarks/bench_serve_fleet.py

or scaled down as a check:

    PYTHONPATH=src python benchmarks/bench_serve_fleet.py \
        --uniques 4 --requests 24 --clients 4 --check --output fleet-smoke.json
"""

from __future__ import annotations

import argparse
import asyncio
import http.client
import json
import os
import pathlib
import random
import tempfile
import threading
import time
from typing import cast

import numpy as np

from repro.core import EnergyMacroModel, default_template
from repro.fleet import FleetManager, FleetRouter
from repro.serve import EstimationServer, EstimationService

DEFAULT_OUTPUT = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_SERVE_FLEET.json"
)
#: Fleet-vs-single throughput target, enforced only with >= nodes+1 cores.
SCALING_TARGET = 2.5
#: p99 under a mid-soak node kill may degrade at most this much vs clean.
KILL_P99_FACTOR = 5.0
ZIPF_EXPONENT = 1.1

PROGRAM_TEMPLATE = """
    .data
out: .word 0
    .text
main:
    movi a2, {loops}
    movi a3, 0
    movi a5, {salt}
loop:
    add a3, a3, a2
    xor a3, a3, a5
    slli a6, a3, 1
    srli a7, a6, 3
    add a3, a3, a7
    sub a6, a3, a5
    or a3, a3, a6
    andi a3, a3, 2047
    addi a2, a2, -1
    bnez a2, loop
    la a4, out
    s32i a3, a4, 0
    halt
"""


def make_workload(
    uniques: int, total_requests: int, loops: int, seed: int
) -> list[dict]:
    """Seeded zipf over ``uniques`` programs; every program appears >= once."""
    if total_requests < uniques:
        raise SystemExit("--requests must be >= --uniques (every key once)")
    if not 1 <= loops <= 2000:
        raise SystemExit("--loops must be in [1, 2000] (movi immediate range)")
    bodies = []
    for index in range(uniques):
        source = PROGRAM_TEMPLATE.format(loops=loops, salt=index + 1)
        bodies.append(
            {
                "program": {"source": source, "name": f"zipf{index}"},
                "max_instructions": max(100_000, loops * 10),
            }
        )
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** ZIPF_EXPONENT for rank in range(uniques)]
    workload = list(bodies)  # every key at least once
    workload.extend(
        rng.choices(bodies, weights=weights, k=total_requests - uniques)
    )
    rng.shuffle(workload)
    return workload


class LiveFleet:
    """N node subprocesses + a live router on a background event loop."""

    def __init__(
        self,
        model_path: str,
        workdir: str,
        nodes: int,
        health_interval: float = 0.5,
    ) -> None:
        self.manager = FleetManager(
            model_path=model_path,
            workdir=workdir,
            workers=0,
            node_args=("--drain-grace", "5"),
        )
        self.manager.start(nodes)
        self.addresses = self.manager.wait_ready()

        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._loop.run_forever, daemon=True)
        self._thread.start()
        self.router = FleetRouter(
            self.addresses,
            health_interval=health_interval,
            node_failures=1,
            node_cooldown=300.0,  # a killed node stays out for the whole run
        )
        self.server = EstimationServer(
            cast(EstimationService, self.router), port=0
        )
        self._run(self.server.start())
        self.port = self.server.port

    def _run(self, coro):
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(60)

    def kill_node(self, index: int) -> str:
        self.manager.kill(index)
        return self.addresses[index]

    def close(self) -> None:
        try:
            self._run(self.server.stop())
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10)
            self._loop.close()
            self.manager.stop()


RETRYABLE_STATUSES = (429, 503, 504)
MAX_POST_ATTEMPTS = 6


def _post_estimate_once(port: int, body: dict) -> tuple[int, dict]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        conn.request(
            "POST",
            "/estimate",
            json.dumps(body),
            {"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def _post_estimate(port: int, body: dict) -> tuple[dict, int]:
    """POST with bounded jittered retries; returns (payload, retries_used)."""
    last: tuple[int, object] = (0, None)
    for attempt in range(1, MAX_POST_ATTEMPTS + 1):
        try:
            status, payload = _post_estimate_once(port, body)
        except (ConnectionError, http.client.HTTPException) as exc:
            last = (0, repr(exc))
        else:
            if status == 200:
                return payload, attempt - 1
            last = (status, payload)
            if status not in RETRYABLE_STATUSES:
                break
        if attempt < MAX_POST_ATTEMPTS:
            time.sleep(min(2.0, 0.05 * 2**attempt) * (0.5 + random.random()))
    raise RuntimeError(f"estimate failed (status {last[0]}): {last[1]}")


def _get_metrics(port: int) -> dict:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", "/metrics")
        return json.loads(conn.getresponse().read())
    finally:
        conn.close()


def _percentile(sorted_values: list[float], p: float) -> float:
    if not sorted_values:
        return 0.0
    rank = max(1, int(round(p / 100.0 * len(sorted_values))))
    return sorted_values[rank - 1]


def drive(
    port: int,
    bodies: list[dict],
    clients: int,
    kill_after: int | None = None,
    on_kill=None,
) -> dict:
    """Closed loop; optionally fire ``on_kill()`` once after ``kill_after``
    requests have been answered (the mid-soak node loss)."""
    pending = list(enumerate(bodies))
    latencies: list[float] = []
    errors: list[BaseException] = []
    answered = 0
    retries = 0
    killed = threading.Event()
    lock = threading.Lock()

    def worker() -> None:
        nonlocal answered, retries
        while True:
            with lock:
                if not pending or errors:
                    return
                _, body = pending.pop()
            began = time.perf_counter()
            try:
                _, attempts_over_one = _post_estimate(port, body)
            except BaseException as exc:  # noqa: BLE001 — reported, fails the run
                with lock:
                    errors.append(exc)
                return
            elapsed = time.perf_counter() - began
            fire_kill = False
            with lock:
                latencies.append(elapsed)
                answered += 1
                retries += attempts_over_one
                if (
                    kill_after is not None
                    and answered >= kill_after
                    and not killed.is_set()
                ):
                    killed.set()
                    fire_kill = True
            if fire_kill and on_kill is not None:
                on_kill()

    began = time.perf_counter()
    threads = [threading.Thread(target=worker) for _ in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - began
    if errors:
        raise errors[0]
    latencies.sort()
    return {
        "requests": len(bodies),
        "answered": answered,
        "client_retries": retries,
        "clients": clients,
        "wall_seconds": round(wall, 4),
        "throughput_rps": round(len(bodies) / wall, 2),
        "p50_ms": round(_percentile(latencies, 50) * 1e3, 3),
        "p99_ms": round(_percentile(latencies, 99) * 1e3, 3),
    }


def _fleet_rollup(port: int) -> dict:
    metrics = _get_metrics(port)
    return {
        "simulations": metrics["fleet"]["simulation"]["runs_finished"],
        "duplicates_merged": metrics["fleet"]["counters"]["duplicates_merged"],
        "nodes_reporting": metrics["fleet"]["nodes_reporting"],
        "reroutes": metrics["router"]["counters"]["reroutes_total"],
        "forward_failures": metrics["router"]["counters"]["forward_failures_total"],
    }


def _write_model(path: pathlib.Path) -> None:
    template = default_template()
    model = EnergyMacroModel(template, np.linspace(50, 5000, len(template)))
    model.save(str(path))


def run_loadtest(
    uniques: int = 12,
    requests: int = 150,
    clients: int = 8,
    nodes: int = 3,
    loops: int = 2000,
    seed: int = 11,
) -> dict:
    """Three fleets, one workload: single-node, N-node, N-node + kill."""
    bodies = make_workload(uniques, requests, loops, seed)
    scratch = pathlib.Path(tempfile.mkdtemp(prefix="bench-fleet-"))
    model_path = scratch / "bench-model.json"
    _write_model(model_path)

    def run_topology(name: str, node_count: int, kill: bool) -> dict:
        fleet = LiveFleet(
            str(model_path), str(scratch / name), nodes=node_count
        )
        try:
            kill_after = len(bodies) // 2 if kill else None

            def on_first_node_down() -> None:
                fleet.kill_node(0)

            on_kill = on_first_node_down if kill else None
            result = drive(
                fleet.port, bodies, clients=clients,
                kill_after=kill_after, on_kill=on_kill,
            )
            result.update(nodes=node_count, **_fleet_rollup(fleet.port))
            return result
        finally:
            fleet.close()

    single = run_topology("single", 1, kill=False)
    fleet = run_topology("fleet", nodes, kill=False)
    soak = run_topology("soak", nodes, kill=True)

    cpu_count = os.cpu_count() or 1
    scaling = round(fleet["throughput_rps"] / single["throughput_rps"], 2)
    p99_factor = (
        round(soak["p99_ms"] / fleet["p99_ms"], 2) if fleet["p99_ms"] else 0.0
    )
    return {
        "benchmark": "serve_fleet_scaling_and_failover",
        "unit": "estimate requests per second of host wall-clock (closed loop)",
        "workload": {
            "unique_programs": uniques,
            "total_requests": requests,
            "zipf_exponent": ZIPF_EXPONENT,
            "loop_iterations": loops,
            "seed": seed,
        },
        "environment": {
            "cpu_count": cpu_count,
            "cores_for_scaling_gate": nodes + 1,
        },
        "single": single,
        "fleet": fleet,
        "soak": soak,
        "summary": {
            "throughput_scaling": scaling,
            "scaling_target": SCALING_TARGET,
            "scaling_gate_active": cpu_count >= nodes + 1,
            "kill_p99_factor": p99_factor,
            "kill_p99_bound": KILL_P99_FACTOR,
        },
    }


def _check(payload: dict) -> list[str]:
    """The gates ``--check`` enforces; returns human-readable failures."""
    failures = []
    uniques = payload["workload"]["unique_programs"]
    total = payload["workload"]["total_requests"]
    for name in ("single", "fleet", "soak"):
        run = payload[name]
        if run["answered"] != total:
            failures.append(
                f"{name}: {run['answered']}/{total} requests answered"
            )
        if run["simulations"] > uniques:
            failures.append(
                f"{name}: {run['simulations']} simulations for "
                f"{uniques} unique programs (dedup leaked)"
            )
    if payload["soak"]["nodes_reporting"] != payload["soak"]["nodes"] - 1:
        failures.append("soak: the killed node still reports metrics")
    summary = payload["summary"]
    if summary["kill_p99_factor"] > summary["kill_p99_bound"]:
        failures.append(
            f"soak p99 degraded {summary['kill_p99_factor']}x "
            f"(bound {summary['kill_p99_bound']}x)"
        )
    if (
        summary["scaling_gate_active"]
        and summary["throughput_scaling"] < summary["scaling_target"]
    ):
        failures.append(
            f"fleet scaling {summary['throughput_scaling']}x below "
            f"{summary['scaling_target']}x with enough cores"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--uniques", type=int, default=12, help="distinct programs")
    parser.add_argument("--requests", type=int, default=150, help="total requests")
    parser.add_argument("--clients", type=int, default=8, help="concurrent clients")
    parser.add_argument("--nodes", type=int, default=3, help="fleet size")
    parser.add_argument(
        "--loops", type=int, default=2000, help="loop iterations per program (sim cost)"
    )
    parser.add_argument("--seed", type=int, default=11, help="zipf sampling seed")
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=DEFAULT_OUTPUT,
        help="where to write the JSON (default: repo-root BENCH_SERVE_FLEET.json)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless exactly-once, dedup, p99 and scaling gates pass",
    )
    args = parser.parse_args(argv)

    payload = run_loadtest(
        uniques=args.uniques,
        requests=args.requests,
        clients=args.clients,
        nodes=args.nodes,
        loops=args.loops,
        seed=args.seed,
    )
    args.output.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    for name in ("single", "fleet", "soak"):
        row = payload[name]
        print(
            f"{name:<8} {row['nodes']} node(s) {row['throughput_rps']:>8.1f} req/s   "
            f"p50 {row['p50_ms']:>7.2f} ms   p99 {row['p99_ms']:>8.2f} ms   "
            f"{row['simulations']} sim(s), {row['reroutes']} reroute(s)"
        )
    summary = payload["summary"]
    gate = "active" if summary["scaling_gate_active"] else (
        f"inactive ({payload['environment']['cpu_count']} core(s))"
    )
    print(
        f"scaling {summary['throughput_scaling']}x (target "
        f"{summary['scaling_target']}x, gate {gate}); kill p99 factor "
        f"{summary['kill_p99_factor']}x (bound {summary['kill_p99_bound']}x)"
        f"  -> {args.output}"
    )

    if args.check:
        failures = _check(payload)
        for failure in failures:
            print(f"CHECK FAILED: {failure}")
        if failures:
            return 1
        print("CHECK OK: exactly-once, dedup, p99 and scaling gates pass")
    return 0


# -- pytest-benchmark harness ------------------------------------------------


def test_fleet_survives_mid_soak_kill(benchmark, save_report):
    payload = benchmark.pedantic(
        run_loadtest,
        kwargs={"uniques": 4, "requests": 24, "clients": 4, "loops": 2000},
        rounds=1,
        iterations=1,
    )
    save_report(
        "serve_fleet",
        (
            f"single: {payload['single']['throughput_rps']} req/s; "
            f"fleet: {payload['fleet']['throughput_rps']} req/s; "
            f"soak (node killed): {payload['soak']['throughput_rps']} req/s, "
            f"p99 {payload['soak']['p99_ms']} ms, "
            f"{payload['soak']['reroutes']} reroute(s)\n"
            f"scaling {payload['summary']['throughput_scaling']}x, "
            f"kill p99 factor {payload['summary']['kill_p99_factor']}x"
        ),
    )
    assert not _check(payload)


if __name__ == "__main__":
    raise SystemExit(main())
