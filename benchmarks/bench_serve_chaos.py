"""Chaos proof: the serving runtime self-heals under injected faults.

A closed-loop load generator drives a live fork-pool
:class:`EstimationServer` while a seeded :class:`ServiceChaosPlan`
injects worker crashes (``os._exit`` in the child), a worker hang
(killed by the supervisor's respawn, never waited out) and one poisoned
program that crashes every batch it rides in until the quarantine
isolates it.  The run then proves the self-healing invariants:

* every request is answered exactly once — 200 for the innocents,
  a typed ``stage="quarantine"`` 500 for the poison's duplicates;
* the plan's full fault schedule actually fired (crashes + hang);
* ``/metrics`` accounts for the respawns and the quarantined key;
* client-observed p95 stays bounded: the 30s hang costs one request
  timeout + respawn, not 30 seconds of anyone's latency.

Run as a script to (re)generate ``BENCH_SERVE_CHAOS.json`` at the repo
root:

    PYTHONPATH=src python benchmarks/bench_serve_chaos.py

or as a CI smoke check with a scaled-down inline-pool workload:

    PYTHONPATH=src python benchmarks/bench_serve_chaos.py \
        --uniques 6 --dupes 2 --clients 4 --workers 0 --crashes 2 \
        --check --output chaos-smoke.json
"""

from __future__ import annotations

import argparse
import http.client
import json
import pathlib
import random
import threading
import time

from bench_serve import (
    MAX_POST_ATTEMPTS,
    PROGRAM_TEMPLATE,
    RETRYABLE_STATUSES,
    LiveServer,
    _get_metrics,
    _percentile,
    _post_estimate_once,
    make_model,
)

from repro.serve import EstimationService
from repro.testing.faults import ServiceChaosPlan

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_SERVE_CHAOS.json"
POISON_NAME = "poison_prog"
P95_CEILING_MS = 30_000.0  # a waited-out 30s hang would blow straight past this


def make_workload(uniques: int, dupes: int, loops: int, seed: int) -> list[dict]:
    """``uniques * dupes`` bodies; the first unique is the poisoned one."""
    bodies = []
    for index in range(uniques):
        source = PROGRAM_TEMPLATE.format(loops=loops, salt=index + 1)
        name = POISON_NAME if index == 0 else f"load{index}"
        body = {
            "program": {"source": source, "name": name},
            "max_instructions": max(100_000, loops * 10),
        }
        bodies.extend([body] * dupes)
    random.Random(seed).shuffle(bodies)
    return bodies


def _post_outcome(port: int, body: dict) -> tuple[int, dict]:
    """POST to a terminal outcome, retrying only transient congestion.

    Unlike the throughput bench, a non-200 terminal answer (the
    quarantine's 500) is a *result* here, not an error.
    """
    last: tuple[int, dict] = (0, {"error": "no response"})
    for attempt in range(1, MAX_POST_ATTEMPTS + 1):
        try:
            status, payload = _post_estimate_once(port, body)
        except (ConnectionError, http.client.HTTPException) as exc:
            last = (0, {"error": repr(exc)})
        else:
            last = (status, payload)
            if status not in RETRYABLE_STATUSES:
                return last
        if attempt < MAX_POST_ATTEMPTS:
            time.sleep(min(2.0, 0.05 * 2**attempt) * (0.5 + random.random()))
    return last


def drive(port: int, bodies: list[dict], clients: int) -> dict:
    """Closed loop under chaos: record one terminal outcome per request."""
    pending = list(enumerate(bodies))
    outcomes: list[tuple[dict, int, dict, float]] = []
    lock = threading.Lock()

    def worker() -> None:
        while True:
            with lock:
                if not pending:
                    return
                _, body = pending.pop()
            began = time.perf_counter()
            status, payload = _post_outcome(port, body)
            elapsed = time.perf_counter() - began
            with lock:
                outcomes.append((body, status, payload, elapsed))

    began = time.perf_counter()
    threads = [threading.Thread(target=worker) for _ in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - began

    ok = quarantined = other = 0
    latencies = []
    unexpected: list[dict] = []
    for body, status, payload, elapsed in outcomes:
        latencies.append(elapsed)
        name = body["program"]["name"]
        if status == 200 and name != POISON_NAME:
            ok += 1
        elif status == 500 and payload.get("stage") == "quarantine":
            quarantined += 1
        else:
            other += 1
            unexpected.append({"name": name, "status": status, "payload": payload})
    latencies.sort()
    return {
        "requests": len(bodies),
        "answered": len(outcomes),
        "clients": clients,
        "wall_seconds": round(wall, 4),
        "throughput_rps": round(len(bodies) / wall, 2),
        "p50_ms": round(_percentile(latencies, 50) * 1e3, 3),
        "p95_ms": round(_percentile(latencies, 95) * 1e3, 3),
        "ok": ok,
        "quarantined": quarantined,
        "unexpected": unexpected[:5],
        "unexpected_count": other,
    }


def run_chaos_loadtest(
    uniques: int = 50,
    dupes: int = 4,
    clients: int = 8,
    loops: int = 200,
    seed: int = 11,
    workers: int = 2,
    crashes: int = 3,
    hangs: int = 1,
    horizon: int = 12,
) -> dict:
    """One chaos run; every self-healing invariant lands in ``checks``."""
    plan = ServiceChaosPlan(
        seed=seed,
        crashes=crashes,
        hangs=hangs,
        horizon=horizon,
        hang_seconds=30.0,
        poison=(POISON_NAME,),
    )
    bodies = make_workload(uniques, dupes, loops, seed)
    server = LiveServer(
        EstimationService(
            make_model(),
            workers=workers,
            batch_max=4,
            batch_window=0.02,
            request_timeout=3.0,
            quarantine_after=2,
            breaker_failures=64,  # the pool path must stay live all run
            chaos=plan,
        )
    )
    try:
        load = drive(server.port, bodies, clients=clients)
        metrics = _get_metrics(server.port)
    finally:
        server.close()

    counters = metrics["counters"]
    supervision = metrics["supervision"]
    injected = supervision["chaos"]["injected"]
    checks = {
        # exactly-once: every request reached one terminal answer, and
        # the only failures are the poison's typed quarantine 500s
        "all_answered": load["answered"] == load["requests"],
        "no_unexpected_outcomes": load["unexpected_count"] == 0,
        "poison_answers_typed_500": load["quarantined"] == dupes,
        # the schedule really fired
        "planned_crashes_fired": injected.get("crash", 0) == crashes,
        "planned_hangs_fired": injected.get("hang", 0) == hangs,
        # the supervisor respawned through every fault: the plan's
        # crashes, the poison's >= 2 singleton strikes, the hung worker
        "crashes_detected": counters["worker_crashes_total"] >= crashes + 2,
        "hang_killed_not_waited": (
            hangs == 0 or counters["worker_hangs_total"] >= hangs
        ),
        # concurrent crash reports on one broken pool share a single
        # generation-guarded respawn, so the floor is the faults that
        # always break it at distinct times: the poison's two singleton
        # strikes, at least one scheduled crash, and every hang
        "pool_respawned": counters["pool_restarts_total"] >= 3 + hangs,
        "poison_quarantined": (
            supervision["quarantine"]["held"] == 1
            and POISON_NAME in supervision["quarantine"]["keys"].values()
        ),
        "p95_bounded": load["p95_ms"] < P95_CEILING_MS,
    }
    return {
        "benchmark": "serve_chaos_self_healing",
        "unit": "invariant checks under a seeded fault schedule (closed loop)",
        "workload": {
            "unique_programs": uniques,
            "duplicates_each": dupes,
            "total_requests": uniques * dupes,
            "loop_iterations": loops,
            "seed": seed,
            "pool": {"workers": workers, "mode": "fork" if workers else "inline"},
        },
        "chaos_plan": {
            "seed": seed,
            "crashes": crashes,
            "hangs": hangs,
            "horizon": horizon,
            "hang_seconds": 30.0,
            "poison": [POISON_NAME],
        },
        "load": load,
        "supervision": supervision,
        "counters": {
            key: counters[key]
            for key in (
                "worker_crashes_total",
                "worker_hangs_total",
                "pool_restarts_total",
                "quarantined_total",
                "quarantine_rejections_total",
                "chaos_injected_total",
                "timeouts_total",
                "retries_total",
            )
        },
        "checks": checks,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--uniques", type=int, default=50, help="distinct programs")
    parser.add_argument("--dupes", type=int, default=4, help="requests per program")
    parser.add_argument("--clients", type=int, default=8, help="concurrent clients")
    parser.add_argument(
        "--loops", type=int, default=200, help="loop iterations per program (sim cost)"
    )
    parser.add_argument("--seed", type=int, default=11, help="chaos + shuffle seed")
    parser.add_argument(
        "--workers", type=int, default=2, help="pool processes (0 = inline threads)"
    )
    parser.add_argument("--crashes", type=int, default=3, help="scheduled worker crashes")
    parser.add_argument("--hangs", type=int, default=1, help="scheduled worker hangs")
    parser.add_argument(
        "--horizon", type=int, default=12, help="batch ordinals the schedule spans"
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=DEFAULT_OUTPUT,
        help="where to write the JSON payload (default: repo-root BENCH_SERVE_CHAOS.json)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless every self-healing invariant holds",
    )
    args = parser.parse_args(argv)

    payload = run_chaos_loadtest(
        uniques=args.uniques,
        dupes=args.dupes,
        clients=args.clients,
        loops=args.loops,
        seed=args.seed,
        workers=args.workers,
        crashes=args.crashes,
        hangs=args.hangs,
        horizon=args.horizon,
    )
    args.output.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    load = payload["load"]
    print(
        f"answered {load['answered']}/{load['requests']}   "
        f"ok {load['ok']}   quarantined {load['quarantined']}   "
        f"p50 {load['p50_ms']:.1f} ms   p95 {load['p95_ms']:.1f} ms"
    )
    print(
        "faults: "
        + ", ".join(f"{k}={v}" for k, v in payload["supervision"]["chaos"]["injected"].items())
        + f"   restarts {payload['counters']['pool_restarts_total']}"
    )
    failed = [name for name, passed in payload["checks"].items() if not passed]
    for name, passed in payload["checks"].items():
        print(f"  [{'ok' if passed else 'FAIL'}] {name}")
    print(f"-> {args.output}")
    if args.check and failed:
        print(f"CHECK FAILED: {', '.join(failed)}")
        return 1
    if args.check:
        print("CHECK OK: the service self-healed through the full fault schedule")
    return 0


# -- pytest harness ----------------------------------------------------------

try:
    import pytest
except ImportError:  # running as a plain script on a bare interpreter
    pytest = None
else:
    pytestmark = pytest.mark.chaos


def test_self_healing_under_scaled_chaos(save_report):
    """Scaled-down inline-pool chaos run (the full fork run is scripted)."""
    payload = run_chaos_loadtest(
        uniques=6,
        dupes=2,
        clients=4,
        loops=100,
        seed=5,
        workers=0,
        crashes=2,
        hangs=0,
        horizon=3,
    )
    save_report(
        "serve_chaos",
        (
            f"answered: {payload['load']['answered']}/{payload['load']['requests']} "
            f"(ok {payload['load']['ok']}, quarantined {payload['load']['quarantined']})\n"
            f"injected: {payload['supervision']['chaos']['injected']}\n"
            f"restarts: {payload['counters']['pool_restarts_total']}\n"
            f"checks: {payload['checks']}"
        ),
    )
    failed = [name for name, passed in payload["checks"].items() if not passed]
    assert not failed, f"self-healing invariants failed: {failed} — {payload['load']}"


if __name__ == "__main__":
    raise SystemExit(main())
