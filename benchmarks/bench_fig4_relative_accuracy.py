"""Paper Fig. 4: relative accuracy over Reed-Solomon design points.

Regenerates the four-choice energy profile and checks the paper's
relative-accuracy criterion: the macro-model and reference profiles must
track (identical ranking).  Benchmarks the macro estimation of one design
point — the operation a designer iterates when exploring custom-
instruction choices.
"""

from repro.analysis import run_fig4


def test_fig4_relative_accuracy(benchmark, ctx, save_report):
    case = next(c for c in ctx.rs_choices if c.name == "rs_gfmac")
    config, program = case.build()
    model = ctx.model

    estimate = benchmark(model.estimate, config, program)
    assert estimate.energy > 0

    fig4 = run_fig4(ctx)
    save_report("fig4_relative_accuracy", fig4.report())

    # the two profiles rank all four design points identically
    assert abs(fig4.rank_correlation - 1.0) < 1e-9
    assert fig4.max_abs_percent_error < 12.0

    by_choice = {row.choice: row.reference_energy for row in fig4.rows}
    assert by_choice["rs_sw"] > 5 * by_choice["rs_gfmul"]
    assert by_choice["rs_dual"] < by_choice["rs_gfmac"]
