"""Serving throughput: coalesced+batched service vs a serial request loop.

A closed-loop load generator drives a live :class:`EstimationServer`
over real HTTP with a duplicate-heavy workload (U unique programs, each
requested D times, shuffled):

* ``serial``    — one client, sequential requests, deduplication OFF:
  every request pays one full simulation, the pre-service baseline;
* ``coalesced`` — K concurrent clients against the default service:
  duplicates merge in the coalescer/memo and survivors dispatch in
  windowed batches, so the pool simulates each unique program once.

Run as a script to (re)generate ``BENCH_SERVE.json`` at the repo root:

    PYTHONPATH=src python benchmarks/bench_serve.py

or as a CI smoke check with a scaled-down workload:

    PYTHONPATH=src python benchmarks/bench_serve.py \
        --uniques 4 --dupes 4 --clients 4 --check --output serve-smoke.json
"""

from __future__ import annotations

import argparse
import asyncio
import http.client
import json
import pathlib
import random
import threading
import time

import numpy as np

from repro.core import EnergyMacroModel, default_template
from repro.serve import EstimationServer, EstimationService

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_SERVE.json"
SPEEDUP_TARGET = 3.0

PROGRAM_TEMPLATE = """
    .data
out: .word 0
    .text
main:
    movi a2, {loops}
    movi a3, 0
    movi a5, {salt}
loop:
    add a3, a3, a2
    xor a3, a3, a5
    slli a6, a3, 1
    srli a7, a6, 3
    add a3, a3, a7
    sub a6, a3, a5
    or a3, a3, a6
    andi a3, a3, 2047
    addi a2, a2, -1
    bnez a2, loop
    la a4, out
    s32i a3, a4, 0
    halt
"""


def make_model() -> EnergyMacroModel:
    template = default_template()
    return EnergyMacroModel(template, np.linspace(50, 5000, len(template)))


def make_workload(uniques: int, dupes: int, loops: int, seed: int) -> list[dict]:
    """``uniques * dupes`` request bodies, duplicate-heavy, stable shuffle."""
    if not 1 <= loops <= 2000:
        raise SystemExit("--loops must be in [1, 2000] (movi immediate range)")
    bodies = []
    for index in range(uniques):
        source = PROGRAM_TEMPLATE.format(loops=loops, salt=index + 1)
        body = {
            "program": {"source": source, "name": f"load{index}"},
            "max_instructions": max(100_000, loops * 10),
        }
        bodies.extend([body] * dupes)
    random.Random(seed).shuffle(bodies)
    return bodies


class LiveServer:
    """An :class:`EstimationServer` on a background event loop."""

    def __init__(self, service: EstimationService) -> None:
        self.service = service
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._loop.run_forever, daemon=True)
        self._thread.start()
        self.server = EstimationServer(service, port=0)
        self._run(self.server.start())
        self.port = self.server.port

    def _run(self, coro):
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(60)

    def close(self) -> None:
        self._run(self.server.stop())
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._loop.close()


#: Transient statuses a live service legitimately answers under load:
#: 429 backpressure, 503 draining, 504 shed/timeout.  The load generator
#: retries them with jittered backoff instead of failing the whole run.
RETRYABLE_STATUSES = (429, 503, 504)
MAX_POST_ATTEMPTS = 6


def _post_estimate_once(port: int, body: dict) -> tuple[int, dict]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        conn.request(
            "POST",
            "/estimate",
            json.dumps(body),
            {"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def _post_estimate(port: int, body: dict) -> dict:
    """POST with bounded jittered retries on transient congestion."""
    last: tuple[int, object] = (0, None)
    for attempt in range(1, MAX_POST_ATTEMPTS + 1):
        try:
            status, payload = _post_estimate_once(port, body)
        except (ConnectionError, http.client.HTTPException) as exc:
            last = (0, repr(exc))
            status = None
        else:
            if status == 200:
                return payload
            last = (status, payload)
            if status not in RETRYABLE_STATUSES:
                break
        if attempt < MAX_POST_ATTEMPTS:
            time.sleep(min(2.0, 0.05 * 2**attempt) * (0.5 + random.random()))
    raise RuntimeError(f"estimate failed (status {last[0]}): {last[1]}")


def _get_metrics(port: int) -> dict:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", "/metrics")
        return json.loads(conn.getresponse().read())
    finally:
        conn.close()


def _percentile(sorted_values: list[float], p: float) -> float:
    if not sorted_values:
        return 0.0
    rank = max(1, int(round(p / 100.0 * len(sorted_values))))
    return sorted_values[rank - 1]


def drive(port: int, bodies: list[dict], clients: int) -> dict:
    """Closed loop: ``clients`` threads drain the workload, recording latency."""
    pending = list(enumerate(bodies))
    latencies: list[float] = []
    dedups: dict[str, int] = {}
    errors: list[BaseException] = []
    lock = threading.Lock()

    def worker() -> None:
        while True:
            with lock:
                if not pending or errors:
                    return
                _, body = pending.pop()
            began = time.perf_counter()
            try:
                payload = _post_estimate(port, body)
            except BaseException as exc:  # noqa: BLE001 — reported, fails the run
                with lock:
                    errors.append(exc)
                return
            elapsed = time.perf_counter() - began
            with lock:
                latencies.append(elapsed)
                dedups[payload["dedup"]] = dedups.get(payload["dedup"], 0) + 1

    began = time.perf_counter()
    threads = [threading.Thread(target=worker) for _ in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - began
    if errors:
        raise errors[0]
    latencies.sort()
    return {
        "requests": len(bodies),
        "clients": clients,
        "wall_seconds": round(wall, 4),
        "throughput_rps": round(len(bodies) / wall, 2),
        "p50_ms": round(_percentile(latencies, 50) * 1e3, 3),
        "p95_ms": round(_percentile(latencies, 95) * 1e3, 3),
        "dedup": dict(sorted(dedups.items())),
    }


def run_loadtest(
    uniques: int = 8,
    dupes: int = 12,
    clients: int = 8,
    loops: int = 2000,
    seed: int = 7,
) -> dict:
    """Measure both modes on one workload and assemble the payload."""
    model = make_model()
    bodies = make_workload(uniques, dupes, loops, seed)

    serial_server = LiveServer(
        EstimationService(model, workers=0, dedupe=False, batch_max=1)
    )
    try:
        serial = drive(serial_server.port, bodies, clients=1)
        serial["simulations"] = _get_metrics(serial_server.port)["simulation"][
            "runs_finished"
        ]
    finally:
        serial_server.close()

    coalesced_server = LiveServer(EstimationService(model, workers=0))
    try:
        coalesced = drive(coalesced_server.port, bodies, clients=clients)
        metrics = _get_metrics(coalesced_server.port)
        coalesced["simulations"] = metrics["simulation"]["runs_finished"]
        coalesced["duplicates_merged"] = metrics["counters"]["duplicates_merged"]
        coalesced["batches_dispatched"] = metrics["counters"]["batches_dispatched"]
    finally:
        coalesced_server.close()

    return {
        "benchmark": "serve_coalescing_throughput",
        "unit": "estimate requests per second of host wall-clock (closed loop)",
        "workload": {
            "unique_programs": uniques,
            "duplicates_each": dupes,
            "total_requests": len(bodies),
            "loop_iterations": loops,
            "seed": seed,
        },
        "serial": serial,
        "coalesced": coalesced,
        "summary": {
            "speedup": round(coalesced["throughput_rps"] / serial["throughput_rps"], 2),
            "target": SPEEDUP_TARGET,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--uniques", type=int, default=8, help="distinct programs")
    parser.add_argument("--dupes", type=int, default=12, help="requests per program")
    parser.add_argument("--clients", type=int, default=8, help="concurrent clients")
    parser.add_argument(
        "--loops", type=int, default=2000, help="loop iterations per program (sim cost)"
    )
    parser.add_argument("--seed", type=int, default=7, help="workload shuffle seed")
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=DEFAULT_OUTPUT,
        help="where to write the JSON payload (default: repo-root BENCH_SERVE.json)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"exit non-zero unless coalesced speedup >= {SPEEDUP_TARGET}x",
    )
    args = parser.parse_args(argv)

    payload = run_loadtest(
        uniques=args.uniques,
        dupes=args.dupes,
        clients=args.clients,
        loops=args.loops,
        seed=args.seed,
    )
    args.output.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    for mode in ("serial", "coalesced"):
        row = payload[mode]
        print(
            f"{mode:<10} {row['throughput_rps']:>8.1f} req/s   "
            f"p50 {row['p50_ms']:>7.2f} ms   p95 {row['p95_ms']:>7.2f} ms   "
            f"{row['simulations']} simulation(s)"
        )
    summary = payload["summary"]
    print(f"speedup: {summary['speedup']}x (target {summary['target']}x)"
          f"  -> {args.output}")

    if args.check:
        if summary["speedup"] < SPEEDUP_TARGET:
            print(
                f"CHECK FAILED: {summary['speedup']}x below the "
                f"{SPEEDUP_TARGET}x coalescing target"
            )
            return 1
        print("CHECK OK: coalesced throughput clears the target")
    return 0


# -- pytest-benchmark harness ------------------------------------------------


def test_coalescing_beats_serial_loop(benchmark, save_report):
    payload = benchmark.pedantic(
        run_loadtest,
        kwargs={"uniques": 4, "dupes": 6, "clients": 6, "loops": 2000},
        rounds=1,
        iterations=1,
    )
    serial, coalesced = payload["serial"], payload["coalesced"]
    save_report(
        "serve_throughput",
        (
            f"serial: {serial['throughput_rps']} req/s "
            f"(p50 {serial['p50_ms']} ms, p95 {serial['p95_ms']} ms, "
            f"{serial['simulations']} sims)\n"
            f"coalesced: {coalesced['throughput_rps']} req/s "
            f"(p50 {coalesced['p50_ms']} ms, p95 {coalesced['p95_ms']} ms, "
            f"{coalesced['simulations']} sims)\n"
            f"speedup: {payload['summary']['speedup']}x"
        ),
    )
    # every duplicate merged: exactly one simulation per unique program
    assert coalesced["simulations"] == 4
    assert coalesced["duplicates_merged"] == 4 * 6 - 4
    # CI boxes are noisy; the committed BENCH_SERVE.json holds the 3x evidence
    assert payload["summary"]["speedup"] > 1.0


if __name__ == "__main__":
    raise SystemExit(main())
