"""ISS retire throughput: reference interpreter vs compiled dispatch paths.

Measures retired-MIPS (millions of retired instructions per second of
host wall-clock) on the bundled characterization programs for three
engines:

* ``interpreted`` — :class:`repro.xtcore.ReferenceSimulator`, the
  retained pre-compilation loop;
* ``instrumented`` — the compiled dispatch loop with an external
  retire observer subscribed (full event protocol active);
* ``fast`` — the compiled dispatch loop with no observers and no trace
  (counter-folding fast path).

Run as a script to (re)generate ``BENCH_ISS.json`` at the repo root:

    PYTHONPATH=src python benchmarks/bench_iss_throughput.py

or as a CI smoke check on a couple of programs:

    PYTHONPATH=src python benchmarks/bench_iss_throughput.py \
        --programs tp01_alu_mix tp05_memcpy --repeat 2 --check
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import time

import pytest

from repro.obs import SimObserver
from repro.programs import characterization_suite
from repro.xtcore import ReferenceSimulator, Simulator, compile_program

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_ISS.json"


class NullRetireObserver(SimObserver):
    """Subscribes to retires and does nothing — forces the instrumented path."""

    wants_retire = True

    def on_retire(self, event) -> None:
        pass


def _measure(make_runner, repeat: int) -> tuple[float, int]:
    """Best-of-``repeat`` (MIPS, retired instructions) for one engine."""
    best_mips = 0.0
    retired = 0
    for _ in range(repeat):
        runner = make_runner()
        start = time.perf_counter()
        result = runner.run()
        elapsed = time.perf_counter() - start
        retired = result.stats.total_instructions
        best_mips = max(best_mips, retired / elapsed / 1e6)
    return best_mips, retired


def measure_case(case, repeat: int = 3) -> dict:
    """Throughput of all three engines on one benchmark case."""
    config, program = case.build()
    executable = compile_program(config, program)
    budget = case.max_instructions

    interp_mips, retired = _measure(
        lambda: ReferenceSimulator(config, program, max_instructions=budget),
        repeat,
    )
    instr_mips, _ = _measure(
        lambda: Simulator(
            config,
            program,
            max_instructions=budget,
            observers=[NullRetireObserver()],
            executable=executable,
        ),
        repeat,
    )
    fast_mips, _ = _measure(
        lambda: Simulator(
            config, program, max_instructions=budget, executable=executable
        ),
        repeat,
    )
    return {
        "program": case.name,
        "retired_instructions": retired,
        "interpreted_mips": round(interp_mips, 3),
        "instrumented_mips": round(instr_mips, 3),
        "fast_mips": round(fast_mips, 3),
        "instrumented_speedup": round(instr_mips / interp_mips, 2),
        "fast_speedup": round(fast_mips / interp_mips, 2),
    }


def _geomean(values) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def run_suite(program_names=None, repeat: int = 3) -> dict:
    """Measure the (sub)suite and assemble the BENCH_ISS payload."""
    cases = characterization_suite(include_variants=False)
    if program_names:
        by_name = {case.name: case for case in cases}
        unknown = [n for n in program_names if n not in by_name]
        if unknown:
            raise SystemExit(f"unknown program(s): {', '.join(unknown)}")
        cases = [by_name[n] for n in program_names]
    results = [measure_case(case, repeat=repeat) for case in cases]
    return {
        "benchmark": "iss_retire_throughput",
        "unit": "retired MIPS (best of repeats, host wall-clock)",
        "repeat": repeat,
        "programs": results,
        "summary": {
            "instrumented_speedup_geomean": round(
                _geomean([r["instrumented_speedup"] for r in results]), 2
            ),
            "fast_speedup_geomean": round(
                _geomean([r["fast_speedup"] for r in results]), 2
            ),
            "targets": {"instrumented": 3.0, "fast": 5.0},
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--programs",
        nargs="*",
        default=None,
        help="benchmark case names to measure (default: the full suite)",
    )
    parser.add_argument("--repeat", type=int, default=3, help="best-of repeats")
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=DEFAULT_OUTPUT,
        help="where to write the JSON payload (default: repo-root BENCH_ISS.json)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero if either compiled path is slower than the interpreter",
    )
    args = parser.parse_args(argv)

    payload = run_suite(args.programs, repeat=args.repeat)
    args.output.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    header = f"{'program':<24}{'interp':>9}{'instr':>9}{'fast':>9}{'instr x':>9}{'fast x':>8}"
    print(header)
    print("-" * len(header))
    for row in payload["programs"]:
        print(
            f"{row['program']:<24}{row['interpreted_mips']:>9.2f}"
            f"{row['instrumented_mips']:>9.2f}{row['fast_mips']:>9.2f}"
            f"{row['instrumented_speedup']:>9.2f}{row['fast_speedup']:>8.2f}"
        )
    summary = payload["summary"]
    print(
        f"geomean speedup: instrumented {summary['instrumented_speedup_geomean']}x, "
        f"fast {summary['fast_speedup_geomean']}x  -> {args.output}"
    )

    if args.check:
        slow = [
            row["program"]
            for row in payload["programs"]
            if row["instrumented_speedup"] < 1.0 or row["fast_speedup"] < 1.0
        ]
        if slow:
            print(f"CHECK FAILED: compiled dispatch slower than interpreter on: {slow}")
            return 1
        print("CHECK OK: compiled dispatch at least as fast as the interpreter")
    return 0


# -- pytest-benchmark harness ------------------------------------------------

SMOKE_CASES = ("tp01_alu_mix", "tp06_memcpy")


@pytest.fixture(scope="module")
def smoke_case():
    cases = {c.name: c for c in characterization_suite(include_variants=False)}
    return cases[SMOKE_CASES[0]]


def test_fast_path_throughput(benchmark, smoke_case):
    config, program = smoke_case.build()
    executable = compile_program(config, program)
    result = benchmark(
        lambda: Simulator(
            config,
            program,
            max_instructions=smoke_case.max_instructions,
            executable=executable,
        ).run()
    )
    assert result.stats.total_instructions > 0


def test_compiled_not_slower_than_interpreter(benchmark, save_report):
    payload = benchmark.pedantic(
        run_suite, args=(list(SMOKE_CASES),), kwargs={"repeat": 2}, rounds=1, iterations=1
    )
    lines = [
        f"{row['program']}: interpreted {row['interpreted_mips']} MIPS, "
        f"instrumented {row['instrumented_mips']} MIPS "
        f"({row['instrumented_speedup']}x), fast {row['fast_mips']} MIPS "
        f"({row['fast_speedup']}x)"
        for row in payload["programs"]
    ]
    save_report("iss_throughput", "\n".join(lines))
    for row in payload["programs"]:
        assert row["instrumented_speedup"] >= 1.0, row
        assert row["fast_speedup"] >= 1.0, row


if __name__ == "__main__":
    raise SystemExit(main())
