"""ISS retire throughput: reference interpreter vs compiled dispatch tiers.

Measures retired-MIPS (millions of retired instructions per second of
host wall-clock) on the bundled characterization programs for four
engines:

* ``interpreted`` — :class:`repro.xtcore.ReferenceSimulator`, the
  retained pre-compilation loop;
* ``instrumented`` — the compiled dispatch loop with an external
  retire observer subscribed (full event protocol active);
* ``compiled`` — the per-op compiled dispatch loop with no observers
  and no trace (counter-folding fast path);
* ``superop`` — block-level fused dispatch (one Python call per basic
  block; what ``engine="auto"`` resolves to for uninstrumented runs).

A batch section additionally measures :func:`repro.xtcore.run_batch`
(one program across N cache/clock variants in a single pass) against
the same N runs done solo through the superop engine.

Run as a script to (re)generate ``BENCH_ISS.json`` at the repo root:

    PYTHONPATH=src python benchmarks/bench_iss_throughput.py

or as a CI smoke check on a couple of programs:

    PYTHONPATH=src python benchmarks/bench_iss_throughput.py \
        --programs tp01_alu_mix tp05_memcpy --repeat 2 --check

``--check`` fails when any tier drops below the interpreter on any
program, or when the superop tier's geomean falls below the compiled
tier's (the fused blocks must pay for themselves).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math
import pathlib
import time

import pytest

from repro.obs import SimObserver
from repro.programs import characterization_suite
from repro.xtcore import ReferenceSimulator, Simulator, compile_program, run_batch

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_ISS.json"


class NullRetireObserver(SimObserver):
    """Subscribes to retires and does nothing — forces the instrumented path."""

    wants_retire = True

    def on_retire(self, event) -> None:
        pass


def _measure(make_runner, repeat: int) -> tuple[float, int]:
    """Best-of-``repeat`` (MIPS, retired instructions) for one engine."""
    best_mips = 0.0
    retired = 0
    for _ in range(repeat):
        runner = make_runner()
        start = time.perf_counter()
        result = runner.run()
        elapsed = time.perf_counter() - start
        retired = result.stats.total_instructions
        best_mips = max(best_mips, retired / elapsed / 1e6)
    return best_mips, retired


def measure_case(case, repeat: int = 3) -> dict:
    """Throughput of all three engines on one benchmark case."""
    config, program = case.build()
    executable = compile_program(config, program)
    budget = case.max_instructions

    interp_mips, retired = _measure(
        lambda: ReferenceSimulator(config, program, max_instructions=budget),
        repeat,
    )
    instr_mips, _ = _measure(
        lambda: Simulator(
            config,
            program,
            max_instructions=budget,
            observers=[NullRetireObserver()],
            executable=executable,
        ),
        repeat,
    )
    compiled_mips, _ = _measure(
        lambda: Simulator(
            config,
            program,
            max_instructions=budget,
            executable=executable,
            engine="compiled",
        ),
        repeat,
    )
    superop_mips, _ = _measure(
        lambda: Simulator(
            config,
            program,
            max_instructions=budget,
            executable=executable,
            engine="superop",
        ),
        repeat,
    )
    return {
        "program": case.name,
        "retired_instructions": retired,
        "interpreted_mips": round(interp_mips, 3),
        "instrumented_mips": round(instr_mips, 3),
        "compiled_mips": round(compiled_mips, 3),
        "superop_mips": round(superop_mips, 3),
        "instrumented_speedup": round(instr_mips / interp_mips, 2),
        "compiled_speedup": round(compiled_mips / interp_mips, 2),
        "superop_speedup": round(superop_mips / interp_mips, 2),
        "superop_vs_compiled": round(superop_mips / compiled_mips, 2),
    }


def _geomean(values) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _batch_variants(base, count: int):
    """``count`` cache/clock variants of ``base`` in one semantic partition."""
    variants = []
    lines = (16, 32, 64)
    for i in range(count):
        line = lines[i % len(lines)]
        variants.append(
            dataclasses.replace(
                base,
                name=f"{base.name}-v{i}",
                clock_mhz=base.clock_mhz + 10.0 * i,
                icache=dataclasses.replace(base.icache, line_bytes=line),
                dcache=dataclasses.replace(
                    base.dcache,
                    line_bytes=line,
                    miss_penalty=base.dcache.miss_penalty + (i % 4),
                ),
            )
        )
    return variants


def measure_batch(case, n_configs: int = 16, repeat: int = 3) -> dict:
    """One program x N configs: run_batch vs the same N solo superop runs."""
    config, program = case.build()
    configs = _batch_variants(config, n_configs)
    budget = case.max_instructions

    solo_best = float("inf")
    batch_best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        for variant in configs:
            Simulator(variant, program, max_instructions=budget).run()
        solo_best = min(solo_best, time.perf_counter() - start)

        start = time.perf_counter()
        results = run_batch(configs, program, max_instructions=budget)
        batch_best = min(batch_best, time.perf_counter() - start)
    return {
        "program": case.name,
        "configs": n_configs,
        "retired_instructions": results[0].stats.total_instructions,
        "solo_configs_per_second": round(n_configs / solo_best, 2),
        "batch_configs_per_second": round(n_configs / batch_best, 2),
        "batch_speedup": round(solo_best / batch_best, 2),
    }


def run_suite(program_names=None, repeat: int = 3, batch_configs: int = 16) -> dict:
    """Measure the (sub)suite and assemble the BENCH_ISS payload."""
    cases = characterization_suite(include_variants=False)
    if program_names:
        by_name = {case.name: case for case in cases}
        unknown = [n for n in program_names if n not in by_name]
        if unknown:
            raise SystemExit(f"unknown program(s): {', '.join(unknown)}")
        cases = [by_name[n] for n in program_names]
    results = [measure_case(case, repeat=repeat) for case in cases]
    return {
        "benchmark": "iss_retire_throughput",
        "unit": "retired MIPS (best of repeats, host wall-clock)",
        "repeat": repeat,
        "programs": results,
        "batch": measure_batch(cases[0], n_configs=batch_configs, repeat=repeat),
        "summary": {
            "instrumented_speedup_geomean": round(
                _geomean([r["instrumented_speedup"] for r in results]), 2
            ),
            "compiled_speedup_geomean": round(
                _geomean([r["compiled_speedup"] for r in results]), 2
            ),
            "superop_speedup_geomean": round(
                _geomean([r["superop_speedup"] for r in results]), 2
            ),
            "superop_vs_compiled_geomean": round(
                _geomean([r["superop_vs_compiled"] for r in results]), 2
            ),
            "targets": {"instrumented": 3.0, "compiled": 5.0, "superop": 10.0},
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--programs",
        nargs="*",
        default=None,
        help="benchmark case names to measure (default: the full suite)",
    )
    parser.add_argument("--repeat", type=int, default=3, help="best-of repeats")
    parser.add_argument(
        "--batch-configs",
        type=int,
        default=16,
        help="config count for the run_batch measurement (default 16)",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=DEFAULT_OUTPUT,
        help="where to write the JSON payload (default: repo-root BENCH_ISS.json)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero if either compiled path is slower than the interpreter",
    )
    args = parser.parse_args(argv)

    payload = run_suite(
        args.programs, repeat=args.repeat, batch_configs=args.batch_configs
    )
    args.output.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    header = (
        f"{'program':<24}{'interp':>9}{'instr':>9}{'compiled':>10}{'superop':>9}"
        f"{'comp x':>8}{'sup x':>7}"
    )
    print(header)
    print("-" * len(header))
    for row in payload["programs"]:
        print(
            f"{row['program']:<24}{row['interpreted_mips']:>9.2f}"
            f"{row['instrumented_mips']:>9.2f}{row['compiled_mips']:>10.2f}"
            f"{row['superop_mips']:>9.2f}"
            f"{row['compiled_speedup']:>8.2f}{row['superop_speedup']:>7.2f}"
        )
    summary = payload["summary"]
    batch = payload["batch"]
    print(
        f"geomean speedup: instrumented {summary['instrumented_speedup_geomean']}x, "
        f"compiled {summary['compiled_speedup_geomean']}x, "
        f"superop {summary['superop_speedup_geomean']}x "
        f"(superop/compiled {summary['superop_vs_compiled_geomean']}x)"
    )
    print(
        f"batch: {batch['program']} x {batch['configs']} configs: "
        f"{batch['solo_configs_per_second']} solo vs "
        f"{batch['batch_configs_per_second']} batched configs/s "
        f"({batch['batch_speedup']}x)  -> {args.output}"
    )

    if args.check:
        failed = False
        slow = [
            row["program"]
            for row in payload["programs"]
            if row["instrumented_speedup"] < 1.0
            or row["compiled_speedup"] < 1.0
            or row["superop_speedup"] < 1.0
        ]
        if slow:
            print(f"CHECK FAILED: compiled dispatch slower than interpreter on: {slow}")
            failed = True
        if summary["superop_vs_compiled_geomean"] < 1.0:
            print(
                "CHECK FAILED: superop tier geomean below the compiled tier "
                f"({summary['superop_vs_compiled_geomean']}x)"
            )
            failed = True
        if batch["batch_speedup"] < 1.0:
            print(f"CHECK FAILED: run_batch slower than solo runs ({batch['batch_speedup']}x)")
            failed = True
        if failed:
            return 1
        print(
            "CHECK OK: every tier at least as fast as the interpreter, "
            "superop >= compiled, batch >= solo"
        )
    return 0


# -- pytest-benchmark harness ------------------------------------------------

SMOKE_CASES = ("tp01_alu_mix", "tp06_memcpy")


@pytest.fixture(scope="module")
def smoke_case():
    cases = {c.name: c for c in characterization_suite(include_variants=False)}
    return cases[SMOKE_CASES[0]]


def test_fast_path_throughput(benchmark, smoke_case):
    config, program = smoke_case.build()
    executable = compile_program(config, program)
    result = benchmark(
        lambda: Simulator(
            config,
            program,
            max_instructions=smoke_case.max_instructions,
            executable=executable,
        ).run()
    )
    assert result.stats.total_instructions > 0


def test_compiled_not_slower_than_interpreter(benchmark, save_report):
    payload = benchmark.pedantic(
        run_suite, args=(list(SMOKE_CASES),), kwargs={"repeat": 2}, rounds=1, iterations=1
    )
    lines = [
        f"{row['program']}: interpreted {row['interpreted_mips']} MIPS, "
        f"instrumented {row['instrumented_mips']} MIPS "
        f"({row['instrumented_speedup']}x), compiled {row['compiled_mips']} MIPS "
        f"({row['compiled_speedup']}x), superop {row['superop_mips']} MIPS "
        f"({row['superop_speedup']}x)"
        for row in payload["programs"]
    ]
    save_report("iss_throughput", "\n".join(lines))
    for row in payload["programs"]:
        assert row["instrumented_speedup"] >= 1.0, row
        assert row["compiled_speedup"] >= 1.0, row
        assert row["superop_speedup"] >= 1.0, row


if __name__ == "__main__":
    raise SystemExit(main())
