"""DSE engine throughput: serial vs parallel vs warm-cache vs batched.

The exploration engine's whole value is candidates/second on the
macro-model fast path.  This benchmark scores the same seeded random
sample of the tuned Reed-Solomon space three ways — serial, with a
worker pool, and from a warm on-disk result cache — asserts the three
agree on the ranking, and writes the measured throughput table.

A fourth case measures the batched evaluator: one program across 64
cache-geometry variants (a single semantic partition), scored through
one :func:`repro.xtcore.run_batch` pass versus 64 per-point runs.
"""

import dataclasses
import time

import pytest

from repro.dse import (
    EvaluationEngine,
    Knob,
    RandomStrategy,
    ResultCache,
    SearchSpace,
    explore,
    get_space,
)
from repro.programs import characterization_suite
from repro.xtcore import build_processor

BUDGET = 12
BATCH_CONFIGS = 64


@pytest.fixture(scope="module")
def space():
    return get_space("reed_solomon_tuned")


def _run(ctx, space, jobs=1, cache=None):
    strategy = RandomStrategy(budget=BUDGET, seed=3)
    return explore(ctx.model, space, strategy, jobs=jobs, cache=cache)


@pytest.fixture(scope="module")
def serial_report(ctx, space):
    return _run(ctx, space)


def test_dse_serial(benchmark, ctx, space, serial_report):
    report = benchmark.pedantic(_run, args=(ctx, space), rounds=1, iterations=1)
    assert report.ok and len(report.scores) == BUDGET


def test_dse_parallel(benchmark, ctx, space, serial_report):
    report = benchmark.pedantic(
        _run, args=(ctx, space), kwargs={"jobs": 4}, rounds=1, iterations=1
    )
    assert report.ok and len(report.scores) == BUDGET
    # parallelism must never change the answer
    serial_keys = [s.key for s in serial_report.ranked()]
    assert [s.key for s in report.ranked()] == serial_keys


def test_dse_warm_cache(benchmark, ctx, space, serial_report, tmp_path, save_report):
    cache_dir = tmp_path / "dse-cache"
    cold = _run(ctx, space, cache=ResultCache(cache_dir))
    assert cold.cache_misses == BUDGET

    warm = benchmark.pedantic(
        _run,
        args=(ctx, space),
        kwargs={"cache": ResultCache(cache_dir)},
        rounds=1,
        iterations=1,
    )
    assert warm.cache_hits == BUDGET and warm.evaluated == 0
    assert [s.key for s in warm.ranked()] == [s.key for s in serial_report.ranked()]

    parallel = _run(ctx, space, jobs=4)
    rows = [
        ("serial (jobs 1)", serial_report),
        ("parallel (jobs 4)", parallel),
        ("warm cache", warm),
    ]
    header = f"{'mode':<20}{'cand/s':>10}{'elapsed s':>12}{'evaluated':>11}{'hits':>6}"
    lines = [f"space reed_solomon_tuned, {BUDGET} candidates per run", header,
             "-" * len(header)]
    for label, report in rows:
        lines.append(
            f"{label:<20}{report.candidates_per_second:>10.1f}"
            f"{report.elapsed_seconds:>12.3f}{report.evaluated:>11}"
            f"{report.cache_hits:>6}"
        )
    save_report("dse_throughput", "\n".join(lines))


# -- batched evaluation: one program x 64 configs ----------------------------


def _cache_geometry_space():
    """64 cache/clock variants of the base core over one fixed program.

    Every knob is timing/energy-plane only, so all candidates share one
    semantic partition and the serial evaluator folds them into a single
    ``run_batch`` pass.
    """
    base = build_processor("xt-batch-dse", [])
    cases = {c.name: c for c in characterization_suite(include_variants=False)}
    _, program = cases["tp01_alu_mix"].build()

    def build(assignment):
        config = dataclasses.replace(
            base,
            name=(
                f"{base.name}-i{assignment['icache_line']}"
                f"-d{assignment['dcache_line']}-p{assignment['dmiss_penalty']}"
            ),
            icache=dataclasses.replace(
                base.icache, line_bytes=assignment["icache_line"]
            ),
            dcache=dataclasses.replace(
                base.dcache,
                line_bytes=assignment["dcache_line"],
                miss_penalty=assignment["dmiss_penalty"],
            ),
        )
        return config, program

    return SearchSpace(
        name="cache_geometry_64",
        description="cache line/penalty sweep over one program",
        knobs=(
            Knob("icache_line", (16, 32, 64, 128)),
            Knob("dcache_line", (16, 32, 64, 128)),
            Knob("dmiss_penalty", (8, 12, 16, 20)),
        ),
        builder=build,
    )


def test_dse_batched_partition(benchmark, ctx, save_report):
    space = _cache_geometry_space()
    candidates = list(space.candidates())
    assert len(candidates) == BATCH_CONFIGS

    # per-point baseline: singleton evaluate() calls can never group
    solo_engine = EvaluationEngine(ctx.model, space)
    start = time.perf_counter()
    solo_scores = [
        score
        for candidate in candidates
        for score in solo_engine.evaluate([candidate])
    ]
    solo_elapsed = time.perf_counter() - start
    assert solo_engine.batch_groups == 0

    batch_engine = EvaluationEngine(ctx.model, space)
    start = time.perf_counter()
    batch_scores = benchmark.pedantic(
        batch_engine.evaluate, args=(candidates,), rounds=1, iterations=1
    )
    batch_elapsed = time.perf_counter() - start
    assert batch_engine.batch_groups == 1
    assert batch_engine.batch_members == BATCH_CONFIGS
    assert len(batch_scores) == BATCH_CONFIGS

    # batching must never change the answer
    for solo, batched in zip(solo_scores, batch_scores):
        assert solo.key == batched.key
        assert solo.energy == batched.energy
        assert solo.cycles == batched.cycles
        assert solo.area == batched.area

    gain = solo_elapsed / batch_elapsed
    lines = [
        f"1 program (tp01_alu_mix) x {BATCH_CONFIGS} cache-geometry configs",
        f"per-point: {BATCH_CONFIGS / solo_elapsed:.1f} cand/s "
        f"({solo_elapsed:.3f} s)",
        f"batched:   {BATCH_CONFIGS / batch_elapsed:.1f} cand/s "
        f"({batch_elapsed:.3f} s)",
        f"gain: {gain:.2f}x (one run_batch pass, "
        f"{batch_engine.batch_members} members)",
    ]
    save_report("dse_batched_partition", "\n".join(lines))
    assert gain > 1.0
