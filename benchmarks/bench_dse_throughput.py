"""DSE engine throughput: serial vs parallel vs warm-cache vs batched.

The exploration engine's whole value is candidates/second on the
macro-model fast path.  This benchmark scores the same seeded random
sample of the tuned Reed-Solomon space three ways — serial, with a
worker pool, and from a warm on-disk result cache — asserts the three
agree on the ranking, and writes the measured throughput table.

A fourth case measures the batched evaluator: one program across 64
cache-geometry variants (a single semantic partition), scored through
one :func:`repro.xtcore.run_batch` pass versus 64 per-point runs.
"""

import dataclasses
import time

import pytest

from repro.dse import (
    EvaluationEngine,
    Knob,
    RandomStrategy,
    ResultCache,
    SearchSpace,
    explore,
    get_space,
    with_operating_points,
)
from repro.dse.cache import candidate_cache_key, model_digest
from repro.programs import characterization_suite
from repro.tech import default_calibration
from repro.xtcore import DEFAULT_MAX_INSTRUCTIONS, build_processor

BUDGET = 12
BATCH_CONFIGS = 64

OP_POINTS = (
    "130nm@1.5V@400MHz",
    "90nm@1.2V@600MHz",
    "65nm@1.1V@800MHz",
    "45nm@1V@1200MHz",
)


@pytest.fixture(scope="module")
def space():
    return get_space("reed_solomon_tuned")


def _run(ctx, space, jobs=1, cache=None):
    strategy = RandomStrategy(budget=BUDGET, seed=3)
    return explore(ctx.model, space, strategy, jobs=jobs, cache=cache)


@pytest.fixture(scope="module")
def serial_report(ctx, space):
    return _run(ctx, space)


def test_dse_serial(benchmark, ctx, space, serial_report):
    report = benchmark.pedantic(_run, args=(ctx, space), rounds=1, iterations=1)
    assert report.ok and len(report.scores) == BUDGET


def test_dse_parallel(benchmark, ctx, space, serial_report):
    report = benchmark.pedantic(
        _run, args=(ctx, space), kwargs={"jobs": 4}, rounds=1, iterations=1
    )
    assert report.ok and len(report.scores) == BUDGET
    # parallelism must never change the answer
    serial_keys = [s.key for s in serial_report.ranked()]
    assert [s.key for s in report.ranked()] == serial_keys


def test_dse_warm_cache(benchmark, ctx, space, serial_report, tmp_path, save_report):
    cache_dir = tmp_path / "dse-cache"
    cold = _run(ctx, space, cache=ResultCache(cache_dir))
    assert cold.cache_misses == BUDGET

    warm = benchmark.pedantic(
        _run,
        args=(ctx, space),
        kwargs={"cache": ResultCache(cache_dir)},
        rounds=1,
        iterations=1,
    )
    assert warm.cache_hits == BUDGET and warm.evaluated == 0
    assert [s.key for s in warm.ranked()] == [s.key for s in serial_report.ranked()]

    parallel = _run(ctx, space, jobs=4)
    rows = [
        ("serial (jobs 1)", serial_report),
        ("parallel (jobs 4)", parallel),
        ("warm cache", warm),
    ]
    header = f"{'mode':<20}{'cand/s':>10}{'elapsed s':>12}{'evaluated':>11}{'hits':>6}"
    lines = [f"space reed_solomon_tuned, {BUDGET} candidates per run", header,
             "-" * len(header)]
    for label, report in rows:
        lines.append(
            f"{label:<20}{report.candidates_per_second:>10.1f}"
            f"{report.elapsed_seconds:>12.3f}{report.evaluated:>11}"
            f"{report.cache_hits:>6}"
        )
    save_report("dse_throughput", "\n".join(lines))


# -- batched evaluation: one program x 64 configs ----------------------------


def _cache_geometry_space():
    """64 cache/clock variants of the base core over one fixed program.

    Every knob is timing/energy-plane only, so all candidates share one
    semantic partition and the serial evaluator folds them into a single
    ``run_batch`` pass.
    """
    base = build_processor("xt-batch-dse", [])
    cases = {c.name: c for c in characterization_suite(include_variants=False)}
    _, program = cases["tp01_alu_mix"].build()

    def build(assignment):
        config = dataclasses.replace(
            base,
            name=(
                f"{base.name}-i{assignment['icache_line']}"
                f"-d{assignment['dcache_line']}-p{assignment['dmiss_penalty']}"
            ),
            icache=dataclasses.replace(
                base.icache, line_bytes=assignment["icache_line"]
            ),
            dcache=dataclasses.replace(
                base.dcache,
                line_bytes=assignment["dcache_line"],
                miss_penalty=assignment["dmiss_penalty"],
            ),
        )
        return config, program

    return SearchSpace(
        name="cache_geometry_64",
        description="cache line/penalty sweep over one program",
        knobs=(
            Knob("icache_line", (16, 32, 64, 128)),
            Knob("dcache_line", (16, 32, 64, 128)),
            Knob("dmiss_penalty", (8, 12, 16, 20)),
        ),
        builder=build,
    )


def test_dse_batched_partition(benchmark, ctx, save_report):
    space = _cache_geometry_space()
    candidates = list(space.candidates())
    assert len(candidates) == BATCH_CONFIGS

    # per-point baseline: singleton evaluate() calls can never group
    solo_engine = EvaluationEngine(ctx.model, space)
    start = time.perf_counter()
    solo_scores = [
        score
        for candidate in candidates
        for score in solo_engine.evaluate([candidate])
    ]
    solo_elapsed = time.perf_counter() - start
    assert solo_engine.batch_groups == 0

    batch_engine = EvaluationEngine(ctx.model, space)
    start = time.perf_counter()
    batch_scores = benchmark.pedantic(
        batch_engine.evaluate, args=(candidates,), rounds=1, iterations=1
    )
    batch_elapsed = time.perf_counter() - start
    assert batch_engine.batch_groups == 1
    assert batch_engine.batch_members == BATCH_CONFIGS
    assert len(batch_scores) == BATCH_CONFIGS

    # batching must never change the answer
    for solo, batched in zip(solo_scores, batch_scores):
        assert solo.key == batched.key
        assert solo.energy == batched.energy
        assert solo.cycles == batched.cycles
        assert solo.area == batched.area

    gain = solo_elapsed / batch_elapsed
    lines = [
        f"1 program (tp01_alu_mix) x {BATCH_CONFIGS} cache-geometry configs",
        f"per-point: {BATCH_CONFIGS / solo_elapsed:.1f} cand/s "
        f"({solo_elapsed:.3f} s)",
        f"batched:   {BATCH_CONFIGS / batch_elapsed:.1f} cand/s "
        f"({batch_elapsed:.3f} s)",
        f"gain: {gain:.2f}x (one run_batch pass, "
        f"{batch_engine.batch_members} members)",
    ]
    save_report("dse_batched_partition", "\n".join(lines))
    assert gain > 1.0


# -- operating-point axis: DVFS-only candidates share one partition ----------


def _operating_point_space():
    """One fixed core/program pair swept over the DVFS axis alone.

    Operating points rescale the macro-model, not the simulation, so
    every candidate shares the same semantic partition and one
    ``run_batch`` pass covers the whole sweep.
    """
    base = build_processor("xt-batch-dvfs", [])
    cases = {c.name: c for c in characterization_suite(include_variants=False)}
    _, program = cases["tp01_alu_mix"].build()

    inner = SearchSpace(
        name="fixed_core",
        description="one fixed core/program pair",
        knobs=(Knob("core", ("base",)),),
        builder=lambda assignment: (base, program),
    )
    return with_operating_points(inner, OP_POINTS)


def test_dse_batched_operating_point_axis(benchmark, ctx, save_report):
    space = _operating_point_space()
    candidates = list(space.candidates())
    assert len(candidates) == len(OP_POINTS)

    solo_engine = EvaluationEngine(ctx.model, space)
    solo_scores = [
        score
        for candidate in candidates
        for score in solo_engine.evaluate([candidate])
    ]
    assert solo_engine.batch_groups == 0

    batch_engine = EvaluationEngine(ctx.model, space)
    start = time.perf_counter()
    batch_scores = benchmark.pedantic(
        batch_engine.evaluate, args=(candidates,), rounds=1, iterations=1
    )
    batch_elapsed = time.perf_counter() - start
    # op-only-differing candidates collapse into ONE simulation group
    assert batch_engine.batch_groups == 1
    assert batch_engine.batch_members == len(OP_POINTS)
    assert len(batch_scores) == len(OP_POINTS)

    # the operating point must never perturb the simulation...
    assert len({score.cycles for score in batch_scores}) == 1
    # ...only the energy scale, exactly as the calibration dictates
    calibration = default_calibration()
    rescaled = {
        round(score.energy / calibration.energy_scale(point), 6)
        for score, point in zip(batch_scores, OP_POINTS)
    }
    assert len(rescaled) == 1

    for solo, batched in zip(solo_scores, batch_scores):
        assert solo.key == batched.key
        assert solo.energy == batched.energy
        assert solo.cycles == batched.cycles

    # each point owns a disjoint slice of the result cache
    config, program = space.build(candidates[0].assignment_dict)
    keys = {
        candidate_cache_key(
            model_digest(ctx.model.at(point)),
            config,
            program,
            DEFAULT_MAX_INSTRUCTIONS,
        )
        for point in OP_POINTS
    }
    assert len(keys) == len(OP_POINTS)

    lines = [
        f"1 core/program pair x {len(OP_POINTS)} operating points",
        f"batched: {len(OP_POINTS) / batch_elapsed:.1f} cand/s "
        f"({batch_elapsed:.3f} s, {batch_engine.batch_groups} group, "
        f"{batch_engine.batch_members} members)",
        "energies: "
        + ", ".join(
            f"{point}={score.energy:.0f}"
            for score, point in zip(batch_scores, OP_POINTS)
        ),
    ]
    save_report("dse_batched_operating_point_axis", "\n".join(lines))
