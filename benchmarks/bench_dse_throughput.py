"""DSE engine throughput: serial vs parallel vs warm-cache evaluation.

The exploration engine's whole value is candidates/second on the
macro-model fast path.  This benchmark scores the same seeded random
sample of the tuned Reed-Solomon space three ways — serial, with a
worker pool, and from a warm on-disk result cache — asserts the three
agree on the ranking, and writes the measured throughput table.
"""

import pytest

from repro.dse import RandomStrategy, ResultCache, explore, get_space

BUDGET = 12


@pytest.fixture(scope="module")
def space():
    return get_space("reed_solomon_tuned")


def _run(ctx, space, jobs=1, cache=None):
    strategy = RandomStrategy(budget=BUDGET, seed=3)
    return explore(ctx.model, space, strategy, jobs=jobs, cache=cache)


@pytest.fixture(scope="module")
def serial_report(ctx, space):
    return _run(ctx, space)


def test_dse_serial(benchmark, ctx, space, serial_report):
    report = benchmark.pedantic(_run, args=(ctx, space), rounds=1, iterations=1)
    assert report.ok and len(report.scores) == BUDGET


def test_dse_parallel(benchmark, ctx, space, serial_report):
    report = benchmark.pedantic(
        _run, args=(ctx, space), kwargs={"jobs": 4}, rounds=1, iterations=1
    )
    assert report.ok and len(report.scores) == BUDGET
    # parallelism must never change the answer
    serial_keys = [s.key for s in serial_report.ranked()]
    assert [s.key for s in report.ranked()] == serial_keys


def test_dse_warm_cache(benchmark, ctx, space, serial_report, tmp_path, save_report):
    cache_dir = tmp_path / "dse-cache"
    cold = _run(ctx, space, cache=ResultCache(cache_dir))
    assert cold.cache_misses == BUDGET

    warm = benchmark.pedantic(
        _run,
        args=(ctx, space),
        kwargs={"cache": ResultCache(cache_dir)},
        rounds=1,
        iterations=1,
    )
    assert warm.cache_hits == BUDGET and warm.evaluated == 0
    assert [s.key for s in warm.ranked()] == [s.key for s in serial_report.ranked()]

    parallel = _run(ctx, space, jobs=4)
    rows = [
        ("serial (jobs 1)", serial_report),
        ("parallel (jobs 4)", parallel),
        ("warm cache", warm),
    ]
    header = f"{'mode':<20}{'cand/s':>10}{'elapsed s':>12}{'evaluated':>11}{'hits':>6}"
    lines = [f"space reed_solomon_tuned, {BUDGET} candidates per run", header,
             "-" * len(header)]
    for label, report in rows:
        lines.append(
            f"{label:<20}{report.candidates_per_second:>10.1f}"
            f"{report.elapsed_seconds:>12.3f}{report.evaluated:>11}"
            f"{report.cache_hits:>6}"
        )
    save_report("dse_throughput", "\n".join(lines))
