"""Ablation studies for the design choices DESIGN.md calls out.

1. **Hybrid vs instruction-only** — the paper's core hypothesis: without
   the structural domain, custom-hardware energy is unexplained and
   unseen-application error grows.
2. **Bit-width complexity law** — replacing C(w) with raw instance
   counting degrades accuracy for custom-hardware-heavy applications.
3. **Ground-truth data dependence** — freezing switching activity makes
   the reference expressible by the template and the fit collapses,
   locating the headline error in the class-level abstraction.

Each ablation re-runs the full characterization flow, so the benchmarked
operation is the complete fit-and-evaluate loop.
"""

from repro.analysis import (
    run_ablation_bitwidth,
    run_ablation_ground_truth,
    run_ablation_hybrid,
)


def test_ablation_hybrid_template(benchmark, ctx, save_report):
    result = benchmark.pedantic(run_ablation_hybrid, args=(ctx,), rounds=1, iterations=1)
    save_report("ablation_hybrid", result.report())
    # instruction-level-only must be clearly worse on unseen apps
    assert result.variant_mean_error > result.baseline_mean_error
    assert result.variant_max_error > result.baseline_max_error


def test_ablation_bitwidth_law(benchmark, ctx, save_report):
    result = benchmark.pedantic(run_ablation_bitwidth, args=(ctx,), rounds=1, iterations=1)
    save_report("ablation_bitwidth", result.report())
    # Both variants must stay accurate; on these applications (whose custom
    # datapaths are close to the 32-bit reference width) the weighting makes
    # little difference — the effect grows with narrow/wide width diversity,
    # which the integration suite exercises at the unit level instead.
    assert result.baseline_mean_error < 8.0
    assert result.variant_mean_error < 12.0


def test_ablation_ground_truth_data_dependence(benchmark, ctx, save_report):
    result = benchmark.pedantic(
        run_ablation_ground_truth, args=(ctx,), rounds=1, iterations=1
    )
    save_report("ablation_ground_truth", result.report())
    # frozen-activity ground truth is essentially template-expressible
    assert result.variant_mean_error < result.baseline_mean_error
    assert result.variant_mean_error < 1.0
