"""Paper Table II: macro-model vs reference on ten unseen applications.

Regenerates the accuracy table (paper: max 8.5%, mean 3.3%) and
benchmarks the fast estimation path — ISS without tracing + variable
extraction + one dot product — on a representative application.
"""

from repro.analysis import run_table2


def test_table2_application_accuracy(benchmark, ctx, save_report):
    case = next(c for c in ctx.applications if c.name == "accumulate")
    config, program = case.build()
    model = ctx.model

    estimate = benchmark(model.estimate, config, program)
    assert estimate.energy > 0

    table2 = run_table2(ctx)
    save_report("table2_application_accuracy", table2.report())

    # shape criteria from DESIGN.md (paper: mean 3.3%, max 8.5%)
    assert table2.mean_abs_percent_error < 8.0
    assert table2.max_abs_percent_error < 15.0
    assert len(table2.study.rows) == 10
