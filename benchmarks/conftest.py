"""Shared fixtures for the benchmark harness.

The characterized model is built once per session; every benchmark writes
its regenerated table/figure to ``benchmarks/results/`` so the artifacts
survive the run (EXPERIMENTS.md references them).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def ctx():
    """The fully characterized experiment context (paper steps 1-8)."""
    from repro.analysis import default_context

    return default_context()


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def save_report(results_dir):
    """Write a named report artifact and echo it to the terminal."""

    def save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n=== {name} ===")
        print(text)

    return save
