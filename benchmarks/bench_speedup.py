"""The paper's Sec. V-B speedup claim: macro-model vs RTL reference.

Benchmarks the two estimation paths on the same application so
pytest-benchmark reports them side by side, and writes the measured
per-application speedup table.  The paper reports three orders of
magnitude against gate-level ModelSim + WattWatcher; our reference is a
block-level Python estimator, so the measured ratio is smaller but the
direction and growth-with-program-size are preserved (see EXPERIMENTS.md).
"""

import pytest

from repro.analysis import run_speedup
from repro.rtl import RtlEnergyEstimator, generate_netlist


@pytest.fixture(scope="module")
def drawline_case(ctx):
    case = next(c for c in ctx.applications if c.name == "drawline")
    return case.build()


def test_speedup_macro_path(benchmark, ctx, drawline_case):
    """The fast path: untraced ISS + variable extraction + dot product."""
    config, program = drawline_case
    estimate = benchmark(ctx.model.estimate, config, program)
    assert estimate.energy > 0


def test_speedup_reference_path(benchmark, ctx, drawline_case):
    """The slow path: traced ISS + structural RTL energy walk."""
    config, program = drawline_case
    estimator = RtlEnergyEstimator(generate_netlist(config))
    report, _ = benchmark(estimator.estimate_program, program)
    assert report.total > 0


def test_speedup_table(benchmark, ctx, save_report):
    result = benchmark.pedantic(run_speedup, args=(ctx,), rounds=1, iterations=1)
    save_report("speedup", result.report())
    assert result.mean_speedup > 1.5
    for row in result.study.rows:
        assert row.speedup > 1.0, f"{row.application}: no speedup"
