"""Throughput and quality of the automatic instruction-discovery flow.

Measures, per workload (FIR, Reed-Solomon):

* **mining rate** — candidate subgraphs enumerated per second from the
  profiled dataflow report (call-site unrolling + block mining);
* **legalization rate** — candidates lifted to TIE specs and checked
  against the port/latency/area budgets per second;
* **evaluation rate** — survivors rewritten, differentially verified and
  scored with the macro-model per second;
* **quality** — EDP of the best *discovered* extension against the best
  (and the corresponding) *hand-written* extension for the workload.

Run as a script to (re)generate ``BENCH_DISCOVER.json`` at the repo root:

    PYTHONPATH=src python benchmarks/bench_discovery.py
"""

import argparse
import json
import pathlib
import time

from repro.discover import (
    DiscoveryOptions,
    MinerOptions,
    discover_case,
    legalize_candidates,
    mine_call_sites,
    mine_report,
    software_case,
)
from repro.discover.trace import DataflowTraceObserver
from repro.xtcore import ReferenceSimulator

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_DISCOVER.json"

#: hand-written extension cases per workload, corresponding one first
HANDWRITTEN = {
    "fir": ("fir_mac", "fir_packed"),
    "reed_solomon": ("rs_gfmac", "rs_gfmul", "rs_dual"),
}


def _handwritten_cases(workload):
    if workload == "fir":
        from repro.programs.fir import fir_choices

        choices = fir_choices()
    else:
        from repro.programs.reed_solomon import reed_solomon_choices

        choices = reed_solomon_choices()
    wanted = HANDWRITTEN[workload]
    by_name = {case.name: case for case in choices}
    return [(name, by_name[name]) for name in wanted]


def measure_workload(workload: str, model, options=None) -> dict:
    """Time each discovery phase and score the result against hand-written."""
    options = options or DiscoveryOptions()
    case = software_case(workload)
    config, program = case.build()

    t0 = time.perf_counter()
    observer = DataflowTraceObserver()
    ReferenceSimulator(
        config, program, observers=[observer], max_instructions=case.max_instructions
    ).run()
    profile_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    miner = MinerOptions(
        max_nodes=options.max_nodes,
        max_ports=options.max_ports,
        min_coverage=options.min_coverage,
    )
    candidates = mine_call_sites(observer.report, max_ports=options.max_ports)
    candidates += mine_report(observer.report, miner)
    mine_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    legal, rejected = legalize_candidates(candidates, options.legalize)
    legalize_s = time.perf_counter() - t0

    # the full pipeline re-runs the cheap phases; the dominant cost it adds
    # is rewrite + differential verification + macro-model estimation
    t0 = time.perf_counter()
    report = discover_case(case, model, options, workload=workload)
    evaluate_s = max(1e-9, (time.perf_counter() - t0) - profile_s - mine_s - legalize_s)

    handwritten = {}
    for name, hand_case in _handwritten_cases(workload):
        hand_config, hand_program = hand_case.build()
        estimate = model.estimate(hand_config, hand_program)
        handwritten[name] = float(estimate.energy) * int(estimate.cycles)

    best = report.best
    best_hand = min(handwritten.values())
    corresponding = handwritten[HANDWRITTEN[workload][0]]
    return {
        "workload": workload,
        "mined": len(candidates),
        "legalized": len(legal),
        "rejected": len(rejected),
        "evaluated": len(report.evaluated),
        "rates_per_s": {
            "mined": round(len(candidates) / max(mine_s, 1e-9), 1),
            "legalized": round(len(legal) / max(legalize_s, 1e-9), 1),
            "evaluated": round(len(report.evaluated) / evaluate_s, 2),
        },
        "seconds": {
            "profile": round(profile_s, 3),
            "mine": round(mine_s, 3),
            "legalize": round(legalize_s, 3),
            "evaluate": round(evaluate_s, 3),
        },
        "edp": {
            "baseline": report.baseline_edp,
            "best_discovered": best.edp if best else None,
            "best_discovered_mnemonic": best.mnemonic if best else None,
            "handwritten": handwritten,
            "vs_best_handwritten": (
                round(best.edp / best_hand, 3) if best else None
            ),
            "vs_corresponding_handwritten": (
                round(best.edp / corresponding, 3) if best else None
            ),
        },
    }


def run_suite(model, workloads=("fir", "reed_solomon")) -> dict:
    return {
        "benchmark": "instruction_discovery",
        "model": "characterized default context",
        "workloads": [measure_workload(w, model) for w in workloads],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=DEFAULT_OUTPUT,
        help="where to write the JSON payload (default: repo-root BENCH_DISCOVER.json)",
    )
    args = parser.parse_args(argv)

    from repro.analysis import default_context

    payload = run_suite(default_context().model)
    args.output.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    for row in payload["workloads"]:
        rates = row["rates_per_s"]
        edp = row["edp"]
        print(
            f"{row['workload']:<14} mined {row['mined']:>3} ({rates['mined']}/s)  "
            f"legalized {row['legalized']:>3} ({rates['legalized']}/s)  "
            f"evaluated {row['evaluated']:>2} ({rates['evaluated']}/s)  "
            f"best {edp['best_discovered_mnemonic']} = "
            f"{edp['vs_best_handwritten']}x best hand-written"
        )
    print(f"-> {args.output}")
    return 0


# -- pytest-benchmark harness ------------------------------------------------


def test_discovery_throughput(benchmark, ctx, save_report):
    payload = benchmark.pedantic(
        measure_workload, args=("fir", ctx.model), rounds=1, iterations=1
    )
    save_report("discovery_fir", json.dumps(payload, indent=2))
    assert payload["legalized"] >= 5
    assert payload["evaluated"] >= 1
    assert all(rate > 0 for rate in payload["rates_per_s"].values())


def test_discovered_matches_handwritten(benchmark, ctx, save_report):
    payload = benchmark.pedantic(run_suite, args=(ctx.model,), rounds=1, iterations=1)
    lines = []
    for row in payload["workloads"]:
        edp = row["edp"]
        lines.append(
            f"{row['workload']}: best discovered {edp['best_discovered_mnemonic']} "
            f"EDP {edp['best_discovered']:.4g} = "
            f"{edp['vs_corresponding_handwritten']}x corresponding hand-written"
        )
        # the headline acceptance: within 20% of (or better than) the
        # corresponding hand-written extension
        assert edp["vs_corresponding_handwritten"] <= 1.20, row
    save_report("discovery_vs_handwritten", "\n".join(lines))


if __name__ == "__main__":
    raise SystemExit(main())
