"""Experiment-driver structure tests (reports, context plumbing).

The heavy numerical assertions live in tests/integration; these verify
the driver API itself using the shared session context.
"""

import pytest

from repro.analysis import (
    ExperimentContext,
    run_fig3,
    run_fig4,
    run_table1,
    run_table2,
)


@pytest.mark.slow
class TestContext:
    def test_context_shape(self, experiment_context):
        assert isinstance(experiment_context, ExperimentContext)
        assert experiment_context.method == "nnls"
        assert len(experiment_context.applications) == 10
        assert len(experiment_context.rs_choices) == 4
        assert experiment_context.model is experiment_context.characterization.model

    def test_default_context_cached(self, experiment_context):
        from repro.analysis import default_context

        assert default_context() is experiment_context


@pytest.mark.slow
class TestReports:
    def test_table1_report(self, experiment_context):
        text = run_table1(experiment_context).report()
        assert "Energy coefficients" in text
        assert "coverage audit" in text

    def test_fig3_report(self, experiment_context):
        text = run_fig3(experiment_context).report()
        assert "fit err %" in text

    def test_table2_report_columns(self, experiment_context):
        text = run_table2(experiment_context).report()
        for column in ("application", "estimate", "reference", "err %", "speedup"):
            assert column in text
        assert "mean |err|" in text

    def test_fig4_report(self, experiment_context):
        result = run_fig4(experiment_context)
        text = result.report()
        assert "rs_sw" in text and "rs_dual" in text
        assert "Spearman" in text
        assert len(result.rows) == 4


@pytest.mark.faults
class TestFaultTolerantContext:
    def test_build_context_survives_injected_faults(self, tmp_path):
        """The paper-reproduction flow completes despite per-sample faults:
        failing programs become failure records, the model fits from the
        survivors, and progress is checkpointed."""
        from repro.analysis import build_context
        from repro.programs import characterization_suite
        from repro.testing import FaultPlan

        suite = characterization_suite(include_variants=False)[:8]
        plan = FaultPlan().fail_simulation(suite[0].name).nan_energy(suite[1].name)
        checkpoint = str(tmp_path / "ckpt.json")
        ctx = build_context(suite=suite, fault_plan=plan, checkpoint_path=checkpoint)

        report = ctx.run_report
        assert report is not None
        assert {f.name for f in report.failures} == {suite[0].name, suite[1].name}
        assert len(ctx.characterization.samples) == 6
        assert ctx.model.coefficients.shape == (21,)
        assert (tmp_path / "ckpt.json").exists()

    def test_healthy_context_reports_clean_run(self, experiment_context):
        report = experiment_context.run_report
        assert report is not None
        assert report.ok
        assert report.failures == []
