"""Experiment-driver structure tests (reports, context plumbing).

The heavy numerical assertions live in tests/integration; these verify
the driver API itself using the shared session context.
"""

import pytest

from repro.analysis import (
    ExperimentContext,
    run_fig3,
    run_fig4,
    run_table1,
    run_table2,
)


@pytest.mark.slow
class TestContext:
    def test_context_shape(self, experiment_context):
        assert isinstance(experiment_context, ExperimentContext)
        assert experiment_context.method == "nnls"
        assert len(experiment_context.applications) == 10
        assert len(experiment_context.rs_choices) == 4
        assert experiment_context.model is experiment_context.characterization.model

    def test_default_context_cached(self, experiment_context):
        from repro.analysis import default_context

        assert default_context() is experiment_context


@pytest.mark.slow
class TestReports:
    def test_table1_report(self, experiment_context):
        text = run_table1(experiment_context).report()
        assert "Energy coefficients" in text
        assert "coverage audit" in text

    def test_fig3_report(self, experiment_context):
        text = run_fig3(experiment_context).report()
        assert "fit err %" in text

    def test_table2_report_columns(self, experiment_context):
        text = run_table2(experiment_context).report()
        for column in ("application", "estimate", "reference", "err %", "speedup"):
            assert column in text
        assert "mean |err|" in text

    def test_fig4_report(self, experiment_context):
        result = run_fig4(experiment_context)
        text = result.report()
        assert "rs_sw" in text and "rs_dual" in text
        assert "Spearman" in text
        assert len(result.rows) == 4
