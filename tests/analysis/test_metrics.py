"""Metric helper tests."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    max_absolute_percent_error,
    mean_absolute_percent_error,
    percent_error,
    percent_errors,
    rms_percent_error,
    spearman_rho,
)

FLOATS = st.floats(min_value=0.1, max_value=1e6, allow_nan=False)


class TestPercentErrors:
    def test_signed(self):
        assert percent_error(110, 100) == pytest.approx(10.0)
        assert percent_error(90, 100) == pytest.approx(-10.0)
        assert percent_error(0, 0) == 0.0
        assert percent_error(5, 0) == math.inf

    def test_aggregates(self):
        estimates = [110, 90, 100]
        references = [100, 100, 100]
        assert mean_absolute_percent_error(estimates, references) == pytest.approx(20 / 3)
        assert max_absolute_percent_error(estimates, references) == pytest.approx(10.0)
        assert rms_percent_error(estimates, references) == pytest.approx(
            math.sqrt((100 + 100 + 0) / 3)
        )

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            percent_errors([1.0], [1.0, 2.0])

    @given(st.lists(FLOATS, min_size=1, max_size=20))
    def test_perfect_estimates_are_zero(self, values):
        assert mean_absolute_percent_error(values, values) == 0.0
        assert rms_percent_error(values, values) == 0.0


class TestSpearman:
    def test_identical_ranking(self):
        assert spearman_rho([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_reversed_ranking(self):
        assert spearman_rho([1, 2, 3, 4], [40, 30, 20, 10]) == pytest.approx(-1.0)

    def test_monotone_transform_invariant(self):
        a = [3.0, 1.0, 4.0, 1.5, 5.0]
        b = [x**3 + 2 for x in a]
        assert spearman_rho(a, b) == pytest.approx(1.0)

    def test_ties_handled(self):
        rho = spearman_rho([1, 1, 2], [1, 1, 2])
        assert rho == pytest.approx(1.0)

    def test_constant_series(self):
        assert spearman_rho([1, 1, 1], [1, 1, 1]) == 1.0
        assert spearman_rho([1, 1, 1], [1, 2, 3]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            spearman_rho([1], [1])
        with pytest.raises(ValueError):
            spearman_rho([1, 2], [1, 2, 3])

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=2, max_size=30))
    def test_bounded(self, values):
        other = list(reversed(values))
        rho = spearman_rho(values, other)
        assert -1.0 - 1e-9 <= rho <= 1.0 + 1e-9
