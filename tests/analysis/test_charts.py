"""ASCII chart rendering tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import bar_chart, profile_chart, sparkline

FLOATS = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestBarChart:
    def test_signed_layout(self):
        chart = bar_chart(["a", "b"], [5.0, -5.0], width=20)
        lines = chart.splitlines()
        a_line = next(line for line in lines if line.startswith("a"))
        b_line = next(line for line in lines if line.startswith("b"))
        a_axis = a_line.index("|")
        assert "#" in a_line[a_axis:]
        assert "#" not in a_line[:a_axis]
        b_axis = b_line.index("|")
        assert "#" in b_line[:b_axis]
        assert "#" not in b_line[b_axis + 1 :]

    def test_values_annotated(self):
        chart = bar_chart(["prog"], [3.14])
        assert "+3.14%" in chart

    def test_title(self):
        chart = bar_chart(["x"], [1.0], title="my title")
        assert chart.splitlines()[0] == "my title"

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart([], [])
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0], width=4)

    def test_all_zero_values(self):
        chart = bar_chart(["a", "b"], [0.0, 0.0])
        assert "#" not in chart

    @given(st.lists(FLOATS, min_size=1, max_size=30))
    def test_never_crashes_and_one_line_per_value(self, values):
        labels = [f"v{i}" for i in range(len(values))]
        chart = bar_chart(labels, values)
        body = [line for line in chart.splitlines() if line.startswith("v")]
        assert len(body) == len(values)


class TestProfileChart:
    def test_two_series(self):
        chart = profile_chart(
            ["p1", "p2"], {"macro": [100.0, 10.0], "ref": [90.0, 11.0]}
        )
        assert "macro" in chart and "ref" in chart
        assert chart.count("#") > 4

    def test_log_scaling_compresses(self):
        linear = profile_chart(["a", "b"], {"s": [1000.0, 1.0]}, log=False)
        logged = profile_chart(["a", "b"], {"s": [1000.0, 1.0]}, log=True)

        def cells(chart, row):
            return [line.count("#") for line in chart.splitlines() if not line.startswith(" ") and line][row]

        # the small value is invisible linearly, visible logarithmically
        assert cells(logged, 1) >= 1
        assert cells(linear, 0) > cells(linear, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            profile_chart([], {})
        with pytest.raises(ValueError):
            profile_chart(["a"], {"s": [1.0, 2.0]})
        with pytest.raises(ValueError):
            profile_chart(["a"], {"s": [0.0]})

    def test_values_annotated_with_separators(self):
        chart = profile_chart(["a"], {"s": [1234567.0]})
        assert "1,234,567" in chart


class TestSparkline:
    def test_shape(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert len(line) == 8
        assert line[0] == " " and line[-1] == "#"

    def test_constant(self):
        assert sparkline([5, 5, 5]) == "   "

    def test_downsampling(self):
        line = sparkline(list(range(100)), width=10)
        assert len(line) == 10

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])

    @given(st.lists(FLOATS, min_size=1, max_size=200))
    def test_never_crashes(self, values):
        line = sparkline(values, width=40)
        assert len(line) <= 40
