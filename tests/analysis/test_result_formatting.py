"""Report-object formatting tests with synthetic data (no heavy compute)."""

import numpy as np
import pytest

from repro.analysis import Fig4Result, Fig4Row, SuiteSizeResult, SuiteSizeRow
from repro.analysis.experiments import AblationResult, SuiteQualityResult
from repro.core import CoverageReport


class TestFig4Rows:
    def test_percent_error(self):
        row = Fig4Row("x", macro_energy=110.0, reference_energy=100.0, cycles=10)
        assert row.percent_error == pytest.approx(10.0)
        zero = Fig4Row("z", macro_energy=5.0, reference_energy=0.0, cycles=1)
        assert zero.percent_error == 0.0

    def test_result_aggregates_and_report(self):
        rows = [
            Fig4Row("a", 100.0, 98.0, 10),
            Fig4Row("b", 50.0, 55.0, 5),
            Fig4Row("c", 10.0, 9.5, 2),
        ]
        result = Fig4Result(rows=rows)
        assert result.rank_correlation == pytest.approx(1.0)
        assert result.max_abs_percent_error == pytest.approx(100.0 * 5 / 55)
        report = result.report()
        assert "Spearman" in report
        assert "a" in report and "c" in report
        assert "#" in report  # the profile chart

    def test_rank_inversion_detected(self):
        rows = [Fig4Row("a", 10.0, 100.0, 1), Fig4Row("b", 100.0, 10.0, 1)]
        assert Fig4Result(rows=rows).rank_correlation == pytest.approx(-1.0)


class TestSuiteSizeResult:
    def test_report_columns(self):
        result = SuiteSizeResult(
            rows=[
                SuiteSizeRow(size=25, rank=21, fit_rms=0.5, app_mean_error=5.8, app_max_error=18.3),
                SuiteSizeRow(size=56, rank=21, fit_rms=1.3, app_mean_error=3.2, app_max_error=6.5),
            ]
        )
        report = result.report()
        assert "suite size" in report
        assert "25" in report and "56" in report
        assert "18.30" in report


class TestAblationResult:
    def test_report(self):
        result = AblationResult(
            name="demo",
            baseline_label="baseline",
            variant_label="variant",
            baseline_mean_error=3.0,
            variant_mean_error=15.0,
            baseline_max_error=8.0,
            variant_max_error=57.0,
        )
        report = result.report()
        assert "ablation demo" in report
        assert "3.00%" in report and "57.00%" in report


class TestSuiteQualityResult:
    def _coverage(self):
        return CoverageReport(
            template_name="hybrid-21",
            n_samples=3,
            coverage={"N_a": 1.0},
            unexercised=[],
            low_coverage=[],
            rank=21,
            n_variables=21,
            condition_number=100.0,
            warnings=[],
        )

    def test_aggregates_and_worst(self):
        result = SuiteQualityResult(
            names=["p1", "p2", "p3"],
            loo_percent_errors=np.array([1.0, -9.0, 3.0]),
            coverage=self._coverage(),
        )
        assert result.loo_max_abs == pytest.approx(9.0)
        assert result.loo_rms == pytest.approx(np.sqrt((1 + 81 + 9) / 3))
        assert result.worst(1) == [("p2", -9.0)]
        report = result.report()
        assert "LOOCV RMS" in report
        assert "p2" in report
