"""Assembler tests: directives, labels, expressions, pseudo-instructions,
error reporting, and section/uncached-region handling."""

import pytest

from repro.asm import (
    AsmError,
    DATA_ORIGIN,
    TEXT_ORIGIN,
    UTEXT_ORIGIN,
    assemble,
)
from repro.isa import BASE_ISA, MachineState


def functional_run(program, max_steps=100_000):
    """Minimal functional executor for assembled programs (no timing)."""
    state = MachineState()
    for addr, blob in program.data:
        state.memory.write_bytes(addr, blob)
    state.pc = program.entry
    steps = 0
    while not state.halted and steps < max_steps:
        ins = program.instruction_at(state.pc)
        next_pc = BASE_ISA.lookup(ins.mnemonic).semantics(state, ins)
        state.pc = next_pc if next_pc is not None else state.pc + 4
        steps += 1
    assert state.halted, "program did not halt"
    return state


class TestBasics:
    def test_empty_text_rejected(self):
        with pytest.raises(AsmError, match="no instructions"):
            assemble("    .data\nx: .word 1\n")

    def test_simple_program(self):
        program = assemble("main:\n    movi a2, 42\n    halt\n")
        assert len(program) == 2
        assert program.entry == TEXT_ORIGIN
        ins = program.instruction_at(TEXT_ORIGIN)
        assert ins.mnemonic == "movi" and ins.rd == 2 and ins.imm == 42

    def test_comment_styles(self):
        program = assemble(
            "main: ; semicolon\n"
            "    movi a2, 1 # hash\n"
            "    movi a3, 2 // slashes\n"
            "    halt\n"
        )
        assert len(program) == 3

    def test_register_aliases(self):
        program = assemble("main:\n    mov sp, ra\n    halt\n")
        ins = program.instruction_at(TEXT_ORIGIN)
        assert ins.rd == 1 and ins.rs == 0

    def test_label_on_own_line(self):
        program = assemble("main:\nlater:\n    j later\n    halt\n")
        assert program.symbol("later") == program.symbol("main")

    def test_duplicate_label_rejected(self):
        with pytest.raises(AsmError, match="already defined"):
            assemble("x:\n    nop\nx:\n    halt\n")

    def test_unknown_instruction(self):
        with pytest.raises(AsmError, match="unknown instruction"):
            assemble("main:\n    frobnicate a1, a2\n    halt\n")

    def test_wrong_operand_count(self):
        with pytest.raises(AsmError, match="expected 3 operand"):
            assemble("main:\n    add a1, a2\n    halt\n")

    def test_bad_register(self):
        with pytest.raises(AsmError, match="bad register"):
            assemble("main:\n    mov a1, a64\n    halt\n")

    def test_line_numbers_in_errors(self):
        with pytest.raises(AsmError, match=":3:"):
            assemble("main:\n    nop\n    bogus\n    halt\n")


class TestSectionsAndData:
    def test_default_origins(self):
        program = assemble(
            "    .data\nvalue: .word 7\n    .text\nmain:\n    halt\n"
        )
        assert program.symbol("value") == DATA_ORIGIN
        assert program.entry == TEXT_ORIGIN

    def test_explicit_section_origin(self):
        program = assemble("    .text 0x2000\nmain:\n    halt\n")
        assert program.entry == 0x2000

    def test_org_directive(self):
        program = assemble("main:\n    nop\n    .org 0x100\nthere:\n    halt\n")
        assert program.symbol("there") == 0x100

    def test_align(self):
        program = assemble(
            "    .data\na: .byte 1\n    .align 4\nb: .word 2\n    .text\nmain:\n    halt\n"
        )
        assert program.symbol("b") % 4 == 0
        assert program.symbol("b") == DATA_ORIGIN + 4

    def test_word_half_byte(self):
        program = assemble(
            "    .data\n"
            "w: .word 0x11223344, -1\n"
            "h: .half 0xBEEF\n"
            "b: .byte 1, 2, 3\n"
            "    .text\nmain:\n    halt\n"
        )
        data = dict(program.data)
        assert data[program.symbol("w")] == b"\x44\x33\x22\x11\xff\xff\xff\xff"
        assert data[program.symbol("h")] == b"\xef\xbe"
        assert data[program.symbol("b")] == b"\x01\x02\x03"

    def test_space_with_fill(self):
        program = assemble(
            "    .data\nbuf: .space 4, 0xAB\n    .text\nmain:\n    halt\n"
        )
        assert dict(program.data)[program.symbol("buf")] == b"\xab" * 4

    def test_ascii_and_asciiz(self):
        program = assemble(
            '    .data\ns1: .ascii "hi"\ns2: .asciiz "yo"\n    .text\nmain:\n    halt\n'
        )
        data = dict(program.data)
        assert data[program.symbol("s1")] == b"hi"
        assert data[program.symbol("s2")] == b"yo\x00"

    def test_word_with_label_reference(self):
        program = assemble(
            "    .data\nptr: .word target+4\n    .text\nmain:\ntarget:\n    halt\n"
        )
        stored = int.from_bytes(dict(program.data)[program.symbol("ptr")], "little")
        assert stored == program.symbol("target") + 4

    def test_undefined_symbol(self):
        with pytest.raises(AsmError, match="undefined symbol"):
            assemble("main:\n    j nowhere\n    halt\n")

    def test_instructions_rejected_in_data(self):
        with pytest.raises(AsmError, match="not allowed in the data section"):
            assemble("    .data\n    nop\n")

    def test_unknown_directive(self):
        with pytest.raises(AsmError, match="unknown directive"):
            assemble("    .bogus 3\nmain:\n    halt\n")


class TestUncachedRegions:
    def test_utext_marks_range(self):
        program = assemble(
            "main:\n    j there\n    .utext\nthere:\n    nop\n    j back\n    .text\nback:\n    halt\n"
        )
        assert program.is_uncached(UTEXT_ORIGIN)
        assert not program.is_uncached(TEXT_ORIGIN)
        ranges = program.uncached_ranges
        assert len(ranges) == 1
        assert ranges[0].size == 8  # two instructions

    def test_adjacent_spans_coalesce(self):
        program = assemble(
            "main:\n    j u\n    .utext\nu:\n    nop\n    nop\n    nop\n    j b\n    .text\nb:\n    halt\n"
        )
        assert len(program.uncached_ranges) == 1


class TestEntryPoint:
    def test_main_symbol_default(self):
        program = assemble("start:\n    nop\nmain:\n    halt\n")
        assert program.entry == program.symbol("main")

    def test_entry_directive(self):
        program = assemble("    .entry go\nfirst:\n    nop\ngo:\n    halt\n")
        assert program.entry == program.symbol("go")

    def test_lowest_address_fallback(self):
        program = assemble("first:\n    halt\n")
        assert program.entry == program.symbol("first")

    def test_undefined_entry(self):
        with pytest.raises(AsmError, match="undefined"):
            assemble("    .entry nowhere\nmain:\n    halt\n")


class TestPseudoInstructions:
    def test_la_two_instructions(self):
        program = assemble(
            "    .data 0x12345\nsym: .word 0\n    .text\nmain:\n    la a2, sym\n    halt\n"
        )
        assert len(program) == 3  # movhi + ori + halt
        state = functional_run(program)
        assert state.get(2) == 0x12345

    def test_la_with_offset(self):
        program = assemble(
            "    .data\narr: .word 0, 0, 0\n    .text\nmain:\n    la a2, arr+8\n    halt\n"
        )
        state = functional_run(program)
        assert state.get(2) == program.symbol("arr") + 8

    def test_li_small_uses_movi(self):
        program = assemble("main:\n    li a2, -7\n    halt\n")
        assert len(program) == 2
        assert functional_run(program).get(2) == 0xFFFFFFF9

    def test_li_large(self):
        program = assemble("main:\n    li a2, 0x12345678\n    halt\n")
        assert len(program) == 3
        assert functional_run(program).get(2) == 0x12345678

    def test_li_out_of_range(self):
        with pytest.raises(AsmError, match="30-bit"):
            assemble("main:\n    li a2, 0x7FFFFFFF\n    halt\n")

    def test_li_rejects_labels(self):
        with pytest.raises(AsmError, match="constant"):
            assemble("main:\n    li a2, main\n    halt\n")

    def test_mv_alias(self):
        program = assemble("main:\n    mv a2, a3\n    halt\n")
        assert program.instruction_at(program.entry).mnemonic == "mov"

    @pytest.mark.parametrize(
        "pseudo,real", [("bgt", "blt"), ("ble", "bge"), ("bgtu", "bltu"), ("bleu", "bgeu")]
    )
    def test_swapped_branches(self, pseudo, real):
        program = assemble(f"main:\n    {pseudo} a2, a3, main\n    halt\n")
        ins = program.instruction_at(program.entry)
        assert ins.mnemonic == real
        assert (ins.rs, ins.rt) == (3, 2)  # operands swapped


class TestExpressions:
    def test_hex_binary_char(self):
        program = assemble(
            "main:\n    movi a2, 0x10\n    movi a3, 0b101\n    movi a4, 'A'\n    halt\n"
        )
        state = functional_run(program)
        assert state.get(2) == 16
        assert state.get(3) == 5
        assert state.get(4) == 65

    def test_label_arithmetic(self):
        program = assemble(
            "main:\n    movi a2, stop-main\nstop:\n    halt\n"
        )
        assert functional_run(program).get(2) == 4

    def test_branch_range_check(self):
        lines = ["main:"] + ["    nop"] * 3000 + ["    beq a1, a2, main", "    halt"]
        with pytest.raises(AsmError, match="exceeds 12-bit range"):
            assemble("\n".join(lines))


class TestProgramIntrospection:
    def test_text_ranges_and_histogram(self):
        program = assemble("main:\n    nop\n    nop\n    .org 0x100\n    halt\n")
        ranges = program.text_ranges()
        assert [(r.start, r.end) for r in ranges] == [(0, 8), (0x100, 0x104)]
        assert program.static_mnemonic_histogram() == {"nop": 2, "halt": 1}

    def test_encode_image_blobs(self):
        program = assemble("    .data\nv: .word 9\n    .text\nmain:\n    halt\n")
        blobs = program.encode_image(BASE_ISA)
        addresses = [addr for addr, _ in blobs]
        assert program.entry in addresses
        assert program.symbol("v") in addresses

    def test_misaligned_instruction_rejected(self):
        from repro.asm import Program
        from repro.isa import Instruction

        with pytest.raises(ValueError, match="misaligned"):
            Program("bad", {2: Instruction("nop", addr=2)}, [], {}, entry=2)


class TestEquDirective:
    def test_constant_usable_in_immediates(self):
        program = assemble(
            "    .equ COUNT, 12\nmain:\n    movi a2, COUNT\n    movi a3, COUNT+3\n    halt\n"
        )
        state = functional_run(program)
        assert state.get(2) == 12
        assert state.get(3) == 15

    def test_constant_in_data(self):
        program = assemble(
            "    .equ SIZE, 8\n    .data\nbuf: .space SIZE*1\n    .text\nmain:\n    halt\n"
        ) if False else assemble(
            "    .equ MAGIC, 0x2A\n    .data\nv: .word MAGIC\n    .text\nmain:\n    halt\n"
        )
        assert dict(program.data)[program.symbol("v")][0] == 0x2A

    def test_constant_from_constant(self):
        program = assemble(
            "    .equ BASE, 100\n    .equ LIMIT, BASE+28\nmain:\n    movi a2, LIMIT\n    halt\n"
        )
        assert functional_run(program).get(2) == 128

    def test_redefinition_rejected(self):
        with pytest.raises(AsmError, match="already defined"):
            assemble("    .equ X, 1\n    .equ X, 2\nmain:\n    halt\n")

    def test_label_conflict_rejected(self):
        with pytest.raises(AsmError, match="already defined"):
            assemble("main:\n    halt\n    .equ main, 5\n")

    def test_forward_reference_rejected(self):
        with pytest.raises(AsmError, match="undefined symbol"):
            assemble("    .equ X, LATER\nmain:\nLATER:\n    halt\n")

    def test_bad_arity(self):
        with pytest.raises(AsmError, match="requires"):
            assemble("    .equ ONLYNAME\nmain:\n    halt\n")
