"""Disassembler round-trip tests."""

from repro.asm import assemble, disassemble_program, format_instruction
from repro.isa import BASE_ISA, Instruction


SOURCE = """
    .data
arr: .word 1, 2, 3
    .text
main:
    la a2, arr
    movi a3, 3
    movi a4, 0
loop:
    l32i a5, a2, 0
    add a4, a4, a5
    addi a2, a2, 4
    addi a3, a3, -1
    bnez a3, loop
    halt
"""


class TestFormatInstruction:
    def test_r3(self):
        text = format_instruction(Instruction("add", rd=1, rs=2, rt=3), BASE_ISA)
        assert text == "add a1, a2, a3"

    def test_memory(self):
        text = format_instruction(Instruction("l32i", rt=4, rs=5, imm=-8), BASE_ISA)
        assert text == "l32i a4, a5, -8"

    def test_branch_with_label(self):
        ins = Instruction("bnez", rs=2, imm=0x40, addr=0x80)
        text = format_instruction(ins, BASE_ISA, labels={0x40: "loop"})
        assert text == "bnez a2, loop"

    def test_branch_without_label_uses_hex(self):
        ins = Instruction("j", imm=0x40, addr=0x80)
        assert format_instruction(ins, BASE_ISA) == "j 0x40"

    def test_bi_format_immediate(self):
        ins = Instruction("beqi", rs=2, rt=-5, imm=0x10, addr=0x0)
        text = format_instruction(ins, BASE_ISA, labels={0x10: "t"})
        assert text == "beqi a2, -5, t"

    def test_no_operands(self):
        assert format_instruction(Instruction("nop"), BASE_ISA) == "nop"


class TestRoundTrip:
    def test_disassemble_reassemble_identical_stream(self):
        original = assemble(SOURCE, "roundtrip")
        text = disassemble_program(original, BASE_ISA)
        # the disassembly drops data sections/symbols; compare instruction
        # streams only (reassembly keeps the same addresses via .text/.org)
        rebuilt = assemble(text, "rebuilt")
        assert set(rebuilt.instructions) == set(original.instructions)
        for addr, ins in original.instructions.items():
            other = rebuilt.instructions[addr]
            assert (ins.mnemonic, ins.rd, ins.rs, ins.rt, ins.imm) == (
                other.mnemonic, other.rd, other.rs, other.rt, other.imm,
            )

    def test_gap_emits_org(self):
        program = assemble("main:\n    nop\n    .org 0x40\n    halt\n")
        text = disassemble_program(program, BASE_ISA)
        assert ".org 0x40" in text
