"""XPF binary object format tests: round trips, errors, cross-ISA checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import ImageError, assemble, read_image, write_image
from repro.isa import BASE_ISA
from repro.programs.extensions import mul16_spec
from repro.xtcore import Simulator, build_processor

SOURCE = """
    .equ LEN, 6
    .data
arr: .word 4, 8, 15, 16, 23, 42
out: .word 0
    .text
main:
    la a2, arr
    movi a3, LEN
    movi a4, 0
loop:
    l32i a5, a2, 0
    add a4, a4, a5
    addi a2, a2, 4
    addi a3, a3, -1
    bnez a3, loop
    la a2, out
    s32i a4, a2, 0
    j finish
    .utext
ucode:
    nop
    j finish
    .text
finish:
    halt
"""


@pytest.fixture(scope="module")
def program():
    return assemble(SOURCE, "imgtest")


class TestRoundTrip:
    def test_program_identical_after_roundtrip(self, program):
        image = write_image(program, BASE_ISA)
        restored = read_image(image, BASE_ISA, name="imgtest")
        assert set(restored.instructions) == set(program.instructions)
        for addr, ins in program.instructions.items():
            other = restored.instructions[addr]
            assert (ins.mnemonic, ins.rd, ins.rs, ins.rt, ins.imm) == (
                other.mnemonic, other.rd, other.rs, other.rt, other.imm,
            )
        assert sorted(restored.data) == sorted(program.data)
        assert restored.symbols == program.symbols
        assert restored.entry == program.entry
        assert restored.uncached_ranges == program.uncached_ranges

    def test_restored_program_simulates_identically(self, program):
        config = build_processor("img")
        restored = read_image(write_image(program, config.isa), config.isa)
        original_run = Simulator(config, program).run()
        restored_run = Simulator(config, restored).run()
        assert restored_run.word("out") == original_run.word("out") == 108
        assert restored_run.stats.total_cycles == original_run.stats.total_cycles
        assert restored_run.stats.uncached_fetches == original_run.stats.uncached_fetches

    def test_custom_instructions_roundtrip(self):
        config = build_processor("img-ext", [mul16_spec()])
        program = assemble(
            "main:\n    movi a2, 6\n    movi a3, 7\n    mul16 a4, a2, a3\n    halt\n",
            "ext",
            isa=config.isa,
        )
        restored = read_image(write_image(program, config.isa), config.isa)
        result = Simulator(config, restored).run()
        assert result.state.get(4) == 42

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=40))
    def test_random_length_programs(self, count):
        body = "\n".join(f"    addi a2, a2, {i % 7}" for i in range(count))
        program = assemble(f"main:\n{body}\n    halt\n", "rand")
        restored = read_image(write_image(program, BASE_ISA), BASE_ISA)
        assert len(restored) == len(program)


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(ImageError, match="magic"):
            read_image(b"NOPE" + b"\x00" * 40, BASE_ISA)

    def test_truncated(self, program):
        image = write_image(program, BASE_ISA)
        with pytest.raises(ImageError, match="truncated"):
            read_image(image[: len(image) // 2], BASE_ISA)

    def test_wrong_isa_rejected(self):
        config = build_processor("img-ext2", [mul16_spec()])
        program = assemble(
            "main:\n    mul16 a4, a2, a3\n    halt\n", "ext", isa=config.isa
        )
        image = write_image(program, config.isa)
        with pytest.raises(ImageError, match="unknown to ISA"):
            read_image(image, BASE_ISA)
