"""The router's shard key: workload-content invariants."""

from __future__ import annotations

from repro.fleet import routing_key
from repro.serve.api import parse_estimate

SOURCE = """
    .text
main:
    movi a2, 3
    halt
"""


def make_request(**overrides):
    body = {
        "program": {"name": "prog", "source": SOURCE},
        "max_instructions": 10_000,
    }
    body.update(overrides)
    return parse_estimate(body)


class TestRoutingKey:
    def test_deterministic(self):
        assert routing_key(make_request()) == routing_key(make_request())

    def test_name_is_cosmetic(self):
        """Program names are excluded from the dedup key, so they must
        not split routing either — duplicates spelled with different
        names coalesce on one node."""
        a = make_request(program={"name": "alpha", "source": SOURCE})
        b = make_request(program={"name": "beta", "source": SOURCE})
        assert routing_key(a) == routing_key(b)

    def test_source_changes_key(self):
        other = SOURCE.replace("movi a2, 3", "movi a2, 4")
        a = make_request()
        b = make_request(program={"name": "prog", "source": other})
        assert routing_key(a) != routing_key(b)

    def test_budget_changes_key(self):
        assert routing_key(make_request(max_instructions=10_000)) != routing_key(
            make_request(max_instructions=20_000)
        )

    def test_extensions_change_key(self):
        a = make_request()
        b = make_request(
            program={"name": "prog", "source": SOURCE}, extensions=["mac16"]
        )
        assert routing_key(a) != routing_key(b)

    def test_benchmark_and_inline_forms_differ(self):
        inline = make_request()
        bench = parse_estimate({"benchmark": "rs_encode", "max_instructions": 10_000})
        assert routing_key(inline) != routing_key(bench)

    def test_benchmark_requests_route_by_name(self):
        a = parse_estimate({"benchmark": "rs_encode", "max_instructions": 10_000})
        b = parse_estimate({"benchmark": "rs_decode", "max_instructions": 10_000})
        assert routing_key(a) != routing_key(b)
        again = parse_estimate({"benchmark": "rs_encode", "max_instructions": 10_000})
        assert routing_key(a) == routing_key(again)

    def test_key_is_sha256_hex(self):
        key = routing_key(make_request())
        assert len(key) == 64
        int(key, 16)  # raises if not hex
