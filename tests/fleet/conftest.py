"""Fixtures for live fleet tests: real nodes + real router, one loop.

The fleet harness runs everything — N single-node
:class:`EstimationServer` instances and one :class:`FleetRouter` — on a
single background asyncio loop, on ephemeral ports, exactly like the
serve tests do for one node.  Tests then speak blocking ``http.client``
to the router (or directly to a node), which is what an external client
does.  Node "death" is a real transport stop: the port goes dark and
the router sees connection refused, the same observable as SIGKILL.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
from typing import cast

import numpy as np
import pytest

from repro.core import EnergyMacroModel, default_template
from repro.fleet import FleetRouter
from repro.serve import EstimationServer, EstimationService

TINY_TEMPLATE = """
    .data
out: .word 0
    .text
main:
    movi a2, {n}
    movi a3, 0
loop:
    add a3, a3, a2
    addi a2, a2, -1
    bnez a2, loop
    la a4, out
    s32i a3, a4, 0
    halt
"""


def estimate_body(name: str, n: int, max_instructions: int = 10_000) -> dict:
    return {
        "program": {"name": name, "source": TINY_TEMPLATE.format(n=n)},
        "max_instructions": max_instructions,
    }


@pytest.fixture(scope="session")
def fleet_model() -> EnergyMacroModel:
    template = default_template()
    return EnergyMacroModel(template, np.linspace(50, 5000, len(template)))


class FleetHarness:
    """N live nodes + one live router on a background asyncio loop."""

    def __init__(
        self,
        model: EnergyMacroModel,
        tmp_path,
        node_count: int = 3,
        router_options: dict | None = None,
        service_options: dict | None = None,
    ) -> None:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run_loop, daemon=True)
        self._thread.start()

        self.model = model
        self.tmp_path = tmp_path
        shared = str(tmp_path / "shared-cache")
        self.services: list[EstimationService] = []
        self.node_servers: list[EstimationServer] = []
        self.addresses: list[str] = []
        options = {"workers": 0, "batch_window": 0.005, **(service_options or {})}
        for index in range(node_count):
            service = EstimationService(
                model,
                cache_dir=str(tmp_path / f"node{index}-cache"),
                shared_cache_dir=shared,
                **options,
            )
            server = EstimationServer(service, port=0)
            self.run(server.start())
            self.services.append(service)
            self.node_servers.append(server)
            self.addresses.append(f"127.0.0.1:{server.port}")

        self.router = FleetRouter(
            self.addresses,
            **{"health_interval": 0.0, **(router_options or {})},
        )
        self.router_server = EstimationServer(
            cast(EstimationService, self.router), port=0
        )
        self.run(self.router_server.start())
        self.router_port = self.router_server.port
        self._stopped: set[int] = set()

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    def run(self, coro, timeout: float = 60):
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(timeout)

    def kill_node(self, index: int) -> str:
        """Stop one node's transport: its port goes dark (like SIGKILL)."""
        self.run(self.node_servers[index].stop())
        self._stopped.add(index)
        return self.addresses[index]

    def request(
        self, method: str, path: str, body: object = None, port: int | None = None
    ):
        """Blocking round trip; returns (status, decoded body, headers)."""
        conn = http.client.HTTPConnection(
            "127.0.0.1", port or self.router_port, timeout=60
        )
        try:
            payload = None if body is None else json.dumps(body)
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, payload, headers)
            response = conn.getresponse()
            raw = response.read()
            content_type = response.getheader("Content-Type", "")
            decoded = (
                json.loads(raw)
                if content_type.startswith("application/json")
                else raw.decode()
            )
            return response.status, decoded, dict(response.getheaders())
        finally:
            conn.close()

    def estimate(self, body: dict):
        return self.request("POST", "/estimate", body)

    def close(self) -> None:
        if self._loop.is_closed():
            return
        self.run(self.router_server.stop())
        for index, server in enumerate(self.node_servers):
            if index not in self._stopped:
                self.run(server.stop())

        async def reap() -> None:
            current = asyncio.current_task()
            for task in asyncio.all_tasks():
                if task is not current:
                    task.cancel()
            await asyncio.sleep(0)

        self.run(reap())
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._loop.close()


@pytest.fixture
def make_fleet(fleet_model, tmp_path):
    """Factory fixture: a live fleet with custom router/node options."""
    harnesses: list[FleetHarness] = []

    def factory(**kwargs) -> FleetHarness:
        harness = FleetHarness(fleet_model, tmp_path, **kwargs)
        harnesses.append(harness)
        return harness

    yield factory
    for harness in harnesses:
        harness.close()
