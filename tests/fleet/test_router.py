"""Live fleet end-to-end: routing, dedup, failover, re-admission."""

from __future__ import annotations

import time

from .conftest import estimate_body


class TestRouting:
    def test_requests_spread_across_nodes(self, make_fleet):
        fleet = make_fleet(node_count=3)
        answered_by = set()
        for i in range(10):
            status, body, headers = fleet.estimate(estimate_body(f"p{i}", 3 + i))
            assert status == 200, body
            answered_by.add(headers["X-Repro-Node"])
        assert len(answered_by) >= 2  # 10 sha-spread keys hit >1 node

    def test_same_workload_routes_to_one_node(self, make_fleet):
        fleet = make_fleet(node_count=3)
        nodes = set()
        dedups = []
        for name in ("alpha", "beta", "gamma"):
            status, body, headers = fleet.estimate(estimate_body(name, 7))
            assert status == 200, body
            nodes.add(headers["X-Repro-Node"])
            dedups.append(body["dedup"])
        assert len(nodes) == 1  # cosmetic names don't split routing
        assert dedups[0] == "fresh"
        assert set(dedups[1:]) <= {"memo", "coalesced", "disk"}

    def test_bad_request_rejected_at_the_edge(self, make_fleet):
        fleet = make_fleet(node_count=2)
        status, body, _ = fleet.request("POST", "/estimate", {"nonsense": True})
        assert status == 400
        # nothing was forwarded: both nodes still show zero requests
        _, metrics, _ = fleet.request("GET", "/metrics")
        assert metrics["fleet"]["counters"]["requests_total"] == 0
        assert metrics["router"]["counters"]["forwarded_total"] == 0

    def test_unknown_path_404(self, make_fleet):
        fleet = make_fleet(node_count=1)
        assert fleet.request("GET", "/nope")[0] == 404


class TestFleetMetrics:
    def test_cross_node_dedup_fleetwide(self, make_fleet):
        """M distinct workloads cost exactly M simulations no matter
        which node each request lands on."""
        fleet = make_fleet(node_count=3)
        distinct = 6
        for i in range(distinct):
            status, body, _ = fleet.estimate(estimate_body(f"uniq{i}", 3 + i))
            assert status == 200, body
        # resubmit every workload under different cosmetic names
        for i in range(distinct):
            status, body, _ = fleet.estimate(estimate_body(f"again{i}", 3 + i))
            assert status == 200, body
        _, metrics, _ = fleet.request("GET", "/metrics")
        assert metrics["fleet"]["simulation"]["runs_finished"] == distinct
        assert metrics["fleet"]["counters"]["duplicates_merged"] >= distinct
        assert metrics["fleet"]["nodes_reporting"] == 3

    def test_aggregate_sums_node_counters(self, make_fleet):
        fleet = make_fleet(node_count=2)
        for i in range(4):
            fleet.estimate(estimate_body(f"m{i}", 3 + i))
        _, metrics, _ = fleet.request("GET", "/metrics")
        per_node = sum(
            payload["counters"]["estimate_requests"]
            for payload in metrics["nodes"].values()
        )
        assert per_node == 4
        assert metrics["fleet"]["counters"]["estimate_requests"] == 4
        assert metrics["router"]["counters"]["estimate_requests"] == 4

    def test_prometheus_rendering(self, make_fleet):
        fleet = make_fleet(node_count=1)
        fleet.estimate(estimate_body("prom", 3))
        status, text, _ = fleet.request("GET", "/metrics?format=prom")
        assert status == 200
        assert "repro_fleet_router_forwarded_total 1" in text
        assert "repro_fleet_sim_runs_finished" in text

    def test_healthz_reports_ring_and_admission(self, make_fleet):
        fleet = make_fleet(node_count=2)
        status, body, _ = fleet.request("GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["fleet"]["nodes_routable"] == 2
        assert body["admission"]["soft_fraction"] == 0.7


class TestFailover:
    def test_dead_node_reroutes_and_answers_every_request(self, make_fleet):
        fleet = make_fleet(
            node_count=3, router_options={"node_failures": 1}
        )
        # warm every key once so the shared tier holds all results
        keys = [(f"w{i}", 3 + i) for i in range(8)]
        for name, n in keys:
            status, body, _ = fleet.estimate(estimate_body(name, n))
            assert status == 200, body
        victim = fleet.kill_node(0)
        # one health sweep detects the dark port (in production the
        # background poll loop does this every health_interval seconds)
        fleet.run(fleet.router.poll_health())
        for name, n in keys:
            status, body, headers = fleet.estimate(estimate_body(name, n))
            assert status == 200, body  # exactly one answer per request
            assert headers["X-Repro-Node"] != victim
        _, health, _ = fleet.request("GET", "/healthz")
        assert health["status"] == "degraded"
        assert victim in health["fleet"]["nodes_down"]

    def test_rerouted_keys_hit_the_shared_tier(self, make_fleet):
        """A key computed on a node that later dies is a shared-tier hit
        on its new owner: the kill costs zero re-simulation."""
        fleet = make_fleet(node_count=3, router_options={"node_failures": 1})
        for i in range(8):
            fleet.estimate(estimate_body(f"s{i}", 3 + i))
        _, before, _ = fleet.request("GET", "/metrics")
        runs_before = before["fleet"]["simulation"]["runs_finished"]
        assert runs_before == 8
        fleet.kill_node(0)
        for i in range(8):
            status, body, _ = fleet.estimate(estimate_body(f"s{i}", 3 + i))
            assert status == 200, body
        _, after, _ = fleet.request("GET", "/metrics")
        # the dead node's tally is gone from the aggregate, but the
        # survivors ran nothing new — every re-routed key came from a
        # cache tier (memo, local, or shared)
        assert after["fleet"]["simulation"]["runs_finished"] <= runs_before

    def test_cooled_down_node_is_readmitted_half_open(self, make_fleet):
        """PR 6's breaker semantics one level up: after the cooldown the
        node rejoins the ring and the next request is the probe."""
        fleet = make_fleet(
            node_count=2,
            router_options={"node_failures": 1, "node_cooldown": 0.3},
        )
        victim = fleet.kill_node(1)
        fleet.run(fleet.router.poll_health())  # detect the dark port
        assert victim in fleet.router.health.down_nodes
        for i in range(6):
            status, _, headers = fleet.estimate(estimate_body(f"r{i}", 3 + i))
            assert status == 200
            assert headers["X-Repro-Node"] != victim
        # node comes back on the SAME address as a fresh process would:
        # new service over the surviving on-disk caches, same port
        from repro.serve import EstimationServer, EstimationService

        host, _, port = victim.rpartition(":")
        reborn = EstimationService(
            fleet.model,
            workers=0,
            batch_window=0.005,
            cache_dir=str(fleet.tmp_path / "node1-cache"),
            shared_cache_dir=str(fleet.tmp_path / "shared-cache"),
        )
        fleet.services[1] = reborn
        revived = EstimationServer(reborn, host=host, port=int(port))
        fleet.run(revived.start())
        fleet.node_servers[1] = revived
        fleet._stopped.discard(1)
        time.sleep(0.4)  # let the cooldown elapse: the breaker reads half-open
        assert fleet.router.health.breaker_for(victim).state == "half-open"
        # the next sweep probes the half-open node; success re-admits it
        fleet.run(fleet.router.poll_health())
        assert victim not in fleet.router.health.down_nodes
        assert fleet.router.health.breaker_for(victim).state == "closed"
        # and routed traffic reaches it again
        answered_by = set()
        for i in range(12):
            status, _, headers = fleet.estimate(estimate_body(f"back{i}", 3 + i))
            assert status == 200
            answered_by.add(headers["X-Repro-Node"])
        assert victim in answered_by

    def test_whole_fleet_down_answers_503_with_retry_after(self, make_fleet):
        fleet = make_fleet(node_count=1, router_options={"node_failures": 1})
        fleet.kill_node(0)
        status, body, headers = fleet.estimate(estimate_body("doomed", 3))
        assert status == 503
        assert body["error"] in ("fleet_unreachable", "fleet_down")
        assert int(headers["Retry-After"]) >= 1
        # a second attempt hits the fleet_down path (empty ring)
        status, body, _ = fleet.estimate(estimate_body("doomed", 3))
        assert status == 503


class TestAdmissionAtTheRouter:
    def test_saturated_node_sheds_with_computed_retry_after(self, make_fleet):
        fleet = make_fleet(node_count=1)
        # poison the gossip table: the single node claims a full queue
        node = fleet.addresses[0]
        fleet.router.admission.observe_depth(node, depth=64, limit=64)
        status, body, headers = fleet.estimate(estimate_body("shed", 3))
        assert status == 429
        assert body["error"] == "fleet_overloaded"
        assert int(headers["Retry-After"]) >= 1
        # fresh gossip clears the saturation and traffic flows again
        fleet.router.admission.observe_depth(node, depth=0, limit=64)
        status, _, _ = fleet.estimate(estimate_body("shed", 3))
        assert status == 200

    def test_gossip_headers_flow_back_through_the_router(self, make_fleet):
        fleet = make_fleet(node_count=1)
        status, _, headers = fleet.estimate(estimate_body("gossip", 3))
        assert status == 200
        # the node's queue posture reached the router's table
        snap = fleet.router.admission.snapshot()
        assert fleet.addresses[0] in snap["nodes"]
