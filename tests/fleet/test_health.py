"""Node health: per-node breakers driving ring membership."""

from __future__ import annotations

from repro.fleet import FleetHealthMonitor, HashRing


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def make_monitor(nodes=("a:1", "b:2", "c:3"), threshold=2, cooldown=5.0):
    clock = FakeClock()
    ring = HashRing(nodes)
    monitor = FleetHealthMonitor(
        ring, nodes, failure_threshold=threshold, cooldown=cooldown, clock=clock
    )
    return monitor, ring, clock


class TestFailureDetection:
    def test_fresh_nodes_are_routable(self):
        monitor, ring, _ = make_monitor()
        assert all(monitor.routable(n) for n in monitor.nodes)
        assert len(ring) == 3

    def test_single_failure_below_threshold_keeps_membership(self):
        monitor, ring, _ = make_monitor(threshold=2)
        assert monitor.record_failure("a:1") is False
        assert "a:1" in ring
        assert monitor.routable("a:1")

    def test_threshold_failures_remove_the_node(self):
        monitor, ring, _ = make_monitor(threshold=2)
        monitor.record_failure("a:1")
        assert monitor.record_failure("a:1") is True
        assert "a:1" not in ring
        assert not monitor.routable("a:1")
        assert monitor.down_nodes == ("a:1",)
        assert monitor.nodes_removed_total == 1
        # the other nodes keep their arcs
        assert "b:2" in ring and "c:3" in ring

    def test_unknown_node_failure_is_ignored(self):
        monitor, _, _ = make_monitor()
        assert monitor.record_failure("ghost:9") is False


class TestRecovery:
    def test_success_restores_a_down_node(self):
        monitor, ring, _ = make_monitor(threshold=1)
        monitor.record_failure("b:2")
        assert "b:2" not in ring
        assert monitor.record_success("b:2") is True
        assert "b:2" in ring
        assert monitor.nodes_restored_total == 1
        assert monitor.down_nodes == ()

    def test_cooldown_readmits_half_open_via_refresh(self):
        """An open node rejoins the ring after the cooldown even with no
        traffic: refresh() sees the half-open state and restores its
        arcs, so the next request whose key lands there is the probe."""
        monitor, ring, clock = make_monitor(threshold=1, cooldown=5.0)
        monitor.record_failure("c:3")
        assert "c:3" not in ring
        clock.advance(4.9)
        monitor.refresh()
        assert "c:3" not in ring  # still cooling down
        clock.advance(0.2)
        monitor.refresh()
        assert "c:3" in ring  # half-open: routable as a probe
        assert monitor.breaker_for("c:3").state == "half-open"

    def test_failed_probe_reopens_for_a_fresh_cooldown(self):
        monitor, ring, clock = make_monitor(threshold=1, cooldown=5.0)
        monitor.record_failure("c:3")
        clock.advance(5.1)
        monitor.refresh()
        assert "c:3" in ring
        # the probe request fails: straight back out of the ring
        monitor.record_failure("c:3")
        assert "c:3" not in ring
        clock.advance(4.0)
        monitor.refresh()
        assert "c:3" not in ring  # the cooldown restarted at the probe

    def test_successful_probe_closes_the_breaker(self):
        monitor, ring, clock = make_monitor(threshold=1, cooldown=5.0)
        monitor.record_failure("c:3")
        clock.advance(5.1)
        monitor.refresh()
        monitor.record_success("c:3")
        assert monitor.breaker_for("c:3").state == "closed"
        assert "c:3" in ring


class TestSnapshot:
    def test_snapshot_shape(self):
        monitor, _, _ = make_monitor(threshold=1)
        monitor.record_failure("a:1")
        snap = monitor.snapshot()
        assert snap["nodes"]["a:1"]["state"] == "open"
        assert snap["nodes"]["b:2"]["state"] == "closed"
        assert snap["ring"]["nodes"] == ["b:2", "c:3"]
        assert snap["nodes_removed_total"] == 1
