"""Consistent-hash ring: balance bounds, minimal remapping, determinism."""

from __future__ import annotations

import collections
import hashlib

import pytest

from repro.fleet import HashRing


def sample_keys(count: int) -> list[str]:
    """Content-address-shaped keys (sha256 hex), deterministic."""
    return [
        hashlib.sha256(f"request-{i}".encode()).hexdigest() for i in range(count)
    ]


class TestMembership:
    def test_add_and_remove_are_idempotent(self):
        ring = HashRing()
        assert ring.add("a:1") is True
        assert ring.add("a:1") is False
        assert len(ring) == 1
        assert ring.remove("a:1") is True
        assert ring.remove("a:1") is False
        assert len(ring) == 0

    def test_contains_and_nodes(self):
        ring = HashRing(["b:2", "a:1"])
        assert "a:1" in ring and "b:2" in ring and "c:3" not in ring
        assert ring.nodes == ("a:1", "b:2")

    def test_empty_node_name_rejected(self):
        with pytest.raises(ValueError):
            HashRing().add("")

    def test_vnodes_must_be_positive(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)

    def test_snapshot_geometry(self):
        ring = HashRing(["a:1", "b:2"], vnodes=64)
        snap = ring.snapshot()
        assert snap["nodes"] == ["a:1", "b:2"]
        assert snap["vnodes"] == 64
        assert snap["points"] == 128


class TestLookup:
    def test_empty_ring_routes_nowhere(self):
        ring = HashRing()
        assert ring.node_for("anything") is None
        assert list(ring.preference("anything")) == []

    def test_single_node_owns_everything(self):
        ring = HashRing(["solo:1"])
        assert all(ring.node_for(k) == "solo:1" for k in sample_keys(50))

    def test_deterministic_across_instances(self):
        keys = sample_keys(500)
        a = HashRing(["n1:1", "n2:2", "n3:3"])
        # same membership, different construction order: identical routing
        b = HashRing()
        for node in ("n3:3", "n1:1", "n2:2"):
            b.add(node)
        assert a.assignments(keys) == b.assignments(keys)

    def test_preference_starts_at_owner_and_covers_all_nodes(self):
        ring = HashRing(["n1:1", "n2:2", "n3:3"])
        for key in sample_keys(20):
            order = list(ring.preference(key))
            assert order[0] == ring.node_for(key)
            assert sorted(order) == ["n1:1", "n2:2", "n3:3"]
            assert len(set(order)) == len(order)

    def test_preference_fallback_matches_post_removal_owner(self):
        """The re-route target IS the rebalanced owner: retrying against
        the next distinct node clockwise lands exactly where the key
        would live had the dead node never existed."""
        ring = HashRing(["n1:1", "n2:2", "n3:3"])
        for key in sample_keys(100):
            order = list(ring.preference(key))
            shrunk = HashRing(["n1:1", "n2:2", "n3:3"])
            shrunk.remove(order[0])
            assert shrunk.node_for(key) == order[1]


class TestBalance:
    def test_load_spread_within_bounds(self):
        """With 128 vnodes every node's share stays near fair (1/N):
        the ~1/sqrt(vnodes) concentration keeps each node within
        [0.5, 1.6]x of fair share at realistic key counts."""
        keys = sample_keys(6000)
        for n_nodes in (2, 3, 5, 8):
            ring = HashRing([f"node{i}:80" for i in range(n_nodes)])
            counts = collections.Counter(ring.assignments(keys).values())
            fair = len(keys) / n_nodes
            assert len(counts) == n_nodes  # nobody starved entirely
            for node, count in counts.items():
                assert 0.5 * fair <= count <= 1.6 * fair, (
                    f"{node} owns {count} of {len(keys)} keys "
                    f"(fair share {fair:.0f}) with {n_nodes} nodes"
                )

    def test_more_vnodes_flatten_the_spread(self):
        keys = sample_keys(4000)

        def spread(vnodes: int) -> float:
            ring = HashRing([f"n{i}:1" for i in range(4)], vnodes=vnodes)
            counts = collections.Counter(ring.assignments(keys).values())
            return max(counts.values()) / min(counts.values())

        assert spread(256) < spread(4)


class TestMinimalRemap:
    def test_removal_moves_only_the_dead_nodes_keys(self):
        keys = sample_keys(5000)
        ring = HashRing([f"n{i}:1" for i in range(5)])
        before = ring.assignments(keys)
        victim = "n2:1"
        owned = sum(1 for node in before.values() if node == victim)
        ring.remove(victim)
        after = ring.assignments(keys)
        moved = sum(1 for k in keys if before[k] != after[k])
        # exactly the victim's keys move; every other assignment is stable
        assert moved == owned
        assert all(
            after[k] == before[k] for k in keys if before[k] != victim
        )

    def test_addition_steals_about_one_nth(self):
        keys = sample_keys(5000)
        nodes = [f"n{i}:1" for i in range(4)]
        ring = HashRing(nodes)
        before = ring.assignments(keys)
        ring.add("n4:1")
        after = ring.assignments(keys)
        moved = sum(1 for k in keys if before[k] != after[k])
        fair = len(keys) / 5  # K/N with the new node counted
        # bounded remap: about K/N keys move (generous 1.6x slack for
        # vnode placement variance), and all of them move TO the joiner
        assert moved <= 1.6 * fair
        assert moved >= 0.5 * fair
        assert all(after[k] == "n4:1" for k in keys if before[k] != after[k])

    def test_leave_then_rejoin_restores_assignments(self):
        keys = sample_keys(1000)
        ring = HashRing(["n1:1", "n2:2", "n3:3"])
        before = ring.assignments(keys)
        ring.remove("n2:2")
        ring.add("n2:2")
        assert ring.assignments(keys) == before
