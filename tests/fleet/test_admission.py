"""Fleet admission: gossip intake, weighted shedding, computed backoff."""

from __future__ import annotations

import pytest

from repro.fleet import AdmissionController
from repro.fleet.admission import QUEUE_DEPTH_HEADER, QUEUE_LIMIT_HEADER


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def make_controller(**kwargs):
    clock = FakeClock()
    kwargs.setdefault("clock", clock)
    return AdmissionController(**kwargs), clock


class TestGossipIntake:
    def test_headers_populate_the_load_table(self):
        ctl, _ = make_controller()
        ctl.observe_gossip(
            "n:1", {QUEUE_DEPTH_HEADER: "12", QUEUE_LIMIT_HEADER: "64"}
        )
        snap = ctl.snapshot()
        assert snap["nodes"]["n:1"]["depth"] == 12
        assert snap["nodes"]["n:1"]["limit"] == 64

    def test_missing_or_garbled_headers_are_ignored(self):
        ctl, _ = make_controller()
        ctl.observe_gossip("n:1", {})
        ctl.observe_gossip(
            "n:1", {QUEUE_DEPTH_HEADER: "many", QUEUE_LIMIT_HEADER: "64"}
        )
        assert ctl.snapshot()["nodes"] == {}

    def test_healthz_poll_feeds_the_same_table(self):
        ctl, _ = make_controller()
        ctl.observe_depth("n:1", depth=3, limit=10)
        assert ctl.snapshot()["nodes"]["n:1"]["fraction"] == 0.3

    def test_forget_drops_a_node(self):
        ctl, _ = make_controller()
        ctl.observe_depth("n:1", 3, 10)
        ctl.forget("n:1")
        assert ctl.snapshot()["nodes"] == {}


class TestWeightedShedding:
    def test_unknown_node_admits(self):
        ctl, _ = make_controller()
        assert ctl.admit("n:1") is True
        assert ctl.shed_fraction("n:1") == 0.0

    def test_below_soft_threshold_admits_everything(self):
        ctl, _ = make_controller(soft_fraction=0.7)
        ctl.observe_depth("n:1", depth=44, limit=64)  # ~0.69 full
        assert all(ctl.admit("n:1") for _ in range(100))

    def test_full_queue_sheds_everything(self):
        ctl, _ = make_controller()
        ctl.observe_depth("n:1", depth=64, limit=64)
        assert not any(ctl.admit("n:1") for _ in range(20))
        assert ctl.shed_fraction("n:1") == 1.0

    def test_soft_band_sheds_the_exact_ramp_fraction(self):
        """Halfway between soft threshold and full → shed exactly half,
        deterministically (error diffusion, not a random draw)."""
        ctl, _ = make_controller(soft_fraction=0.7)
        ctl.observe_depth("n:1", depth=54, limit=64)  # ~0.844 → ramp ~0.479
        decisions = [ctl.admit("n:1") for _ in range(1000)]
        shed = decisions.count(False)
        expected = ctl.shed_fraction("n:1") * 1000
        assert shed == pytest.approx(expected, abs=1)

    def test_error_diffusion_is_reproducible(self):
        def run():
            ctl, _ = make_controller(soft_fraction=0.5)
            ctl.observe_depth("n:1", depth=8, limit=10)
            return [ctl.admit("n:1") for _ in range(50)]

        assert run() == run()

    def test_stale_gossip_stops_shedding(self):
        """A node that went quiet while saturated must not be shed
        forever on old news."""
        ctl, clock = make_controller(stale_after=10.0)
        ctl.observe_depth("n:1", depth=64, limit=64)
        assert ctl.admit("n:1") is False
        clock.advance(11.0)
        assert ctl.admit("n:1") is True

    def test_soft_fraction_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(soft_fraction=0.0)
        with pytest.raises(ValueError):
            AdmissionController(soft_fraction=1.5)


class TestRetryAfter:
    def test_cold_fleet_quotes_cold_start(self):
        ctl, _ = make_controller()
        ctl.observe_depth("n:1", depth=10, limit=64)
        assert ctl.retry_after() == 2  # no drains observed yet

    def test_scales_with_depth_over_drain_rate(self):
        ctl, clock = make_controller(drain_tau=10.0)
        # establish ~2 completions/s
        for _ in range(200):
            clock.advance(0.5)
            ctl.record_completion()
        ctl.observe_depth("n:1", depth=10, limit=64)
        hint = ctl.retry_after()
        assert 4 <= hint <= 7  # ~ceil(10 / 2.0) with estimator tolerance

    def test_counters_track_decisions(self):
        ctl, _ = make_controller()
        ctl.observe_depth("n:1", depth=64, limit=64)
        ctl.admit("n:1")
        ctl.forget("n:1")
        ctl.admit("n:1")
        snap = ctl.snapshot()
        assert snap["shed_total"] == 1
        assert snap["admitted_total"] == 1
