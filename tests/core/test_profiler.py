"""Energy profiler tests: exact decomposition, region derivation, reports."""

import numpy as np
import pytest

from repro.asm import assemble
from repro.core import (
    CodeRegion,
    EnergyMacroModel,
    EnergyProfiler,
    default_template,
    regions_from_symbols,
    stats_from_records,
)
from repro.xtcore import Simulator, build_processor

TWO_PHASE = """
    .data
arr: .word 5, 9, 2, 7, 1, 8, 3, 6
out: .word 0
    .text
main:
    call sum_phase
    call scale_phase
    la a2, out
    s32i a6, a2, 0
    halt
sum_phase:
    la a2, arr
    movi a3, 8
    movi a6, 0
sp_loop:
    l32i a4, a2, 0
    add a6, a6, a4
    addi a2, a2, 4
    addi a3, a3, -1
    bnez a3, sp_loop
    ret
scale_phase:
    movi a3, 30
sc_loop:
    slli a6, a6, 1
    srli a6, a6, 1
    addi a3, a3, -1
    bnez a3, sc_loop
    ret
"""


@pytest.fixture(scope="module")
def model():
    template = default_template()
    # synthetic but physical coefficients: the decomposition property is
    # purely structural and holds for any coefficient vector
    return EnergyMacroModel(template, np.linspace(100, 2100, len(template)))


@pytest.fixture(scope="module")
def setup(model):
    config = build_processor("profiler-test")
    program = assemble(TWO_PHASE, "two_phase", isa=config.isa)
    return config, program


class TestRegionDerivation:
    def test_labels_become_regions(self, setup):
        _, program = setup
        regions = regions_from_symbols(program)
        names = [region.name for region in regions]
        assert "main" in names
        assert "sum_phase" in names
        assert "scale_phase" in names

    def test_regions_partition_text(self, setup):
        _, program = setup
        regions = regions_from_symbols(program)
        for addr in program.instructions:
            assert sum(addr in region for region in regions) == 1

    def test_program_without_labels(self):
        config = build_processor("nolabel")
        program = assemble("main:\n    halt\n", "nl", isa=config.isa)
        # strip the symbol to simulate an anonymous blob
        program.symbols.clear()
        regions = regions_from_symbols(program)
        assert len(regions) == 1
        assert regions[0].name == "<text>"


class TestStatsReconstruction:
    def test_partition_sums_to_whole(self, setup):
        config, program = setup
        result = Simulator(config, program, collect_trace=True).run()
        whole = stats_from_records(result.trace, config)
        # must exactly equal the live stats the simulator collected
        live = result.stats
        assert whole.class_cycles == live.class_cycles
        assert whole.class_counts == live.class_counts
        assert whole.icache_misses == live.icache_misses
        assert whole.dcache_misses == live.dcache_misses
        assert whole.uncached_fetches == live.uncached_fetches
        assert whole.interlocks == live.interlocks
        assert whole.custom_gpr_cycles == live.custom_gpr_cycles
        assert whole.base_bus_cycles == live.base_bus_cycles
        assert whole.total_cycles == live.total_cycles
        assert whole.total_instructions == live.total_instructions
        assert whole.system_cycles == live.system_cycles
        assert whole.mnemonic_counts == live.mnemonic_counts

    def test_reconstruction_with_custom_instructions(self):
        from repro.programs.extensions import mac16_spec, rdmac_spec, wrmac_spec

        config = build_processor("prof-ext", [mac16_spec(), rdmac_spec(), wrmac_spec()])
        program = assemble(
            "main:\n    movi a2, 20\nl:\n    mac16 a2\n    addi a2, a2, -1\n    bnez a2, l\n    rdmac a3\n    halt\n",
            "mac-prof",
            isa=config.isa,
        )
        result = Simulator(config, program, collect_trace=True).run()
        rebuilt = stats_from_records(result.trace, config)
        assert rebuilt.custom_counts == result.stats.custom_counts
        assert rebuilt.custom_cycles == result.stats.custom_cycles
        assert rebuilt.custom_gpr_cycles == result.stats.custom_gpr_cycles


class TestProfiling:
    def test_regions_sum_to_program_estimate(self, model, setup):
        config, program = setup
        report = EnergyProfiler(model).profile(config, program)
        whole = model.estimate(config, program)
        assert report.total_energy == pytest.approx(whole.energy, rel=1e-9)
        assert sum(r.energy for r in report.regions) == pytest.approx(whole.energy)

    def test_hot_region_identified(self, model, setup):
        config, program = setup
        report = EnergyProfiler(model).profile(config, program)
        hottest = report.sorted_by_energy()[0]
        # the two loops dominate; main's straight-line code does not
        assert hottest.name in ("sum_phase", "sc_loop", "sp_loop", "scale_phase")
        by_name = {r.name: r for r in report.regions}
        assert by_name["main"].energy < report.total_energy / 2

    def test_custom_regions(self, model, setup):
        config, program = setup
        split = program.symbol("sum_phase")
        end = max(program.instructions) + 4
        regions = [
            CodeRegion("setup+epilogue", 0, split),
            CodeRegion("phases", split, end),
        ]
        report = EnergyProfiler(model).profile(config, program, regions=regions)
        assert {r.name for r in report.regions} == {"setup+epilogue", "phases"}
        whole = model.estimate(config, program)
        assert report.total_energy == pytest.approx(whole.energy)

    def test_unmapped_records_bucketed(self, model, setup):
        config, program = setup
        # deliberately leave the epilogue out of the region map
        regions = [CodeRegion("main-only", 0, program.symbol("sum_phase"))]
        report = EnergyProfiler(model).profile(config, program, regions=regions)
        names = {r.name for r in report.regions}
        assert "<unmapped>" in names
        whole = model.estimate(config, program)
        assert report.total_energy == pytest.approx(whole.energy)

    def test_table_output(self, model, setup):
        config, program = setup
        report = EnergyProfiler(model).profile(config, program)
        text = report.table()
        assert "energy profile" in text
        assert "sum_phase" in text
        assert "total" in text
        top1 = report.table(top=1)
        assert top1.count("\n") < text.count("\n")


class TestPartitionInvariance:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=200), min_size=0, max_size=6, unique=True))
    def test_any_partition_sums_to_whole(self, cuts):
        # hypothesis methods can't take fixtures; rebuild cheap locals
        template = default_template()
        local_model = EnergyMacroModel(template, np.linspace(100, 2100, len(template)))
        config = build_processor("prof-part")
        program = assemble(TWO_PHASE, "two_phase", isa=config.isa)

        text_addrs = sorted(program.instructions)
        end = text_addrs[-1] + 4
        # random cut points inside the text range -> arbitrary partition
        points = sorted({text_addrs[0]} | {text_addrs[0] + 4 * c for c in cuts if text_addrs[0] + 4 * c < end})
        points.append(end)
        regions = [
            CodeRegion(f"part{i}", points[i], points[i + 1])
            for i in range(len(points) - 1)
        ]
        report = EnergyProfiler(local_model).profile(config, program, regions=regions)
        whole = local_model.estimate(config, program)
        assert abs(report.total_energy - whole.energy) < 1e-6 * max(1.0, whole.energy)
