"""Variable extraction + dynamic resource-usage analysis tests."""

import pytest

from repro.asm import assemble
from repro.core import (
    analyze_resource_usage,
    default_template,
    extract_variables,
    instruction_level_template,
    unweighted_template,
    variables_as_dict,
)
from repro.hwlib import SPURIOUS_ACTIVATION_WEIGHT, ComponentCategory
from repro.tie import TieSpec
from repro.xtcore import build_processor, simulate


def _mul16():
    spec = TieSpec("xmul", fmt="R3")
    a = spec.source("rs", width=16)
    b = spec.source("rt", width=16)
    spec.result(spec.tie_mult(a, b))
    return spec


@pytest.fixture(scope="module")
def extended_run():
    config = build_processor("extract-test", [_mul16()])
    program = assemble(
        """
main:
    movi a2, 20
    movi a3, 3
loop:
    xmul a4, a3, a2
    add a3, a3, a4
    addi a2, a2, -1
    bnez a2, loop
    halt
""",
        "extract-test",
        isa=config.isa,
    )
    return config, simulate(config, program)


class TestInstructionVariables:
    def test_class_cycles_extracted(self, extended_run):
        config, result = extended_run
        values = variables_as_dict(result.stats, config)
        from repro.isa import InstructionClass

        assert values["N_a"] == result.stats.class_cycles[InstructionClass.ARITH]
        assert values["N_bt"] == result.stats.class_cycles[InstructionClass.BRANCH_TAKEN]
        assert values["N_cm"] == result.stats.icache_misses
        assert values["N_sd"] == result.stats.custom_gpr_cycles

    def test_vector_matches_dict(self, extended_run):
        config, result = extended_run
        template = default_template()
        vector = extract_variables(result.stats, config, template)
        values = variables_as_dict(result.stats, config, template)
        assert vector.tolist() == [values[key] for key in template.keys()]

    def test_instruction_only_template_has_no_structural(self, extended_run):
        config, result = extended_run
        vector = extract_variables(result.stats, config, instruction_level_template())
        assert vector.shape == (11,)


class TestResourceUsage:
    def test_architected_activation_scales_with_executions(self, extended_run):
        config, result = extended_run
        usage = analyze_resource_usage(result.stats, config)
        executions = result.stats.custom_counts["xmul"]
        impl = config.extension_for("xmul")
        expected = impl.per_exec_activity[ComponentCategory.TIE_MULT] * executions
        architected = usage.weighted_activity[ComponentCategory.TIE_MULT]
        spurious = SPURIOUS_ACTIVATION_WEIGHT * result.stats.base_bus_cycles * sum(
            impl.bus_tap_complexity.values()
        )
        assert architected == pytest.approx(expected + spurious)

    def test_spurious_only_config(self):
        # extended core, base-only program: structural activity is purely
        # spurious (operand-bus taps)
        config = build_processor("spurious-test", [_mul16()])
        program = assemble(
            "main:\n    movi a2, 10\nl:\n    add a3, a3, a2\n    addi a2, a2, -1\n    bnez a2, l\n    halt\n",
            "base-only",
            isa=config.isa,
        )
        result = simulate(config, program)
        usage = analyze_resource_usage(result.stats, config)
        assert usage.instance_active_cycles == {}
        assert sum(usage.instance_spurious_cycles.values()) > 0
        assert usage.weighted_activity[ComponentCategory.TIE_MULT] == pytest.approx(
            SPURIOUS_ACTIVATION_WEIGHT * result.stats.base_bus_cycles * 1.0
        )

    def test_base_processor_has_zero_usage(self, tiny_loop_program):
        config = build_processor("plain")
        result = simulate(config, tiny_loop_program)
        usage = analyze_resource_usage(result.stats, config)
        assert usage.weighted_activity == {}
        assert usage.vector() == [0.0] * 10

    def test_unweighted_vector_differs_for_narrow_hardware(self):
        # an 8x8 multiplier has C = 0.25, so complexity weighting matters
        spec = TieSpec("nmul", fmt="R3")
        a = spec.source("rs", width=8)
        b = spec.source("rt", width=8)
        spec.result(spec.tie_mult(a, b))
        config = build_processor("narrow-extract", [spec])
        program = assemble(
            "main:\n    movi a2, 5\nl:\n    nmul a3, a2, a2\n    addi a2, a2, -1\n    bnez a2, l\n    halt\n",
            "narrow",
            isa=config.isa,
        )
        result = simulate(config, program)
        usage = analyze_resource_usage(result.stats, config)
        weighted = usage.weighted_activity[ComponentCategory.TIE_MULT]
        raw = usage.raw_activity[ComponentCategory.TIE_MULT]
        assert weighted == pytest.approx(raw * 0.25)

    def test_unweighted_template_uses_raw(self, extended_run):
        config, result = extended_run
        usage = analyze_resource_usage(result.stats, config)
        vector = extract_variables(result.stats, config, unweighted_template(), usage)
        template = unweighted_template()
        idx = template.index_of("S_tie_mult")
        assert vector[idx] == pytest.approx(
            usage.raw_activity[ComponentCategory.TIE_MULT]
        )
