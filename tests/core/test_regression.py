"""Regression machinery tests: OLS (paper Eq. 5), NNLS, ridge, LOOCV."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    RegressionError,
    column_coverage,
    fit_least_squares,
    fit_nnls,
    fit_ridge,
    leave_one_out_errors,
)


def _well_posed_problem(rng, n_samples=40, n_vars=5, noise=0.0, nonneg=False):
    design = rng.uniform(1.0, 100.0, size=(n_samples, n_vars))
    true = rng.uniform(0.5, 20.0, size=n_vars)
    if nonneg:
        true = np.abs(true)
    energies = design @ true + rng.normal(0, noise, n_samples)
    return design, energies, true


class TestOls:
    def test_exact_recovery(self):
        rng = np.random.default_rng(1)
        design, energies, true = _well_posed_problem(rng)
        result = fit_least_squares(design, energies)
        assert np.allclose(result.coefficients, true)
        assert result.rms_percent_error < 1e-9
        assert result.r_squared == pytest.approx(1.0)
        assert not result.used_pseudo_inverse_fallback

    def test_noisy_recovery(self):
        rng = np.random.default_rng(2)
        design, energies, true = _well_posed_problem(rng, n_samples=400, noise=1.0)
        result = fit_least_squares(design, energies)
        assert np.allclose(result.coefficients, true, rtol=0.05)

    def test_rank_deficient_falls_back_to_pinv(self):
        design = np.array([[1.0, 2.0], [2.0, 4.0], [3.0, 6.0]])  # rank 1
        energies = np.array([5.0, 10.0, 15.0])
        result = fit_least_squares(design, energies)
        assert result.used_pseudo_inverse_fallback
        assert np.allclose(design @ result.coefficients, energies)

    def test_diagnostics_shape(self):
        rng = np.random.default_rng(3)
        design, energies, _ = _well_posed_problem(rng, n_samples=10, n_vars=3)
        result = fit_least_squares(design, energies)
        assert result.predictions.shape == (10,)
        assert result.residuals.shape == (10,)
        assert result.percent_errors.shape == (10,)
        assert result.condition_number > 0

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_property_exact_fit_recovers(self, seed):
        rng = np.random.default_rng(seed)
        n_vars = int(rng.integers(1, 6))
        design, energies, true = _well_posed_problem(rng, n_samples=30, n_vars=n_vars)
        result = fit_least_squares(design, energies)
        assert np.allclose(result.coefficients, true, rtol=1e-6)


class TestNnls:
    def test_recovers_nonnegative_truth(self):
        rng = np.random.default_rng(4)
        design, energies, true = _well_posed_problem(rng, nonneg=True)
        result = fit_nnls(design, energies)
        assert np.allclose(result.coefficients, true, rtol=1e-6)

    def test_never_negative(self):
        rng = np.random.default_rng(5)
        for _ in range(10):
            design = rng.uniform(0, 10, size=(20, 6))
            energies = rng.uniform(-5, 50, size=20)
            result = fit_nnls(design, energies)
            assert np.all(result.coefficients >= 0)

    def test_matches_scipy(self):
        scipy_optimize = pytest.importorskip("scipy.optimize")
        rng = np.random.default_rng(6)
        for _ in range(20):
            n, p = int(rng.integers(8, 30)), int(rng.integers(2, 8))
            design = rng.random((n, p)) * 10
            energies = design @ np.abs(rng.normal(0, 5, p)) + rng.normal(0, 0.1, n)
            ours = fit_nnls(design, energies).coefficients
            reference, _ = scipy_optimize.nnls(design, energies)
            assert np.allclose(ours, reference, atol=1e-6, rtol=1e-5)

    def test_zeroes_antagonistic_column(self):
        # y is produced by column 0 only; an anti-correlated column must
        # not receive a negative weight
        design = np.array([[1.0, -1.0], [2.0, -2.0], [3.0, -3.0], [4.0, -3.9]])
        energies = design[:, 0] * 7.0
        result = fit_nnls(design, energies)
        assert result.coefficients[1] == 0.0
        assert result.coefficients[0] == pytest.approx(7.0, rel=0.05)


class TestRidge:
    def test_zero_alpha_matches_ols(self):
        rng = np.random.default_rng(7)
        design, energies, _ = _well_posed_problem(rng)
        ols = fit_least_squares(design, energies)
        ridge = fit_ridge(design, energies, alpha=0.0)
        assert np.allclose(ridge.coefficients, ols.coefficients)

    def test_shrinkage_monotone(self):
        rng = np.random.default_rng(8)
        design, energies, _ = _well_posed_problem(rng)
        norms = [
            float(np.linalg.norm(fit_ridge(design, energies, alpha=a).coefficients))
            for a in (0.0, 0.1, 10.0, 1000.0)
        ]
        assert norms == sorted(norms, reverse=True)

    def test_negative_alpha_rejected(self):
        with pytest.raises(RegressionError):
            fit_ridge(np.ones((3, 1)), np.ones(3), alpha=-1.0)


class TestLoocv:
    def test_zero_for_perfect_fit(self):
        rng = np.random.default_rng(9)
        design, energies, _ = _well_posed_problem(rng)
        errors = leave_one_out_errors(design, energies)
        assert np.allclose(errors, 0.0, atol=1e-8)

    def test_matches_explicit_refits(self):
        rng = np.random.default_rng(10)
        design, energies, _ = _well_posed_problem(rng, n_samples=15, n_vars=3, noise=2.0)
        fast = leave_one_out_errors(design, energies)
        for i in range(len(energies)):
            keep = [j for j in range(len(energies)) if j != i]
            coefficients = np.linalg.lstsq(design[keep], energies[keep], rcond=None)[0]
            predicted = design[i] @ coefficients
            explicit = 100.0 * (predicted - energies[i]) / energies[i]
            assert fast[i] == pytest.approx(explicit, rel=1e-6)

    def test_needs_enough_samples(self):
        with pytest.raises(RegressionError, match="more samples"):
            leave_one_out_errors(np.ones((3, 3)), np.ones(3))


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(RegressionError):
            fit_least_squares(np.ones((3, 2)), np.ones(4))

    def test_empty(self):
        with pytest.raises(RegressionError):
            fit_least_squares(np.ones((0, 2)), np.ones(0))

    def test_non_finite(self):
        design = np.ones((3, 2))
        design[0, 0] = np.nan
        with pytest.raises(RegressionError, match="non-finite"):
            fit_least_squares(design, np.ones(3))

    def test_wrong_dims(self):
        with pytest.raises(RegressionError):
            fit_least_squares(np.ones(3), np.ones(3))
        with pytest.raises(RegressionError):
            fit_least_squares(np.ones((3, 2)), np.ones((3, 1)))


class TestColumnCoverage:
    def test_fractions(self):
        design = np.array([[1.0, 0.0], [1.0, 0.0], [1.0, 2.0], [0.0, 0.0]])
        coverage = column_coverage(design)
        assert coverage.tolist() == [0.75, 0.25]

    def test_empty(self):
        assert column_coverage(np.zeros((0, 0))).size == 0


class TestConditionWarning:
    def _ill_conditioned(self):
        # two nearly identical columns: condition number >> 1e8
        design = np.array(
            [
                [1.0, 1.0 + 1e-12],
                [2.0, 2.0 + 1e-12],
                [3.0, 3.0 - 1e-12],
                [4.0, 4.0 + 1e-12],
            ]
        )
        return design, design @ np.array([2.0, 3.0])

    def test_all_fitters_warn_on_ill_conditioned_design(self):
        from repro.core import IllConditionedDesignWarning

        design, energies = self._ill_conditioned()
        for fitter in (fit_least_squares, fit_nnls, fit_ridge):
            with pytest.warns(IllConditionedDesignWarning, match="condition number"):
                fitter(design, energies)

    def test_well_conditioned_design_is_silent(self):
        import warnings

        rng = np.random.default_rng(7)
        design, energies, _ = _well_posed_problem(rng)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            fit_least_squares(design, energies)
