"""Fault-tolerant characterization runner tests (error isolation, retry,
checkpoint/resume, degradation policy)."""

import os

import numpy as np
import pytest

from repro.asm import assemble
from repro.core import (
    CharacterizationRunError,
    CharacterizationRunner,
    Characterizer,
    CheckpointError,
    CoverageLossError,
    RetryPolicy,
    RunnerTask,
    TooManyFailures,
    characterize,
)
from repro.core.runner import as_task, default_estimate
from repro.testing import FaultPlan, corrupt_checkpoint, hanging_task
from repro.xtcore import build_processor

pytestmark = pytest.mark.faults


_SOURCES = {
    "arith": "main:\n    movi a2, 60\nl:\n    add a3, a3, a2\n    xor a3, a3, a2\n    addi a2, a2, -1\n    bnez a2, l\n    halt\n",
    "loads": "    .data\nb: .space 256\n    .text\nmain:\n    la a2, b\n    movi a3, 40\nl:\n    l32i a4, a2, 0\n    s32i a4, a2, 4\n    addi a2, a2, 4\n    addi a3, a3, -1\n    bnez a3, l\n    halt\n",
    "logic": "main:\n    movi a2, 30\nl:\n    sub a4, a3, a2\n    or a3, a3, a4\n    addi a2, a2, -1\n    bnez a2, l\n    halt\n",
    "shifts": "main:\n    movi a2, 20\n    movi a3, 3\nl:\n    slli a4, a3, 2\n    srli a5, a4, 1\n    add a3, a3, a5\n    addi a2, a2, -1\n    bnez a2, l\n    halt\n",
}


@pytest.fixture(scope="module")
def base_tasks():
    config = build_processor("runner-base")
    return [
        RunnerTask.from_pair(config, assemble(source, name, isa=config.isa))
        for name, source in _SOURCES.items()
    ]


def _runner(characterizer=None, plan=None, **kwargs):
    characterizer = characterizer if characterizer is not None else Characterizer()
    if plan is not None:
        kwargs.setdefault("simulate", plan.wrap_session())
        kwargs.setdefault(
            "estimate_energy", plan.wrap_estimate(default_estimate(characterizer))
        )
    return CharacterizationRunner(characterizer, **kwargs)


class TestRetryPolicy:
    def test_budget_lowered_per_attempt(self):
        policy = RetryPolicy(max_attempts=3, budget_factor=0.5)
        assert policy.budget_for(1, 1000) == 1000
        assert policy.budget_for(2, 1000) == 500
        assert policy.budget_for(3, 1000) == 250

    def test_budget_never_below_one(self):
        assert RetryPolicy(budget_factor=0.5).budget_for(2, 1) == 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="budget_factor"):
            RetryPolicy(budget_factor=0.0)
        with pytest.raises(ValueError, match="budget_factor"):
            RetryPolicy(budget_factor=1.5)


class TestTaskCoercion:
    def test_pair_and_task_pass_through(self, base_tasks):
        task = base_tasks[0]
        assert as_task(task) is task
        config = build_processor("coerce")
        program = assemble(_SOURCES["arith"], "arith", isa=config.isa)
        coerced = as_task((config, program))
        assert coerced.name == "arith"

    def test_case_like_objects_adapt(self):
        from repro.programs import characterization_suite

        case = characterization_suite(include_variants=False)[0]
        task = as_task(case)
        assert task.name == case.name
        assert task.max_instructions == case.max_instructions

    def test_garbage_rejected(self):
        with pytest.raises(TypeError, match="task"):
            as_task(42)


class TestErrorIsolation:
    def test_permanent_simulator_fault_contained(self, base_tasks):
        plan = FaultPlan().fail_simulation("arith")
        report = _runner(plan=plan).run(base_tasks)
        assert [f.name for f in report.failures] == ["arith"]
        failure = report.failures[0]
        assert failure.stage == "simulate"
        assert failure.attempts == 2
        assert failure.error_type == "InjectedFault"
        assert {s.name for s in report.samples} == {"loads", "logic", "shifts"}
        assert "arith" in report.summary()

    def test_transient_fault_recovered_by_retry(self, base_tasks):
        plan = FaultPlan().fail_simulation("arith", times=1)
        report = _runner(plan=plan).run(base_tasks)
        assert report.ok
        assert {s.name for s in report.samples} == set(_SOURCES)
        assert plan.injected == [("arith", "sim-error")]

    def test_nan_and_inf_energy_contained(self, base_tasks):
        plan = FaultPlan().nan_energy("loads").inf_energy("logic")
        report = _runner(plan=plan).run(base_tasks)
        assert {f.name for f in report.failures} == {"loads", "logic"}
        assert all(f.stage == "validate" for f in report.failures)
        assert all("non-finite energy" in f.message for f in report.failures)
        # surviving samples are clean
        assert all(np.isfinite(s.energy) for s in report.samples)

    def test_transient_nan_energy_recovered(self, base_tasks):
        plan = FaultPlan().nan_energy("loads", times=1)
        report = _runner(plan=plan).run(base_tasks)
        assert report.ok

    def test_hanging_program_contained_by_budget(self, base_tasks):
        report = _runner().run(base_tasks + [hanging_task()])
        assert [f.name for f in report.failures] == ["fault_hang"]
        failure = report.failures[0]
        assert failure.error_type == "SimulationLimitExceeded"
        assert failure.attempts == 2
        assert len(report.samples) == len(base_tasks)

    def test_build_failure_contained_not_retried(self, base_tasks):
        def broken_build():
            raise RuntimeError("assembly exploded")

        bad = RunnerTask(name="broken", builder=broken_build)
        report = _runner().run([bad] + base_tasks)
        failure = report.failures[0]
        assert failure.stage == "build"
        assert failure.attempts == 1
        assert len(report.samples) == len(base_tasks)

    def test_acceptance_two_injected_faults_fit_from_survivors(self, base_tasks):
        """Acceptance: >=2 injected programs; run completes, reports a
        structured summary, and fits from the surviving samples."""
        plan = FaultPlan().fail_simulation("arith").nan_energy("loads")
        report = _runner(plan=plan).run(base_tasks)
        assert len(report.failures) == 2
        assert report.result is not None
        assert report.result.model.coefficients.shape == (21,)
        summary = report.summary()
        assert "2 failure(s)" in summary
        assert "InjectedFault" in summary
        assert "non-finite energy" in summary


class TestMaxFailures:
    def test_abort_when_budget_exceeded(self, base_tasks):
        plan = FaultPlan().fail_simulation("arith").fail_simulation("loads")
        with pytest.raises(TooManyFailures, match="max_failures=0"):
            _runner(plan=plan, max_failures=0).run(base_tasks)

    def test_budget_counts_only_failures(self, base_tasks):
        plan = FaultPlan().fail_simulation("arith")
        report = _runner(plan=plan, max_failures=1).run(base_tasks)
        assert len(report.failures) == 1
        assert report.result is not None

    def test_checkpoint_survives_abort(self, base_tasks, tmp_path):
        ckpt = str(tmp_path / "ckpt.json")
        # tasks run in order: arith, loads, logic(fails), shifts never runs
        plan = FaultPlan().fail_simulation("logic")
        with pytest.raises(TooManyFailures):
            _runner(
                plan=plan, max_failures=0, checkpoint_path=ckpt, checkpoint_every=1
            ).run(base_tasks)
        fresh = Characterizer()
        assert fresh.load_samples(ckpt) == 2
        assert [s.name for s in fresh.samples] == ["arith", "loads"]


class TestCheckpointing:
    def test_checkpoint_written_and_loadable(self, base_tasks, tmp_path):
        ckpt = str(tmp_path / "ckpt.json")
        plan = FaultPlan().fail_simulation("arith")
        report = _runner(plan=plan, checkpoint_path=ckpt, checkpoint_every=2).run(
            base_tasks
        )
        assert os.path.exists(ckpt)
        assert not os.path.exists(ckpt + ".tmp")  # atomic write cleaned up
        fresh = Characterizer()
        assert fresh.load_samples(ckpt) == len(report.samples)
        import json

        payload = json.loads(open(ckpt).read())
        assert [f["name"] for f in payload["failures"]] == ["arith"]

    def test_resume_skips_completed_samples(self, base_tasks, tmp_path):
        ckpt = str(tmp_path / "ckpt.json")
        _runner(checkpoint_path=ckpt).run(base_tasks[:2], fit=False)

        resumed_runner = _runner(checkpoint_path=ckpt)
        restored = resumed_runner.resume()
        assert restored == ["arith", "loads"]
        report = resumed_runner.run(base_tasks)
        assert report.resumed == ["arith", "loads"]
        assert [s.name for s in report.samples] == ["arith", "loads", "logic", "shifts"]

    def test_killed_then_resumed_matches_uninterrupted(self, base_tasks, tmp_path):
        """Acceptance: resuming from a mid-run checkpoint reproduces the
        uninterrupted run's coefficients exactly."""
        uninterrupted = _runner().run(base_tasks)

        ckpt = str(tmp_path / "ckpt.json")
        _runner(checkpoint_path=ckpt, checkpoint_every=1).run(
            base_tasks[:2], fit=False
        )  # "killed" after two samples
        resumed_runner = _runner(checkpoint_path=ckpt)
        resumed_runner.resume()
        resumed = resumed_runner.run(base_tasks)
        assert np.array_equal(
            resumed.result.model.coefficients,
            uninterrupted.result.model.coefficients,
        )

    def test_resume_without_checkpoint_is_noop(self, tmp_path):
        runner = _runner(checkpoint_path=str(tmp_path / "missing.json"))
        assert runner.resume() == []
        assert _runner().resume() == []

    @pytest.mark.parametrize("mode", ["truncate", "garbage"])
    def test_resume_from_corrupted_checkpoint_is_actionable(
        self, base_tasks, tmp_path, mode
    ):
        ckpt = str(tmp_path / "ckpt.json")
        _runner(checkpoint_path=ckpt).run(base_tasks[:2], fit=False)
        corrupt_checkpoint(ckpt, mode)
        with pytest.raises(CheckpointError, match="cannot resume"):
            _runner(checkpoint_path=ckpt).resume()

    def test_resume_rejects_foreign_template(self, base_tasks, tmp_path):
        from repro.core import instruction_level_template

        ckpt = str(tmp_path / "ckpt.json")
        _runner(checkpoint_path=ckpt).run(base_tasks[:2], fit=False)
        other = CharacterizationRunner(
            Characterizer(template=instruction_level_template()),
            checkpoint_path=ckpt,
        )
        with pytest.raises(CheckpointError, match="template"):
            other.resume()


class TestDegradation:
    def test_strict_mode_raises_on_coverage_loss(self, base_tasks):
        plan = FaultPlan().fail_simulation("arith")
        with pytest.raises(CoverageLossError) as excinfo:
            _runner(plan=plan, degradation="strict").run(base_tasks)
        assert excinfo.value.lost_variables  # names the unexercised variables
        assert "rank" in str(excinfo.value)

    def test_strict_mode_tolerates_inadequate_but_failure_free_suite(self, base_tasks):
        # the mini suite never spans the 21-variable template, but without
        # failures that is the suite designer's problem, not a degradation
        report = _runner(degradation="strict").run(base_tasks)
        assert report.result is not None

    def test_warn_mode_never_raises_on_coverage(self, base_tasks):
        plan = FaultPlan().fail_simulation("arith")
        report = _runner(plan=plan, degradation="warn").run(base_tasks)
        assert report.coverage is not None
        assert not report.coverage.is_adequate

    def test_all_samples_failing_raises(self, base_tasks):
        plan = FaultPlan()
        for name in _SOURCES:
            plan.fail_simulation(name)
        with pytest.raises(CharacterizationRunError, match="no samples survived"):
            _runner(plan=plan).run(base_tasks)

    def test_unknown_degradation_mode_rejected(self):
        with pytest.raises(ValueError, match="degradation"):
            CharacterizationRunner(degradation="yolo")


class TestCharacterizeIntegration:
    def test_characterize_routes_through_runner_when_asked(
        self, base_tasks, tmp_path
    ):
        config = build_processor("ch-int")
        runs = [
            (config, assemble(source, name, isa=config.isa))
            for name, source in _SOURCES.items()
        ]
        ckpt = str(tmp_path / "ckpt.json")
        tolerant = characterize(runs, checkpoint_path=ckpt, max_failures=2)
        legacy = characterize(runs)
        assert os.path.exists(ckpt)
        assert np.allclose(tolerant.model.coefficients, legacy.model.coefficients)
