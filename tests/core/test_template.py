"""Macro-model template structure tests."""

import pytest

from repro.core import (
    VariableDomain,
    default_template,
    instruction_level_template,
    unweighted_template,
)
from repro.hwlib import CATEGORY_ORDER
from repro.isa import InstructionClass


class TestDefaultTemplate:
    def test_twenty_one_variables(self):
        # Eq. 2-4: 11 instruction-level + 10 structural = 21 variables
        template = default_template()
        assert len(template) == 21
        assert len(template.instruction_variables) == 11
        assert len(template.structural_variables) == 10

    def test_paper_variable_ordering(self):
        keys = default_template().keys()
        assert keys[:6] == ("N_a", "N_ld", "N_st", "N_j", "N_bt", "N_bu")
        assert keys[6:10] == ("N_cm", "N_dm", "N_uf", "N_il")
        assert keys[10] == "N_sd"
        assert all(key.startswith("S_") for key in keys[11:])

    def test_structural_variables_match_category_order(self):
        structural = default_template().structural_variables
        assert [v.category for v in structural] == list(CATEGORY_ORDER)

    def test_class_variables_map_to_classes(self):
        template = default_template()
        lookup = {v.key: v for v in template}
        assert lookup["N_a"].iclass is InstructionClass.ARITH
        assert lookup["N_bt"].iclass is InstructionClass.BRANCH_TAKEN
        assert lookup["N_bu"].iclass is InstructionClass.BRANCH_UNTAKEN
        assert lookup["N_cm"].iclass is None

    def test_index_of(self):
        template = default_template()
        assert template.index_of("N_a") == 0
        assert template.index_of("N_sd") == 10
        with pytest.raises(KeyError):
            template.index_of("N_bogus")

    def test_domains(self):
        template = default_template()
        for variable in template.instruction_variables:
            assert variable.domain is VariableDomain.INSTRUCTION
        for variable in template.structural_variables:
            assert variable.domain is VariableDomain.STRUCTURAL

    def test_descriptions_present(self):
        for variable in default_template():
            assert variable.description


class TestVariants:
    def test_instruction_only(self):
        template = instruction_level_template()
        assert len(template) == 11
        assert not template.structural_variables

    def test_unweighted_flag(self):
        assert default_template().weighted_complexity
        assert not unweighted_template().weighted_complexity
        assert len(unweighted_template()) == 21

    def test_names_distinct(self):
        names = {
            default_template().name,
            instruction_level_template().name,
            unweighted_template().name,
        }
        assert len(names) == 3

    def test_iteration(self):
        template = default_template()
        assert [v.key for v in template] == list(template.keys())
