"""EstimationStudy / ComparisonRow / StudyReport tests."""

import numpy as np
import pytest

from repro.asm import assemble
from repro.core import EnergyMacroModel, EstimationStudy, default_template
from repro.core.estimator import ComparisonRow, StudyReport
from repro.xtcore import build_processor


class TestComparisonRow:
    def _row(self, macro=110.0, reference=100.0, t_macro=0.1, t_ref=1.0):
        return ComparisonRow(
            application="app",
            processor="proc",
            macro_energy=macro,
            reference_energy=reference,
            macro_seconds=t_macro,
            reference_seconds=t_ref,
            cycles=1000,
        )

    def test_percent_error(self):
        assert self._row().percent_error == pytest.approx(10.0)
        assert self._row(macro=90.0).percent_error == pytest.approx(-10.0)
        assert self._row(reference=0.0).percent_error == 0.0

    def test_speedup(self):
        assert self._row().speedup == pytest.approx(10.0)
        assert self._row(t_macro=0.0).speedup == float("inf")


class TestStudyReport:
    def test_aggregates(self):
        rows = [
            ComparisonRow("a", "p", 105, 100, 0.1, 0.4, 10),
            ComparisonRow("b", "p", 92, 100, 0.1, 0.6, 10),
        ]
        report = StudyReport(rows=rows)
        assert report.mean_abs_percent_error == pytest.approx(6.5)
        assert report.max_abs_percent_error == pytest.approx(8.0)
        assert report.mean_speedup == pytest.approx(5.0)
        text = report.table()
        assert "mean |err| 6.50%" in text

    def test_empty(self):
        report = StudyReport(rows=[])
        assert report.mean_abs_percent_error == 0.0
        assert report.max_abs_percent_error == 0.0
        assert report.mean_speedup == 0.0


class TestEstimationStudy:
    def test_compare_runs_both_paths(self):
        template = default_template()
        model = EnergyMacroModel(template, np.full(len(template), 100.0))
        study = EstimationStudy(model)
        config = build_processor("study-test")
        program = assemble(
            "main:\n    movi a2, 30\nl:\n    add a3, a3, a2\n    addi a2, a2, -1\n    bnez a2, l\n    halt\n",
            "study-prog",
        )
        row = study.compare(config, program)
        assert row.macro_energy > 0
        assert row.reference_energy > 0
        assert row.macro_seconds > 0
        assert row.reference_seconds > 0
        assert len(study.rows) == 1
        assert study.report().rows[0].application == "study-prog"
