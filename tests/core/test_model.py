"""EnergyMacroModel tests: estimation arithmetic, reports, serialization."""

import numpy as np
import pytest

from repro.asm import assemble
from repro.core import (
    EnergyMacroModel,
    default_template,
    extract_variables,
    instruction_level_template,
)
from repro.xtcore import simulate


@pytest.fixture()
def model():
    template = default_template()
    coefficients = np.arange(1.0, len(template) + 1.0)
    return EnergyMacroModel(template, coefficients, processor_family="test-fam")


class TestConstruction:
    def test_shape_checked(self):
        with pytest.raises(ValueError, match="does not match"):
            EnergyMacroModel(default_template(), np.ones(5))

    def test_coefficient_lookup(self, model):
        assert model.coefficient("N_a") == 1.0
        assert model.coefficient("N_sd") == 11.0
        with pytest.raises(KeyError):
            model.coefficient("bogus")

    def test_coefficients_by_key(self, model):
        mapping = model.coefficients_by_key()
        assert len(mapping) == 21
        assert mapping["N_ld"] == 2.0


class TestEstimation:
    def test_estimate_is_dot_product(self, model, tiny_loop_program, base_config):
        result = simulate(base_config, tiny_loop_program)
        variables = extract_variables(result.stats, base_config, model.template)
        expected = float(variables @ model.coefficients)
        assert model.estimate_from_stats(result.stats, base_config) == pytest.approx(expected)

    def test_estimate_runs_iss(self, model, tiny_loop_program, base_config):
        estimate = model.estimate(base_config, tiny_loop_program)
        assert estimate.energy > 0
        assert estimate.cycles == simulate(base_config, tiny_loop_program).cycles
        assert estimate.program_name == tiny_loop_program.name
        assert set(estimate.variables) == set(model.template.keys())
        assert "tiny_loop" in estimate.summary()

    def test_linear_in_workload(self, model, base_config):
        def looped(n):
            return assemble(
                f"main:\n    movi a2, {n}\nl:\n    add a3, a3, a2\n    addi a2, a2, -1\n    bnez a2, l\n    halt\n",
                f"loop{n}",
            )

        small = model.estimate(base_config, looped(10)).energy
        large = model.estimate(base_config, looped(100)).energy
        assert large > small


class TestReports:
    def test_coefficient_table(self, model):
        table = model.coefficient_table()
        assert "N_a" in table
        assert "S_table" in table
        assert "test-fam" in table


class TestSerialization:
    def test_json_roundtrip(self, model, tiny_loop_program, base_config):
        restored = EnergyMacroModel.from_json(model.to_json())
        assert restored.processor_family == model.processor_family
        assert np.allclose(restored.coefficients, model.coefficients)
        original = model.estimate(base_config, tiny_loop_program).energy
        reloaded = restored.estimate(base_config, tiny_loop_program).energy
        assert reloaded == pytest.approx(original)

    def test_file_roundtrip(self, model, tmp_path):
        path = tmp_path / "model.json"
        model.save(str(path))
        restored = EnergyMacroModel.load(str(path))
        assert np.allclose(restored.coefficients, model.coefficients)

    def test_template_variants_roundtrip(self):
        template = instruction_level_template()
        model = EnergyMacroModel(template, np.ones(len(template)))
        restored = EnergyMacroModel.from_json(model.to_json())
        assert restored.template.name == template.name

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError, match="unrecognized"):
            EnergyMacroModel.from_json('{"format": "something-else"}')

    def test_missing_coefficient_rejected(self, model):
        import json

        payload = json.loads(model.to_json())
        del payload["coefficients"]["N_a"]
        with pytest.raises(ValueError, match="missing"):
            EnergyMacroModel.from_json(json.dumps(payload))

    def test_unknown_template_rejected(self, model):
        import json

        payload = json.loads(model.to_json())
        payload["template"] = "mystery-template"
        with pytest.raises(ValueError, match="unknown template"):
            EnergyMacroModel.from_json(json.dumps(payload))

    def test_fit_info_preserved(self):
        template = default_template()
        model = EnergyMacroModel(
            template, np.ones(21), fit_info={"samples": 50, "method": "nnls"}
        )
        restored = EnergyMacroModel.from_json(model.to_json())
        assert restored.fit_info["samples"] == 50
