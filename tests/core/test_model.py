"""EnergyMacroModel tests: estimation arithmetic, reports, serialization."""

import numpy as np
import pytest

from repro.asm import assemble
from repro.core import (
    EnergyMacroModel,
    default_template,
    extract_variables,
    instruction_level_template,
)
from repro.xtcore import simulate


@pytest.fixture()
def model():
    template = default_template()
    coefficients = np.arange(1.0, len(template) + 1.0)
    return EnergyMacroModel(template, coefficients, processor_family="test-fam")


class TestConstruction:
    def test_shape_checked(self):
        with pytest.raises(ValueError, match="does not match"):
            EnergyMacroModel(default_template(), np.ones(5))

    def test_coefficient_lookup(self, model):
        assert model.coefficient("N_a") == 1.0
        assert model.coefficient("N_sd") == 11.0
        with pytest.raises(KeyError):
            model.coefficient("bogus")

    def test_coefficients_by_key(self, model):
        mapping = model.coefficients_by_key()
        assert len(mapping) == 21
        assert mapping["N_ld"] == 2.0


class TestEstimation:
    def test_estimate_is_dot_product(self, model, tiny_loop_program, base_config):
        result = simulate(base_config, tiny_loop_program)
        variables = extract_variables(result.stats, base_config, model.template)
        expected = float(variables @ model.coefficients)
        assert model.estimate_from_stats(result.stats, base_config) == pytest.approx(expected)

    def test_estimate_runs_iss(self, model, tiny_loop_program, base_config):
        estimate = model.estimate(base_config, tiny_loop_program)
        assert estimate.energy > 0
        assert estimate.cycles == simulate(base_config, tiny_loop_program).cycles
        assert estimate.program_name == tiny_loop_program.name
        assert set(estimate.variables) == set(model.template.keys())
        assert "tiny_loop" in estimate.summary()

    def test_linear_in_workload(self, model, base_config):
        def looped(n):
            return assemble(
                f"main:\n    movi a2, {n}\nl:\n    add a3, a3, a2\n    addi a2, a2, -1\n    bnez a2, l\n    halt\n",
                f"loop{n}",
            )

        small = model.estimate(base_config, looped(10)).energy
        large = model.estimate(base_config, looped(100)).energy
        assert large > small


class TestReports:
    def test_coefficient_table(self, model):
        table = model.coefficient_table()
        assert "N_a" in table
        assert "S_table" in table
        assert "test-fam" in table


class TestSerialization:
    def test_json_roundtrip(self, model, tiny_loop_program, base_config):
        restored = EnergyMacroModel.from_json(model.to_json())
        assert restored.processor_family == model.processor_family
        assert np.allclose(restored.coefficients, model.coefficients)
        original = model.estimate(base_config, tiny_loop_program).energy
        reloaded = restored.estimate(base_config, tiny_loop_program).energy
        assert reloaded == pytest.approx(original)

    def test_file_roundtrip(self, model, tmp_path):
        path = tmp_path / "model.json"
        model.save(str(path))
        restored = EnergyMacroModel.load(str(path))
        assert np.allclose(restored.coefficients, model.coefficients)

    def test_template_variants_roundtrip(self):
        template = instruction_level_template()
        model = EnergyMacroModel(template, np.ones(len(template)))
        restored = EnergyMacroModel.from_json(model.to_json())
        assert restored.template.name == template.name

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError, match="unrecognized"):
            EnergyMacroModel.from_json('{"format": "something-else"}')

    def test_missing_coefficient_rejected(self, model):
        import json

        payload = json.loads(model.to_json())
        del payload["coefficients"]["N_a"]
        with pytest.raises(ValueError, match="missing"):
            EnergyMacroModel.from_json(json.dumps(payload))

    def test_unknown_template_rejected(self, model):
        import json

        payload = json.loads(model.to_json())
        payload["template"] = "mystery-template"
        with pytest.raises(ValueError, match="unknown template"):
            EnergyMacroModel.from_json(json.dumps(payload))

    def test_fit_info_preserved(self):
        template = default_template()
        model = EnergyMacroModel(
            template, np.ones(21), fit_info={"samples": 50, "method": "nnls"}
        )
        restored = EnergyMacroModel.from_json(model.to_json())
        assert restored.fit_info["samples"] == 50


class TestOperatingPointSchema:
    """Versioned model files: legacy migration, digests, at() scaling."""

    def test_legacy_v1_migrates_with_warning(self, model):
        import json

        payload = json.loads(model.to_json())
        payload["format"] = "repro-energy-macro-model/1"
        del payload["operating_point"]
        with pytest.warns(UserWarning, match="legacy schema"):
            restored = EnergyMacroModel.from_json(json.dumps(payload))
        assert restored.operating_point is None
        assert np.allclose(restored.coefficients, model.coefficients)
        # re-saving writes the current schema; no warning the second time
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            EnergyMacroModel.from_json(restored.to_json())

    def test_unknown_extra_fields_tolerated(self, model):
        import json

        payload = json.loads(model.to_json())
        payload["future_field"] = {"nested": True}
        restored = EnergyMacroModel.from_json(json.dumps(payload))
        assert np.allclose(restored.coefficients, model.coefficients)

    def test_operating_point_round_trips(self, model):
        derived = model.at("65nm@1.1V@800MHz")
        restored = EnergyMacroModel.from_json(derived.to_json())
        assert restored.operating_point == derived.operating_point
        assert np.allclose(restored.coefficients, derived.coefficients)

    def test_bad_operating_point_rejected(self, model):
        import json

        payload = json.loads(model.to_json())
        payload["operating_point"] = {"node_nm": 65}
        with pytest.raises(ValueError, match="bad operating point"):
            EnergyMacroModel.from_json(json.dumps(payload))

    def test_digest_stable_across_save_load(self, model, tmp_path):
        from repro.dse.cache import model_digest

        derived = model.at("90nm@1.2V@600MHz")
        path = tmp_path / "derived.json"
        derived.save(str(path))
        assert model_digest(EnergyMacroModel.load(str(path))) == model_digest(derived)
        # the operating point is part of the digest: base and derived differ
        assert model_digest(model) != model_digest(derived)

    def test_at_scales_by_hand_computed_factor(self, model):
        # C(65)/C(180) * (1.1/1.8)^2 over the committed table
        expected = (0.68 / 2.4) * (1.1 / 1.8) ** 2
        derived = model.at("65nm@1.1V@800MHz")
        assert np.allclose(derived.coefficients, model.coefficients * expected)
        assert derived.fit_info["energy_scale"] == pytest.approx(expected)
        assert derived.operating_point.key == "65nm@1.1V@800MHz"

    def test_at_relative_to_own_fit_point(self, model):
        low = model.at("90nm@1V@100MHz")
        high = low.at("90nm@1.2V@100MHz")
        assert np.allclose(
            high.coefficients, low.coefficients * (1.2 / 1.0) ** 2
        )

    def test_at_none_is_self_and_memoized(self, model):
        assert model.at(None) is model
        assert model.at("65nm@1.1V@800MHz") is model.at("65 nm @ 1.1 V @ 800 MHz")

    def test_pickle_round_trip_keeps_point(self, model):
        import pickle

        derived = model.at("65nm@1.1V@800MHz")
        clone = pickle.loads(pickle.dumps(derived))
        assert clone.operating_point == derived.operating_point
        assert np.allclose(clone.coefficients, derived.coefficients)
        # the derived-model memo never travels through the pickle
        assert clone._derived_cache == {}
