"""Linearity properties of the macro-model over workload composition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import assemble
from repro.core import EnergyMacroModel, default_template
from repro.xtcore import build_processor, simulate


@pytest.fixture(scope="module")
def model():
    template = default_template()
    return EnergyMacroModel(template, np.linspace(10, 400, len(template)))


@pytest.fixture(scope="module")
def stats_pair():
    config = build_processor("lin")
    a = simulate(config, assemble(
        "main:\n    movi a2, 40\nl:\n    add a3, a3, a2\n    addi a2, a2, -1\n    bnez a2, l\n    halt\n", "a")).stats
    b = simulate(config, assemble(
        "    .data\nv: .space 64\n    .text\nmain:\n    la a2, v\n    movi a3, 10\nl:\n    l32i a4, a2, 0\n    s32i a4, a2, 4\n    addi a3, a3, -1\n    bnez a3, l\n    halt\n", "b")).stats
    return config, a, b


class TestLinearity:
    def test_estimate_additive_over_merged_stats(self, model, stats_pair):
        """E(a ⊕ b) = E(a) + E(b): the macro-model is a measure over runs.

        This is the property that makes both multi-run workload
        estimation and the region profiler exact.
        """
        config, a, b = stats_pair
        merged = a.merge(b)
        assert model.estimate_from_stats(merged, config) == pytest.approx(
            model.estimate_from_stats(a, config) + model.estimate_from_stats(b, config)
        )

    def test_merge_is_commutative(self, model, stats_pair):
        config, a, b = stats_pair
        ab = model.estimate_from_stats(a.merge(b), config)
        ba = model.estimate_from_stats(b.merge(a), config)
        assert ab == pytest.approx(ba)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=8))
    def test_n_fold_merge_scales(self, n):
        config = build_processor("lin-scale")
        template = default_template()
        local_model = EnergyMacroModel(template, np.linspace(10, 400, len(template)))
        stats = simulate(config, assemble(
            "main:\n    movi a2, 15\nl:\n    xor a3, a3, a2\n    addi a2, a2, -1\n    bnez a2, l\n    halt\n",
            "unit")).stats
        merged = stats
        for _ in range(n - 1):
            merged = merged.merge(stats)
        single = local_model.estimate_from_stats(stats, config)
        assert local_model.estimate_from_stats(merged, config) == pytest.approx(n * single)
