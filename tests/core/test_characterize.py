"""Characterization-flow tests on a small dedicated suite."""

import numpy as np
import pytest

from repro.asm import assemble
from repro.core import Characterizer, audit_coverage, characterize
from repro.core.characterize import CharacterizationSample
from repro.tie import TieSpec
from repro.xtcore import build_processor


def _mul16():
    spec = TieSpec("chmul", fmt="R3")
    a = spec.source("rs", width=16)
    b = spec.source("rt", width=16)
    spec.result(spec.tie_mult(a, b))
    return spec


def _mini_suite():
    base = build_processor("ch-base")
    extended = build_processor("ch-ext", [_mul16()])
    sources = {
        "arith": "main:\n    movi a2, 60\nl:\n    add a3, a3, a2\n    xor a3, a3, a2\n    addi a2, a2, -1\n    bnez a2, l\n    halt\n",
        "loads": "    .data\nb: .space 256\n    .text\nmain:\n    la a2, b\n    movi a3, 40\nl:\n    l32i a4, a2, 0\n    s32i a4, a2, 4\n    addi a2, a2, 4\n    addi a3, a3, -1\n    bnez a3, l\n    halt\n",
        "mulheavy": "main:\n    movi a2, 50\n    movi a3, 7\nl:\n    chmul a4, a3, a2\n    add a3, a3, a4\n    addi a2, a2, -1\n    bnez a2, l\n    halt\n",
        "mullight": "main:\n    movi a2, 60\nl:\n    add a3, a3, a2\n    sub a4, a3, a2\n    or a3, a3, a4\n    addi a2, a2, -1\n    bnez a2, l\n    chmul a5, a3, a4\n    halt\n",
    }
    runs = []
    for name, source in sources.items():
        config = extended if "mul" in name else base
        runs.append((config, assemble(source, name, isa=config.isa)))
    return runs


class TestCharacterizer:
    def test_add_program_collects_sample(self):
        characterizer = Characterizer()
        config, program = _mini_suite()[0]
        sample = characterizer.add_program(config, program)
        assert sample.energy > 0
        assert sample.variables.shape == (21,)
        assert len(characterizer) == 1

    def test_fit_requires_samples(self):
        with pytest.raises(ValueError, match="no characterization samples"):
            Characterizer().fit()

    def test_invalid_method(self):
        with pytest.raises(ValueError, match="unknown regression method"):
            Characterizer(method="lasso")

    def test_add_sample_shape_checked(self):
        characterizer = Characterizer()
        bad = CharacterizationSample("x", "p", np.ones(3), 1.0, None)
        with pytest.raises(ValueError, match="variables"):
            characterizer.add_sample(bad)

    def test_add_sample_rejects_non_finite_energy(self):
        characterizer = Characterizer()
        n_vars = len(characterizer.template)
        for bad_energy in (float("nan"), float("inf"), float("-inf")):
            sample = CharacterizationSample("x", "p", np.ones(n_vars), bad_energy, None)
            with pytest.raises(ValueError, match="non-finite energy"):
                characterizer.add_sample(sample)
        assert len(characterizer) == 0

    def test_add_sample_rejects_non_finite_variables(self):
        characterizer = Characterizer()
        variables = np.ones(len(characterizer.template))
        variables[3] = float("nan")
        sample = CharacterizationSample("x", "p", variables, 1.0, None)
        with pytest.raises(ValueError, match="non-finite template variables"):
            characterizer.add_sample(sample)
        assert len(characterizer) == 0

    def test_fit_produces_model_and_report(self):
        result = characterize(_mini_suite())
        assert result.model.fit_info["samples"] == 4
        assert result.design.shape == (4, 21)
        assert len(result.fitting_errors) == 4
        table = result.fitting_error_table()
        assert "mulheavy" in table
        assert "RMS" in table

    def test_methods_agree_on_well_posed_data(self):
        runs = _mini_suite()
        nnls_model = characterize(runs, method="nnls").model
        ols_model = characterize(runs, method="ols").model
        config, program = runs[2]
        nnls_energy = nnls_model.estimate(config, program).energy
        ols_energy = ols_model.estimate(config, program).energy
        assert nnls_energy == pytest.approx(ols_energy, rel=0.15)

    def test_ridge_method_runs(self):
        result = characterize(_mini_suite(), method="ridge")
        assert result.regression.rms_percent_error < 50

    def test_progress_callback(self):
        messages = []
        characterize(_mini_suite(), progress=messages.append)
        assert len(messages) == 4
        assert "arith" in messages[0]

    def test_estimator_cache_reused(self):
        characterizer = Characterizer()
        runs = _mini_suite()
        characterizer.add_program(*runs[2])
        (estimator_first,) = characterizer._estimators.values()
        characterizer.add_program(*runs[3])
        assert characterizer._estimator_for(runs[3][0]) is estimator_first
        assert len(characterizer._estimators) == 1

    def test_estimator_cache_shares_equal_content_configs(self):
        # keying by content fingerprint: two distinct config objects with
        # identical content (even different names) share one estimator...
        characterizer = Characterizer()
        first = build_processor("twin", [_mul16()])
        second = build_processor("other-name", [_mul16()])
        assert characterizer._estimator_for(first) is characterizer._estimator_for(second)
        assert len(characterizer._estimators) == 1

    def test_estimator_cache_distinguishes_same_named_configs(self):
        # ...while identically-named configs with *different* hardware
        # get their own estimators instead of a stale one
        def _wider():
            spec = TieSpec("chmul", fmt="R3")
            a = spec.source("rs", width=32)
            b = spec.source("rt", width=32)
            spec.result(spec.tie_mult(a, b, width=32))
            return spec

        characterizer = Characterizer()
        first = build_processor("twin", [_mul16()])
        second = build_processor("twin", [_wider()])
        est_first = characterizer._estimator_for(first)
        est_second = characterizer._estimator_for(second)
        assert est_first is not est_second
        assert characterizer._estimator_for(first) is est_first
        assert characterizer._estimator_for(second) is est_second
        assert len(characterizer._estimators) == 2


class TestCoverageAudit:
    def test_mini_suite_flagged_incomplete(self):
        characterizer = Characterizer()
        for config, program in _mini_suite():
            characterizer.add_program(config, program)
        report = audit_coverage(characterizer.samples, characterizer.template)
        assert not report.is_adequate  # many variables unexercised
        assert "S_table" in report.unexercised
        assert report.rank < report.n_variables
        assert any("never exercised" in w for w in report.warnings)
        assert "UNEXERCISED" in report.summary()

    def test_empty_suite_rejected(self):
        with pytest.raises(ValueError):
            audit_coverage([], Characterizer().template)


class TestSampleCache:
    def test_save_load_roundtrip(self, tmp_path):
        import numpy as np

        characterizer = Characterizer()
        for config, program in _mini_suite():
            characterizer.add_program(config, program)
        path = str(tmp_path / "samples.json")
        characterizer.save_samples(path)

        fresh = Characterizer(method="ols")
        assert fresh.load_samples(path) == 4
        original_design, original_energy = characterizer.design_matrix()
        loaded_design, loaded_energy = fresh.design_matrix()
        assert np.allclose(original_design, loaded_design)
        assert np.allclose(original_energy, loaded_energy)
        # re-fitting from cache gives the same coefficients (same method)
        a = Characterizer()
        a.load_samples(path)
        assert np.allclose(
            a.fit().model.coefficients, characterizer.fit().model.coefficients
        )

    def test_template_mismatch_rejected(self, tmp_path):
        from repro.core import instruction_level_template

        characterizer = Characterizer()
        config, program = _mini_suite()[0]
        characterizer.add_program(config, program)
        path = str(tmp_path / "samples.json")
        characterizer.save_samples(path)

        other = Characterizer(template=instruction_level_template())
        with pytest.raises(ValueError, match="template"):
            other.load_samples(path)

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"format": "other"}')
        with pytest.raises(ValueError, match="unrecognized"):
            Characterizer().load_samples(str(path))

    def _saved_suite(self, tmp_path):
        characterizer = Characterizer()
        for config, program in _mini_suite():
            characterizer.add_program(config, program)
        path = str(tmp_path / "samples.json")
        characterizer.save_samples(path)
        return path

    def test_truncated_file_rejected_with_actionable_error(self, tmp_path):
        path = self._saved_suite(tmp_path)
        data = open(path, "rb").read()
        open(path, "wb").write(data[: len(data) // 2])
        fresh = Characterizer()
        with pytest.raises(ValueError, match="not valid JSON"):
            fresh.load_samples(path)
        assert len(fresh) == 0  # characterizer unchanged on failure

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "samples.json"
        path.write_text("}{ definitely not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            Characterizer().load_samples(str(path))

    def test_wrong_template_name_rejected(self, tmp_path):
        import json

        path = self._saved_suite(tmp_path)
        payload = json.loads(open(path).read())
        payload["template"] = "someone-elses-template"
        open(path, "w").write(json.dumps(payload))
        with pytest.raises(ValueError, match="someone-elses-template"):
            Characterizer().load_samples(path)

    def test_wrong_variable_count_rejected_without_partial_load(self, tmp_path):
        import json

        path = self._saved_suite(tmp_path)
        payload = json.loads(open(path).read())
        payload["samples"][-1]["variables"] = [1.0, 2.0, 3.0]
        open(path, "w").write(json.dumps(payload))
        fresh = Characterizer()
        with pytest.raises(ValueError, match="3 variables"):
            fresh.load_samples(path)
        # earlier (valid) records were not half-added
        assert len(fresh) == 0

    def test_malformed_record_rejected(self, tmp_path):
        import json

        path = self._saved_suite(tmp_path)
        payload = json.loads(open(path).read())
        del payload["samples"][0]["energy"]
        open(path, "w").write(json.dumps(payload))
        with pytest.raises(ValueError, match="malformed sample record"):
            Characterizer().load_samples(path)

    def test_non_finite_record_rejected(self, tmp_path):
        import json

        path = self._saved_suite(tmp_path)
        payload = json.loads(open(path).read())
        payload["samples"][0]["energy"] = "NaN"
        open(path, "w").write(json.dumps(payload))
        with pytest.raises(ValueError, match="non-finite"):
            Characterizer().load_samples(path)

    def test_save_is_atomic_no_tmp_residue(self, tmp_path):
        import os

        path = self._saved_suite(tmp_path)
        assert not os.path.exists(path + ".tmp")


class TestCollinearityDiagnostics:
    def test_detects_proportional_columns(self):
        import numpy as np

        from repro.core import collinear_columns

        design = np.array(
            [
                [1.0, 2.0, 5.0],
                [2.0, 4.0, 1.0],
                [3.0, 6.0, 9.0],
                [4.0, 8.0, 2.0],
            ]
        )
        pairs = collinear_columns(design, ("a", "b", "c"))
        assert pairs == [("a", "b", pytest.approx(1.0))]

    def test_skips_zero_columns(self):
        import numpy as np

        from repro.core import collinear_columns

        design = np.array([[0.0, 1.0], [0.0, 2.0], [0.0, 3.0]])
        assert collinear_columns(design, ("dead", "live")) == []

    def test_real_suite_flags_known_pairs(self, experiment_context):
        # the shared-config spurious terms make a few category pairs
        # near-collinear; the audit names them (they explain the zero
        # rows in the fitted Table I — see EXPERIMENTS.md §1)
        report = experiment_context.coverage
        named = {frozenset((a, b)) for a, b, _ in report.collinear_pairs}
        assert frozenset(("S_logic_red_mux", "S_shifter")) in named
        assert any("near-collinear" in w for w in report.warnings)
        assert "near-collinear" in report.summary()
