"""Differential test: the cache model vs a naive dictionary-based oracle.

Hypothesis drives both implementations with the same access stream; they
must agree on every hit/miss decision.  The oracle is written for
clarity, the production model for speed — divergence pinpoints a bug in
either.
"""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xtcore import CacheConfig, SetAssociativeCache


class OracleCache:
    """Obviously-correct LRU set-associative cache (OrderedDict per set)."""

    def __init__(self, sets: int, ways: int, line: int) -> None:
        self.sets = sets
        self.ways = ways
        self.line = line
        self.storage: list[OrderedDict] = [OrderedDict() for _ in range(sets)]

    def access(self, addr: int) -> bool:
        line_number = addr // self.line
        index = line_number % self.sets
        tag = line_number // self.sets
        bucket = self.storage[index]
        if tag in bucket:
            bucket.move_to_end(tag)
            return True
        bucket[tag] = True
        if len(bucket) > self.ways:
            bucket.popitem(last=False)
        return False


GEOMETRIES = st.sampled_from(
    [
        (1, 1, 16),
        (2, 2, 16),
        (4, 2, 32),
        (8, 4, 32),
        (16, 4, 64),
    ]
)


class TestDifferential:
    @settings(max_examples=80, deadline=None)
    @given(
        GEOMETRIES,
        st.lists(st.integers(min_value=0, max_value=0x3FFF), min_size=1, max_size=400),
    )
    def test_hit_miss_stream_matches_oracle(self, geometry, addresses):
        sets, ways, line = geometry
        config = CacheConfig(size_bytes=sets * ways * line, ways=ways, line_bytes=line)
        production = SetAssociativeCache(config)
        oracle = OracleCache(sets, ways, line)
        for i, addr in enumerate(addresses):
            expected = oracle.access(addr)
            actual = production.access(addr)
            assert actual == expected, f"divergence at access {i} (addr {addr:#x})"

    @settings(max_examples=40, deadline=None)
    @given(
        GEOMETRIES,
        st.lists(st.integers(min_value=0, max_value=0x3FFF), min_size=1, max_size=200),
    )
    def test_contains_matches_oracle_residency(self, geometry, addresses):
        sets, ways, line = geometry
        config = CacheConfig(size_bytes=sets * ways * line, ways=ways, line_bytes=line)
        production = SetAssociativeCache(config)
        oracle = OracleCache(sets, ways, line)
        for addr in addresses:
            oracle.access(addr)
            production.access(addr)
        for addr in addresses:
            line_number = addr // line
            index = line_number % sets
            tag = line_number // sets
            assert production.contains(addr) == (tag in oracle.storage[index])
