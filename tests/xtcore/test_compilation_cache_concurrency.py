"""CompilationCache consistency under the serving worker-pool usage pattern.

The estimation service hammers one :class:`CompilationCache` from
concurrent threads (inline pool) and inherits it across ``fork`` (process
pool), so the LRU bookkeeping has hard invariants to keep under races:

* ``hits + misses == lookups`` — no lookup is double- or un-counted;
* ``compilations == misses`` — exactly one lowering per (program, config)
  content pair, even when many threads request it at once;
* ``evictions == compilations - len(cache)`` and ``len <= maxsize`` —
  eviction accounting never drifts.
"""

from __future__ import annotations

import multiprocessing
import threading

import pytest

from repro.asm import assemble
from repro.xtcore import build_processor
from repro.xtcore.compiled import CompilationCache


def make_programs(count: int):
    """Distinct tiny programs (distinct digests) on the base ISA."""
    programs = []
    for index in range(count):
        source = f"main:\n    movi a2, {index + 1}\n    halt\n"
        programs.append(assemble(source, f"cc{index}"))
    return programs


@pytest.fixture(scope="module")
def config():
    return build_processor("cache-stress")


class TestThreadedStress:
    def test_counters_and_eviction_stay_consistent(self, config):
        cache = CompilationCache(maxsize=3)
        programs = make_programs(6)
        threads_n, rounds = 8, 40
        lookups = threads_n * rounds
        start = threading.Barrier(threads_n)
        errors: list[BaseException] = []

        def worker(seed: int) -> None:
            try:
                start.wait()
                for i in range(rounds):
                    # rotate through more programs than the cache holds, with
                    # per-thread phase shifts so threads contend on the same
                    # keys while the LRU constantly churns
                    program = programs[(seed + i) % len(programs)]
                    executable = cache.get_or_compile(config, program)
                    assert executable.program_digest == program.digest()
            except BaseException as exc:  # noqa: BLE001 — re-raised on the test thread
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors
        info = cache.info()
        assert info["hits"] + info["misses"] == lookups
        assert info["compilations"] == info["misses"]
        assert info["entries"] <= cache.maxsize
        assert info["evictions"] == info["compilations"] - info["entries"]

    def test_stampede_on_one_key_compiles_once(self, config):
        """All threads racing the same cold key get one compilation total."""
        cache = CompilationCache(maxsize=8)
        program = make_programs(1)[0]
        threads_n = 12
        start = threading.Barrier(threads_n)
        results = []
        lock = threading.Lock()

        def worker() -> None:
            start.wait()
            executable = cache.get_or_compile(config, program)
            with lock:
                results.append(executable)

        threads = [threading.Thread(target=worker) for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert len(results) == threads_n
        # every thread got the same cached object, compiled exactly once
        assert len({id(executable) for executable in results}) == 1
        assert cache.compilations == 1
        assert cache.misses == 1
        assert cache.hits == threads_n - 1


def _forked_child(config, programs, queue) -> None:
    """Runs in the forked child: the inherited cache must answer hits."""
    from repro.xtcore import compilation_cache

    cache = compilation_cache()
    before = cache.info()
    for program in programs:
        cache.get_or_compile(config, program)
    after = cache.info()
    queue.put(
        {
            "new_compilations": after["compilations"] - before["compilations"],
            "new_hits": after["hits"] - before["hits"],
        }
    )


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)
class TestForkInheritance:
    def test_prewarmed_entries_survive_fork(self, config):
        """The service prewarms pre-fork; children must hit, not recompile."""
        from repro.xtcore import compilation_cache

        cache = compilation_cache()
        programs = make_programs(3)
        for program in programs:
            cache.get_or_compile(config, program)  # parent-side prewarm

        context = multiprocessing.get_context("fork")
        queue = context.Queue()
        child = context.Process(target=_forked_child, args=(config, programs, queue))
        child.start()
        outcome = queue.get(timeout=60)
        child.join(timeout=60)
        assert child.exitcode == 0
        assert outcome["new_compilations"] == 0
        assert outcome["new_hits"] == len(programs)
