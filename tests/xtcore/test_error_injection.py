"""Failure-injection tests: the simulator's behaviour on broken inputs."""

import pytest

from repro.asm import assemble
from repro.isa import BreakpointHit
from repro.tie import TieSpec, compile_spec
from repro.xtcore import SimulationError, SimulationLimitExceeded, Simulator, build_processor


class TestControlFlowFaults:
    def test_jump_into_data_section(self):
        config = build_processor("fault")
        program = assemble(
            "    .data\nd: .word 0\n    .text\nmain:\n    la a2, d\n    jx a2\n    halt\n",
            "jump-to-data",
            isa=config.isa,
        )
        with pytest.raises(SimulationError, match="not a valid instruction address"):
            Simulator(config, program).run()

    def test_misaligned_indirect_jump(self):
        config = build_processor("fault")
        program = assemble(
            "main:\n    movi a2, 2\n    jx a2\n    halt\n", "misaligned", isa=config.isa
        )
        with pytest.raises(SimulationError):
            Simulator(config, program).run()

    def test_runaway_loop_budget(self):
        config = build_processor("fault")
        program = assemble("main:\nspin:\n    j spin\n", "spin", isa=config.isa)
        with pytest.raises(SimulationLimitExceeded, match="exceeded 500"):
            Simulator(config, program, max_instructions=500).run()

    def test_break_instruction_surfaces(self):
        config = build_processor("fault")
        program = assemble("main:\n    nop\n    break\n    halt\n", "brk", isa=config.isa)
        with pytest.raises(BreakpointHit) as info:
            Simulator(config, program).run()
        assert info.value.pc == 4

    def test_fall_off_end_of_code(self):
        config = build_processor("fault")
        program = assemble("main:\n    nop\n    nop\n", "falloff", isa=config.isa)
        with pytest.raises(SimulationError, match="not a valid instruction address"):
            Simulator(config, program).run()


class TestCustomInstructionFaults:
    def test_raising_semantics_propagates(self):
        spec = TieSpec("boom", fmt="R2")
        spec.result(spec.source("rs"))
        impl = compile_spec(spec)

        def exploding(ctx, ins):
            raise RuntimeError("datapath exploded")

        # swap the compiled semantics for a raising one (frozen dataclass)
        object.__setattr__(impl.instruction, "semantics", exploding)
        from repro.xtcore import ProcessorConfig

        config = ProcessorConfig(name="boomcfg", extensions=(impl,))
        program = assemble("main:\n    boom a2, a3\n    halt\n", "boom", isa=config.isa)
        with pytest.raises(RuntimeError, match="datapath exploded"):
            Simulator(config, program).run()

    def test_trace_not_partially_corrupted_on_fault(self):
        config = build_processor("fault")
        program = assemble("main:\n    movi a2, 1\n    break\n    halt\n", "brk2", isa=config.isa)
        simulator = Simulator(config, program, collect_trace=True)
        with pytest.raises(BreakpointHit):
            simulator.run()
        # a fresh run object is produced each time; a second run starts clean
        program_ok = assemble("main:\n    movi a2, 1\n    halt\n", "ok", isa=config.isa)
        result = Simulator(config, program_ok, collect_trace=True).run()
        assert len(result.trace) == 2
