"""Instruction-set simulator tests: timing model, events, traces, stats."""

import pytest

from repro.asm import assemble
from repro.isa import InstructionClass
from repro.tie import TieSpec
from repro.xtcore import (
    DEFAULT_STACK_TOP,
    CacheConfig,
    ProcessorConfig,
    SimulationError,
    SimulationLimitExceeded,
    Simulator,
    build_processor,
    class_mix,
    simulate,
)


def run(source, config=None, **kwargs):
    config = config or build_processor("iss-test")
    program = assemble(source, "iss-test", isa=config.isa)
    return simulate(config, program, **kwargs)


class TestBasicExecution:
    def test_straightline(self):
        result = run("main:\n    movi a2, 1\n    movi a3, 2\n    add a4, a2, a3\n    halt\n")
        assert result.state.get(4) == 3
        assert result.instructions == 4

    def test_reset_conventions(self):
        result = run("main:\n    halt\n")
        assert result.state.get(1) == DEFAULT_STACK_TOP

    def test_ret_from_main_exits(self):
        # reset plants EXIT_ADDRESS in the link register
        result = run("main:\n    movi a2, 9\n    ret\n")
        assert result.state.get(2) == 9
        assert result.instructions == 2

    def test_data_loaded(self):
        result = run(
            "    .data\nv: .word 77\n    .text\nmain:\n    la a2, v\n    l32i a3, a2, 0\n    halt\n"
        )
        assert result.state.get(3) == 77

    def test_word_helper(self):
        result = run(
            "    .data\nout: .word 0\n    .text\nmain:\n    movi a2, 5\n    la a3, out\n    s32i a2, a3, 0\n    halt\n"
        )
        assert result.word("out") == 5
        assert result.words("out", 1) == [5]

    def test_invalid_pc_raises(self):
        config = build_processor("iss-test")
        program = assemble("main:\n    j main+0x100\n    halt\n", "bad", isa=config.isa)
        with pytest.raises(SimulationError, match="not a valid instruction address"):
            Simulator(config, program).run()

    def test_instruction_budget(self):
        with pytest.raises(SimulationLimitExceeded):
            run("main:\n    j main\n", max_instructions=100)

    def test_unknown_custom_instruction_rejected_at_decode(self):
        extended = build_processor("ext", [_mul16()])
        program = assemble("main:\n    cmul16 a2, a3, a4\n    halt\n", "p", isa=extended.isa)
        base = build_processor("plain")
        with pytest.raises(SimulationError, match="not in processor"):
            Simulator(base, program)

    def test_runtime_seconds(self):
        result = run("main:\n    halt\n")
        assert result.runtime_seconds == pytest.approx(
            result.cycles / (187.0 * 1e6)
        )


class TestCycleAccounting:
    def test_single_cycle_arith(self):
        # 10 movi/add instructions, no branches: 10 arith cycles
        body = "\n".join("    addi a2, a2, 1" for _ in range(10))
        result = run(f"main:\n{body}\n    halt\n")
        assert result.stats.class_cycles[InstructionClass.ARITH] == 10

    def test_branch_taken_includes_penalty(self):
        config = build_processor("iss-test")
        result = run(
            "main:\n    movi a2, 5\nloop:\n    addi a2, a2, -1\n    bnez a2, loop\n    halt\n",
            config=config,
        )
        timing = config.timing
        taken = 4  # loop iterations that branch back
        untaken = 1
        assert result.stats.class_counts[InstructionClass.BRANCH_TAKEN] == taken
        assert result.stats.class_counts[InstructionClass.BRANCH_UNTAKEN] == untaken
        assert result.stats.class_cycles[InstructionClass.BRANCH_TAKEN] == taken * (
            1 + timing.branch_taken_penalty
        )
        assert result.stats.class_cycles[InstructionClass.BRANCH_UNTAKEN] == untaken

    def test_jump_includes_flush_penalty(self):
        config = build_processor("iss-test")
        result = run("main:\n    j skip\nskip:\n    halt\n", config=config)
        assert result.stats.class_cycles[InstructionClass.JUMP] == 1 + config.timing.branch_taken_penalty

    def test_total_cycles_decomposition(self):
        config = build_processor("iss-test")
        result = run(
            """
    .data
arr: .word 1, 2, 3, 4
    .text
main:
    la a2, arr
    movi a3, 4
loop:
    l32i a4, a2, 0
    add a5, a5, a4
    addi a2, a2, 4
    addi a3, a3, -1
    bnez a3, loop
    halt
""",
            config=config,
        )
        stats = result.stats
        expected = (
            stats.base_class_cycle_total
            + stats.system_cycles
            + sum(stats.custom_cycles.values())
            + stats.interlocks * config.timing.interlock_stall
            + stats.icache_misses * config.icache.miss_penalty
            + stats.dcache_misses * config.dcache.miss_penalty
            + stats.uncached_fetches * config.timing.uncached_fetch_penalty
        )
        assert stats.total_cycles == expected


class TestEvents:
    def test_load_use_interlock_detected(self):
        result = run(
            "    .data\nv: .word 1\n    .text\nmain:\n    la a2, v\n    l32i a3, a2, 0\n    add a4, a3, a3\n    halt\n"
        )
        assert result.stats.interlocks == 1

    def test_no_interlock_with_gap(self):
        result = run(
            "    .data\nv: .word 1\n    .text\nmain:\n    la a2, v\n    l32i a3, a2, 0\n    nop\n    add a4, a3, a3\n    halt\n"
        )
        assert result.stats.interlocks == 0

    def test_cold_icache_misses(self):
        # 9 sequential instructions at 32B lines -> 2 lines -> 2 cold misses
        body = "\n".join("    nop" for _ in range(8))
        result = run(f"main:\n{body}\n    halt\n")
        assert result.stats.icache_misses == 2

    def test_dcache_misses_cold_and_hit(self):
        result = run(
            "    .data\nv: .word 1\n    .text\nmain:\n    la a2, v\n    l32i a3, a2, 0\n    l32i a4, a2, 0\n    halt\n"
        )
        assert result.stats.dcache_misses == 1

    def test_uncached_fetch_counted(self):
        result = run(
            "main:\n    j u\n    .utext\nu:\n    nop\n    nop\n    j b\n    .text\nb:\n    halt\n"
        )
        assert result.stats.uncached_fetches == 3  # nop, nop, j
        assert result.stats.icache_misses >= 1  # cached part still misses cold

    def test_icache_conflict_thrash(self):
        # tiny I$ (2 sets, 1 way, 16B lines): two blocks 32B apart alias
        config = ProcessorConfig(
            name="tiny-icache",
            icache=CacheConfig(size_bytes=32, ways=1, line_bytes=16, miss_penalty=5),
        )
        result = run(
            """
main:
    movi a2, 10
loop:
    j far
    .org 0x40
far:
    addi a2, a2, -1
    bnez a2, loop
    halt
""",
            config=config,
        )
        # every iteration re-misses both lines
        assert result.stats.icache_misses >= 15


class TestCustomInstructions:
    def test_custom_cycles_and_counts(self):
        config = build_processor("ext", [_mul16()])
        result = run(
            "main:\n    movi a2, 3\n    movi a3, 7\n    cmul16 a4, a2, a3\n    cmul16 a5, a4, a3\n    halt\n",
            config=config,
        )
        assert result.state.get(4) == 21
        assert result.stats.custom_counts == {"cmul16": 2}
        assert result.stats.custom_gpr_cycles == 2

    def test_non_gpr_custom_does_not_count_side_effect(self):
        from repro.tie import TieState

        shared = TieState("sacc", width=8, init=3)
        bump = TieSpec("bump", fmt="N")
        bump.write_state(shared, bump.add(bump.read_state(shared), bump.const(1, 8), width=8))
        read = TieSpec("readacc", fmt="RD1")
        read.result(read.zero_extend(read.read_state(shared), 32))
        config = build_processor("stateonly", [bump, read])
        result = run("main:\n    bump\n    bump\n    readacc a4\n    halt\n", config=config)
        assert result.state.get(4) == 5
        # bump never touches the GPR file; readacc writes it
        assert result.stats.custom_gpr_cycles == 1

    def test_base_bus_cycles_exclude_custom_and_no_source_ops(self):
        config = build_processor("ext", [_mul16()])
        result = run(
            "main:\n    movi a2, 3\n    add a3, a2, a2\n    cmul16 a4, a2, a3\n    nop\n    halt\n",
            config=config,
        )
        # movi (LI: no sources), nop, halt, cmul16 do not drive the bus; add does
        assert result.stats.base_bus_cycles == 1


class TestTraces:
    def test_trace_only_when_requested(self):
        result = run("main:\n    halt\n")
        assert result.trace is None
        traced = run("main:\n    halt\n", collect_trace=True)
        assert traced.trace is not None and len(traced.trace) == 1

    def test_trace_records_operands_and_results(self):
        result = run(
            "main:\n    movi a2, 6\n    movi a3, 7\n    add a4, a2, a3\n    halt\n",
            collect_trace=True,
        )
        record = result.trace[2]
        assert record.mnemonic == "add"
        assert record.operands == (6, 7)
        assert record.result == 13
        assert record.iclass is InstructionClass.ARITH

    def test_trace_memory_address(self):
        result = run(
            "    .data\nv: .word 9\n    .text\nmain:\n    la a2, v\n    l32i a3, a2, 0\n    halt\n",
            collect_trace=True,
        )
        load_record = [r for r in result.trace if r.mnemonic == "l32i"][0]
        assert load_record.mem_addr == result.program.symbol("v")
        assert load_record.dcache_miss

    def test_branch_trace_resolved_class(self):
        result = run(
            "main:\n    movi a2, 1\n    bnez a2, t\nt:\n    beqz a2, u\nu:\n    halt\n",
            collect_trace=True,
        )
        taken = [r for r in result.trace if r.mnemonic == "bnez"][0]
        untaken = [r for r in result.trace if r.mnemonic == "beqz"][0]
        assert taken.iclass is InstructionClass.BRANCH_TAKEN
        assert untaken.iclass is InstructionClass.BRANCH_UNTAKEN

    def test_trace_repr_flags(self):
        result = run("main:\n    halt\n", collect_trace=True)
        assert "halt" in repr(result.trace[0])


class TestStats:
    def test_mnemonic_counts(self):
        result = run("main:\n    nop\n    nop\n    halt\n")
        assert result.stats.mnemonic_counts == {"nop": 2, "halt": 1}

    def test_class_mix_sums_to_one(self):
        result = run(
            "main:\n    movi a2, 3\nl:\n    addi a2, a2, -1\n    bnez a2, l\n    halt\n"
        )
        mix = class_mix(result.stats)
        assert sum(mix.values()) == pytest.approx(1.0)

    def test_merge(self):
        a = run("main:\n    movi a2, 1\n    halt\n").stats
        b = run("main:\n    nop\n    halt\n").stats
        merged = a.merge(b)
        assert merged.total_instructions == a.total_instructions + b.total_instructions
        assert merged.mnemonic_counts["halt"] == 2

    def test_summary_text(self):
        stats = run("main:\n    halt\n").stats
        assert "instructions: 1" in stats.summary()


def _mul16():
    spec = TieSpec("cmul16", fmt="R3")
    a = spec.source("rs", width=16)
    b = spec.source("rt", width=16)
    spec.result(spec.tie_mult(a, b))
    return spec


class TestPerformanceSummary:
    def test_cpi(self):
        result = run("main:\n    nop\n    nop\n    halt\n")
        assert result.cpi == pytest.approx(result.cycles / 3)

    def test_cpi_empty_guard(self):
        from repro.xtcore.iss import SimulationResult
        from repro.xtcore import ExecutionStats, build_processor
        from repro.asm import assemble

        program = assemble("main:\n    halt\n", "empty")
        empty = SimulationResult(
            program=program,
            config=build_processor("x"),
            stats=ExecutionStats(),
            state=None,
        )
        assert empty.cpi == 0.0

    def test_summary_fields(self):
        result = run(
            "    .data\nv: .word 1\n    .text\nmain:\n    la a2, v\n    l32i a3, a2, 0\n    add a4, a3, a3\n    halt\n"
        )
        text = result.performance_summary()
        assert "CPI" in text
        assert "MHz" in text
        assert "% in" in text
