"""Unit tests for batched multi-config simulation (repro.xtcore.batch).

``run_batch`` must be bitwise identical — stats and final state — to
running each config alone through the fast dispatch path, and must
refuse batches that span more than one semantic partition.
"""

import dataclasses

import pytest

from repro.asm import assemble
from repro.isa import base_isa
from repro.xtcore import (
    SimulationError,
    SimulationLimitExceeded,
    Simulator,
    build_processor,
    run_batch,
    semantic_fingerprint,
)

SOURCE = """\
    .data
buf:
    .word 11, 22, 33, 44, 55, 66, 77, 88
    .text
main:
    la a10, buf
    movi a11, 6
    movi a2, 0
loop:
    l32i a3, a10, 0
    add a2, a2, a3
    s32i a2, a10, 4
    addi a11, a11, -1
    bnez a11, loop
    halt
"""


@pytest.fixture()
def program():
    return assemble(SOURCE, "batch-loop", isa=base_isa())


def _cache_variant(base, *, line_bytes, size_bytes=None, miss_penalty=None):
    return dataclasses.replace(
        base,
        line_bytes=line_bytes,
        size_bytes=size_bytes if size_bytes is not None else base.size_bytes,
        miss_penalty=miss_penalty if miss_penalty is not None else base.miss_penalty,
    )


def heterogeneous_configs():
    """Four configs in one semantic partition with diverse cache/timing."""
    base = build_processor("xt-batch-base", [])
    variants = [base]
    variants.append(
        dataclasses.replace(
            base,
            name="xt-batch-small-lines",
            icache=_cache_variant(base.icache, line_bytes=16),
            dcache=_cache_variant(base.dcache, line_bytes=16, miss_penalty=20),
        )
    )
    variants.append(
        dataclasses.replace(
            base,
            name="xt-batch-big-lines",
            icache=_cache_variant(base.icache, line_bytes=64, size_bytes=8192),
            dcache=_cache_variant(base.dcache, line_bytes=64),
        )
    )
    variants.append(
        dataclasses.replace(base, name="xt-batch-fast-clock", clock_mhz=400.0)
    )
    return variants


class TestSemanticFingerprint:
    def test_cache_and_clock_do_not_split_partitions(self):
        configs = heterogeneous_configs()
        fingerprints = {semantic_fingerprint(c) for c in configs}
        assert len(fingerprints) == 1

    def test_register_count_splits_partitions(self):
        base = build_processor("xt-fp", [])
        other = dataclasses.replace(base, num_registers=32)
        assert semantic_fingerprint(base) != semantic_fingerprint(other)

    def test_stable_across_rebuilds(self):
        assert semantic_fingerprint(build_processor("a", [])) == semantic_fingerprint(
            build_processor("b", [])
        )


class TestRunBatch:
    def test_empty_batch(self, program):
        assert run_batch([], program) == []

    def test_matches_solo_runs(self, program):
        configs = heterogeneous_configs()
        results = run_batch(configs, program)
        assert len(results) == len(configs)
        for config, result in zip(configs, results):
            solo = Simulator(config, program, engine="compiled").run()
            assert result.engine == "batch"
            assert result.config is config
            for field in dataclasses.fields(solo.stats):
                a = getattr(solo.stats, field.name)
                b = getattr(result.stats, field.name)
                assert a == b, f"{config.name}: stats.{field.name}: {a!r} != {b!r}"
            assert result.state.regs == solo.state.regs
            assert result.state.halted

    def test_results_share_final_state(self, program):
        results = run_batch(heterogeneous_configs(), program)
        assert all(r.state is results[0].state for r in results)

    def test_partition_mismatch_rejected(self, program):
        base = build_processor("xt-mix", [])
        other = dataclasses.replace(base, num_registers=32)
        with pytest.raises(SimulationError, match="semantic"):
            run_batch([base, other], program)

    def test_budget_faults_once_for_the_batch(self, program):
        with pytest.raises(SimulationLimitExceeded):
            run_batch(heterogeneous_configs(), program, max_instructions=5)
