"""Unit tests for the block-level superop tier.

The differential suites (tests/integration/test_dispatch_differential.py)
pin bitwise equivalence; these tests pin the *structure*: block
discovery, fused-closure presence, engine selection, and the superop
artifact tier of the compilation cache.
"""

import pytest

from repro.asm import assemble
from repro.isa import base_isa
from repro.obs.tally import RunTallyObserver
from repro.xtcore import (
    Simulator,
    build_processor,
    compile_program,
    compile_superops,
)
from repro.xtcore.compiled import (
    BLK_FN,
    BLK_LEN,
    BLK_NEXT_IDX,
    BLK_START,
    CompilationCache,
    OP_INTERIOR,
)

LOOP_SOURCE = """\
    .text
main:
    movi a2, 0
    movi a3, 10
loop:
    addi a2, a2, 1
    add a4, a2, a2
    sub a5, a4, a2
    bne a2, a3, loop
    halt
"""


@pytest.fixture()
def config():
    return build_processor("xt-superop-test", [])


@pytest.fixture()
def program():
    return assemble(LOOP_SOURCE, "superop-loop", isa=base_isa())


class TestCompileSuperops:
    def test_block_discovery(self, config, program):
        executable = compile_program(config, program)
        superops = compile_superops(executable, config)
        assert len(superops) >= 2  # entry run and loop body at minimum
        assert superops.program_digest == executable.program_digest
        assert superops.config_fingerprint == executable.config_fingerprint
        # block_at maps exactly the leaders that head each block
        for block in superops.blocks:
            assert superops.block_at[block[BLK_START]] is block
            assert block[BLK_LEN] >= 1
        assert superops.fused_ops <= len(executable.ops)
        assert "blocks over" in repr(superops)

    def test_blocks_cover_only_interior_ops(self, config, program):
        executable = compile_program(config, program)
        superops = compile_superops(executable, config)
        for block in superops.blocks:
            for i in range(block[BLK_START], block[BLK_START] + block[BLK_LEN]):
                assert executable.ops[i][OP_INTERIOR]

    def test_fused_closures_present_for_base_isa(self, config, program):
        # every op in this program is inlinable, so every block carries a
        # fused closure (non-inlinable ops would leave BLK_FN exercising
        # the bound-callable path, still non-None)
        executable = compile_program(config, program)
        superops = compile_superops(executable, config)
        assert all(callable(block[BLK_FN]) for block in superops.blocks)

    def test_fall_through_links(self, config, program):
        executable = compile_program(config, program)
        superops = compile_superops(executable, config)
        for block in superops.blocks:
            nxt = block[BLK_NEXT_IDX]
            assert nxt == -1 or 0 <= nxt < len(executable.ops)


class TestEngineSelection:
    def test_unknown_engine_rejected(self, config, program):
        with pytest.raises(ValueError, match="unknown engine"):
            Simulator(config, program, engine="warp")

    @pytest.mark.parametrize(
        "engine,expected",
        [("auto", "superop"), ("reference", "reference"),
         ("compiled", "compiled"), ("superop", "superop")],
    )
    def test_result_engine_field(self, config, program, engine, expected):
        result = Simulator(config, program, engine=engine).run()
        assert result.engine == expected
        assert result.state.halted

    def test_trace_deoptimizes_to_compiled(self, config, program):
        sim = Simulator(config, program, collect_trace=True, engine="superop")
        assert sim.resolve_engine() == "compiled"
        result = sim.run()
        assert result.engine == "compiled"
        assert result.trace is not None

    def test_run_scoped_observer_keeps_superop(self, config, program):
        tally = RunTallyObserver()
        result = Simulator(config, program, observers=[tally]).run()
        assert result.engine == "superop"
        snapshot = tally.snapshot()
        assert snapshot["runs_started"] == 1
        assert snapshot["runs_finished"] == 1
        assert snapshot["instructions"] == result.stats.total_instructions
        assert snapshot["cycles"] == result.stats.total_cycles


class TestSuperopCacheTier:
    def test_tier_counters(self, config, program):
        cache = CompilationCache(maxsize=4)
        first = cache.get_or_compile_superops(config, program)
        again = cache.get_or_compile_superops(config, program)
        assert again is first
        info = cache.info()
        assert info["tiers"]["superop"] == {
            "entries": 1,
            "hits": 1,
            "misses": 1,
            "compilations": 1,
            "evictions": 0,
        }
        # the ops tier was populated on the way (miss then internal hit)
        assert info["tiers"]["ops"]["entries"] == 1

    def test_tier_eviction_and_clear(self, config):
        cache = CompilationCache(maxsize=1)
        isa = base_isa()
        for name, bound in (("one", 10), ("two", 11)):
            prog = assemble(
                LOOP_SOURCE.replace("movi a3, 10", f"movi a3, {bound}"),
                name,
                isa=isa,
            )
            cache.get_or_compile_superops(config, prog)
        info = cache.info()
        assert info["tiers"]["superop"]["evictions"] == 1
        assert info["tiers"]["superop"]["entries"] == 1
        cache.clear()
        info = cache.info()
        assert info["tiers"]["superop"] == {
            "entries": 0,
            "hits": 0,
            "misses": 0,
            "compilations": 0,
            "evictions": 0,
        }
