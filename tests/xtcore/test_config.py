"""Processor configuration tests."""

import dataclasses

import pytest

from repro.tie import TieSpec
from repro.xtcore import CacheConfig, ProcessorConfig, TimingConfig, build_processor


def _mul_spec(name="cmul"):
    spec = TieSpec(name, fmt="R3")
    a = spec.source("rs", width=16)
    b = spec.source("rt", width=16)
    spec.result(spec.tie_mult(a, b))
    return spec


def _acc_specs():
    from repro.tie import TieState

    shared = TieState("cacc", width=24)
    writer = TieSpec("cwr", fmt="RS1")
    writer.write_state(shared, writer.source("rs", width=24))
    reader = TieSpec("crd", fmt="RD1")
    reader.result(reader.zero_extend(reader.read_state(shared), 32))
    return [writer, reader]


class TestDefaults:
    def test_paper_configuration(self):
        config = ProcessorConfig()
        assert config.name == "xt1040"
        assert config.clock_mhz == 187.0
        assert config.num_registers == 64
        assert config.icache.size_bytes == 16 * 1024
        assert config.dcache.ways == 4
        assert config.extensions == ()

    def test_base_isa_exposed(self):
        config = ProcessorConfig()
        assert "add" in config.isa
        assert len(config.isa) >= 80

    def test_validation(self):
        with pytest.raises(ValueError):
            ProcessorConfig(num_registers=65)
        with pytest.raises(ValueError):
            ProcessorConfig(clock_mhz=0)
        with pytest.raises(ValueError):
            TimingConfig(branch_taken_penalty=-1)


class TestExtensions:
    def test_build_processor_compiles_specs(self):
        config = build_processor("ext", [_mul_spec()])
        assert "cmul" in config.isa
        assert config.extension_for("cmul") is not None
        assert config.extension_for("nothere") is None

    def test_duplicate_mnemonics_rejected(self):
        from repro.tie import compile_spec

        impl = compile_spec(_mul_spec())
        with pytest.raises(ValueError, match="duplicate"):
            ProcessorConfig(name="dup", extensions=(impl, impl))

    def test_custom_instances_deduplicate_shared_state(self):
        config = build_processor("shared", _acc_specs())
        names = [inst.name for inst in config.custom_instances]
        assert names.count("state/cacc") == 1

    def test_state_inits_collected(self):
        from repro.tie import TieState

        spec = TieSpec("init", fmt="RD1")
        acc = spec.use_state(TieState("iacc", width=8, init=42))
        spec.result(spec.zero_extend(spec.read_state(acc), 32))
        config = build_processor("inits", [spec])
        assert config.state_inits == {"iacc": 42}

    def test_with_extensions_returns_new_config(self):
        base = ProcessorConfig()
        extended = base.with_extensions("plus", [_mul_spec()])
        assert base.extensions == ()
        assert len(extended.extensions) == 1
        assert extended.name == "plus"

    def test_describe_mentions_extensions(self):
        config = build_processor("described", [_mul_spec()])
        text = config.describe()
        assert "cmul" in text
        assert "16KB" in text

    def test_build_processor_without_specs(self):
        config = build_processor("plain")
        assert config.extensions == ()
        assert config.name == "plain"

    def test_replace_keeps_isa_cache_fresh(self):
        config = build_processor("a", [_mul_spec()])
        renamed = dataclasses.replace(config, name="b")
        assert "cmul" in renamed.isa

    def test_small_cache_config(self):
        config = ProcessorConfig(
            icache=CacheConfig(size_bytes=1024, ways=2, line_bytes=16),
            dcache=CacheConfig(size_bytes=2048, ways=2, line_bytes=32),
        )
        assert config.icache.num_sets == 32
        assert config.dcache.num_sets == 32


class TestFingerprint:
    def test_stable_across_equivalent_builds(self):
        one = build_processor("a", [_mul_spec()])
        two = build_processor("a", [_mul_spec()])
        assert one is not two
        assert one.fingerprint() == two.fingerprint()

    def test_hex_sha256_shape(self):
        fingerprint = ProcessorConfig().fingerprint()
        assert len(fingerprint) == 64
        assert set(fingerprint) <= set("0123456789abcdef")

    def test_name_is_excluded(self):
        # content addressing: the label a consumer gave the config must
        # not change what hardware it describes
        config = build_processor("a", [_mul_spec()])
        renamed = dataclasses.replace(config, name="b")
        assert config.fingerprint() == renamed.fingerprint()

    def test_base_knobs_are_included(self):
        base = ProcessorConfig()
        assert (
            dataclasses.replace(base, clock_mhz=200.0).fingerprint()
            != base.fingerprint()
        )
        assert (
            dataclasses.replace(
                base, dcache=CacheConfig(size_bytes=8 * 1024)
            ).fingerprint()
            != base.fingerprint()
        )
        assert (
            dataclasses.replace(base, num_registers=32).fingerprint()
            != base.fingerprint()
        )

    def test_extensions_are_included(self):
        plain = build_processor("p")
        extended = build_processor("p", [_mul_spec()])
        accum = build_processor("p", _acc_specs())
        prints = {c.fingerprint() for c in (plain, extended, accum)}
        assert len(prints) == 3

    def test_spec_content_not_mnemonic_spelling(self):
        # same mnemonic, different datapath width -> different hardware
        def _wide():
            spec = TieSpec("cmul", fmt="R3")
            a = spec.source("rs", width=32)
            b = spec.source("rt", width=32)
            spec.result(spec.tie_mult(a, b))
            return spec

        narrow = build_processor("p", [_mul_spec()])
        wide = build_processor("p", [_wide()])
        assert narrow.fingerprint() != wide.fingerprint()

    def test_stable_across_processes(self):
        import subprocess
        import sys

        code = (
            "import sys; sys.path.insert(0, 'src');"
            "from repro.xtcore import build_processor;"
            "from repro.tie import TieSpec;"
            "spec = TieSpec('cmul', fmt='R3');"
            "spec.result(spec.tie_mult(spec.source('rs', width=16),"
            " spec.source('rt', width=16)));"
            "print(build_processor('a', [spec]).fingerprint())"
        )
        runs = {
            subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                check=True,
                cwd=str(__import__("pathlib").Path(__file__).resolve().parents[2]),
            ).stdout.strip()
            for _ in range(2)
        }
        assert len(runs) == 1
        assert runs == {build_processor("a", [_mul_spec()]).fingerprint()}
