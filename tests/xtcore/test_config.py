"""Processor configuration tests."""

import dataclasses

import pytest

from repro.tie import TieSpec
from repro.xtcore import CacheConfig, ProcessorConfig, TimingConfig, build_processor


def _mul_spec(name="cmul"):
    spec = TieSpec(name, fmt="R3")
    a = spec.source("rs", width=16)
    b = spec.source("rt", width=16)
    spec.result(spec.tie_mult(a, b))
    return spec


def _acc_specs():
    from repro.tie import TieState

    shared = TieState("cacc", width=24)
    writer = TieSpec("cwr", fmt="RS1")
    writer.write_state(shared, writer.source("rs", width=24))
    reader = TieSpec("crd", fmt="RD1")
    reader.result(reader.zero_extend(reader.read_state(shared), 32))
    return [writer, reader]


class TestDefaults:
    def test_paper_configuration(self):
        config = ProcessorConfig()
        assert config.name == "xt1040"
        assert config.clock_mhz == 187.0
        assert config.num_registers == 64
        assert config.icache.size_bytes == 16 * 1024
        assert config.dcache.ways == 4
        assert config.extensions == ()

    def test_base_isa_exposed(self):
        config = ProcessorConfig()
        assert "add" in config.isa
        assert len(config.isa) >= 80

    def test_validation(self):
        with pytest.raises(ValueError):
            ProcessorConfig(num_registers=65)
        with pytest.raises(ValueError):
            ProcessorConfig(clock_mhz=0)
        with pytest.raises(ValueError):
            TimingConfig(branch_taken_penalty=-1)


class TestExtensions:
    def test_build_processor_compiles_specs(self):
        config = build_processor("ext", [_mul_spec()])
        assert "cmul" in config.isa
        assert config.extension_for("cmul") is not None
        assert config.extension_for("nothere") is None

    def test_duplicate_mnemonics_rejected(self):
        from repro.tie import compile_spec

        impl = compile_spec(_mul_spec())
        with pytest.raises(ValueError, match="duplicate"):
            ProcessorConfig(name="dup", extensions=(impl, impl))

    def test_custom_instances_deduplicate_shared_state(self):
        config = build_processor("shared", _acc_specs())
        names = [inst.name for inst in config.custom_instances]
        assert names.count("state/cacc") == 1

    def test_state_inits_collected(self):
        from repro.tie import TieState

        spec = TieSpec("init", fmt="RD1")
        acc = spec.use_state(TieState("iacc", width=8, init=42))
        spec.result(spec.zero_extend(spec.read_state(acc), 32))
        config = build_processor("inits", [spec])
        assert config.state_inits == {"iacc": 42}

    def test_with_extensions_returns_new_config(self):
        base = ProcessorConfig()
        extended = base.with_extensions("plus", [_mul_spec()])
        assert base.extensions == ()
        assert len(extended.extensions) == 1
        assert extended.name == "plus"

    def test_describe_mentions_extensions(self):
        config = build_processor("described", [_mul_spec()])
        text = config.describe()
        assert "cmul" in text
        assert "16KB" in text

    def test_build_processor_without_specs(self):
        config = build_processor("plain")
        assert config.extensions == ()
        assert config.name == "plain"

    def test_replace_keeps_isa_cache_fresh(self):
        config = build_processor("a", [_mul_spec()])
        renamed = dataclasses.replace(config, name="b")
        assert "cmul" in renamed.isa

    def test_small_cache_config(self):
        config = ProcessorConfig(
            icache=CacheConfig(size_bytes=1024, ways=2, line_bytes=16),
            dcache=CacheConfig(size_bytes=2048, ways=2, line_bytes=32),
        )
        assert config.icache.num_sets == 32
        assert config.dcache.num_sets == 32
