"""Unit tests for the compile-and-dispatch layer (repro.xtcore.compiled)."""

import pytest

from repro.asm import assemble
from repro.obs import DEFAULT_MAX_INSTRUCTIONS as OBS_DEFAULT
from repro.xtcore import (
    DEFAULT_MAX_INSTRUCTIONS,
    CompilationCache,
    SimulationError,
    Simulator,
    build_processor,
    compilation_cache,
    compile_program,
    describe_invalid_pc,
)
from repro.xtcore.compiled import (
    OP_CACHED,
    OP_FALL_IDX,
    OP_ISSUE_TAKEN,
    OP_ISSUE_UNTAKEN,
    OP_MNEMONIC,
)

SOURCE = """
main:
    movi a2, 3
loop:
    addi a2, a2, -1
    bnez a2, loop
    j out
    .utext
unreached:
    nop
    .text
out:
    halt
"""


@pytest.fixture()
def config():
    return build_processor("xt-compiled-test")


@pytest.fixture()
def program(config):
    return assemble(SOURCE, "compiled-test", isa=config.isa)


class TestExecutableProgram:
    def test_index_addressing_and_fall_through(self, config, program):
        executable = compile_program(config, program)
        assert len(executable) == len(program.instructions)
        for index, addr in enumerate(executable.addrs):
            assert executable.pc_to_index[addr] == index
            assert executable.index_of(addr) == index
            op = executable.ops[index]
            fall = executable.pc_to_index.get(addr + 4, -1)
            assert op[OP_FALL_IDX] == fall
        assert executable.index_of(0xDEAD_BEE0) == -1

    def test_uncached_flag_follows_utext_ranges(self, config, program):
        executable = compile_program(config, program)
        by_mnemonic = {
            op[OP_MNEMONIC]: op[OP_CACHED] for op in executable.ops
        }
        assert by_mnemonic["nop"] is False  # lives in the .utext region
        assert by_mnemonic["movi"] is True

    def test_branch_timing_is_pre_resolved(self, config, program):
        executable = compile_program(config, program)
        branch = next(op for op in executable.ops if op[OP_MNEMONIC] == "bnez")
        penalty = config.timing.branch_taken_penalty
        assert branch[OP_ISSUE_TAKEN] == branch[OP_ISSUE_UNTAKEN] + penalty

    def test_unknown_mnemonic_raises_simulation_error(self, config):
        # assemble against an extended ISA, compile against the base core
        from repro.programs.extensions import mul16_spec
        from repro.xtcore import build_processor as build

        extended = build("xt-ext", [mul16_spec()])
        src = "main:\n    mul16 a2, a3, a4\n    halt\n"
        program = assemble(src, "ext-only", isa=extended.isa)
        with pytest.raises(SimulationError, match="not in processor"):
            compile_program(config, program)


class TestProgramDigest:
    def test_stable_and_name_independent(self, config):
        src = "main:\n    movi a2, 7\n    halt\n"
        a = assemble(src, "name-a", isa=config.isa)
        b = assemble(src, "name-b", isa=config.isa)
        assert a.digest() == a.digest()
        assert a.digest() == b.digest()

    def test_content_sensitive(self, config):
        a = assemble("main:\n    movi a2, 7\n    halt\n", "p", isa=config.isa)
        b = assemble("main:\n    movi a2, 8\n    halt\n", "p", isa=config.isa)
        assert a.digest() != b.digest()


class TestCompilationCache:
    def test_hit_miss_counters(self, config, program):
        cache = CompilationCache()
        first = cache.get_or_compile(config, program)
        again = cache.get_or_compile(config, program)
        assert first is again
        assert cache.info() == {
            "entries": 1,
            "maxsize": 256,
            "hits": 1,
            "misses": 1,
            "compilations": 1,
            "evictions": 0,
            "tiers": {
                "ops": {
                    "entries": 1,
                    "hits": 1,
                    "misses": 1,
                    "compilations": 1,
                    "evictions": 0,
                },
                "superop": {
                    "entries": 0,
                    "hits": 0,
                    "misses": 0,
                    "compilations": 0,
                    "evictions": 0,
                },
            },
        }

    def test_content_keying_across_objects(self, config, program):
        cache = CompilationCache()
        clone = assemble(SOURCE, "compiled-test", isa=config.isa)
        assert clone is not program
        first = cache.get_or_compile(config, program)
        again = cache.get_or_compile(config, clone)
        assert first is again
        assert cache.compilations == 1

    def test_lru_eviction(self, config):
        cache = CompilationCache(maxsize=2)
        programs = [
            assemble(f"main:\n    movi a2, {n}\n    halt\n", f"p{n}", isa=config.isa)
            for n in range(3)
        ]
        for p in programs:
            cache.get_or_compile(config, p)
        assert len(cache) == 2
        assert cache.evictions == 1
        # p0 was evicted: compiling it again is a miss
        cache.get_or_compile(config, programs[0])
        assert cache.compilations == 4

    def test_put_and_clear(self, config, program):
        cache = CompilationCache()
        executable = compile_program(config, program)
        cache.put(executable)
        assert cache.get_or_compile(config, program) is executable
        assert cache.compilations == 0
        cache.clear()
        assert len(cache) == 0
        assert cache.info()["hits"] == 0

    def test_global_cache_is_shared(self, config, program):
        assert compilation_cache() is compilation_cache()
        before = compilation_cache().compilations
        a = compilation_cache().get_or_compile(config, program)
        b = Simulator(config, program).executable
        assert a is b
        assert compilation_cache().compilations == before + 1


class TestSimulatorExecutableContract:
    def test_mismatched_executable_rejected(self, config, program):
        other = assemble("main:\n    halt\n", "other", isa=config.isa)
        wrong = compile_program(config, other)
        with pytest.raises(SimulationError, match="different content"):
            Simulator(config, program, executable=wrong)

    def test_default_budget_exported_everywhere(self):
        assert DEFAULT_MAX_INSTRUCTIONS == 5_000_000
        assert OBS_DEFAULT is DEFAULT_MAX_INSTRUCTIONS


class TestInvalidPcDiagnostics:
    def test_names_nearest_symbol_and_last_retired(self, config, program):
        executable = compile_program(config, program)
        message = describe_invalid_pc("p", 0x10C, executable, last_retired_addr=0x8)
        assert "pc=0x0000010c is not a valid instruction address" in message
        assert "nearest preceding symbol" in message
        assert "last retired instruction at 0x00000008" in message

    def test_exact_symbol_hit_has_no_offset(self, config, program):
        executable = compile_program(config, program)
        addr = program.symbols["out"]
        message = describe_invalid_pc("p", addr, executable)
        assert f"'out'" in message
        assert "+0x" not in message
        assert "no instructions retired" in message

    def test_simulator_raises_with_context(self, config):
        # jx into the data region: decodable target, no instruction there
        src = (
            "    .data\nbuf:\n    .word 1, 2\n    .text\n"
            "main:\n    la a2, buf\n    jx a2\n    halt\n"
        )
        program = assemble(src, "wildjump", isa=config.isa)
        with pytest.raises(SimulationError) as excinfo:
            Simulator(config, program).run()
        message = str(excinfo.value)
        assert "nearest preceding symbol: 'buf'" in message
        assert "last retired instruction at" in message
