"""Cache model tests: geometry, LRU behaviour, and hypothesis invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xtcore import CacheConfig, SetAssociativeCache


def tiny_cache(ways=2, sets=4, line=16):
    return SetAssociativeCache(
        CacheConfig(size_bytes=ways * sets * line, ways=ways, line_bytes=line, miss_penalty=10)
    )


class TestGeometry:
    def test_paper_configuration(self):
        config = CacheConfig()
        assert config.size_bytes == 16 * 1024
        assert config.ways == 4
        assert config.num_sets == 128

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig(line_bytes=24)  # not a power of two
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000)  # not multiple of ways*line
        with pytest.raises(ValueError):
            CacheConfig(miss_penalty=-1)
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=0)


class TestBehaviour:
    def test_cold_miss_then_hit(self):
        cache = tiny_cache()
        assert not cache.access(0x100)
        assert cache.access(0x100)
        assert cache.access(0x10F)  # same line
        assert cache.hits == 2 and cache.misses == 1

    def test_different_lines_same_set(self):
        cache = tiny_cache(ways=2, sets=4, line=16)
        # set stride: 4 sets x 16B = 64B; these two alias to set 0
        assert not cache.access(0x000)
        assert not cache.access(0x040)
        assert cache.access(0x000)
        assert cache.access(0x040)

    def test_lru_eviction(self):
        cache = tiny_cache(ways=2, sets=1, line=16)
        cache.access(0x00)  # A
        cache.access(0x10)  # B
        cache.access(0x20)  # C evicts A (LRU)
        assert not cache.access(0x00)  # A gone
        # A's fill evicted B (LRU was B after C's access)
        assert not cache.access(0x10)

    def test_lru_refresh_on_hit(self):
        cache = tiny_cache(ways=2, sets=1, line=16)
        cache.access(0x00)  # A
        cache.access(0x10)  # B
        cache.access(0x00)  # touch A: B is now LRU
        cache.access(0x20)  # C evicts B
        assert cache.access(0x00)
        assert not cache.access(0x10)

    def test_thrash_pattern(self):
        # ways+1 aliasing lines accessed round-robin always miss
        cache = tiny_cache(ways=2, sets=1, line=16)
        lines = [0x00, 0x10, 0x20]
        for _ in range(5):
            for addr in lines:
                cache.access(addr)
        assert cache.hits == 0

    def test_contains_is_non_destructive(self):
        cache = tiny_cache()
        cache.access(0x100)
        hits, misses = cache.hits, cache.misses
        assert cache.contains(0x100)
        assert not cache.contains(0x5000)
        assert (cache.hits, cache.misses) == (hits, misses)

    def test_flush(self):
        cache = tiny_cache()
        cache.access(0x100)
        cache.flush()
        assert cache.occupancy == 0
        assert not cache.access(0x100)
        assert cache.misses == 1

    def test_repr_mentions_stats(self):
        cache = tiny_cache()
        cache.access(0)
        assert "1 misses" in repr(cache)


class TestInvariants:
    @settings(max_examples=50)
    @given(st.lists(st.integers(min_value=0, max_value=0xFFFF), min_size=1, max_size=300))
    def test_occupancy_bounded_and_counts_consistent(self, addresses):
        cache = tiny_cache(ways=2, sets=4, line=16)
        for addr in addresses:
            cache.access(addr)
        assert cache.occupancy <= 2 * 4
        assert cache.hits + cache.misses == len(addresses)
        assert cache.misses >= min(len(set(a >> 4 for a in addresses)), 1)

    @settings(max_examples=50)
    @given(st.lists(st.integers(min_value=0, max_value=0xFFFF), min_size=1, max_size=100))
    def test_repeat_access_always_hits(self, addresses):
        cache = tiny_cache(ways=4, sets=8, line=32)
        for addr in addresses:
            cache.access(addr)
            assert cache.access(addr)  # immediate re-access must hit

    @settings(max_examples=30)
    @given(st.integers(min_value=0, max_value=0xFFFFFFF))
    def test_whole_line_hits_after_fill(self, addr):
        cache = tiny_cache(ways=2, sets=4, line=16)
        cache.access(addr)
        line_base = addr & ~15
        for offset in range(16):
            assert cache.contains(line_base + offset)
