"""Carbon/TCO overlay: unit conversions and report rendering."""

import dataclasses

import pytest

from repro.tech import CarbonModel, carbon_overlay, carbon_table

_SECONDS_PER_YEAR = 365.25 * 24 * 3600.0


@dataclasses.dataclass
class FakeScore:
    key: str
    energy: float
    area: float


class TestCarbonModel:
    def test_annual_kwh_hand_computed(self):
        # 1 J per execution at 1 exec/s -> seconds-per-year J -> kWh
        model = CarbonModel(joules_per_unit=1.0)
        expected = _SECONDS_PER_YEAR / 3.6e6
        assert model.annual_kwh(1.0, 1.0) == pytest.approx(expected)

    def test_carbon_and_cost_scale_with_kwh(self):
        model = CarbonModel(
            joules_per_unit=1.0,
            grid_intensity_g_per_kwh=500.0,
            electricity_cost_per_kwh=0.10,
        )
        kwh = model.annual_kwh(2.0, 10.0)
        assert model.annual_grams_co2(2.0, 10.0) == pytest.approx(kwh * 500.0)
        assert model.annual_energy_cost(2.0, 10.0) == pytest.approx(kwh * 0.10)

    def test_tco_is_silicon_plus_lifetime_energy(self):
        model = CarbonModel(joules_per_unit=1.0, silicon_cost_per_area_unit=3.0)
        tco = model.tco(1.0, area=2.0, executions_per_second=1.0, years=2.0)
        assert tco == pytest.approx(
            2.0 * 3.0 + model.annual_energy_cost(1.0, 1.0) * 2.0
        )

    def test_energy_per_execution_is_rate_independent(self):
        model = CarbonModel()
        assert model.annual_kwh(1.0, 2000.0) == pytest.approx(
            2 * model.annual_kwh(1.0, 1000.0)
        )


class TestOverlay:
    def test_rows_embed_into_json(self):
        scores = [FakeScore("a", 100.0, 1.0), FakeScore("b", 200.0, 2.0)]
        rows = carbon_overlay(scores, executions_per_second=500.0, years=5.0)
        assert [row["key"] for row in rows] == ["a", "b"]
        assert rows[1]["annual_kwh"] == pytest.approx(2 * rows[0]["annual_kwh"])
        assert all(row["tco_years"] == 5.0 for row in rows)

    def test_table_renders_every_candidate(self):
        rows = carbon_overlay([FakeScore("impl=dual", 100.0, 1.0)])
        text = carbon_table(rows)
        assert "impl=dual" in text
        assert "TCO($)" in text
        assert "1000 executions/s" in text

    def test_empty_table(self):
        assert "no scored candidates" in carbon_table([])
