"""Technology calibration: operating points, interpolation, scaling."""

import pytest

from repro.tech import (
    CALIB_FORMAT,
    DEFAULT_CALIB_PATH,
    DEFAULT_DVFS_POINTS,
    CalibrationError,
    OperatingPoint,
    TechCalibration,
    TechNode,
    default_calibration,
    reference_operating_point,
)


@pytest.fixture(scope="module")
def calib():
    return default_calibration()


class TestOperatingPoint:
    def test_parse_canonical(self):
        op = OperatingPoint.parse("65nm@1.1V@800MHz")
        assert (op.node_nm, op.voltage, op.frequency_mhz) == (65.0, 1.1, 800.0)
        assert op.key == "65nm@1.1V@800MHz"

    def test_parse_tolerates_whitespace_and_case(self):
        for text in ("65 nm @ 1.1 V @ 800 MHz", "65NM@1.1v@800mhz", " 65nm@1.1V@800MHz "):
            assert OperatingPoint.parse(text).key == "65nm@1.1V@800MHz"

    def test_parse_passes_through_instances(self):
        op = OperatingPoint(65, 1.1, 800)
        assert OperatingPoint.parse(op) is op

    def test_key_drops_trailing_zeros(self):
        assert OperatingPoint(90.0, 1.20, 600.0).key == "90nm@1.2V@600MHz"

    @pytest.mark.parametrize(
        "text",
        ["", "65nm", "65nm@1.1V", "1.1V@65nm@800MHz", "65nm@-1.1V@800MHz", "nope"],
    )
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(CalibrationError):
            OperatingPoint.parse(text)

    def test_parse_rejects_non_string(self):
        with pytest.raises(CalibrationError):
            OperatingPoint.parse(65)

    def test_rejects_non_positive_fields(self):
        with pytest.raises(CalibrationError):
            OperatingPoint(0, 1.1, 800)
        with pytest.raises(CalibrationError):
            OperatingPoint(65, 1.1, -800)

    def test_seconds_is_cycles_over_clock(self):
        op = OperatingPoint(65, 1.1, 800)
        assert op.frequency_hz == 800e6
        assert op.seconds(800_000_000) == pytest.approx(1.0)

    def test_payload_round_trip_tolerates_unknown_fields(self):
        op = OperatingPoint(65, 1.1, 800)
        payload = op.to_payload()
        payload["future_field"] = "ignored"
        assert OperatingPoint.from_payload(payload) == op

    def test_payload_missing_field(self):
        with pytest.raises(CalibrationError, match="missing field"):
            OperatingPoint.from_payload({"node_nm": 65, "voltage": 1.1})


class TestInterpolation:
    def test_exact_rows(self, calib):
        assert calib.capacitance_scale(90) == 1.0
        assert calib.capacitance_scale(65) == 0.68
        assert calib.capacitance_scale(180) == 2.4

    def test_midpoint_is_linear(self, calib):
        # midway between 65 nm (0.68) and 90 nm (1.0)
        assert calib.capacitance_scale(77.5) == pytest.approx(0.84)

    def test_refuses_extrapolation(self, calib):
        with pytest.raises(CalibrationError, match="refusing to extrapolate"):
            calib.capacitance_scale(14)
        with pytest.raises(CalibrationError, match="refusing to extrapolate"):
            calib.capacitance_scale(250)

    def test_dvfs_ceiling_derates_with_supply(self, calib):
        nominal = calib.max_frequency_mhz(65)
        assert calib.max_frequency_mhz(65, 1.1) == pytest.approx(nominal)
        assert calib.max_frequency_mhz(65, 0.55) == pytest.approx(nominal / 2)


class TestEnergyScale:
    def test_reference_scales_to_one(self, calib):
        assert calib.energy_scale(calib.reference) == pytest.approx(1.0)
        assert reference_operating_point() == calib.reference

    @pytest.mark.parametrize(
        "point,expected",
        [
            ("130nm@1.5V@400MHz", 0.4484953703703704),
            ("90nm@1.2V@600MHz", 0.18518518518518517),
            ("65nm@1.1V@800MHz", 0.10581275720164612),
        ],
    )
    def test_hand_computed_dvfs_points(self, calib, point, expected):
        # C(node)/C(180) * (V/1.8)^2 against the committed table
        assert calib.energy_scale(point) == pytest.approx(expected, rel=1e-12)

    def test_frequency_never_enters_energy(self, calib):
        slow = calib.energy_scale("65nm@1.1V@100MHz")
        fast = calib.energy_scale("65nm@1.1V@800MHz")
        assert slow == fast

    def test_voltage_scaling_is_monotone(self, calib):
        scales = [
            calib.energy_scale(f"90nm@{v}V@100MHz") for v in (1.0, 1.2, 1.4)
        ]
        assert scales == sorted(scales)
        assert scales[0] < scales[2]

    def test_relative_scale_is_ratio(self, calib):
        a, b = "65nm@1.1V@800MHz", "130nm@1.5V@400MHz"
        assert calib.relative_scale(a, b) == pytest.approx(
            calib.energy_scale(a) / calib.energy_scale(b)
        )

    def test_validate_rejects_voltage_window(self, calib):
        with pytest.raises(CalibrationError, match="outside"):
            calib.validate("65nm@0.4V@100MHz")
        with pytest.raises(CalibrationError, match="outside"):
            calib.validate("65nm@2.0V@100MHz")

    def test_validate_rejects_overclock(self, calib):
        with pytest.raises(CalibrationError, match="DVFS ceiling"):
            calib.validate("65nm@1.1V@900MHz")
        # at exactly the ceiling the point is fine
        assert calib.validate("65nm@1.1V@800MHz").frequency_mhz == 800.0


class TestScenarioMatrix:
    def test_grid_size_and_default_clock(self, calib):
        points = calib.scenario_matrix((65, 90, 130), (0.9, 1.0, 1.1))
        assert len(points) == 9
        # with no frequency given, every point runs at its own DVFS peak
        for op in points:
            assert op.frequency_mhz == pytest.approx(
                calib.max_frequency_mhz(op.node_nm, op.voltage)
            )

    def test_explicit_clock_applies_everywhere(self, calib):
        points = calib.scenario_matrix((90, 130), (1.2,), frequency_mhz=100)
        assert {op.frequency_mhz for op in points} == {100.0}

    def test_invalid_cell_raises(self, calib):
        with pytest.raises(CalibrationError):
            calib.scenario_matrix((65,), (0.3,))


class TestTable:
    def test_default_is_committed_and_memoized(self):
        assert DEFAULT_CALIB_PATH.exists()
        assert default_calibration() is default_calibration()
        for point in DEFAULT_DVFS_POINTS:
            default_calibration().validate(point)

    def test_payload_round_trip(self, calib):
        payload = calib.to_payload()
        assert payload["format"] == CALIB_FORMAT
        clone = TechCalibration.from_payload(payload)
        assert clone.energy_scale("65nm@1.1V@800MHz") == pytest.approx(
            calib.energy_scale("65nm@1.1V@800MHz")
        )

    def test_node_rows_tolerate_unknown_fields(self, calib):
        payload = calib.to_payload()
        for row in payload["nodes"]:
            row["future_column"] = 42
        TechCalibration.from_payload(payload)

    def test_rejects_unknown_format(self):
        with pytest.raises(CalibrationError, match="unrecognized"):
            TechCalibration.from_payload({"format": "bogus/9"})

    def test_needs_two_distinct_nodes(self):
        row = TechNode(90, 1.0, 1.0, 1.2, 600)
        with pytest.raises(CalibrationError, match="at least two"):
            TechCalibration((row,), OperatingPoint(90, 1.2, 100))
        with pytest.raises(CalibrationError, match="duplicate"):
            TechCalibration((row, row), OperatingPoint(90, 1.2, 100))

    def test_reference_must_be_valid(self):
        rows = (
            TechNode(90, 1.0, 1.0, 1.2, 600),
            TechNode(130, 1.55, 0.55, 1.5, 400),
        )
        with pytest.raises(CalibrationError):
            TechCalibration(rows, OperatingPoint(65, 1.1, 800))
