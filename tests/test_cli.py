"""CLI tests (direct main() invocation; no subprocess needed)."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core import EnergyMacroModel, default_template

DEMO = """
    .data
out: .word 0
    .text
main:
    movi a2, 12
    movi a3, 0
loop:
    add a3, a3, a2
    addi a2, a2, -1
    bnez a2, loop
    la a4, out
    s32i a3, a4, 0
    halt
"""

CUSTOM_DEMO = """
main:
    movi a2, 9
    movi a3, 4
    mul16 a4, a2, a3
    halt
"""


@pytest.fixture()
def demo_file(tmp_path):
    path = tmp_path / "demo.s"
    path.write_text(DEMO)
    return str(path)


@pytest.fixture()
def custom_file(tmp_path):
    path = tmp_path / "custom.s"
    path.write_text(CUSTOM_DEMO)
    return str(path)


@pytest.fixture()
def model_file(tmp_path):
    template = default_template()
    model = EnergyMacroModel(template, np.linspace(50, 5000, len(template)))
    path = tmp_path / "model.json"
    model.save(str(path))
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestSimulate:
    def test_basic(self, demo_file, capsys):
        assert main(["simulate", demo_file, "--dump-word", "out"]) == 0
        out = capsys.readouterr().out
        assert "instructions: " in out
        assert "out = 78" in out  # 12+11+...+1

    def test_trace(self, demo_file, capsys):
        assert main(["simulate", demo_file, "--trace", "--trace-limit", "3"]) == 0
        out = capsys.readouterr().out
        assert "TraceRecord" in out
        assert "more records" in out

    def test_with_extension(self, custom_file, capsys):
        assert main(["simulate", custom_file, "--extensions", "mul16"]) == 0
        assert "instructions: 4" in capsys.readouterr().out

    def test_unknown_extension(self, custom_file):
        with pytest.raises(SystemExit, match="unknown extension"):
            main(["simulate", custom_file, "--extensions", "warpdrive"])


class TestDisasm:
    def test_output_reassembles(self, demo_file, capsys):
        assert main(["disasm", demo_file]) == 0
        text = capsys.readouterr().out
        from repro.asm import assemble

        rebuilt = assemble(text, "rebuilt")
        assert len(rebuilt) == 9  # `la` expanded to movhi+ori in the original


class TestListExtensions:
    def test_lists_library(self, capsys):
        assert main(["list-extensions"]) == 0
        out = capsys.readouterr().out
        assert "mac16" in out
        assert "gfmul" in out


class TestEstimateAndProfile:
    def test_estimate(self, model_file, demo_file, capsys):
        assert main(["estimate", model_file, demo_file, "--variables"]) == 0
        out = capsys.readouterr().out
        assert "macro-model estimate" in out
        assert "N_a" in out

    def test_estimate_multiple_programs_tabulates(
        self, model_file, demo_file, tmp_path, capsys
    ):
        second = tmp_path / "second.s"
        second.write_text(DEMO.replace("movi a2, 12", "movi a2, 24"))
        assert main(["estimate", model_file, demo_file, str(second)]) == 0
        out = capsys.readouterr().out
        assert "macro-model estimate" not in out  # table replaces the summary
        assert "program" in out and "EDP" in out
        assert "demo" in out and "second" in out

    def test_estimate_multiple_programs_with_variables(
        self, model_file, demo_file, tmp_path, capsys
    ):
        second = tmp_path / "second.s"
        second.write_text(DEMO)
        assert main(
            ["estimate", model_file, demo_file, str(second), "--variables"]
        ) == 0
        out = capsys.readouterr().out
        # one labelled variable block per program
        assert "\ndemo:" in out and "\nsecond:" in out
        assert out.count("N_a") >= 2

    def test_estimate_multiple_identical_programs_agree(
        self, model_file, demo_file, tmp_path, capsys
    ):
        clone = tmp_path / "clone.s"
        clone.write_text(DEMO)
        assert main(["estimate", model_file, demo_file, str(clone)]) == 0
        rows = [
            line.split()
            for line in capsys.readouterr().out.splitlines()
            if line.startswith(("demo", "clone"))
        ]
        assert len(rows) == 2
        assert rows[0][1:] == rows[1][1:]  # same energy/cycles/EDP

    def test_reference(self, demo_file, capsys):
        assert main(["reference", demo_file]) == 0
        assert "RTL energy estimate" in capsys.readouterr().out

    def test_profile(self, model_file, demo_file, capsys):
        assert main(["profile", model_file, demo_file, "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "energy profile" in out
        assert "total" in out

    def test_profile_observers(self, model_file, demo_file, capsys):
        assert (
            main(
                [
                    "profile",
                    model_file,
                    demo_file,
                    "--timeline",
                    "10",
                    "--hot",
                    "--cache-events",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "energy timeline" in out
        assert "hot spots" in out
        assert "cache events" in out

    def test_profile_json(self, model_file, demo_file, capsys):
        import json

        assert (
            main(
                [
                    "profile",
                    model_file,
                    demo_file,
                    "--timeline",
                    "10",
                    "--hot",
                    "--cache-events",
                    "--format",
                    "json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"regions", "timeline", "hot_spots", "cache_events"}
        # linearity: the timeline intervals partition the run exactly
        assert payload["timeline"]["total_energy"] == pytest.approx(
            payload["regions"]["total_energy"]
        )
        assert payload["hot_spots"]["blocks"]
        assert all(
            iv["instructions"] <= 10 for iv in payload["timeline"]["intervals"][:-1]
        )

    def test_profile_rejects_bad_timeline(self, model_file, demo_file):
        with pytest.raises(SystemExit) as excinfo:
            main(["profile", model_file, demo_file, "--timeline", "0"])
        assert excinfo.value.code == 2


class TestInputErrorHygiene:
    def test_missing_program_file_is_clean_exit(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["simulate", "/nonexistent/program.s"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "repro: error:" in err
        assert "/nonexistent/program.s" in err
        assert "Traceback" not in err

    def test_missing_xpf_file_is_clean_exit(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["simulate", "/nonexistent/image.xpf"])
        assert excinfo.value.code == 2
        assert "cannot read program file" in capsys.readouterr().err

    def test_malformed_xpf_is_clean_exit(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.xpf"
        bogus.write_bytes(b"this is not an XPF image at all")
        with pytest.raises(SystemExit) as excinfo:
            main(["simulate", str(bogus)])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "malformed XPF image" in err
        assert "bad magic" in err

    def test_truncated_xpf_is_clean_exit(self, tmp_path, demo_file, capsys):
        image = tmp_path / "demo.xpf"
        assert main(["assemble", demo_file, "-o", str(image)]) == 0
        data = image.read_bytes()
        image.write_bytes(data[: len(data) // 2])
        with pytest.raises(SystemExit) as excinfo:
            main(["simulate", str(image)])
        assert excinfo.value.code == 2
        assert "truncated image" in capsys.readouterr().err


class TestCharacterizeFlagValidation:
    def test_resume_requires_checkpoint(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["characterize", "--resume"])
        assert excinfo.value.code == 2
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "argv, message",
        [
            (["--checkpoint", "c.json", "--checkpoint-every", "0"],
             "--checkpoint-every must be >= 1"),
            (["--max-attempts", "0"], "--max-attempts must be >= 1"),
        ],
    )
    def test_invalid_numeric_flags(self, argv, message, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["characterize", *argv])
        assert excinfo.value.code == 2
        assert message in capsys.readouterr().err

    def test_corrupt_samples_file_is_clean_exit(self, tmp_path, capsys):
        bad = tmp_path / "samples.json"
        bad.write_text("{ truncated")
        with pytest.raises(SystemExit) as excinfo:
            main(["characterize", "--from-samples", str(bad), "-o", str(tmp_path / "m.json")])
        assert excinfo.value.code == 2
        assert "cannot load samples" in capsys.readouterr().err


class TestOperatingPointFlags:
    def test_estimate_json_carries_model_metadata(self, model_file, demo_file, capsys):
        import json

        assert (
            main(
                [
                    "estimate", model_file, demo_file,
                    "--format", "json",
                    "--operating-point", "65nm@1.1V@800MHz",
                    "--variables",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "repro-estimates/1"
        assert payload["operating_point"] == "65nm@1.1V@800MHz"
        assert len(payload["model_digest"]) == 64
        (entry,) = payload["estimates"]
        assert entry["seconds"] == pytest.approx(entry["cycles"] / 800e6)
        assert entry["edp_seconds"] == pytest.approx(
            entry["energy"] * entry["seconds"]
        )
        assert entry["variables"]

    def test_estimate_json_without_point_omits_time(self, model_file, demo_file, capsys):
        import json

        assert main(["estimate", model_file, demo_file, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["operating_point"] is None
        (entry,) = payload["estimates"]
        assert "seconds" not in entry

    def test_estimate_point_scales_energy(self, model_file, demo_file, capsys):
        import json

        from repro.tech import default_calibration

        energies = {}
        for point in (None, "90nm@1.2V@600MHz"):
            argv = ["estimate", model_file, demo_file, "--format", "json"]
            if point:
                argv += ["--operating-point", point]
            assert main(argv) == 0
            payload = json.loads(capsys.readouterr().out)
            energies[point] = payload["estimates"][0]["energy"]
        scale = default_calibration().energy_scale("90nm@1.2V@600MHz")
        assert energies["90nm@1.2V@600MHz"] == pytest.approx(
            energies[None] * scale
        )

    def test_estimate_summary_mentions_point(self, model_file, demo_file, capsys):
        assert (
            main(
                ["estimate", model_file, demo_file,
                 "--operating-point", "65nm@1.1V@800MHz"]
            )
            == 0
        )
        assert "65nm@1.1V@800MHz" in capsys.readouterr().out

    def test_bad_point_is_clean_exit(self, model_file, demo_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["estimate", model_file, demo_file,
                 "--operating-point", "65nm@9V@800MHz"]
            )
        assert excinfo.value.code == 2
        assert "bad --operating-point" in capsys.readouterr().err

    def test_characterize_rejects_bad_point(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["characterize", "--operating-point", "nope",
                 "-o", str(tmp_path / "m.json")]
            )
        assert excinfo.value.code == 2
        assert "bad --operating-point" in capsys.readouterr().err

    def test_profile_at_point(self, model_file, demo_file, capsys):
        assert (
            main(
                ["profile", model_file, demo_file,
                 "--operating-point", "65nm@1.1V@800MHz"]
            )
            == 0
        )
        assert "energy" in capsys.readouterr().out
