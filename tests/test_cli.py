"""CLI tests (direct main() invocation; no subprocess needed)."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core import EnergyMacroModel, default_template

DEMO = """
    .data
out: .word 0
    .text
main:
    movi a2, 12
    movi a3, 0
loop:
    add a3, a3, a2
    addi a2, a2, -1
    bnez a2, loop
    la a4, out
    s32i a3, a4, 0
    halt
"""

CUSTOM_DEMO = """
main:
    movi a2, 9
    movi a3, 4
    mul16 a4, a2, a3
    halt
"""


@pytest.fixture()
def demo_file(tmp_path):
    path = tmp_path / "demo.s"
    path.write_text(DEMO)
    return str(path)


@pytest.fixture()
def custom_file(tmp_path):
    path = tmp_path / "custom.s"
    path.write_text(CUSTOM_DEMO)
    return str(path)


@pytest.fixture()
def model_file(tmp_path):
    template = default_template()
    model = EnergyMacroModel(template, np.linspace(50, 5000, len(template)))
    path = tmp_path / "model.json"
    model.save(str(path))
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestSimulate:
    def test_basic(self, demo_file, capsys):
        assert main(["simulate", demo_file, "--dump-word", "out"]) == 0
        out = capsys.readouterr().out
        assert "instructions: " in out
        assert "out = 78" in out  # 12+11+...+1

    def test_trace(self, demo_file, capsys):
        assert main(["simulate", demo_file, "--trace", "--trace-limit", "3"]) == 0
        out = capsys.readouterr().out
        assert "TraceRecord" in out
        assert "more records" in out

    def test_with_extension(self, custom_file, capsys):
        assert main(["simulate", custom_file, "--extensions", "mul16"]) == 0
        assert "instructions: 4" in capsys.readouterr().out

    def test_unknown_extension(self, custom_file):
        with pytest.raises(SystemExit, match="unknown extension"):
            main(["simulate", custom_file, "--extensions", "warpdrive"])


class TestDisasm:
    def test_output_reassembles(self, demo_file, capsys):
        assert main(["disasm", demo_file]) == 0
        text = capsys.readouterr().out
        from repro.asm import assemble

        rebuilt = assemble(text, "rebuilt")
        assert len(rebuilt) == 9  # `la` expanded to movhi+ori in the original


class TestListExtensions:
    def test_lists_library(self, capsys):
        assert main(["list-extensions"]) == 0
        out = capsys.readouterr().out
        assert "mac16" in out
        assert "gfmul" in out


class TestEstimateAndProfile:
    def test_estimate(self, model_file, demo_file, capsys):
        assert main(["estimate", model_file, demo_file, "--variables"]) == 0
        out = capsys.readouterr().out
        assert "macro-model estimate" in out
        assert "N_a" in out

    def test_reference(self, demo_file, capsys):
        assert main(["reference", demo_file]) == 0
        assert "RTL energy estimate" in capsys.readouterr().out

    def test_profile(self, model_file, demo_file, capsys):
        assert main(["profile", model_file, demo_file, "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "energy profile" in out
        assert "total" in out
