"""Reference RTL energy estimator tests: determinism, monotonicity,
accounting structure and the data-dependence ablation switch."""

import pytest

from repro.asm import assemble
from repro.rtl import EVENT_ENERGY, RtlEnergyEstimator, generate_netlist, reference_energy
from repro.tie import TieSpec
from repro.xtcore import Simulator, build_processor


def _mul16():
    spec = TieSpec("emul", fmt="R3")
    a = spec.source("rs", width=16)
    b = spec.source("rt", width=16)
    spec.result(spec.tie_mult(a, b))
    return spec


def _program(source, config, name="etest"):
    return assemble(source, name, isa=config.isa)


LOOP = """
main:
    movi a2, 40
    movi a3, 17
loop:
    add a3, a3, a2
    xor a3, a3, a2
    addi a2, a2, -1
    bnez a2, loop
    halt
"""


class TestBasics:
    def test_requires_trace(self):
        config = build_processor("plain")
        program = _program(LOOP, config)
        untraced = Simulator(config, program, collect_trace=False).run()
        estimator = RtlEnergyEstimator(generate_netlist(config))
        with pytest.raises(ValueError, match="trace"):
            estimator.estimate(untraced)

    def test_config_mismatch_rejected(self):
        plain = build_processor("plain")
        other = build_processor("other", [_mul16()])
        program = _program(LOOP, plain)
        traced = Simulator(plain, program, collect_trace=True).run()
        estimator = RtlEnergyEstimator(generate_netlist(other))
        with pytest.raises(ValueError, match="models"):
            estimator.estimate(traced)

    def test_equal_content_config_accepted(self):
        # the guard is content-addressed: a trace from a different object
        # (even differently named) describing the same hardware is valid,
        # and the estimate matches a native run on the modeled processor
        run_on = build_processor("one", [_mul16()])
        modeled = build_processor("two", [_mul16()])
        program = _program(LOOP, run_on)
        traced = Simulator(run_on, program, collect_trace=True).run()
        estimator = RtlEnergyEstimator(generate_netlist(modeled))
        report = estimator.estimate(traced)
        native, _ = reference_energy(modeled, _program(LOOP, modeled))
        assert report.total == native.total

    def test_deterministic(self):
        config = build_processor("plain")
        program = _program(LOOP, config)
        first, _ = reference_energy(config, program)
        second, _ = reference_energy(config, program)
        assert first.total == second.total
        assert first.by_block == second.by_block

    def test_report_consistency(self):
        config = build_processor("plain")
        report, result = reference_energy(config, _program(LOOP, config))
        assert report.total == pytest.approx(sum(report.by_group.values()))
        assert report.total == pytest.approx(sum(report.by_block.values()))
        assert report.cycles == result.stats.total_cycles
        assert report.per_cycle == pytest.approx(report.total / report.cycles)
        assert "base_core" in report.summary()


class TestMonotonicity:
    def test_longer_program_costs_more(self):
        config = build_processor("plain")
        short = _program(LOOP.replace("movi a2, 40", "movi a2, 10"), config, "short")
        long = _program(LOOP, config, "long")
        short_report, _ = reference_energy(config, short)
        long_report, _ = reference_energy(config, long)
        assert long_report.total > short_report.total

    def test_events_add_energy(self):
        config = build_processor("plain")
        cached = _program("main:\n    nop\n    nop\n    halt\n", config, "cached")
        uncached = _program(
            "main:\n    j u\n    .utext\nu:\n    nop\n    nop\n    j b\n    .text\nb:\n    halt\n",
            config,
            "uncached",
        )
        cached_report, _ = reference_energy(config, cached)
        uncached_report, _ = reference_energy(config, uncached)
        assert uncached_report.by_group["events"] > cached_report.by_group["events"]

    def test_event_energy_table_positive(self):
        for name, value in EVENT_ENERGY.items():
            assert value > 0, name


class TestCustomHardware:
    def test_custom_group_zero_on_base_core(self):
        config = build_processor("plain")
        report, _ = reference_energy(config, _program(LOOP, config))
        assert report.by_group["custom_hw"] == 0.0
        assert report.by_group["control"] == 0.0

    def test_custom_execution_charges_custom_group(self):
        config = build_processor("ext", [_mul16()])
        source = """
main:
    movi a2, 11
    movi a3, 13
    emul a4, a2, a3
    emul a5, a4, a3
    halt
"""
        report, _ = reference_energy(config, _program(source, config))
        assert report.by_group["custom_hw"] > 0
        assert report.by_group["control"] > 0

    def test_spurious_activation_without_execution(self):
        # base-only program on an extended core still stimulates the
        # bus-tapped custom inputs (paper Example 1)
        config = build_processor("ext", [_mul16()])
        report, _ = reference_energy(config, _program(LOOP, config))
        assert report.by_group["custom_hw"] > 0

    def test_wider_custom_hardware_costs_more(self):
        def width_spec(width):
            spec = TieSpec("wmul", fmt="R3")
            a = spec.source("rs", width=width)
            b = spec.source("rt", width=width)
            spec.result(spec.tie_mult(a, b))
            return spec

        source = """
main:
    movi a2, 40
    li a3, 0x2FF
loop:
    wmul a4, a3, a2
    addi a3, a3, 37
    addi a2, a2, -1
    bnez a2, loop
    halt
"""
        narrow_config = build_processor("narrow", [width_spec(8)])
        wide_config = build_processor("wide", [width_spec(16)])
        narrow_report, _ = reference_energy(narrow_config, _program(source, narrow_config))
        wide_report, _ = reference_energy(wide_config, _program(source, wide_config))
        assert wide_report.by_group["custom_hw"] > narrow_report.by_group["custom_hw"]


class TestDataDependence:
    def test_toggle_affects_energy(self):
        config = build_processor("plain")
        quiet = _program(
            "main:\n    movi a2, 100\nl:\n    add a3, a4, a5\n    addi a2, a2, -1\n    bnez a2, l\n    halt\n",
            config,
            "quiet",
        )
        noisy = _program(
            "main:\n    movi a2, 100\n    li a4, 0x2AAA\n    li a5, 0x1555\nl:\n    add a3, a4, a5\n    xor a4, a4, a3\n    addi a2, a2, -1\n    bnez a2, l\n    halt\n",
            config,
            "noisy",
        )
        from repro.isa import InstructionClass

        quiet_report, quiet_sim = reference_energy(config, quiet)
        noisy_report, noisy_sim = reference_energy(config, noisy)
        quiet_alu = (
            quiet_report.by_block["alu"]
            / quiet_sim.stats.class_counts[InstructionClass.ARITH]
        )
        noisy_alu = (
            noisy_report.by_block["alu"]
            / noisy_sim.stats.class_counts[InstructionClass.ARITH]
        )
        assert noisy_alu > quiet_alu

    def test_frozen_mode_removes_data_dependence(self):
        config = build_processor("plain")
        quiet = _program(
            "main:\n    movi a2, 50\nl:\n    add a3, a4, a5\n    addi a2, a2, -1\n    bnez a2, l\n    halt\n",
            config,
            "quiet",
        )
        estimator = RtlEnergyEstimator(generate_netlist(config), data_dependent=False)
        report_a, _ = estimator.estimate_program(quiet)
        report_b, _ = estimator.estimate_program(quiet)
        assert report_a.total == report_b.total
        live = RtlEnergyEstimator(generate_netlist(config)).estimate_program(quiet)[0]
        assert report_a.total != live.total
