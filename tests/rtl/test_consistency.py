"""Cross-module consistency checks.

These pin down agreements between modules that are easy to break by
editing one side only: the estimator's mnemonic sets must reference real
base-ISA instructions, block names must match what the estimator charges,
and event energies must cover every ISS event type.
"""

from repro.isa import BASE_ISA, InstructionClass
from repro.rtl import BASE_BLOCKS, BLOCKS_BY_NAME, EVENT_ENERGY
from repro.rtl.blocks import MULTIPLIER_MNEMONICS, SHIFTER_MNEMONICS


class TestMnemonicSets:
    def test_multiplier_mnemonics_exist_and_are_arith(self):
        for mnemonic in MULTIPLIER_MNEMONICS:
            definition = BASE_ISA.lookup(mnemonic)
            assert definition.iclass is InstructionClass.ARITH

    def test_shifter_mnemonics_exist_and_are_arith(self):
        for mnemonic in SHIFTER_MNEMONICS:
            definition = BASE_ISA.lookup(mnemonic)
            assert definition.iclass is InstructionClass.ARITH

    def test_sets_disjoint(self):
        assert not (MULTIPLIER_MNEMONICS & SHIFTER_MNEMONICS)


class TestBlockTables:
    def test_blocks_by_name_complete(self):
        assert set(BLOCKS_BY_NAME) == {block.name for block in BASE_BLOCKS}

    def test_event_energy_covers_iss_events(self):
        # one entry per ExecutionStats event counter
        assert set(EVENT_ENERGY) == {
            "icache_miss",
            "dcache_miss",
            "uncached_fetch",
            "interlock",
        }

    def test_estimator_charges_only_known_blocks(self, tiny_loop_program, base_config):
        from repro.rtl import RtlEnergyEstimator, generate_netlist

        estimator = RtlEnergyEstimator(generate_netlist(base_config))
        report, _ = estimator.estimate_program(tiny_loop_program)
        known = set(BLOCKS_BY_NAME) | {"tie_control"}
        assert set(report.by_block) <= known
