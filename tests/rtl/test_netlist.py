"""Processor generator (netlist) tests."""

import pytest

from repro.hwlib import ComponentCategory
from repro.rtl import BASE_BLOCKS, generate_netlist, stable_unit_variation
from repro.xtcore import build_processor


def _gf_spec():
    from repro.programs.extensions import gfmul_spec

    return gfmul_spec()


class TestBaseBlocks:
    def test_expected_blocks_present(self):
        names = {block.name for block in BASE_BLOCKS}
        assert {
            "fetch_unit",
            "instruction_decoder",
            "register_file",
            "alu",
            "base_multiplier",
            "icache",
            "dcache",
            "clock_tree",
        } <= names

    def test_energies_non_negative(self):
        for block in BASE_BLOCKS:
            assert block.active_energy >= 0
            assert block.idle_energy >= 0


class TestVariation:
    def test_deterministic(self):
        assert stable_unit_variation("foo") == stable_unit_variation("foo")

    def test_bounded(self):
        for name in ("a", "b", "some/instance", "x" * 100):
            factor = stable_unit_variation(name, spread=0.1)
            assert 0.9 <= factor <= 1.1

    def test_distinct_names_vary(self):
        values = {stable_unit_variation(f"inst{i}") for i in range(20)}
        assert len(values) > 10


class TestGeneration:
    def test_base_netlist(self):
        netlist = generate_netlist(build_processor("plain"))
        assert netlist.custom_instances == ()
        assert netlist.custom_area == 0.0
        assert netlist.control.decode_energy == 0.0

    def test_extended_netlist(self):
        config = build_processor("gf", [_gf_spec()])
        netlist = generate_netlist(config)
        assert len(netlist.custom_instances) > 0
        complexity = netlist.category_complexity()
        assert complexity[ComponentCategory.TABLE] == pytest.approx(6.0)  # 3 256x8 tables
        assert netlist.custom_area > 0
        assert netlist.control.decode_energy > 0
        assert netlist.control.bypass_energy > 0

    def test_synthesis_report(self):
        config = build_processor("gf", [_gf_spec()])
        report = generate_netlist(config).synthesis_report()
        assert "gfmul" in report
        assert "table" in report
        assert "custom instructions: 1" in report

    def test_instance_variation_scoped_by_processor(self):
        config_a = build_processor("alpha", [_gf_spec()])
        config_b = build_processor("beta", [_gf_spec()])
        netlist_a = generate_netlist(config_a)
        netlist_b = generate_netlist(config_b)
        name = netlist_a.custom_instances[0].name
        # same instance name, different processor -> different variation
        assert netlist_a.instance_variation(name) != netlist_b.instance_variation(name)
