"""Shared fixtures for the DSE tests.

Engine and strategy behavior is tested against a tiny synthetic space
(loop-length x padding knobs on the stock core) so every candidate costs
a sub-millisecond simulation; the bundled Reed-Solomon/FIR spaces are
exercised where the content itself matters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.asm import assemble
from repro.core import EnergyMacroModel, default_template
from repro.dse import Knob, SearchSpace
from repro.xtcore import build_processor


def build_toy_point(assignment):
    """(config, program) for one toy design point; cheap to simulate."""
    n = assignment["n"]
    pad = assignment.get("pad", 0)
    config = build_processor(f"toy-n{n}-p{pad}")
    source = "main:\n"
    source += f"    movi a2, {n}\n    movi a3, 0\nloop:\n"
    source += "    nop\n" * pad
    source += "    add a3, a3, a2\n    addi a2, a2, -1\n    bnez a2, loop\n    halt\n"
    program = assemble(source, f"toy_n{n}_p{pad}", isa=config.isa)
    return config, program


def make_toy_space(with_pad: bool = True) -> SearchSpace:
    knobs = [Knob("n", (2, 4, 8))]
    if with_pad:
        knobs.append(Knob("pad", (0, 2, 4)))
    return SearchSpace(
        name="toy",
        description="loop-length x padding sweep on the stock core",
        knobs=tuple(knobs),
        builder=build_toy_point,
    )


@pytest.fixture()
def toy_space():
    return make_toy_space()


@pytest.fixture(scope="session")
def synthetic_model():
    """A macro-model with made-up coefficients (no characterization)."""
    template = default_template()
    return EnergyMacroModel(template, np.linspace(50, 5000, len(template)))
