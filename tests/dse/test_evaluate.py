"""Evaluation engine: scoring, memo, disk cache, parallelism, failures."""

import multiprocessing
import os

import pytest

from repro.core.runner import TooManyFailures
from repro.dse import (
    CandidateScore,
    EvaluationEngine,
    Knob,
    ResultCache,
    SearchSpace,
)

from .conftest import build_toy_point


def _broken_builder(assignment):
    if assignment["n"] == 4:
        raise RuntimeError("synthetic build explosion")
    return build_toy_point(assignment)


def _broken_space():
    return SearchSpace(
        name="broken",
        description="one design point fails to build",
        knobs=(Knob("n", (2, 4, 8)),),
        builder=_broken_builder,
    )


class TestScoring:
    def test_scores_in_input_order(self, synthetic_model, toy_space):
        engine = EvaluationEngine(synthetic_model, toy_space)
        candidates = list(toy_space.candidates())
        scores = engine.evaluate(candidates)
        assert [s.key for s in scores] == [c.key for c in candidates]
        assert engine.evaluated == toy_space.size
        for score in scores:
            assert score.energy > 0 and score.cycles > 0
            assert score.edp == score.energy * score.cycles
            assert score.area == 0.0  # toy points have no custom hardware
            assert not score.from_cache

    def test_cycles_grow_with_loop_length(self, synthetic_model, toy_space):
        engine = EvaluationEngine(synthetic_model, toy_space)
        short = engine.evaluate([toy_space.candidate({"n": 2, "pad": 0})])[0]
        long = engine.evaluate([toy_space.candidate({"n": 8, "pad": 4})])[0]
        assert long.cycles > short.cycles

    def test_objective_lookup(self, synthetic_model, toy_space):
        engine = EvaluationEngine(synthetic_model, toy_space)
        score = engine.evaluate([toy_space.candidate_at(0)])[0]
        assert score.objective("edp") == score.edp
        assert score.objective("energy") == score.energy
        with pytest.raises(ValueError, match="unknown objective"):
            score.objective("beauty")

    def test_payload_round_trip(self, synthetic_model, toy_space):
        engine = EvaluationEngine(synthetic_model, toy_space)
        score = engine.evaluate([toy_space.candidate_at(3)])[0]
        clone = CandidateScore.from_payload(score.to_payload())
        assert clone.key == score.key and clone.edp == score.edp

    def test_rejects_bad_jobs(self, synthetic_model, toy_space):
        with pytest.raises(ValueError):
            EvaluationEngine(synthetic_model, toy_space, jobs=0)


class TestMemo:
    def test_revisits_are_free(self, synthetic_model, toy_space):
        engine = EvaluationEngine(synthetic_model, toy_space)
        batch = [toy_space.candidate_at(0), toy_space.candidate_at(1)]
        first = engine.evaluate(batch)
        again = engine.evaluate(batch)
        assert engine.evaluated == 2
        assert engine.memo_hits == 2
        assert [s.edp for s in again] == [s.edp for s in first]


class TestDiskCache:
    def test_second_run_hits_for_every_candidate(
        self, synthetic_model, toy_space, tmp_path
    ):
        cache_dir = str(tmp_path / "cache")
        cold = EvaluationEngine(
            synthetic_model, toy_space, cache=ResultCache(cache_dir)
        )
        cold_scores = cold.evaluate(list(toy_space.candidates()))
        assert cold.cache_misses == toy_space.size
        assert cold.cache_hits == 0

        warm = EvaluationEngine(
            synthetic_model, toy_space, cache=ResultCache(cache_dir)
        )
        warm_scores = warm.evaluate(list(toy_space.candidates()))
        assert warm.cache_hits == toy_space.size
        assert warm.cache_misses == 0
        assert warm.evaluated == 0
        assert all(score.from_cache for score in warm_scores)
        assert [s.edp for s in warm_scores] == [s.edp for s in cold_scores]

    def test_model_change_invalidates(self, synthetic_model, toy_space, tmp_path):
        import numpy as np

        from repro.core import EnergyMacroModel

        cache_dir = str(tmp_path / "cache")
        EvaluationEngine(
            synthetic_model, toy_space, cache=ResultCache(cache_dir)
        ).evaluate([toy_space.candidate_at(0)])
        other_model = EnergyMacroModel(
            synthetic_model.template,
            np.asarray(synthetic_model.coefficients) * 2.0,
        )
        engine = EvaluationEngine(
            other_model, toy_space, cache=ResultCache(cache_dir)
        )
        engine.evaluate([toy_space.candidate_at(0)])
        assert engine.cache_hits == 0 and engine.cache_misses == 1


class TestParallel:
    def test_parallel_matches_serial(self, synthetic_model, toy_space):
        candidates = list(toy_space.candidates())
        serial = EvaluationEngine(synthetic_model, toy_space, jobs=1).evaluate(
            candidates
        )
        parallel = EvaluationEngine(synthetic_model, toy_space, jobs=2).evaluate(
            candidates
        )
        assert [(s.key, s.energy, s.cycles) for s in parallel] == [
            (s.key, s.energy, s.cycles) for s in serial
        ]

    def test_parallel_with_cache(self, synthetic_model, toy_space, tmp_path):
        cache_dir = str(tmp_path / "cache")
        engine = EvaluationEngine(
            synthetic_model, toy_space, jobs=2, cache=ResultCache(cache_dir)
        )
        engine.evaluate(list(toy_space.candidates()))
        warm = EvaluationEngine(
            synthetic_model, toy_space, jobs=2, cache=ResultCache(cache_dir)
        )
        warm.evaluate(list(toy_space.candidates()))
        assert warm.cache_hits == toy_space.size and warm.evaluated == 0


#: pid of the process that imported this module (the pytest parent).
#: Fork-pool workers inherit the module but have their own pid, so
#: :func:`_crashing_builder` can die only inside a worker and stay
#: harmless in the parent's prewarm/serial paths.
_PARENT_PID = os.getpid()

POISON_N = 3  # distinct from the toy loop lengths so keys never collide


def _crashing_builder(assignment):
    if assignment["n"] == POISON_N and os.getpid() != _PARENT_PID:
        os._exit(13)  # simulate a segfaulting candidate killing its worker
    return build_toy_point(assignment)


def _crashing_space(values):
    return SearchSpace(
        name="crashy",
        description="one design point kills any worker that scores it",
        knobs=(Knob("n", tuple(values)),),
        builder=_crashing_builder,
    )


@pytest.mark.faults
@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="worker crashes need the fork pool (spawn-only platform runs serial)",
)
class TestPoolBreakage:
    def test_run_survives_a_worker_death(self, synthetic_model):
        # 12 candidates, poison first: wave 0 (jobs*4 = 8) breaks the
        # pool, waves after it must be scored serially in the parent.
        values = [POISON_N] + list(range(4, 15))
        space = _crashing_space(values)
        engine = EvaluationEngine(synthetic_model, space, jobs=2)
        candidates = list(space.candidates())
        scores = engine.evaluate(candidates)

        # exactly-once accounting: every candidate is a score or a failure
        assert len(scores) + len(engine.failures) == len(candidates)
        assert engine.pool_restarts == 1

        pool_failures = [f for f in engine.failures if f.stage == "pool"]
        assert pool_failures, "the in-flight wave must surface pool failures"
        assert all(f.stage == "pool" for f in engine.failures)
        assert f"n={POISON_N}" in {f.name for f in pool_failures}
        for failure in pool_failures:
            assert "worker pool died" in failure.message

        # the candidates the pool never saw were scored by the serial
        # fallback — the tail of the space always lands after the break
        scored_keys = {score.key for score in scores}
        for candidate in candidates[8:]:
            assert candidate.key in scored_keys

    def test_pool_failures_respect_max_failures(self, synthetic_model):
        space = _crashing_space([POISON_N, 2, 4])
        engine = EvaluationEngine(synthetic_model, space, jobs=2, max_failures=0)
        with pytest.raises(TooManyFailures):
            engine.evaluate(list(space.candidates()))

    def test_explore_reports_pool_restarts(self, synthetic_model):
        from repro.dse import ExhaustiveStrategy, explore

        space = _crashing_space([POISON_N, 2, 4])
        report = explore(synthetic_model, space, ExhaustiveStrategy(), jobs=2)
        assert report.pool_restarts == 1
        assert report.to_payload()["pool_restarts"] == 1
        assert "worker pool died 1 time(s)" in report.table()

    def test_healthy_parallel_run_reports_zero_restarts(
        self, synthetic_model, toy_space
    ):
        engine = EvaluationEngine(synthetic_model, toy_space, jobs=2)
        engine.evaluate(list(toy_space.candidates()))
        assert engine.pool_restarts == 0


class TestFailureIsolation:
    def test_bad_candidate_becomes_failure_record(self, synthetic_model):
        space = _broken_space()
        engine = EvaluationEngine(synthetic_model, space)
        scores = engine.evaluate(list(space.candidates()))
        assert [s.assignment["n"] for s in scores] == [2, 8]
        assert len(engine.failures) == 1
        failure = engine.failures[0]
        assert failure.name == "n=4"
        assert failure.stage == "build"
        assert failure.error_type == "RuntimeError"

    def test_max_failures_aborts(self, synthetic_model):
        space = _broken_space()
        engine = EvaluationEngine(synthetic_model, space, max_failures=0)
        with pytest.raises(TooManyFailures):
            engine.evaluate(list(space.candidates()))

    def test_failures_isolated_under_cache_too(self, synthetic_model, tmp_path):
        space = _broken_space()
        engine = EvaluationEngine(
            synthetic_model, space, cache=ResultCache(str(tmp_path / "c"))
        )
        scores = engine.evaluate(list(space.candidates()))
        assert len(scores) == 2 and len(engine.failures) == 1

    def test_progress_reports_failures(self, synthetic_model):
        space = _broken_space()
        messages = []
        engine = EvaluationEngine(synthetic_model, space, progress=messages.append)
        engine.evaluate(list(space.candidates()))
        assert any("FAILED" in message for message in messages)
        assert any("scored" in message for message in messages)
