"""Strategies, Pareto frontier, ranking and the explore/report layer."""

import json

import pytest

from repro.dse import (
    EvaluationEngine,
    ExhaustiveStrategy,
    GreedyStrategy,
    RandomStrategy,
    explore,
    make_strategy,
    pareto_frontier,
    rank_scores,
)


def _engine(model, space, **kwargs):
    return EvaluationEngine(model, space, **kwargs)


class TestExhaustive:
    def test_covers_the_space(self, synthetic_model, toy_space):
        engine = _engine(synthetic_model, toy_space)
        scores = ExhaustiveStrategy().explore(toy_space, engine.evaluate)
        assert len(scores) == toy_space.size
        assert len({s.key for s in scores}) == toy_space.size


class TestRandom:
    def test_deterministic_for_fixed_seed(self, synthetic_model, toy_space):
        runs = []
        for _ in range(2):
            engine = _engine(synthetic_model, toy_space)
            scores = RandomStrategy(budget=4, seed=11).explore(
                toy_space, engine.evaluate
            )
            runs.append([s.key for s in scores])
        assert runs[0] == runs[1]
        assert len(set(runs[0])) == 4

    def test_different_seed_different_sample(self, synthetic_model, toy_space):
        samples = []
        for seed in (0, 1):
            engine = _engine(synthetic_model, toy_space)
            scores = RandomStrategy(budget=4, seed=seed).explore(
                toy_space, engine.evaluate
            )
            samples.append(tuple(s.key for s in scores))
        assert samples[0] != samples[1]

    def test_budget_covering_space_is_exhaustive(self, synthetic_model, toy_space):
        engine = _engine(synthetic_model, toy_space)
        scores = RandomStrategy(budget=100, seed=0).explore(
            toy_space, engine.evaluate
        )
        assert len(scores) == toy_space.size

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            RandomStrategy(budget=0)


class TestGreedy:
    def test_finds_the_monotone_optimum(self, synthetic_model, toy_space):
        # cycles (and thus energy and EDP) grow with both knobs, so the
        # hill-climb must land on the global minimum n=2, pad=0
        engine = _engine(synthetic_model, toy_space)
        scores = GreedyStrategy(seed=5).explore(toy_space, engine.evaluate)
        best = min(scores, key=lambda s: s.edp)
        assert best.assignment == {"n": 2, "pad": 0}

    def test_deterministic_for_fixed_seed(self, synthetic_model, toy_space):
        runs = []
        for _ in range(2):
            engine = _engine(synthetic_model, toy_space)
            scores = GreedyStrategy(seed=3, restarts=2).explore(
                toy_space, engine.evaluate
            )
            runs.append(sorted(s.key for s in scores))
        assert runs[0] == runs[1]

    def test_restarts_share_the_memo(self, synthetic_model, toy_space):
        engine = _engine(synthetic_model, toy_space)
        GreedyStrategy(seed=0, restarts=3).explore(toy_space, engine.evaluate)
        # every design point is simulated at most once no matter how many
        # walks revisit it
        assert engine.evaluated <= toy_space.size

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            GreedyStrategy(objective="beauty")
        with pytest.raises(ValueError):
            GreedyStrategy(max_steps=0)
        with pytest.raises(ValueError):
            GreedyStrategy(restarts=0)


class TestMakeStrategy:
    def test_builds_each_kind(self):
        assert make_strategy("exhaustive").name == "exhaustive"
        assert make_strategy("random", budget=3, seed=1).describe() == (
            "random(budget=3, seed=1)"
        )
        assert make_strategy("greedy", objective="energy").name == "greedy"

    def test_random_requires_budget(self):
        with pytest.raises(ValueError, match="budget"):
            make_strategy("random")

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            make_strategy("simulated-annealing")


class TestParetoAndRanking:
    def test_frontier_and_ranking(self, synthetic_model, toy_space):
        engine = _engine(synthetic_model, toy_space)
        scores = ExhaustiveStrategy().explore(toy_space, engine.evaluate)
        frontier = pareto_frontier(scores)
        assert frontier  # never empty for a non-empty score set
        frontier_keys = {s.key for s in frontier}
        # in a monotone space only the cheapest point is non-dominated
        assert frontier_keys == {"n=2,pad=0"}
        ranked = rank_scores(scores, "edp", top_k=3)
        assert len(ranked) == 3
        assert ranked[0].key == "n=2,pad=0"
        assert [s.edp for s in ranked] == sorted(s.edp for s in ranked)

    def test_ranking_deduplicates(self, synthetic_model, toy_space):
        engine = _engine(synthetic_model, toy_space)
        scores = ExhaustiveStrategy().explore(toy_space, engine.evaluate)
        ranked = rank_scores(scores + scores, "edp")
        assert len(ranked) == toy_space.size


class TestExploreReport:
    def test_report_contents_and_renderings(self, synthetic_model, toy_space):
        report = explore(synthetic_model, toy_space, ExhaustiveStrategy())
        assert report.ok
        assert report.space_size == toy_space.size
        assert len(report.scores) == toy_space.size
        assert report.best.key == report.ranked(top_k=1)[0].key
        assert report.candidates_per_second > 0

        table = report.table(top_k=4)
        assert "space toy" in table and "pareto frontier" in table

        payload = json.loads(report.to_json())
        assert payload["format"] == "repro-dse-report/1"
        assert len(payload["scores"]) == toy_space.size

        csv_text = report.to_csv()
        lines = csv_text.strip().splitlines()
        assert len(lines) == toy_space.size + 1
        assert lines[0].startswith("rank,key,program,processor,n,pad")

    def test_greedy_report_counts_scored_subset(self, synthetic_model, toy_space):
        report = explore(
            synthetic_model, toy_space, GreedyStrategy(seed=1), objective="edp"
        )
        assert 0 < len(report.scores) <= toy_space.size
        assert report.best is not None
