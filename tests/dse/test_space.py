"""Candidate-space layer: knobs, indexing, bundled spaces, registry."""

import pytest

from repro.dse import (
    BUILTIN_SPACES,
    Knob,
    SearchSpace,
    SpaceError,
    assignment_key,
    available_spaces,
    get_space,
    register_space,
)
from repro.dse.space import _REGISTRY

from .conftest import build_toy_point, make_toy_space


class TestKnob:
    def test_valid(self):
        knob = Knob("dcache_kb", (4, 8, 16))
        assert len(knob) == 3

    def test_rejects_bad_name(self):
        with pytest.raises(SpaceError):
            Knob("", (1,))
        with pytest.raises(SpaceError):
            Knob("a b", (1,))

    def test_rejects_empty_and_duplicate_values(self):
        with pytest.raises(SpaceError):
            Knob("n", ())
        with pytest.raises(SpaceError):
            Knob("n", (1, 1))


class TestAssignmentKey:
    def test_order_independent(self):
        assert assignment_key({"b": 2, "a": 1}) == assignment_key({"a": 1, "b": 2})
        assert assignment_key({"a": 1, "b": 2}) == "a=1,b=2"


class TestSearchSpace:
    def test_size_is_knob_product(self, toy_space):
        assert toy_space.size == 9

    def test_index_assignment_round_trip(self, toy_space):
        for index in range(toy_space.size):
            assignment = toy_space.assignment_at(index)
            assert toy_space.index_of(assignment) == index

    def test_enumeration_is_deterministic(self, toy_space):
        keys = [c.key for c in toy_space.candidates()]
        assert keys == [c.key for c in make_toy_space().candidates()]
        assert len(set(keys)) == toy_space.size

    def test_index_out_of_range(self, toy_space):
        with pytest.raises(SpaceError):
            toy_space.assignment_at(-1)
        with pytest.raises(SpaceError):
            toy_space.assignment_at(toy_space.size)

    def test_validate_rejects_missing_extra_and_bad_values(self, toy_space):
        with pytest.raises(SpaceError, match="missing knobs"):
            toy_space.validate({"n": 2})
        with pytest.raises(SpaceError, match="unknown knobs"):
            toy_space.validate({"n": 2, "pad": 0, "zzz": 1})
        with pytest.raises(SpaceError, match="has no value"):
            toy_space.validate({"n": 3, "pad": 0})

    def test_candidate_key_and_build(self, toy_space):
        candidate = toy_space.candidate({"pad": 2, "n": 4})
        assert candidate.key == "n=4,pad=2"
        config, program = candidate.build()
        assert program.name == "toy_n4_p2"
        assert config.extensions == ()

    def test_rejects_empty_and_duplicate_knobs(self):
        with pytest.raises(SpaceError):
            SearchSpace("s", "d", (), build_toy_point)
        with pytest.raises(SpaceError):
            SearchSpace(
                "s", "d", (Knob("n", (1,)), Knob("n", (2,))), build_toy_point
            )

    def test_describe_lists_knobs(self, toy_space):
        text = toy_space.describe()
        assert "9 design points" in text
        assert "pad" in text


class TestBundledSpaces:
    def test_builtin_names(self):
        assert set(BUILTIN_SPACES) == {
            "reed_solomon",
            "fir",
            "reed_solomon_tuned",
            "fir_tuned",
            "reed_solomon_dvfs",
            "fir_dvfs",
        }
        assert set(BUILTIN_SPACES) <= set(available_spaces())

    def test_sizes(self):
        assert get_space("reed_solomon").size == 4
        assert get_space("fir").size == 3
        assert get_space("reed_solomon_tuned").size == 108
        assert get_space("fir_tuned").size == 81

    def test_rs_space_builds_paper_choices(self):
        space = get_space("reed_solomon")
        names = [space.build(a)[1].name for a in (c.assignment_dict for c in space.candidates())]
        assert names == ["rs_sw", "rs_gfmul", "rs_gfmac", "rs_dual"]

    def test_tuned_space_honors_cache_knobs(self):
        space = get_space("fir_tuned")
        config, program = space.build(
            {"impl": "packed", "icache_kb": 4, "dcache_kb": 8, "dcache_ways": 2}
        )
        assert config.icache.size_bytes == 4 * 1024
        assert config.dcache.size_bytes == 8 * 1024
        assert config.dcache.ways == 2
        assert program.name == "fir_packed"

    def test_same_point_has_same_fingerprint_across_builds(self):
        space = get_space("reed_solomon")
        one, _ = space.build({"impl": "dual"})
        two, _ = space.build({"impl": "dual"})
        assert one is not two
        assert one.fingerprint() == two.fingerprint()


class TestRegistry:
    def test_unknown_space(self):
        with pytest.raises(SpaceError, match="unknown search space"):
            get_space("nope")

    def test_register_and_get(self):
        register_space("toy", make_toy_space)
        try:
            assert get_space("toy").size == 9
            assert "toy" in available_spaces()
        finally:
            _REGISTRY.pop("toy", None)

    def test_factory_name_mismatch_detected(self):
        register_space("misnamed", make_toy_space)
        try:
            with pytest.raises(SpaceError, match="built a space named"):
                get_space("misnamed")
        finally:
            _REGISTRY.pop("misnamed", None)
