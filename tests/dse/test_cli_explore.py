"""CLI ``explore`` command (direct main() invocation)."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core import EnergyMacroModel, default_template


@pytest.fixture()
def model_file(tmp_path):
    template = default_template()
    model = EnergyMacroModel(template, np.linspace(50, 5000, len(template)))
    path = tmp_path / "model.json"
    model.save(str(path))
    return str(path)


class TestListSpaces:
    def test_lists_bundled_spaces(self, capsys):
        assert main(["explore", "--list-spaces"]) == 0
        out = capsys.readouterr().out
        for name in ("reed_solomon", "fir", "reed_solomon_tuned", "fir_tuned"):
            assert f"space {name}:" in out


class TestExplore:
    def test_exhaustive_fir(self, model_file, capsys):
        assert main(["explore", model_file, "--space", "fir"]) == 0
        out = capsys.readouterr().out
        assert "scored 3/3 design points" in out
        assert "fir_packed" in out and "fir_sw" in out
        assert "pareto frontier" in out

    def test_json_format(self, model_file, capsys):
        assert main(["explore", model_file, "--space", "fir", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["space"] == "fir"
        assert len(payload["scores"]) == 3

    def test_csv_to_file(self, model_file, tmp_path, capsys):
        out_path = tmp_path / "ranking.csv"
        assert (
            main(
                [
                    "explore",
                    model_file,
                    "--space",
                    "fir",
                    "--format",
                    "csv",
                    "-o",
                    str(out_path),
                ]
            )
            == 0
        )
        lines = out_path.read_text().strip().splitlines()
        assert lines[0].startswith("rank,key,program")
        assert len(lines) == 4

    def test_warm_cache_hits_every_candidate(self, model_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "dse-cache")
        argv = ["explore", model_file, "--space", "fir", "--cache", cache_dir]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "0 hit(s), 3 miss(es)" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "3 hit(s), 0 miss(es)" in warm

    def test_random_strategy_deterministic(self, model_file, capsys):
        argv = [
            "explore",
            model_file,
            "--space",
            "fir_tuned",
            "--strategy",
            "random",
            "--budget",
            "3",
            "--seed",
            "7",
            "--format",
            "json",
        ]
        outputs = []
        for _ in range(2):
            assert main(argv) == 0
            payload = json.loads(capsys.readouterr().out)
            outputs.append([row["key"] for row in payload["scores"]])
        assert outputs[0] == outputs[1]
        assert len(outputs[0]) == 3


class TestExploreErrors:
    def test_requires_model(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["explore"])
        assert excinfo.value.code == 2

    def test_unknown_space(self, model_file):
        with pytest.raises(SystemExit) as excinfo:
            main(["explore", model_file, "--space", "nope"])
        assert excinfo.value.code == 2

    def test_unreadable_model(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SystemExit) as excinfo:
            main(["explore", str(bad), "--space", "fir"])
        assert excinfo.value.code == 2

    def test_random_requires_budget(self, model_file):
        with pytest.raises(SystemExit) as excinfo:
            main(["explore", model_file, "--space", "fir", "--strategy", "random"])
        assert excinfo.value.code == 2


class TestExploreOperatingPoints:
    def test_scenario_matrix_sections(self, model_file, capsys):
        assert (
            main(
                [
                    "explore", model_file, "--space", "fir",
                    "--operating-point", "130nm@1.5V@400MHz",
                    "--operating-point", "65nm@1.1V@800MHz",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "=== operating point 130nm@1.5V@400MHz ===" in out
        assert "=== operating point 65nm@1.1V@800MHz ===" in out
        assert "time_us" in out

    def test_scenario_matrix_json(self, model_file, capsys):
        assert (
            main(
                [
                    "explore", model_file, "--space", "fir", "--format", "json",
                    "--operating-point", "130nm@1.5V@400MHz",
                    "--operating-point", "65nm@1.1V@800MHz",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "repro-dse-scenario-matrix/1"
        points = payload["points"]
        assert [p["operating_point"] for p in points] == [
            "130nm@1.5V@400MHz", "65nm@1.1V@800MHz",
        ]
        # distinct frontiers: same candidates, different energies
        a, b = points
        energies_a = {s["key"]: s["energy"] for s in a["scores"]}
        energies_b = {s["key"]: s["energy"] for s in b["scores"]}
        assert set(energies_a) == set(energies_b)
        assert all(energies_a[k] != energies_b[k] for k in energies_a)
        # ...but bitwise-identical execution statistics
        cycles_a = {s["key"]: s["cycles"] for s in a["scores"]}
        cycles_b = {s["key"]: s["cycles"] for s in b["scores"]}
        assert cycles_a == cycles_b

    def test_matrix_shares_cache_with_disjoint_keys(self, model_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "matrix-cache")
        argv = [
            "explore", model_file, "--space", "fir", "--cache", cache_dir,
            "--operating-point", "130nm@1.5V@400MHz",
            "--operating-point", "65nm@1.1V@800MHz",
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        # disjoint key sets: the second point misses instead of hitting
        assert "0 hit(s), 3 miss(es)" in cold
        assert "0 hit(s), 6 miss(es)" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "3 hit(s), 0 miss(es)" in warm
        assert "6 hit(s), 0 miss(es)" in warm

    def test_csv_rejects_matrix(self, model_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "explore", model_file, "--space", "fir", "--format", "csv",
                    "--operating-point", "130nm@1.5V@400MHz",
                    "--operating-point", "65nm@1.1V@800MHz",
                ]
            )
        assert excinfo.value.code == 2
        assert "single operating point" in capsys.readouterr().err

    def test_bad_point_dies_before_simulating(self, model_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["explore", model_file, "--space", "fir",
                 "--operating-point", "65nm@9V@800MHz"]
            )
        assert excinfo.value.code == 2
        assert "bad --operating-point" in capsys.readouterr().err

    def test_op_axis_folds_into_space(self, model_file, capsys):
        assert (
            main(
                [
                    "explore", model_file, "--space", "fir", "--format", "json",
                    "--op-axis", "90nm@1.2V@600MHz,65nm@1.1V@800MHz",
                    "--objective", "time",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["space"] == "fir@dvfs"
        assert len(payload["scores"]) == 6
        assert {s["operating_point"] for s in payload["scores"]} == {
            "90nm@1.2V@600MHz", "65nm@1.1V@800MHz",
        }

    def test_time_objective_without_clock_dies(self, model_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["explore", model_file, "--space", "fir", "--objective", "time"])
        assert excinfo.value.code == 2
        assert "needs a clock" in capsys.readouterr().err

    def test_carbon_overlay(self, model_file, capsys):
        assert (
            main(
                [
                    "explore", model_file, "--space", "fir",
                    "--operating-point", "65nm@1.1V@800MHz",
                    "--carbon", "1000",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "TCO($)" in out
        assert "1000 executions/s" in out

    def test_carbon_json(self, model_file, capsys):
        assert (
            main(
                [
                    "explore", model_file, "--space", "fir", "--format", "json",
                    "--operating-point", "65nm@1.1V@800MHz",
                    "--carbon", "1000",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["carbon"]) == 3
        assert all(row["annual_kwh"] > 0 for row in payload["carbon"])

    def test_carbon_rejects_non_positive_rate(self, model_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["explore", model_file, "--space", "fir", "--carbon", "0"]
            )
        assert excinfo.value.code == 2
