"""CLI ``explore`` command (direct main() invocation)."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core import EnergyMacroModel, default_template


@pytest.fixture()
def model_file(tmp_path):
    template = default_template()
    model = EnergyMacroModel(template, np.linspace(50, 5000, len(template)))
    path = tmp_path / "model.json"
    model.save(str(path))
    return str(path)


class TestListSpaces:
    def test_lists_bundled_spaces(self, capsys):
        assert main(["explore", "--list-spaces"]) == 0
        out = capsys.readouterr().out
        for name in ("reed_solomon", "fir", "reed_solomon_tuned", "fir_tuned"):
            assert f"space {name}:" in out


class TestExplore:
    def test_exhaustive_fir(self, model_file, capsys):
        assert main(["explore", model_file, "--space", "fir"]) == 0
        out = capsys.readouterr().out
        assert "scored 3/3 design points" in out
        assert "fir_packed" in out and "fir_sw" in out
        assert "pareto frontier" in out

    def test_json_format(self, model_file, capsys):
        assert main(["explore", model_file, "--space", "fir", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["space"] == "fir"
        assert len(payload["scores"]) == 3

    def test_csv_to_file(self, model_file, tmp_path, capsys):
        out_path = tmp_path / "ranking.csv"
        assert (
            main(
                [
                    "explore",
                    model_file,
                    "--space",
                    "fir",
                    "--format",
                    "csv",
                    "-o",
                    str(out_path),
                ]
            )
            == 0
        )
        lines = out_path.read_text().strip().splitlines()
        assert lines[0].startswith("rank,key,program")
        assert len(lines) == 4

    def test_warm_cache_hits_every_candidate(self, model_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "dse-cache")
        argv = ["explore", model_file, "--space", "fir", "--cache", cache_dir]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "0 hit(s), 3 miss(es)" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "3 hit(s), 0 miss(es)" in warm

    def test_random_strategy_deterministic(self, model_file, capsys):
        argv = [
            "explore",
            model_file,
            "--space",
            "fir_tuned",
            "--strategy",
            "random",
            "--budget",
            "3",
            "--seed",
            "7",
            "--format",
            "json",
        ]
        outputs = []
        for _ in range(2):
            assert main(argv) == 0
            payload = json.loads(capsys.readouterr().out)
            outputs.append([row["key"] for row in payload["scores"]])
        assert outputs[0] == outputs[1]
        assert len(outputs[0]) == 3


class TestExploreErrors:
    def test_requires_model(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["explore"])
        assert excinfo.value.code == 2

    def test_unknown_space(self, model_file):
        with pytest.raises(SystemExit) as excinfo:
            main(["explore", model_file, "--space", "nope"])
        assert excinfo.value.code == 2

    def test_unreadable_model(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SystemExit) as excinfo:
            main(["explore", str(bad), "--space", "fir"])
        assert excinfo.value.code == 2

    def test_random_requires_budget(self, model_file):
        with pytest.raises(SystemExit) as excinfo:
            main(["explore", model_file, "--space", "fir", "--strategy", "random"])
        assert excinfo.value.code == 2
