"""Operating-point threading through the DSE layer.

The acceptance scenario of the calibration work lives here: exploring
one space at several operating points must yield per-point rankings,
bitwise-identical execution statistics (the point never perturbs the
simulation), and disjoint result-cache key sets per point.
"""

import pytest

from repro.dse import (
    OPERATING_POINT_KNOB,
    EvaluationEngine,
    ExhaustiveStrategy,
    ResultCache,
    SpaceError,
    explore,
    get_space,
    with_operating_points,
)
from repro.tech import default_calibration

from .conftest import make_toy_space

POINTS = ("130nm@1.5V@400MHz", "90nm@1.2V@600MHz", "65nm@1.1V@800MHz")


class TestWithOperatingPoints:
    def test_adds_one_knob(self):
        space = with_operating_points(make_toy_space(), POINTS)
        assert space.size == 9 * len(POINTS)
        assert space.name == "toy@dvfs"
        names = [knob.name for knob in space.knobs]
        assert names.count(OPERATING_POINT_KNOB) == 1

    def test_knob_is_stripped_before_build(self):
        space = with_operating_points(make_toy_space(), POINTS)
        assignment = dict(space.candidates().__iter__().__next__().assignment_dict)
        config, program = space.build(assignment)
        assert program.name.startswith("toy_")

    def test_canonicalizes_and_validates(self):
        space = with_operating_points(make_toy_space(), ("65 nm @ 1.1 V @ 800 MHz",))
        op_knob = next(k for k in space.knobs if k.name == OPERATING_POINT_KNOB)
        assert op_knob.values == ("65nm@1.1V@800MHz",)
        with pytest.raises(SpaceError):
            with_operating_points(make_toy_space(), ("65nm@9V@800MHz",))
        with pytest.raises(SpaceError):
            with_operating_points(make_toy_space(), ())

    def test_rejects_duplicates_and_double_wrap(self):
        with pytest.raises(SpaceError):
            with_operating_points(
                make_toy_space(), ("65nm@1.1V@800MHz", "65 nm@1.1V@800 MHz")
            )
        wrapped = with_operating_points(make_toy_space(), POINTS)
        with pytest.raises(SpaceError):
            with_operating_points(wrapped, POINTS)

    def test_bundled_dvfs_spaces(self):
        assert get_space("reed_solomon_dvfs").size == 4 * 3
        assert get_space("fir_dvfs").size == 3 * 3


class TestScoring:
    def test_energy_scales_exactly_per_point(self, synthetic_model):
        space = with_operating_points(make_toy_space(with_pad=False), POINTS)
        engine = EvaluationEngine(synthetic_model, space)
        scores = engine.evaluate(list(space.candidates()))
        calibration = default_calibration()
        by_assignment = {}
        for score in scores:
            assignment = dict(
                item.split("=") for item in score.key.split(",")
            )
            by_assignment.setdefault(assignment["n"], {})[
                assignment[OPERATING_POINT_KNOB]
            ] = score
        for per_point in by_assignment.values():
            assert len(per_point) == len(POINTS)
            # identical simulation across points...
            assert len({score.cycles for score in per_point.values()}) == 1
            # ...with energies in the exact calibration ratios
            base = {
                point: score.energy / calibration.energy_scale(point)
                for point, score in per_point.items()
            }
            values = list(base.values())
            assert all(v == pytest.approx(values[0]) for v in values)

    def test_scores_carry_point_and_clock(self, synthetic_model):
        space = with_operating_points(make_toy_space(with_pad=False), POINTS)
        engine = EvaluationEngine(synthetic_model, space)
        (score,) = engine.evaluate(
            [space.candidate({"n": 2, OPERATING_POINT_KNOB: "65nm@1.1V@800MHz"})]
        )
        assert score.operating_point == "65nm@1.1V@800MHz"
        assert score.frequency_mhz == 800.0
        assert score.seconds == pytest.approx(score.cycles / 800e6)
        assert score.edp_seconds == pytest.approx(score.energy * score.seconds)

    def test_op_only_candidates_share_one_batch(self, synthetic_model):
        space = with_operating_points(make_toy_space(with_pad=False), POINTS)
        candidates = [
            space.candidate({"n": 4, OPERATING_POINT_KNOB: point})
            for point in POINTS
        ]
        engine = EvaluationEngine(synthetic_model, space)
        scores = engine.evaluate(candidates)
        assert engine.batch_groups == 1
        assert engine.batch_members == len(POINTS)
        assert len({score.energy for score in scores}) == len(POINTS)

    def test_time_objectives(self, synthetic_model):
        space = with_operating_points(make_toy_space(with_pad=False), POINTS)
        engine = EvaluationEngine(synthetic_model, space)
        (score,) = engine.evaluate(
            [space.candidate({"n": 2, OPERATING_POINT_KNOB: POINTS[0]})]
        )
        assert score.objective("time") == score.seconds
        assert score.objective("edp_seconds") == score.edp_seconds
        bare_engine = EvaluationEngine(
            synthetic_model, make_toy_space(with_pad=False)
        )
        (bare,) = bare_engine.evaluate(
            [make_toy_space(with_pad=False).candidate({"n": 2})]
        )
        with pytest.raises(ValueError, match="operating point"):
            bare.objective("time")


class TestExploreMatrix:
    """The 3-point scenario matrix the PR's acceptance criteria name."""

    @pytest.fixture(scope="class")
    def reports(self, tmp_path_factory):
        import numpy as np

        from repro.core import EnergyMacroModel, default_template

        template = default_template()
        model = EnergyMacroModel(template, np.linspace(50, 5000, len(template)))
        cache_dir = tmp_path_factory.mktemp("op-cache")
        space = make_toy_space(with_pad=False)
        reports = {}
        for point in POINTS:
            reports[point] = explore(
                model.at(point),
                space,
                ExhaustiveStrategy(),
                cache=ResultCache(cache_dir),
            )
        return reports

    def test_distinct_frontiers_per_point(self, reports):
        energies = {
            point: tuple(score.energy for score in report.ranked())
            for point, report in reports.items()
        }
        assert len(set(energies.values())) == len(POINTS)

    def test_stats_identical_across_points(self, reports):
        cycle_vectors = {
            tuple(sorted((score.key, score.cycles) for score in report.scores))
            for report in reports.values()
        }
        assert len(cycle_vectors) == 1

    def test_cache_keys_disjoint_across_points(self, reports):
        # each exploration added its own entries: all misses, no hits
        for report in reports.values():
            assert report.cache_hits == 0
            assert report.cache_misses == len(report.scores)

    def test_warm_rerun_hits_per_point(self, reports, tmp_path):
        import numpy as np

        from repro.core import EnergyMacroModel, default_template

        template = default_template()
        model = EnergyMacroModel(template, np.linspace(50, 5000, len(template)))
        cache_dir = tmp_path / "warm"
        space = make_toy_space(with_pad=False)
        for point in POINTS:
            explore(
                model.at(point), space, ExhaustiveStrategy(),
                cache=ResultCache(cache_dir),
            )
        for point in POINTS:
            warm = explore(
                model.at(point), space, ExhaustiveStrategy(),
                cache=ResultCache(cache_dir),
            )
            assert warm.cache_hits == len(warm.scores)
            assert warm.evaluated == 0

    def test_report_metadata_names_the_point(self, reports):
        for point, report in reports.items():
            assert report.operating_point == point
            assert report.model_digest
            assert point in report.table()
            payload = report.to_payload()
            assert payload["operating_point"] == point
