"""Exploration must compile each (program, config-content) pair exactly once."""

from repro.dse.evaluate import EvaluationEngine
from repro.xtcore import compilation_cache

from .conftest import make_toy_space


def test_explore_compiles_each_pair_exactly_once(synthetic_model):
    space = make_toy_space(with_pad=False)  # 3 distinct design points
    candidates = list(space.candidates())

    cache = compilation_cache()
    cache.clear()
    engine = EvaluationEngine(synthetic_model, space)
    scores = engine.evaluate(candidates)
    assert len(scores) == len(candidates)
    assert cache.compilations == len(candidates)

    # warm re-evaluation with a fresh engine (no per-run memo): the
    # compilation cache absorbs every lowering, so nothing recompiles
    warm = EvaluationEngine(synthetic_model, space)
    warm_scores = warm.evaluate(list(space.candidates()))
    assert len(warm_scores) == len(candidates)
    assert cache.compilations == len(candidates)
    assert cache.hits >= len(candidates)


def test_repeated_sessions_share_one_lowering(synthetic_model):
    space = make_toy_space(with_pad=False)
    candidate = next(space.candidates())
    config, program = candidate.build()

    cache = compilation_cache()
    cache.clear()
    from repro.obs import run_session

    for _ in range(4):
        run_session(config, program)
    assert cache.compilations == 1
    assert cache.hits == 3
