"""Content-addressed result cache: keying, round-trip, corruption."""

import json
import pathlib

from repro.dse import (
    ResultCache,
    candidate_cache_key,
    get_space,
    model_digest,
    program_digest,
)

from .conftest import make_toy_space


class TestDigests:
    def test_model_digest_stable_and_content_sensitive(self, synthetic_model):
        import numpy as np

        from repro.core import EnergyMacroModel

        assert model_digest(synthetic_model) == model_digest(synthetic_model)
        other = EnergyMacroModel(
            synthetic_model.template,
            np.asarray(synthetic_model.coefficients) + 1.0,
        )
        assert model_digest(other) != model_digest(synthetic_model)

    def test_program_digest_distinguishes_programs(self):
        space = make_toy_space()
        config, prog_a = space.build({"n": 2, "pad": 0})
        _, prog_b = space.build({"n": 4, "pad": 0})
        assert program_digest(prog_a, config) != program_digest(prog_b, config)
        assert program_digest(prog_a, config) == program_digest(prog_a, config)


class TestCandidateCacheKey:
    def test_stable_across_separate_builds(self, synthetic_model):
        space = get_space("reed_solomon")
        digest = model_digest(synthetic_model)
        keys = []
        for _ in range(2):
            config, program = space.build({"impl": "gfmac"})
            keys.append(candidate_cache_key(digest, config, program, 1000))
        assert keys[0] == keys[1]

    def test_sensitive_to_every_component(self, synthetic_model):
        space = make_toy_space()
        digest = model_digest(synthetic_model)
        config, program = space.build({"n": 2, "pad": 0})
        base = candidate_cache_key(digest, config, program, 1000)
        other_config, other_program = space.build({"n": 4, "pad": 0})
        assert candidate_cache_key(digest, config, program, 2000) != base
        assert candidate_cache_key("x" * 64, config, program, 1000) != base
        assert (
            candidate_cache_key(digest, other_config, other_program, 1000) != base
        )


class TestResultCache:
    PAYLOAD = {
        "key": "n=2,pad=0",
        "assignment": {"n": 2, "pad": 0},
        "program": "toy",
        "processor": "toy",
        "energy": 10.0,
        "cycles": 5,
        "area": 0.0,
    }

    def test_round_trip_and_counters(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        key = "ab" + "0" * 62
        assert cache.get(key) is None
        cache.put(key, dict(self.PAYLOAD))
        got = cache.get(key)
        assert got is not None and got["energy"] == 10.0
        assert (cache.hits, cache.misses) == (1, 1)
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        key = "cd" + "0" * 62
        cache.put(key, dict(self.PAYLOAD))
        path = pathlib.Path(cache._path(key))
        path.write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None
        path.write_text(json.dumps({"format": "something-else"}), encoding="utf-8")
        assert cache.get(key) is None
        assert cache.hits == 0 and cache.misses == 2

    def test_corrupt_entry_is_quarantined_aside(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        key = "aa" + "0" * 62
        cache.put(key, dict(self.PAYLOAD))
        path = pathlib.Path(cache._path(key))
        path.write_text('{"format": "torn-half-of-a', encoding="utf-8")

        assert cache.get(key) is None
        # the damaged file moved aside for forensics; the slot is free
        assert not path.exists()
        assert path.with_name(path.name + ".corrupt").exists()
        assert cache.info()["corrupt_entries"] == 1

        # a rewrite fills the slot cleanly and reads back as a hit
        cache.put(key, dict(self.PAYLOAD))
        assert cache.get(key) is not None
        assert cache.info()["corrupt_entries"] == 1

    def test_missing_entry_is_a_plain_miss_not_corruption(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        assert cache.get("bb" + "0" * 62) is None
        info = cache.info()
        assert info["misses"] == 1
        assert info["corrupt_entries"] == 0
        assert not list((tmp_path / "c").rglob("*.corrupt"))

    def test_wrong_format_tag_counts_as_corrupt(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        key = "cc" + "0" * 62
        path = pathlib.Path(cache._path(key))
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({"format": "ancient/0"}), encoding="utf-8")
        assert cache.get(key) is None
        assert cache.info()["corrupt_entries"] == 1
        assert path.with_name(path.name + ".corrupt").exists()

    def test_entries_shard_by_key_prefix(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        key = "ef" + "0" * 62
        cache.put(key, dict(self.PAYLOAD))
        assert (tmp_path / "c" / "ef" / f"{key}.json").exists()


class TestTieredResultCache:
    PAYLOAD = dict(TestResultCache.PAYLOAD)

    def _tiered(self, tmp_path):
        from repro.dse import TieredResultCache

        return TieredResultCache(str(tmp_path / "local"), str(tmp_path / "shared"))

    def test_rejects_identical_roots(self, tmp_path):
        from repro.dse import TieredResultCache

        root = str(tmp_path / "c")
        import pytest

        with pytest.raises(ValueError):
            TieredResultCache(root, root)

    def test_put_writes_both_tiers(self, tmp_path):
        cache = self._tiered(tmp_path)
        key = "ab" + "0" * 62
        cache.put(key, dict(self.PAYLOAD))
        assert cache.local.get(key) is not None
        assert cache.shared.get(key) is not None
        assert cache.stores == 1

    def test_shared_hit_is_promoted_into_local(self, tmp_path):
        cache = self._tiered(tmp_path)
        key = "cd" + "0" * 62
        # another node computed this key: it exists only in the shared tier
        cache.shared.put(key, dict(self.PAYLOAD))
        assert cache.local.get(key) is None

        got = cache.get(key)
        assert got is not None and got["energy"] == 10.0
        assert cache.promotions == 1
        # the promoted entry now answers locally, without the shared tier
        assert cache.local.get(key) is not None

        again = cache.get(key)
        assert again is not None
        assert cache.promotions == 1  # no second promotion
        assert (cache.hits, cache.misses) == (2, 0)

    def test_promoted_entry_round_trips_identically(self, tmp_path):
        cache = self._tiered(tmp_path)
        key = "ef" + "0" * 62
        cache.shared.put(key, dict(self.PAYLOAD))
        via_shared = cache.get(key)
        local_copy = cache.local.get(key)
        # strip the per-tier bookkeeping ResultCache stamps on read
        def essence(payload):
            return {k: v for k, v in payload.items() if k not in ("format", "key")}

        assert essence(via_shared) == essence(local_copy)

    def test_miss_in_both_tiers_counts_once(self, tmp_path):
        cache = self._tiered(tmp_path)
        assert cache.get("99" + "0" * 62) is None
        assert (cache.hits, cache.misses) == (0, 1)

    def test_info_exposes_tier_breakdown(self, tmp_path):
        cache = self._tiered(tmp_path)
        key = "12" + "0" * 62
        cache.put(key, dict(self.PAYLOAD))
        cache.get(key)
        info = cache.info()
        assert info["hits"] == 1 and info["stores"] == 1
        assert set(info["tiers"]) == {"local", "shared"}
        assert info["tiers"]["local"]["hits"] == 1
        assert info["root"].endswith("local")
        assert info["shared_root"].endswith("shared")

    def test_len_counts_the_shared_tier(self, tmp_path):
        cache = self._tiered(tmp_path)
        # a key promoted from shared must not double-count fleet-wide
        cache.shared.put("aa" + "0" * 62, dict(self.PAYLOAD))
        cache.put("bb" + "0" * 62, dict(self.PAYLOAD))
        assert len(cache) == 2
