"""Candidate-graph invariants: hashing, serialization, evaluation."""

import pytest

from repro.discover import CandidateGraph, GraphBuilder, GraphError, evaluate_graph


def _mac_graph():
    builder = GraphBuilder()
    a = builder.input()
    b = builder.input()
    product = builder.op("mul", [a, b], 32)
    total = builder.op("add", [product, a], 32)
    return builder.finish(total)


class TestCanonicalHash:
    def test_stable_across_independent_builds(self):
        graph_a, _ = _mac_graph()
        graph_b, _ = _mac_graph()
        assert graph_a.canonical_hash() == graph_b.canonical_hash()

    def test_distinguishes_structure(self):
        graph, _ = _mac_graph()
        builder = GraphBuilder()
        a = builder.input()
        b = builder.input()
        other, _ = builder.finish(builder.op("xor", [a, b], 32))
        assert graph.canonical_hash() != other.canonical_hash()

    def test_hash_survives_payload_round_trip(self):
        graph, _ = _mac_graph()
        clone = CandidateGraph.from_payload(graph.to_payload())
        assert clone.canonical_hash() == graph.canonical_hash()
        assert clone.n_inputs == graph.n_inputs


class TestEvaluate:
    def test_mac_semantics(self):
        graph, _ = _mac_graph()
        assert evaluate_graph(graph, [3, 5]) == (3 * 5 + 3)

    def test_wrong_arity_rejected(self):
        graph, _ = _mac_graph()
        with pytest.raises(GraphError):
            evaluate_graph(graph, [1])

    def test_masking_to_32_bits(self):
        graph, _ = _mac_graph()
        assert evaluate_graph(graph, [0xFFFFFFFF, 2]) < 2**32
