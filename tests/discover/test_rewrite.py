"""Rewriter: packing, branch remap, sync insertion, verification."""

import pytest

from repro.discover import (
    RewriteError,
    legalize_candidates,
    mine_call_sites,
    rewrite_program,
    states_equivalent,
    verify_roundtrip,
)
from repro.discover.miner import MinerOptions, mine_report
from repro.xtcore import ReferenceSimulator, build_processor


def _best_legal(report, prefix):
    candidates = mine_call_sites(report, max_ports=2)
    candidates += mine_report(report, MinerOptions())
    candidates.sort(key=lambda c: (-c.static_saving, -c.dynamic_coverage, c.hash))
    legal, _ = legalize_candidates(candidates, prefix=prefix)
    return legal


class TestRewriteReedSolomon:
    @pytest.fixture(scope="class")
    def rewritten(self, rs_profile):
        config, program, report, base = rs_profile
        legalized = _best_legal(report, "rsw")[0]
        extended = build_processor(
            f"{config.name}+{legalized.mnemonic}", legalized.lifted.specs, base=config
        )
        result = rewrite_program(program, extended.isa, legalized)
        return config, program, base, legalized, extended, result

    def test_site_applied_and_shrinks_stream(self, rewritten):
        _, program, _, _, _, result = rewritten
        assert result.applied
        assert len(result.program.instructions) < len(program.instructions)

    def test_round_trips_through_assembler(self, rewritten):
        _, _, _, _, extended, result = rewritten
        verify_roundtrip(result.program, extended.isa)

    def test_branch_targets_remapped(self, rewritten):
        _, _, _, _, extended, result = rewritten
        for ins in result.program.instructions.values():
            definition = extended.isa.lookup(ins.mnemonic)
            if definition.fmt in ("B1", "B2", "BI", "J") and ins.imm is not None:
                assert ins.imm in result.program.instructions or ins.imm == 0

    def test_differential_state_match(self, rewritten):
        _, _, base, _, extended, result = rewritten
        rerun = ReferenceSimulator(extended, result.program).run()
        ok, why = states_equivalent(base.state, rerun.state, result.clobbers)
        assert ok, why
        assert rerun.instructions < base.instructions / 5

    def test_accumulator_sync_inserted(self, rewritten):
        _, _, _, legalized, _, result = rewritten
        # the grown Horner candidate promotes the accumulator to custom
        # state: its external initialisation must be mirrored with a sync
        assert legalized.candidate.graph.acc_port is not None
        assert result.syncs_inserted >= 1
        syncs = [
            ins
            for ins in result.program.instructions.values()
            if ins.mnemonic == legalized.sync_mnemonic
        ]
        assert len(syncs) == result.syncs_inserted


class TestRewriteRejections:
    def test_unknown_mnemonic_rejected(self, rs_profile):
        config, program, report, _ = rs_profile
        legalized = _best_legal(report, "rsx")[0]
        # base ISA lacks the custom opcode entirely
        with pytest.raises(RewriteError, match="does not define"):
            rewrite_program(program, config.isa, legalized)

    def test_uncached_program_rejected(self, rs_profile):
        import dataclasses

        config, program, report, _ = rs_profile
        legalized = _best_legal(report, "rsy")[0]
        extended = build_processor(
            f"{config.name}+u{legalized.mnemonic}", legalized.lifted.specs, base=config
        )
        pinned = dataclasses.replace(program, uncached_ranges=((0x1000, 0x1010),))
        with pytest.raises(RewriteError, match="uncached"):
            rewrite_program(pinned, extended.isa, legalized)
