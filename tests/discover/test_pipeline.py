"""End-to-end discovery acceptance on the characterized model.

These tests mirror the paper's closed loop: profile the software
baseline, mine and legalize candidate instructions, rewrite + verify,
then score with the energy macro-model — and require the *discovered*
extensions to land within 20% of the hand-written ones.
"""

import pytest

from repro.discover import (
    DiscoveryError,
    DiscoveryManifest,
    DiscoveryOptions,
    discover_workload,
    register_discovered,
)
from repro.dse.space import get_space

pytestmark = pytest.mark.slow


def _handwritten_edp(context, case):
    config, program = case.build()
    estimate = context.model.estimate(config, program)
    return float(estimate.energy) * int(estimate.cycles)


@pytest.fixture(scope="module")
def fir_report(experiment_context):
    return discover_workload("fir", experiment_context.model, DiscoveryOptions())


@pytest.fixture(scope="module")
def rs_report(experiment_context):
    return discover_workload(
        "reed_solomon", experiment_context.model, DiscoveryOptions()
    )


class TestFirAcceptance:
    def test_mines_and_legalizes_enough(self, fir_report):
        assert fir_report.mined >= 5
        assert len(fir_report.legal) >= 5

    def test_candidates_verified_and_scored(self, fir_report):
        assert fir_report.evaluated, fir_report.failures
        best = fir_report.evaluated[0]
        assert best.cycles < fir_report.baseline_cycles
        assert best.edp < fir_report.baseline_edp

    def test_best_within_20pct_of_handwritten(self, fir_report, experiment_context):
        from repro.programs.fir import fir_mac

        handwritten = _handwritten_edp(experiment_context, fir_mac())
        best = fir_report.evaluated[0].edp
        assert best <= 1.20 * handwritten, (
            f"discovered EDP {best:.4g} vs hand-written fir_mac {handwritten:.4g}"
        )


class TestReedSolomonAcceptance:
    def test_mines_and_legalizes_enough(self, rs_report):
        assert rs_report.mined >= 5
        assert len(rs_report.legal) >= 5

    def test_candidates_verified_and_scored(self, rs_report):
        assert rs_report.evaluated, rs_report.failures
        best = rs_report.evaluated[0]
        assert best.cycles < rs_report.baseline_cycles
        assert best.edp < rs_report.baseline_edp

    def test_best_within_20pct_of_handwritten(self, rs_report, experiment_context):
        from repro.programs.reed_solomon import rs_gfmac

        handwritten = _handwritten_edp(experiment_context, rs_gfmac())
        best = rs_report.evaluated[0].edp
        assert best <= 1.20 * handwritten, (
            f"discovered EDP {best:.4g} vs hand-written rs_gfmac {handwritten:.4g}"
        )


class TestManifestIntegration:
    def test_manifest_round_trips_and_registers(self, fir_report):
        manifest = fir_report.manifest()
        clone = DiscoveryManifest.from_json(manifest.to_json())
        assert [e.mnemonic for e in clone.entries] == [
            e.mnemonic for e in manifest.entries
        ]

        name = register_discovered(clone)
        assert name == "discovered:fir"
        space = get_space(name)
        assert space.size > 0

    def test_registered_space_builds_points(self, fir_report):
        name = register_discovered(fir_report.manifest())
        space = get_space(name)
        # the first point is the pure-software baseline configuration;
        # the last uses a discovered extension
        for index in (0, space.size - 1):
            config, program = space.builder(space.assignment_at(index))
            assert program.instructions


class TestErrors:
    def test_unknown_workload_rejected(self, smoke_model):
        with pytest.raises(DiscoveryError, match="unknown workload"):
            discover_workload("quake", smoke_model, DiscoveryOptions())
