"""Shared fixtures for the discovery-subsystem tests.

The profiled runs and discovery reports are session-scoped: profiling
the software baselines and proving candidates is the expensive part,
and every test only *reads* the results.
"""

import numpy as np
import pytest

from repro.core import EnergyMacroModel, default_template
from repro.discover import DiscoveryOptions, discover_workload
from repro.discover.trace import DataflowTraceObserver
from repro.xtcore import ReferenceSimulator


@pytest.fixture(scope="session")
def smoke_model():
    """A deterministic synthetic model (no characterization run)."""
    template = default_template()
    return EnergyMacroModel(template, np.linspace(50, 5000, len(template)))


def _profile(case):
    config, program = case.build()
    observer = DataflowTraceObserver()
    result = ReferenceSimulator(config, program, observers=[observer]).run()
    return config, program, observer.report, result


@pytest.fixture(scope="session")
def fir_profile():
    from repro.programs.fir import fir_software

    return _profile(fir_software())


@pytest.fixture(scope="session")
def rs_profile():
    from repro.programs.reed_solomon import rs_software

    return _profile(rs_software())


@pytest.fixture(scope="session")
def fir_discovery(smoke_model):
    return discover_workload("fir", smoke_model, DiscoveryOptions())


@pytest.fixture(scope="session")
def rs_discovery(smoke_model):
    return discover_workload("reed_solomon", smoke_model, DiscoveryOptions())
