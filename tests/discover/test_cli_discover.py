"""CLI ``discover`` command and the ``explore --discovered`` bridge."""

import json

import numpy as np
import pytest

from repro.cli import EXIT_ABORTED, EXIT_BAD_INPUT, main
from repro.core import EnergyMacroModel, default_template


@pytest.fixture(scope="module")
def model_file(tmp_path_factory):
    template = default_template()
    model = EnergyMacroModel(template, np.linspace(50, 5000, len(template)))
    path = tmp_path_factory.mktemp("discover-cli") / "model.json"
    model.save(str(path))
    return str(path)


@pytest.fixture(scope="module")
def fir_manifest(model_file, tmp_path_factory):
    """One real discovery run, shared by every test that needs a manifest."""
    path = tmp_path_factory.mktemp("discover-cli") / "fir.json"
    code = main(
        [
            "discover",
            model_file,
            "--workload",
            "fir",
            "--top-k",
            "3",
            "--manifest",
            str(path),
        ]
    )
    return code, str(path)


class TestDiscover:
    def test_table_output(self, fir_manifest, model_file, capsys):
        capsys.readouterr()
        assert main(["discover", model_file, "--workload", "fir", "--top-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "mined" in out and "legalized" in out
        assert "(baseline)" in out

    def test_json_output(self, model_file, capsys):
        assert (
            main(
                [
                    "discover",
                    model_file,
                    "--workload",
                    "fir",
                    "--top-k",
                    "2",
                    "--format",
                    "json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "fir"
        assert payload["mined"] >= 5
        assert payload["candidates"]

    def test_manifest_written(self, fir_manifest):
        code, path = fir_manifest
        assert code == 0
        payload = json.loads(open(path).read())
        assert payload["format"] == "repro-discovery-manifest/1"
        assert payload["candidates"]

    def test_unknown_workload_exits_bad_input(self, model_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["discover", model_file, "--workload", "quake"])
        assert excinfo.value.code == EXIT_BAD_INPUT
        assert "unknown workload" in capsys.readouterr().err

    def test_bad_model_exits_bad_input(self, tmp_path):
        missing = str(tmp_path / "nope.json")
        with pytest.raises(SystemExit) as excinfo:
            main(["discover", missing])
        assert excinfo.value.code == EXIT_BAD_INPUT

    def test_bad_top_k_exits_bad_input(self, model_file):
        with pytest.raises(SystemExit) as excinfo:
            main(["discover", model_file, "--top-k", "0"])
        assert excinfo.value.code == EXIT_BAD_INPUT


class TestExploreDiscovered:
    def test_list_spaces_shows_registered(self, fir_manifest, capsys):
        _, path = fir_manifest
        capsys.readouterr()
        assert main(["explore", "--discovered", path, "--list-spaces"]) == 0
        out = capsys.readouterr().out
        assert "[registered] space discovered:fir:" in out
        assert "[builtin] space fir:" in out

    def test_explore_discovered_space(self, fir_manifest, model_file, capsys):
        _, path = fir_manifest
        capsys.readouterr()
        assert (
            main(
                [
                    "explore",
                    model_file,
                    "--discovered",
                    path,
                    "--space",
                    "discovered:fir",
                    "--strategy",
                    "random",
                    "--budget",
                    "4",
                    "--seed",
                    "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "discovered:fir" in out

    def test_bad_manifest_exits_bad_input(self, model_file, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(SystemExit) as excinfo:
            main(["explore", model_file, "--discovered", str(bad)])
        assert excinfo.value.code == EXIT_BAD_INPUT
        assert "bad manifest" in capsys.readouterr().err


class TestDiscoverAborted:
    def test_impossible_coverage_aborts(self, model_file, capsys):
        # a coverage floor no candidate can meet leaves nothing to evaluate
        code = main(
            [
                "discover",
                model_file,
                "--workload",
                "fir",
                "--min-coverage",
                "1.0",
            ]
        )
        assert code == EXIT_ABORTED
