"""Call-site mining: symbolic unrolling + consumer absorption."""

import pytest

from repro.discover import Unliftable, mine_call_sites, unroll_entry
from repro.isa import LINK_REGISTER


@pytest.fixture(scope="session")
def rs_call_candidates(rs_profile):
    _, _, report, _ = rs_profile
    return mine_call_sites(report, max_ports=2)


class TestUnrollEntry:
    def test_rs_gfmult_unrolls(self, rs_profile):
        config, program, _, _ = rs_profile
        entry = program.symbols["gfmult_sw"]
        sub = unroll_entry(program, config.isa, entry)
        # the GF(2^8) multiply writes its result plus scratch registers
        assert 8 in sub.written
        assert sub.steps > 8  # the 8-iteration shift-xor loop, unrolled

    def test_non_leaf_rejected(self, rs_profile):
        config, program, _, _ = rs_profile
        with pytest.raises(Unliftable):
            unroll_entry(program, config.isa, program.entry)


class TestCallSiteMining:
    def test_plain_and_grown_candidates(self, rs_call_candidates):
        # the plain call fold (gfmult-like, 2 ports) AND the forward-grown
        # Horner step (gfmac-like, accumulator promoted to custom state)
        assert len(rs_call_candidates) >= 2
        plain = [c for c in rs_call_candidates if c.graph.acc_port is None]
        grown = [c for c in rs_call_candidates if c.graph.acc_port is not None]
        assert plain and grown

    def test_grown_candidate_shape(self, rs_call_candidates):
        grown = next(c for c in rs_call_candidates if c.graph.acc_port is not None)
        site = grown.sites[0]
        # movs + call + absorbed xor
        assert len(site.members) == 4
        # the accumulator register is the single live output
        assert site.output_reg in site.port_regs
        assert site.output_reg not in site.clobbers
        # deleting the call makes the saved return address stale
        assert LINK_REGISTER in site.clobbers

    def test_grown_replaces_whole_subroutine(self, rs_call_candidates):
        grown = next(c for c in rs_call_candidates if c.graph.acc_port is not None)
        plain = next(c for c in rs_call_candidates if c.graph.acc_port is None)
        assert (
            grown.sites[0].replaced_per_exec > plain.sites[0].replaced_per_exec > 50
        )
