"""Property tests: mining invariants over seeded generated programs.

Each seeded :mod:`repro.testing.progen` program is profiled and mined;
the properties hold for *every* candidate the miner emits:

* convexity — no gap instruction inside a site both consumes a value a
  member produced and feeds a later member (the candidate could not
  issue as one instruction otherwise);
* I/O bound — at most ``max_ports`` register-file reads and exactly one
  written result;
* determinism — a fresh profile + mine of the same program yields the
  same canonical hashes;
* soundness — rewriting with any legalized candidate preserves the
  program's final architectural state bit-for-bit (modulo declared
  clobbers) and survives an assembler round-trip.
"""

import pytest

from repro.discover import (
    MinerOptions,
    legalize_candidates,
    mine_report,
    rewrite_program,
    states_equivalent,
    verify_roundtrip,
)
from repro.discover.dfg import reads, writes
from repro.discover.trace import DataflowTraceObserver
from repro.testing.progen import generate_program
from repro.xtcore import ReferenceSimulator, build_processor

SEEDS = [3, 13, 17, 23, 42]

pytestmark = pytest.mark.discover


def _mine(seed: int):
    config = build_processor(f"progen-{seed}")
    # uncached regions pin addresses, which the rewriter refuses; the
    # mining invariants themselves don't care either way
    program = generate_program(seed, isa=config.isa, uncached_probability=0.0)
    observer = DataflowTraceObserver()
    result = ReferenceSimulator(config, program, observers=[observer]).run()
    return config, program, observer.report, result


def _block_dependences(program, isa, addrs):
    """Independent reimplementation of the per-block def-use relation:
    (ancestors, descendants) address sets via a last-writer scan."""
    last_writer: dict[int, int] = {}
    producers: dict[int, set[int]] = {}
    consumers: dict[int, set[int]] = {addr: set() for addr in addrs}
    for addr in addrs:
        ins = program.instructions[addr]
        definition = isa.lookup(ins.mnemonic)
        prods = set()
        for reg in reads(definition, ins):
            producer = last_writer.get(reg)
            if producer is not None:
                prods.add(producer)
                consumers[producer].add(addr)
        producers[addr] = prods
        for reg in writes(definition, ins):
            last_writer[reg] = addr
    anc: dict[int, set[int]] = {}
    for addr in addrs:
        anc[addr] = set().union(*(anc[p] | {p} for p in producers[addr]))
    desc: dict[int, set[int]] = {}
    for addr in reversed(addrs):
        desc[addr] = set().union(*(desc[c] | {c} for c in consumers[addr]))
    return anc, desc


@pytest.mark.parametrize("seed", SEEDS)
def test_sites_are_convex(seed):
    config, program, report, _ = _mine(seed)
    for candidate in mine_report(report, MinerOptions()):
        for site in candidate.sites:
            block = report.dfg.block_of(site.members[0])
            anc, desc = _block_dependences(program, config.isa, block.addrs)
            members = set(site.members)
            for addr in block.addrs:
                if addr in members:
                    continue
                # a non-member that both depends on a member and feeds a
                # member would make single-instruction issue impossible
                assert not (anc[addr] & members and desc[addr] & members), (
                    f"seed {seed}: site {sorted(members)} not convex "
                    f"around outsider {addr:#x}"
                )


@pytest.mark.parametrize("seed", SEEDS)
def test_port_and_output_bounds(seed):
    _, _, report, _ = _mine(seed)
    options = MinerOptions()
    for candidate in mine_report(report, options):
        n_read_ports = candidate.graph.n_inputs
        if candidate.graph.acc_port is not None:
            n_read_ports -= 1
        assert n_read_ports <= options.max_ports
        for site in candidate.sites:
            assert len(site.port_regs) == candidate.graph.n_inputs
            assert site.output_reg not in site.clobbers


@pytest.mark.parametrize("seed", SEEDS)
def test_hashes_stable_across_runs(seed):
    _, _, report_a, _ = _mine(seed)
    _, _, report_b, _ = _mine(seed)
    hashes_a = sorted(c.hash for c in mine_report(report_a, MinerOptions()))
    hashes_b = sorted(c.hash for c in mine_report(report_b, MinerOptions()))
    assert hashes_a == hashes_b


@pytest.mark.parametrize("seed", SEEDS)
def test_rewritten_programs_preserve_state(seed):
    config, program, report, base = _mine(seed)
    candidates = mine_report(report, MinerOptions())
    legal, _ = legalize_candidates(candidates, prefix=f"pg{seed}_")
    assert legal, f"seed {seed} produced no legalizable candidates"
    for legalized in legal[:4]:
        extended = build_processor(
            f"progen-{seed}+{legalized.mnemonic}", legalized.lifted.specs, base=config
        )
        result = rewrite_program(program, extended.isa, legalized)
        verify_roundtrip(result.program, extended.isa)
        rerun = ReferenceSimulator(extended, result.program).run()
        ok, why = states_equivalent(base.state, rerun.state, result.clobbers)
        assert ok, f"seed {seed} {legalized.mnemonic}: {why}"
        assert rerun.instructions <= base.instructions
