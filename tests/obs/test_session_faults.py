"""The session seam: run_session wrapping, fault injection, legacy shim."""

import pytest

from repro.asm import assemble
from repro.core.runner import CharacterizationRunner, RunnerTask, default_simulate
from repro.obs import StatsObserver, run_session
from repro.testing.faults import FaultPlan, InjectedFault


@pytest.fixture()
def pair(base_config, tiny_loop_program):
    return base_config, tiny_loop_program


class TestWrapSession:
    def test_passthrough_preserves_session_semantics(self, pair):
        config, program = pair
        session = FaultPlan().wrap_session()
        observer = StatsObserver()
        result = session(config, program, observers=(observer,), collect_trace=True)
        assert result.trace is not None
        assert observer.stats.total_instructions == result.stats.total_instructions

    def test_injects_for_named_program(self, pair):
        config, program = pair
        plan = FaultPlan().fail_simulation(program.name, times=1)
        session = plan.wrap_session()
        with pytest.raises(InjectedFault):
            session(config, program)
        # fault budget exhausted: second call passes through
        result = session(config, program)
        assert result.stats.total_instructions > 0
        assert plan.injected == [(program.name, "sim-error")]

    def test_inner_session_receives_keywords(self, pair):
        config, program = pair
        seen = {}

        def inner(config, program, *, observers=(), collect_trace=False,
                  max_instructions=0, entry=None):
            seen.update(collect_trace=collect_trace, max_instructions=max_instructions)
            return run_session(
                config,
                program,
                observers=observers,
                collect_trace=collect_trace,
                max_instructions=max_instructions,
            )

        session = FaultPlan().wrap_session(inner)
        session(config, program, collect_trace=True, max_instructions=1234)
        assert seen == {"collect_trace": True, "max_instructions": 1234}

    def test_runner_accepts_wrapped_session(self, pair):
        config, program = pair
        plan = FaultPlan().fail_simulation("absent-program")
        runner = CharacterizationRunner(simulate=plan.wrap_session())
        report = runner.run([RunnerTask.from_pair(config, program)], fit=False)
        assert report.ok
        assert len(report.samples) == 1


class TestLegacyShim:
    def test_wrap_simulate_warns(self):
        with pytest.warns(DeprecationWarning, match="wrap_session"):
            FaultPlan().wrap_simulate()

    def test_positional_shape_still_works(self, pair):
        config, program = pair
        with pytest.warns(DeprecationWarning):
            simulate = FaultPlan().wrap_simulate()
        result = simulate(config, program, True, 5000)
        assert result.trace is not None

    def test_positional_inner_still_wrapped(self, pair):
        config, program = pair
        calls = []

        def inner(config, program, collect_trace, max_instructions):
            calls.append((collect_trace, max_instructions))
            return default_simulate(config, program, collect_trace, max_instructions)

        with pytest.warns(DeprecationWarning):
            simulate = FaultPlan().wrap_simulate(inner)
        simulate(config, program, False, 777)
        assert calls == [(False, 777)]

    def test_default_simulate_matches_run_session(self, pair):
        config, program = pair
        legacy = default_simulate(config, program, False, 10_000)
        modern = run_session(config, program, max_instructions=10_000)
        assert legacy.stats.total_cycles == modern.stats.total_cycles


class TestSessionEntry:
    def test_entry_override(self, base_config):
        source = """
main:
    movi a2, 1
    halt
alt:
    movi a2, 2
    halt
"""
        program = assemble(source, "entries", isa=base_config.isa)
        default = run_session(base_config, program)
        alt = run_session(base_config, program, entry=program.symbol("alt"))
        assert default.state.get(2) == 1
        assert alt.state.get(2) == 2
