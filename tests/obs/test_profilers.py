"""Observability observers: timeline, hot spots, cache events, regions."""

import numpy as np
import pytest

from repro.asm import assemble
from repro.core import EnergyMacroModel, EnergyProfiler, default_template
from repro.core.profiler import stats_from_records
from repro.obs import (
    CacheEventObserver,
    EnergyTimelineObserver,
    HotSpotObserver,
    ObserverStateError,
    run_session,
)

LOOPY = """
    .data
buf: .word 1, 2, 3, 4, 5, 6, 7, 8
out: .word 0
    .text
main:
    la a2, buf
    movi a3, 8
    movi a4, 0
accumulate:
    l32i a5, a2, 0
    add a4, a4, a5      ; load-use interlock
    addi a2, a2, 4
    addi a3, a3, -1
    bnez a3, accumulate
finish:
    la a6, out
    s32i a4, a6, 0
    halt
"""


@pytest.fixture(scope="module")
def model():
    template = default_template()
    return EnergyMacroModel(template, np.linspace(50, 5000, len(template)))


@pytest.fixture(scope="module")
def loopy_program(base_config):
    return assemble(LOOPY, "loopy", isa=base_config.isa)


class TestEnergyTimeline:
    def test_intervals_partition_the_run(self, model, base_config, loopy_program):
        observer = EnergyTimelineObserver(model, interval_instructions=10)
        result = run_session(base_config, loopy_program, observers=(observer,))
        report = observer.report
        assert sum(iv.instructions for iv in report.intervals) == (
            result.stats.total_instructions
        )
        assert sum(iv.cycles for iv in report.intervals) == result.stats.total_cycles
        # linearity: interval energies sum to the whole-run estimate
        whole = model.estimate_from_stats(result.stats, base_config)
        assert report.total_energy == pytest.approx(whole)

    def test_interval_sizing(self, model, base_config, loopy_program):
        observer = EnergyTimelineObserver(model, interval_instructions=10)
        run_session(base_config, loopy_program, observers=(observer,))
        intervals = observer.report.intervals
        assert all(iv.instructions == 10 for iv in intervals[:-1])
        assert 1 <= intervals[-1].instructions <= 10
        starts = [iv.start_instruction for iv in intervals]
        assert starts == sorted(starts)

    def test_rejects_bad_interval(self, model):
        with pytest.raises(ValueError, match="interval_instructions"):
            EnergyTimelineObserver(model, interval_instructions=0)

    def test_report_before_run_raises(self, model):
        with pytest.raises(ObserverStateError):
            EnergyTimelineObserver(model).report

    def test_table_and_payload(self, model, base_config, loopy_program):
        observer = EnergyTimelineObserver(model, interval_instructions=10)
        run_session(base_config, loopy_program, observers=(observer,))
        report = observer.report
        assert "energy timeline" in report.table()
        payload = report.to_payload()
        assert payload["program"] == "loopy"
        assert len(payload["intervals"]) == len(report.intervals)


class TestHotSpots:
    def test_block_and_pc_histograms(self, base_config, loopy_program):
        observer = HotSpotObserver()
        result = run_session(base_config, loopy_program, observers=(observer,))
        report = observer.report
        by_label = {spot.location: spot for spot in report.blocks}
        assert by_label["accumulate"].count == 5 * 8  # 5 instructions x 8 iterations
        assert by_label["main"].count == 4  # la expands to two instructions
        assert report.blocks[0].location == "accumulate"  # hottest first
        assert sum(spot.count for spot in report.pcs) == result.stats.total_instructions
        assert sum(spot.cycles for spot in report.pcs) == result.stats.total_cycles

    def test_pc_offsets_labelled(self, base_config, loopy_program):
        observer = HotSpotObserver()
        run_session(base_config, loopy_program, observers=(observer,))
        locations = {spot.location for spot in observer.report.pcs}
        assert "accumulate" in locations  # block start
        assert any(loc.startswith("accumulate+0x") for loc in locations)

    def test_report_before_run_raises(self):
        with pytest.raises(ObserverStateError):
            HotSpotObserver().report


class TestCacheEvents:
    def test_counts_match_run_stats(self, base_config, loopy_program):
        observer = CacheEventObserver()
        result = run_session(base_config, loopy_program, observers=(observer,))
        report = observer.report
        assert report.icache_misses == result.stats.icache_misses
        assert report.dcache_misses == result.stats.dcache_misses
        assert report.uncached_fetches == result.stats.uncached_fetches
        assert report.interlocks == result.stats.interlocks
        assert report.interlocks > 0  # the loop has a load-use hazard
        assert sum(n for _, n in report.hot_dcache_lines) == report.dcache_misses

    def test_report_before_run_raises(self):
        with pytest.raises(ObserverStateError):
            CacheEventObserver().report


class TestRegionObserverEquivalence:
    def test_streaming_regions_match_trace_bucketing(
        self, model, base_config, loopy_program
    ):
        """The streaming region profile equals the old trace-bucketing math."""
        from repro.core import regions_from_symbols

        report = EnergyProfiler(model).profile(base_config, loopy_program)

        traced = run_session(base_config, loopy_program, collect_trace=True)
        regions = sorted(
            regions_from_symbols(loopy_program), key=lambda region: region.start
        )
        for profile in report.regions:
            region = next(r for r in regions if r.name == profile.name)
            records = [rec for rec in traced.trace if rec.addr in region]
            stats = stats_from_records(records, base_config)
            assert profile.instructions == stats.total_instructions
            assert profile.cycles == stats.total_cycles
            assert profile.energy == pytest.approx(
                model.estimate_from_stats(stats, base_config)
            )
        whole = model.estimate_from_stats(traced.stats, base_config)
        assert report.total_energy == pytest.approx(whole)

    def test_composes_with_other_observers_in_one_run(
        self, model, base_config, loopy_program
    ):
        profiler = EnergyProfiler(model)
        region_observer = profiler.observer(loopy_program)
        timeline = EnergyTimelineObserver(model, interval_instructions=10)
        hot = HotSpotObserver()
        cache = CacheEventObserver()
        run_session(
            base_config,
            loopy_program,
            observers=(region_observer, timeline, hot, cache),
        )
        report = profiler.report_from(region_observer, base_config, loopy_program)
        assert report.total_energy == pytest.approx(timeline.report.total_energy)
        assert cache.report.interlocks > 0
        assert hot.report.blocks
