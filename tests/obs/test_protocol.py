"""Observer-protocol behaviour: lifecycle, prefilter flags, event reuse."""

import pytest

from repro.asm import assemble
from repro.isa import InstructionClass
from repro.obs import RetireEvent, SimObserver, run_session


def _program(source, config, name="obs-test"):
    return assemble(source, name, isa=config.isa)


EVENTFUL = """
    .data
v: .word 7
    .text
main:
    la a2, v
    l32i a3, a2, 0      ; dcache miss (cold)
    add a4, a3, a3      ; load-use interlock
    halt
"""


class RecordingObserver(SimObserver):
    wants_events = True

    def __init__(self):
        self.calls = []
        self.event_ids = set()

    def on_run_start(self, config, program):
        self.calls.append(("start", config.name, program.name))

    def on_retire(self, event):
        self.event_ids.add(id(event))
        self.calls.append(("retire", event.mnemonic, event.iclass))

    def on_icache_miss(self, addr):
        self.calls.append(("icache_miss", addr))

    def on_dcache_miss(self, addr):
        self.calls.append(("dcache_miss", addr))

    def on_uncached_fetch(self, addr):
        self.calls.append(("uncached_fetch", addr))

    def on_interlock(self, addr):
        self.calls.append(("interlock", addr))

    def on_run_finish(self, result):
        self.calls.append(("finish", result.stats.total_instructions))


class TestLifecycle:
    def test_callback_order_and_payloads(self, base_config):
        program = _program(EVENTFUL, base_config)
        observer = RecordingObserver()
        result = run_session(base_config, program, observers=(observer,))

        kinds = [call[0] for call in observer.calls]
        assert kinds[0] == "start"
        assert kinds[-1] == "finish"
        assert observer.calls[0] == ("start", base_config.name, program.name)
        assert observer.calls[-1] == ("finish", result.stats.total_instructions)
        # fine-grained events fire before the retire of their instruction
        assert kinds.index("dcache_miss") < kinds.index("interlock")
        retires = [call for call in observer.calls if call[0] == "retire"]
        assert len(retires) == result.stats.total_instructions

    def test_event_instance_reused(self, base_config):
        program = _program(EVENTFUL, base_config)
        observer = RecordingObserver()
        run_session(base_config, program, observers=(observer,))
        assert len(observer.event_ids) == 1  # one RetireEvent per run, reused

    def test_branch_iclass_resolved(self, base_config):
        source = """
main:
    movi a2, 2
loop:
    addi a2, a2, -1
    bnez a2, loop
    halt
"""
        observer = RecordingObserver()
        run_session(base_config, _program(source, base_config), observers=(observer,))
        classes = {call[2] for call in observer.calls if call[0] == "retire"}
        assert InstructionClass.BRANCH_TAKEN in classes
        assert InstructionClass.BRANCH_UNTAKEN in classes
        assert InstructionClass.BRANCH not in classes

    def test_no_finish_when_run_raises(self, base_config):
        from repro.xtcore import SimulationLimitExceeded

        source = "main:\n    j main\n"
        observer = RecordingObserver()
        with pytest.raises(SimulationLimitExceeded):
            run_session(
                base_config,
                _program(source, base_config),
                observers=(observer,),
                max_instructions=50,
            )
        kinds = [call[0] for call in observer.calls]
        assert "start" in kinds
        assert "finish" not in kinds

    def test_raising_in_on_run_start_vetoes_run(self, base_config):
        class Veto(SimObserver):
            def on_run_start(self, config, program):
                raise RuntimeError("vetoed")

        witness = RecordingObserver()
        with pytest.raises(RuntimeError, match="vetoed"):
            run_session(
                base_config,
                _program(EVENTFUL, base_config),
                observers=(witness, Veto()),
            )
        assert all(call[0] == "start" for call in witness.calls)


class TestPrefilters:
    def test_retire_not_delivered_without_wants_retire(self, base_config):
        class EventsOnly(SimObserver):
            wants_retire = False
            wants_events = True

            def __init__(self):
                self.retires = 0
                self.events = 0

            def on_retire(self, event):
                self.retires += 1

            def on_dcache_miss(self, addr):
                self.events += 1

        observer = EventsOnly()
        run_session(base_config, _program(EVENTFUL, base_config), observers=(observer,))
        assert observer.retires == 0
        assert observer.events > 0

    def test_events_not_delivered_without_wants_events(self, base_config):
        class RetireOnly(SimObserver):
            def __init__(self):
                self.events = 0
                self.retires = 0

            def on_retire(self, event):
                self.retires += 1

            def on_dcache_miss(self, addr):
                self.events += 1

        observer = RetireOnly()
        run_session(base_config, _program(EVENTFUL, base_config), observers=(observer,))
        assert observer.events == 0
        assert observer.retires > 0

    def test_result_populated_only_on_demand(self, base_config):
        class Capture(SimObserver):
            def __init__(self, needs_result):
                self.needs_result = needs_result
                self.results = {}

            def on_retire(self, event):
                self.results[event.mnemonic] = event.result

        source = "main:\n    movi a2, 41\n    addi a3, a2, 1\n    halt\n"
        program = _program(source, base_config)

        cheap = Capture(needs_result=False)
        run_session(base_config, program, observers=(cheap,))
        assert cheap.results["addi"] == 0  # not read back

        eager = Capture(needs_result=True)
        run_session(base_config, program, observers=(eager,))
        assert eager.results["addi"] == 42


class TestRetireEvent:
    def test_to_record_copies_fields(self):
        event = RetireEvent()
        event.addr = 0x40
        event.mnemonic = "add"
        event.iclass = InstructionClass.ARITH
        event.cycles = 3
        event.issue_cycles = 1
        event.operands = (5, 6)
        event.result = 11
        event.dcache_miss = True
        record = event.to_record()
        event.mnemonic = "clobbered"  # record must be an independent copy
        assert record.mnemonic == "add"
        assert record.addr == 0x40
        assert record.operands == (5, 6)
        assert record.result == 11
        assert record.dcache_miss is True

    def test_field_layout_matches_trace_record(self):
        from repro.obs import TraceRecord

        record_fields = set(TraceRecord.__slots__)
        event_fields = set(RetireEvent.__slots__)
        assert event_fields - record_fields == {"issue_cycles"}
        assert record_fields <= event_fields
