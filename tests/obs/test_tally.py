"""RunTallyObserver: cross-run aggregation on the observer protocol."""

from __future__ import annotations

from repro.obs import RunTallyObserver, run_session


class TestTallyAccumulation:
    def test_matches_execution_stats(self, base_config, tiny_loop_program):
        observer = RunTallyObserver()
        first = run_session(base_config, tiny_loop_program, observers=[observer])
        second = run_session(base_config, tiny_loop_program, observers=[observer])
        assert observer.runs_started == 2
        assert observer.runs_finished == 2
        assert observer.instructions == (
            first.stats.total_instructions + second.stats.total_instructions
        )
        assert observer.cycles == first.stats.total_cycles + second.stats.total_cycles
        assert observer.icache_misses == (
            first.stats.icache_misses + second.stats.icache_misses
        )
        assert observer.sim_seconds > 0.0

    def test_opts_out_of_per_retire_stream(self):
        # the whole point: O(1) per run, not O(instructions)
        assert RunTallyObserver.wants_retire is False
        assert RunTallyObserver.wants_events is False
        assert RunTallyObserver.needs_result is False


class TestSnapshotMerge:
    def test_snapshot_round_trips(self, base_config, tiny_loop_program):
        observer = RunTallyObserver()
        run_session(base_config, tiny_loop_program, observers=[observer])
        snapshot = observer.snapshot()
        clone = RunTallyObserver()
        clone.merge(snapshot)
        assert clone.snapshot() == snapshot

    def test_merge_is_associative_accumulation(self):
        parent = RunTallyObserver()
        worker_a = {"runs_started": 2, "runs_finished": 2, "instructions": 100,
                    "cycles": 150, "icache_misses": 3, "dcache_misses": 1,
                    "sim_seconds": 0.5}
        worker_b = {"runs_started": 1, "runs_finished": 1, "instructions": 40,
                    "cycles": 60, "sim_seconds": 0.25}  # partial dicts merge too
        parent.merge(worker_a)
        parent.merge(worker_b)
        assert parent.runs_finished == 3
        assert parent.instructions == 140
        assert parent.cycles == 210
        assert parent.icache_misses == 3
        assert parent.sim_seconds == 0.75

    def test_clear_resets_everything(self, base_config, tiny_loop_program):
        observer = RunTallyObserver()
        run_session(base_config, tiny_loop_program, observers=[observer])
        observer.clear()
        empty = RunTallyObserver().snapshot()
        assert observer.snapshot() == empty
