"""Observer-path equivalence with the pre-observer simulation semantics.

The refactor's contract: statistics and traces delivered through the
observer protocol are identical to what the hard-wired collection
produced, and the streaming RTL estimator reproduces the materialized
``estimate(result)`` numbers to 1e-9 relative tolerance on every bundled
program (the acceptance bar — in practice they are bitwise equal, since
both paths walk identical arithmetic over identical per-instruction
values).
"""

import dataclasses

import pytest

from repro.obs import StatsObserver, TraceObserver, run_session
from repro.programs import characterization_suite
from repro.rtl import RtlEnergyEstimator, generate_netlist

SUITE = characterization_suite(include_variants=False)


def _assert_stats_equal(a, b):
    for field in dataclasses.fields(a):
        assert getattr(a, field.name) == getattr(b, field.name), field.name


class TestBundledObserverEquivalence:
    @pytest.mark.parametrize("case", SUITE[:6], ids=lambda c: c.name)
    def test_external_stats_observer_matches_result_stats(self, case):
        observer = StatsObserver()
        result = case.run(observers=(observer,))
        assert observer.stats is not result.stats
        _assert_stats_equal(observer.stats, result.stats)

    @pytest.mark.parametrize("case", SUITE[:6], ids=lambda c: c.name)
    def test_external_trace_observer_matches_result_trace(self, case):
        observer = TraceObserver()
        result = case.run(collect_trace=True, observers=(observer,))
        assert result.trace is not None
        assert len(observer.records) == len(result.trace)
        for mine, bundled in zip(observer.records, result.trace):
            for field in mine.__slots__:
                assert getattr(mine, field) == getattr(bundled, field), field

    def test_session_without_trace_returns_none(self):
        case = SUITE[0]
        config, program = case.build()
        result = run_session(config, program, max_instructions=case.max_instructions)
        assert result.trace is None
        assert result.stats.total_instructions > 0


class TestStreamingRtlEquivalence:
    @pytest.mark.parametrize("case", SUITE, ids=lambda c: c.name)
    def test_streaming_matches_materialized(self, case):
        config, program = case.build()
        estimator = RtlEnergyEstimator(generate_netlist(config))

        traced = run_session(
            config,
            program,
            collect_trace=True,
            max_instructions=case.max_instructions,
        )
        materialized = estimator.estimate(traced)

        streaming, result = estimator.estimate_program(
            program, max_instructions=case.max_instructions
        )

        assert result.trace is None  # no list[TraceRecord] retained
        assert streaming.total == pytest.approx(materialized.total, rel=1e-9)
        assert streaming.cycles == materialized.cycles
        assert streaming.instructions == materialized.instructions
        for block, energy in materialized.by_block.items():
            assert streaming.by_block[block] == pytest.approx(
                energy, rel=1e-9, abs=1e-12
            ), block
        for group, energy in materialized.by_group.items():
            assert streaming.by_group[group] == pytest.approx(
                energy, rel=1e-9, abs=1e-12
            ), group

    def test_frozen_activity_mode_matches_too(self):
        case = SUITE[0]
        config, program = case.build()
        estimator = RtlEnergyEstimator(generate_netlist(config), data_dependent=False)
        traced = run_session(
            config, program, collect_trace=True, max_instructions=case.max_instructions
        )
        materialized = estimator.estimate(traced)
        streaming, _ = estimator.estimate_program(
            program, max_instructions=case.max_instructions
        )
        assert streaming.total == pytest.approx(materialized.total, rel=1e-9)


class TestEstimatorErrors:
    def test_materialized_requires_trace(self, base_config, tiny_loop_program):
        estimator = RtlEnergyEstimator(generate_netlist(base_config))
        untraced = run_session(base_config, tiny_loop_program)
        with pytest.raises(ValueError, match="streaming observer"):
            estimator.estimate(untraced)

    def test_config_mismatch_reports_fingerprints(self, base_config, tiny_loop_program):
        from repro.programs.extensions import ALL_SPEC_FACTORIES
        from repro.xtcore import build_processor

        other = build_processor("obs-other", [ALL_SPEC_FACTORIES["mul16"]()])
        estimator = RtlEnergyEstimator(generate_netlist(other))
        traced = run_session(base_config, tiny_loop_program, collect_trace=True)
        with pytest.raises(ValueError) as excinfo:
            estimator.estimate(traced)
        message = str(excinfo.value)
        assert base_config.fingerprint()[:12] in message
        assert other.fingerprint()[:12] in message
        assert base_config.name in message
        assert other.name in message

    def test_observer_rejects_mismatched_session(self, base_config, tiny_loop_program):
        from repro.programs.extensions import ALL_SPEC_FACTORIES
        from repro.xtcore import build_processor

        other = build_processor("obs-other", [ALL_SPEC_FACTORIES["mul16"]()])
        estimator = RtlEnergyEstimator(generate_netlist(other))
        with pytest.raises(ValueError, match="fingerprint"):
            run_session(
                base_config, tiny_loop_program, observers=(estimator.observer(),)
            )

    def test_report_before_run_raises(self, base_config):
        estimator = RtlEnergyEstimator(generate_netlist(base_config))
        with pytest.raises(ValueError, match="no energy report yet"):
            estimator.observer().report

    def test_identical_content_configs_interchange(self, tiny_loop_program):
        # fingerprint equality, not object identity, is the contract
        from repro.xtcore import build_processor

        config_a = build_processor("twin")
        config_b = build_processor("twin")
        estimator = RtlEnergyEstimator(generate_netlist(config_a))
        traced = run_session(config_b, tiny_loop_program, collect_trace=True)
        report = estimator.estimate(traced)
        assert report.total > 0
