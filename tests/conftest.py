"""Shared fixtures for the test suite.

The expensive artifacts — the characterized macro-model and the verified
benchmark runs — are session-scoped so the integration tests pay for the
characterization flow exactly once.
"""

from __future__ import annotations

import pytest

from repro.asm import assemble
from repro.xtcore import build_processor


@pytest.fixture(scope="session")
def base_config():
    """A stock (extension-free) processor configuration."""
    return build_processor("test-base")


@pytest.fixture(scope="session")
def tiny_loop_program():
    """A minimal verified program on the base ISA."""
    source = """
    .data
out: .word 0
    .text
main:
    movi a2, 10
    movi a3, 0
loop:
    add a3, a3, a2
    addi a2, a2, -1
    bnez a2, loop
    la a4, out
    s32i a3, a4, 0
    halt
"""
    return assemble(source, "tiny_loop")


@pytest.fixture(scope="session")
def experiment_context():
    """The fully characterized model context (slow; built once)."""
    from repro.analysis import default_context

    return default_context()
