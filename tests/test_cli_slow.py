"""CLI flow tests that exercise the characterization-backed commands."""

import pytest

from repro.cli import main

KERNEL = """
    .data
out: .word 0
    .text
main:
    movi a2, 30
    movi a3, 0
loop:
    mul16 a4, a2, a2
    add a3, a3, a4
    addi a2, a2, -1
    bnez a2, loop
    la a5, out
    s32i a3, a5, 0
    halt
"""


@pytest.fixture()
def kernel_file(tmp_path):
    path = tmp_path / "kernel.s"
    path.write_text(KERNEL)
    return str(path)


@pytest.mark.slow
class TestCharacterizeCommand:
    def test_core_only_characterization(self, tmp_path, capsys):
        output = str(tmp_path / "model.json")
        assert main(["characterize", "-o", output, "--core-only"]) == 0
        out = capsys.readouterr().out
        assert "Energy coefficients" in out
        assert (tmp_path / "model.json").exists()

        # the produced model estimates programs end to end
        kernel = tmp_path / "k.s"
        kernel.write_text(KERNEL)
        assert main(["estimate", output, str(kernel), "--extensions", "mul16"]) == 0
        estimate_out = capsys.readouterr().out
        assert "macro-model estimate" in estimate_out


@pytest.mark.slow
class TestExperimentsCommand:
    def test_single_experiment(self, capsys, monkeypatch, experiment_context):
        import repro.analysis.experiments as experiments

        monkeypatch.setattr(experiments, "_CACHED_CONTEXT", experiment_context)
        assert main(["experiments", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "Spearman" in out

    def test_all_experiments(self, capsys, monkeypatch, experiment_context):
        import repro.analysis.experiments as experiments

        monkeypatch.setattr(experiments, "_CACHED_CONTEXT", experiment_context)
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for marker in ("table1", "fig3", "table2", "fig4", "speedup"):
            assert f"=== {marker} ===" in out


class TestAssembleCommand:
    def test_xpf_pipeline(self, kernel_file, tmp_path, capsys):
        xpf = str(tmp_path / "kernel.xpf")
        assert main(["assemble", kernel_file, "-o", xpf, "--extensions", "mul16"]) == 0
        assert "wrote" in capsys.readouterr().out
        assert main(["simulate", xpf, "--extensions", "mul16", "--dump-word", "out"]) == 0
        out = capsys.readouterr().out
        assert "out = " in out

    def test_xpf_needs_matching_extensions(self, kernel_file, tmp_path):
        from repro.asm import ImageError

        xpf = str(tmp_path / "kernel.xpf")
        main(["assemble", kernel_file, "-o", xpf, "--extensions", "mul16"])
        with pytest.raises(ImageError, match="unknown to ISA"):
            main(["simulate", xpf])


@pytest.mark.slow
class TestMarkdownReport:
    def test_report_generated(self, tmp_path, monkeypatch, experiment_context, capsys):
        import repro.analysis.experiments as experiments

        monkeypatch.setattr(experiments, "_CACHED_CONTEXT", experiment_context)
        output = str(tmp_path / "report.md")
        assert main(["experiments", "--output", output]) == 0
        text = (tmp_path / "report.md").read_text()
        assert text.startswith("# Energy Estimation for Extensible Processors")
        for section in ("Table I", "Fig. 3", "Table II", "Fig. 4", "Suite quality", "Suite-size"):
            assert section in text
