"""CLI flow tests that exercise the characterization-backed commands."""

import pytest

from repro.cli import main

KERNEL = """
    .data
out: .word 0
    .text
main:
    movi a2, 30
    movi a3, 0
loop:
    mul16 a4, a2, a2
    add a3, a3, a4
    addi a2, a2, -1
    bnez a2, loop
    la a5, out
    s32i a3, a5, 0
    halt
"""


@pytest.fixture()
def kernel_file(tmp_path):
    path = tmp_path / "kernel.s"
    path.write_text(KERNEL)
    return str(path)


@pytest.mark.slow
class TestCharacterizeCommand:
    def test_core_only_characterization(self, tmp_path, capsys):
        output = str(tmp_path / "model.json")
        assert main(["characterize", "-o", output, "--core-only"]) == 0
        out = capsys.readouterr().out
        assert "Energy coefficients" in out
        assert (tmp_path / "model.json").exists()

        # the produced model estimates programs end to end
        kernel = tmp_path / "k.s"
        kernel.write_text(KERNEL)
        assert main(["estimate", output, str(kernel), "--extensions", "mul16"]) == 0
        estimate_out = capsys.readouterr().out
        assert "macro-model estimate" in estimate_out


@pytest.mark.slow
class TestExperimentsCommand:
    def test_single_experiment(self, capsys, monkeypatch, experiment_context):
        import repro.analysis.experiments as experiments

        monkeypatch.setattr(experiments, "_CACHED_CONTEXT", experiment_context)
        assert main(["experiments", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "Spearman" in out

    def test_all_experiments(self, capsys, monkeypatch, experiment_context):
        import repro.analysis.experiments as experiments

        monkeypatch.setattr(experiments, "_CACHED_CONTEXT", experiment_context)
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for marker in ("table1", "fig3", "table2", "fig4", "speedup"):
            assert f"=== {marker} ===" in out


class TestAssembleCommand:
    def test_xpf_pipeline(self, kernel_file, tmp_path, capsys):
        xpf = str(tmp_path / "kernel.xpf")
        assert main(["assemble", kernel_file, "-o", xpf, "--extensions", "mul16"]) == 0
        assert "wrote" in capsys.readouterr().out
        assert main(["simulate", xpf, "--extensions", "mul16", "--dump-word", "out"]) == 0
        out = capsys.readouterr().out
        assert "out = " in out

    def test_xpf_needs_matching_extensions(self, kernel_file, tmp_path, capsys):
        xpf = str(tmp_path / "kernel.xpf")
        main(["assemble", kernel_file, "-o", xpf, "--extensions", "mul16"])
        with pytest.raises(SystemExit) as excinfo:
            main(["simulate", xpf])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "malformed XPF image" in err
        assert "unknown to ISA" in err


@pytest.mark.slow
class TestMarkdownReport:
    def test_report_generated(self, tmp_path, monkeypatch, experiment_context, capsys):
        import repro.analysis.experiments as experiments

        monkeypatch.setattr(experiments, "_CACHED_CONTEXT", experiment_context)
        output = str(tmp_path / "report.md")
        assert main(["experiments", "--output", output]) == 0
        text = (tmp_path / "report.md").read_text()
        assert text.startswith("# Energy Estimation for Extensible Processors")
        for section in ("Table I", "Fig. 3", "Table II", "Fig. 4", "Suite quality", "Suite-size"):
            assert section in text


@pytest.mark.slow
@pytest.mark.faults
class TestCharacterizeResume:
    def test_killed_then_resumed_matches_uninterrupted(self, tmp_path, capsys):
        """Acceptance: `--resume` from a mid-run checkpoint yields exactly
        the coefficients of an uninterrupted run."""
        import numpy as np

        from repro.core import CharacterizationRunner, Characterizer, RunnerTask
        from repro.core.model import EnergyMacroModel
        from repro.programs import characterization_suite

        uninterrupted = str(tmp_path / "a.json")
        assert main(["characterize", "--core-only", "-o", uninterrupted]) == 0

        # simulate a run killed after 10 of the 25 core programs: the
        # checkpoint holds exactly what a dying process had persisted
        checkpoint = str(tmp_path / "ckpt.json")
        seed = CharacterizationRunner(
            Characterizer(), checkpoint_path=checkpoint, checkpoint_every=1
        )
        suite = characterization_suite(include_variants=False)
        seed.run([RunnerTask.from_case(c) for c in suite[:10]], fit=False)

        resumed = str(tmp_path / "b.json")
        rc = main(
            [
                "characterize",
                "--core-only",
                "-o",
                resumed,
                "--checkpoint",
                checkpoint,
                "--resume",
            ]
        )
        assert rc == 0
        capsys.readouterr()
        a = EnergyMacroModel.load(uninterrupted)
        b = EnergyMacroModel.load(resumed)
        assert np.array_equal(a.coefficients, b.coefficients)
