"""Property tests over randomly generated TIE dataflow graphs.

Hypothesis builds arbitrary well-formed custom-instruction datapaths and
checks structural invariants of the compiler (scheduling, instance
accounting, tap analysis) and the semantics evaluator (width masking,
determinism) hold for all of them — not just the hand-written specs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import Instruction, MachineState
from repro.tie import LEVELS_PER_CYCLE, TieSpec, compile_spec

WORDS = st.integers(min_value=0, max_value=0xFFFFFFFF)


@st.composite
def random_spec(draw):
    """A random R3-format spec: a DAG of binary ops over two sources."""
    spec = TieSpec("rnd", fmt="R3")
    a = spec.source("rs", width=draw(st.integers(4, 32)))
    b = spec.source("rt", width=draw(st.integers(4, 32)))
    pool = [a, b]
    n_ops = draw(st.integers(min_value=1, max_value=12))
    for _ in range(n_ops):
        kind = draw(st.integers(0, 6))
        x = pool[draw(st.integers(0, len(pool) - 1))]
        y = pool[draw(st.integers(0, len(pool) - 1))]
        if kind == 0:
            node = spec.add(x, y)
        elif kind == 1:
            node = spec.sub(x, y)
        elif kind == 2:
            node = spec.bit_xor(x, y)
        elif kind == 3:
            node = spec.bit_and(x, y)
        elif kind == 4:
            node = spec.minimum(x, y)
        elif kind == 5:
            node = spec.mux(spec.compare("lt_u", x, y), x, y)
        else:
            narrow_x = spec.slice(x, 0, min(8, x.width))
            narrow_y = spec.slice(y, 0, min(8, y.width))
            node = spec.tie_mult(narrow_x, narrow_y)
        pool.append(node)
    spec.result(pool[-1])
    return spec


class TestCompilerInvariants:
    @settings(max_examples=60, deadline=None)
    @given(random_spec())
    def test_latency_bounds(self, spec):
        impl = compile_spec(spec)
        hardware_nodes = sum(1 for node in spec.nodes if node.is_hardware)
        # latency is at least 1 and at most ceil(ops / 1) / LEVELS_PER_CYCLE
        assert 1 <= impl.latency <= max(1, -(-hardware_nodes // 1))
        assert impl.latency == -(-max(1, _depth(spec)) // LEVELS_PER_CYCLE)

    @settings(max_examples=60, deadline=None)
    @given(random_spec())
    def test_one_instance_per_hardware_node(self, spec):
        impl = compile_spec(spec)
        hardware_nodes = sum(1 for node in spec.nodes if node.is_hardware)
        assert len(impl.instances) == hardware_nodes

    @settings(max_examples=60, deadline=None)
    @given(random_spec())
    def test_active_cycles_within_latency(self, spec):
        impl = compile_spec(spec)
        for cycles in impl.active_cycles.values():
            assert all(0 <= cycle < impl.latency for cycle in cycles)

    @settings(max_examples=60, deadline=None)
    @given(random_spec())
    def test_activity_accounting_consistent(self, spec):
        impl = compile_spec(spec)
        total_weighted = sum(impl.per_exec_activity.values())
        recomputed = sum(
            instance.complexity * len(impl.active_cycles[instance.name])
            for instance in impl.instances
        )
        assert abs(total_weighted - recomputed) < 1e-9
        total_counts = sum(impl.per_exec_counts.values())
        assert total_counts == sum(
            len(impl.active_cycles[instance.name]) for instance in impl.instances
        )

    @settings(max_examples=60, deadline=None)
    @given(random_spec())
    def test_taps_are_subset_of_instances(self, spec):
        impl = compile_spec(spec)
        names = {instance.name for instance in impl.instances}
        assert set(impl.bus_tapped) <= names
        tap_total = sum(impl.bus_tap_complexity.values())
        assert tap_total <= sum(instance.complexity for instance in impl.instances) + 1e-9


class TestSemanticsInvariants:
    @settings(max_examples=60, deadline=None)
    @given(random_spec(), WORDS, WORDS)
    def test_result_masked_to_32_bits_and_deterministic(self, spec, a, b):
        impl = compile_spec(spec)
        ins = Instruction("rnd", rd=4, rs=2, rt=3)

        def run():
            state = MachineState()
            state.set(2, a)
            state.set(3, b)
            impl.instruction.semantics(state, ins)
            return state.get(4)

        first = run()
        assert 0 <= first <= 0xFFFFFFFF
        assert run() == first

    @settings(max_examples=40, deadline=None)
    @given(random_spec(), WORDS, WORDS)
    def test_only_masked_source_bits_matter(self, spec, a, b):
        impl = compile_spec(spec)
        widths = {
            node.payload: node.width for node in spec.nodes if node.kind == "gpr_in"
        }
        ins = Instruction("rnd", rd=4, rs=2, rt=3)

        def run(x, y):
            state = MachineState()
            state.set(2, x)
            state.set(3, y)
            impl.instruction.semantics(state, ins)
            return state.get(4)

        masked = run(a & ((1 << widths["rs"]) - 1), b & ((1 << widths["rt"]) - 1))
        assert run(a, b) == masked


def _depth(spec):
    """Longest hardware-op chain (mirrors the compiler's level logic)."""
    levels = {}
    for node in spec.nodes:
        if node.kind in ("gpr_in", "imm_in", "state_in", "const"):
            levels[node.nid] = 0
        else:
            base = max((levels[i.nid] for i in node.inputs), default=0)
            levels[node.nid] = base + (1 if node.is_hardware else 0)
    return max(levels.values(), default=0)
