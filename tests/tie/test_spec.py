"""Tests for the TIE-substitute spec builder (validation and ergonomics)."""

import pytest

from repro.hwlib import ComponentCategory
from repro.tie import TieSpec, TieSpecError, TieState


class TestConstruction:
    def test_bad_mnemonic(self):
        with pytest.raises(TieSpecError):
            TieSpec("not a name!")

    def test_bad_format(self):
        with pytest.raises(TieSpecError):
            TieSpec("foo", fmt="B2")

    def test_source_field_must_match_format(self):
        spec = TieSpec("foo", fmt="R2")
        spec.source("rs")
        with pytest.raises(TieSpecError, match="no GPR source field"):
            spec.source("rt")

    def test_source_read_twice_rejected(self):
        spec = TieSpec("foo", fmt="R3")
        spec.source("rs")
        with pytest.raises(TieSpecError, match="read twice"):
            spec.source("rs")

    def test_immediate_requires_i_format(self):
        spec = TieSpec("foo", fmt="R3")
        with pytest.raises(TieSpecError, match="no immediate"):
            spec.immediate()

    def test_immediate_ok_in_i_format(self):
        spec = TieSpec("foo", fmt="I")
        node = spec.immediate(width=8)
        assert node.width == 8

    def test_const_range_checked(self):
        spec = TieSpec("foo")
        with pytest.raises(TieSpecError, match="does not fit"):
            spec.const(256, 8)

    def test_result_requires_rd_field(self):
        spec = TieSpec("foo", fmt="RS1")
        a = spec.source("rs")
        with pytest.raises(TieSpecError, match="no result field"):
            spec.result(a)

    def test_result_assigned_twice(self):
        spec = TieSpec("foo", fmt="R2")
        a = spec.source("rs")
        spec.result(a)
        with pytest.raises(TieSpecError, match="twice"):
            spec.result(a)


class TestState:
    def test_state_redeclaration_must_match(self):
        spec = TieSpec("foo", fmt="RS1")
        spec.state("acc", width=16)
        with pytest.raises(TieSpecError, match="different shape"):
            spec.state("acc", width=24)

    def test_shared_state_object(self):
        shared = TieState("acc", width=16)
        spec_a = TieSpec("a", fmt="RS1")
        spec_b = TieSpec("b", fmt="RD1")
        spec_a.write_state(shared, spec_a.source("rs", width=16))
        spec_b.result(spec_b.zero_extend(spec_b.read_state(shared), 32))
        assert spec_a.states["acc"] == spec_b.states["acc"]

    def test_state_written_twice_rejected(self):
        spec = TieSpec("foo", fmt="RS1")
        acc = spec.state("acc", width=8)
        value = spec.source("rs", width=8)
        spec.write_state(acc, value)
        with pytest.raises(TieSpecError, match="written twice"):
            spec.write_state(acc, value)

    def test_state_init_out_of_range(self):
        with pytest.raises(ValueError):
            TieState("acc", width=4, init=16)


class TestOperators:
    def test_csa_returns_pair(self):
        spec = TieSpec("foo", fmt="R3")
        a = spec.source("rs", width=8)
        b = spec.source("rt", width=8)
        s, c = spec.csa(a, b, spec.const(1, 8))
        assert s.width == c.width == 9
        total = spec.tie_add(s, c)
        spec.result(total)
        spec.validate()

    def test_tie_add_needs_two_terms(self):
        spec = TieSpec("foo", fmt="R2")
        a = spec.source("rs")
        with pytest.raises(TieSpecError, match="at least two"):
            spec.tie_add(a)

    def test_table_power_of_two(self):
        spec = TieSpec("foo", fmt="R2")
        a = spec.source("rs", width=3)
        with pytest.raises(TieSpecError, match="power-of-two"):
            spec.table("t", [1, 2, 3], a, out_width=4)

    def test_table_entry_range(self):
        spec = TieSpec("foo", fmt="R2")
        a = spec.source("rs", width=2)
        with pytest.raises(TieSpecError, match="exceeds"):
            spec.table("t", [0, 1, 2, 16], a, out_width=4)

    def test_slice_bounds(self):
        spec = TieSpec("foo", fmt="R2")
        a = spec.source("rs", width=16)
        with pytest.raises(TieSpecError, match="out of range"):
            spec.slice(a, 10, 8)

    def test_extend_cannot_narrow(self):
        spec = TieSpec("foo", fmt="R2")
        a = spec.source("rs", width=16)
        with pytest.raises(TieSpecError):
            spec.zero_extend(a, 8)
        with pytest.raises(TieSpecError):
            spec.sign_extend(a, 8)

    def test_compare_kind_validated(self):
        spec = TieSpec("foo", fmt="R3")
        a = spec.source("rs")
        b = spec.source("rt")
        with pytest.raises(TieSpecError, match="unknown comparison"):
            spec.compare("gt", a, b)

    def test_non_node_input_rejected(self):
        spec = TieSpec("foo", fmt="R2")
        a = spec.source("rs")
        with pytest.raises(TieSpecError, match="not a Node"):
            spec.add(a, 5)  # type: ignore[arg-type]

    def test_categories_assigned(self):
        spec = TieSpec("foo", fmt="R3")
        a = spec.source("rs", width=8)
        b = spec.source("rt", width=8)
        assert spec.add(a, b).category is ComponentCategory.ADD_SUB_CMP
        assert spec.mul(a, b).category is ComponentCategory.MULT
        assert spec.tie_mult(a, b).category is ComponentCategory.TIE_MULT
        assert spec.bit_xor(a, b).category is ComponentCategory.LOGIC_RED_MUX
        assert spec.shift_left(a, b).category is ComponentCategory.SHIFTER

    def test_wiring_has_no_category(self):
        spec = TieSpec("foo", fmt="R2")
        a = spec.source("rs")
        assert spec.slice(a, 0, 8).category is None
        assert spec.zero_extend(a, 33).category is None
        assert spec.concat(a, a).category is None


class TestValidation:
    def test_missing_result(self):
        spec = TieSpec("foo", fmt="R3")
        spec.source("rs")
        with pytest.raises(TieSpecError, match="requires a result"):
            spec.validate()

    def test_no_architectural_effect(self):
        spec = TieSpec("foo", fmt="RS1")
        spec.source("rs")
        with pytest.raises(TieSpecError, match="no architectural effect"):
            spec.validate()

    def test_unused_state_rejected(self):
        spec = TieSpec("foo", fmt="R2")
        spec.state("dangling", width=8)
        spec.result(spec.source("rs"))
        with pytest.raises(TieSpecError, match="unused state"):
            spec.validate()

    def test_gpr_access_flags(self):
        spec = TieSpec("foo", fmt="R2")
        a = spec.source("rs")
        spec.result(a)
        assert spec.reads_gpr and spec.writes_gpr and spec.accesses_gpr

        pure = TieSpec("bar", fmt="RD1")
        acc = pure.state("s", width=8)
        pure.result(pure.zero_extend(pure.read_state(acc), 32))
        assert not pure.reads_gpr
        assert pure.writes_gpr
