"""Tests for the TIE compiler: scheduling, hardware, activity, semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hwlib import ComponentCategory
from repro.isa import Instruction, MachineState
from repro.tie import (
    LEVELS_PER_CYCLE,
    TieSpec,
    TieSpecError,
    TieState,
    compile_extension,
    compile_spec,
)

WORDS = st.integers(min_value=0, max_value=0xFFFFFFFF)


def simple_mult_spec() -> TieSpec:
    spec = TieSpec("xmul", fmt="R3")
    a = spec.source("rs", width=16)
    b = spec.source("rt", width=16)
    spec.result(spec.tie_mult(a, b))
    return spec


def deep_chain_spec(depth: int) -> TieSpec:
    """A chain of `depth` adders (one logic level each)."""
    spec = TieSpec("chain", fmt="R2")
    node = spec.source("rs", width=16)
    one = spec.const(1, 16)
    for _ in range(depth):
        node = spec.add(node, one, width=16)
    spec.result(node)
    return spec


class TestScheduling:
    def test_single_level_is_single_cycle(self):
        impl = compile_spec(simple_mult_spec())
        assert impl.latency == 1

    def test_deep_chain_becomes_multi_cycle(self):
        impl = compile_spec(deep_chain_spec(LEVELS_PER_CYCLE + 1))
        assert impl.latency == 2
        impl3 = compile_spec(deep_chain_spec(2 * LEVELS_PER_CYCLE + 1))
        assert impl3.latency == 3

    def test_wiring_costs_no_levels(self):
        spec = TieSpec("wires", fmt="R2")
        a = spec.source("rs")
        lo = spec.slice(a, 0, 16)
        hi = spec.slice(a, 16, 16)
        swapped = spec.concat(lo, hi)
        spec.result(swapped)
        impl = compile_spec(spec)
        assert impl.latency == 1
        assert impl.instances == ()  # pure wiring: zero hardware

    def test_active_cycle_assignment(self):
        impl = compile_spec(deep_chain_spec(LEVELS_PER_CYCLE + 1))
        cycles = set()
        for active in impl.active_cycles.values():
            cycles.update(active)
        assert cycles == {0, 1}

    def test_instruction_def_latency_matches(self):
        impl = compile_spec(deep_chain_spec(LEVELS_PER_CYCLE + 2))
        assert impl.instruction.latency == impl.latency


class TestHardwareInstances:
    def test_one_instance_per_operator(self):
        spec = TieSpec("twoops", fmt="R3")
        a = spec.source("rs", width=8)
        b = spec.source("rt", width=8)
        total = spec.add(a, b, width=9)
        spec.result(spec.bit_xor(total, spec.zero_extend(a, 9)))
        impl = compile_spec(spec)
        categories = sorted(i.category.value for i in impl.instances)
        assert categories == ["add_sub_cmp", "logic_red_mux"]

    def test_state_register_instance(self):
        spec = TieSpec("withstate", fmt="RS1")
        acc = spec.state("myacc", width=24)
        spec.write_state(acc, spec.zero_extend(spec.source("rs", width=16), 24))
        impl = compile_spec(spec)
        regs = [i for i in impl.instances if i.category is ComponentCategory.CUSTOM_REG]
        assert len(regs) == 1
        assert regs[0].name == "state/myacc"
        assert regs[0].width == 24

    def test_shared_state_same_instance_name(self):
        shared = TieState("acc", width=16)
        writer = TieSpec("w", fmt="RS1")
        writer.write_state(shared, writer.source("rs", width=16))
        reader = TieSpec("r", fmt="RD1")
        reader.result(reader.zero_extend(reader.read_state(shared), 32))
        impls = compile_extension([writer, reader])
        names = [
            i.name for impl in impls for i in impl.instances
            if i.category is ComponentCategory.CUSTOM_REG
        ]
        assert names == ["state/acc", "state/acc"]

    def test_per_exec_activity_weights_complexity(self):
        impl = compile_spec(simple_mult_spec())
        # one 32-bit tie_mult active one cycle: C = (32/32)^2 = 1.0
        assert impl.per_exec_activity[ComponentCategory.TIE_MULT] == pytest.approx(1.0)
        assert impl.per_exec_counts[ComponentCategory.TIE_MULT] == 1

    def test_table_instance_entries(self):
        spec = TieSpec("lut", fmt="R2")
        a = spec.source("rs", width=4)
        spec.result(spec.zero_extend(spec.table("t", list(range(16)), a, out_width=4), 32))
        impl = compile_spec(spec)
        tables = [i for i in impl.instances if i.category is ComponentCategory.TABLE]
        assert tables[0].entries == 16


class TestBusTaps:
    def test_gpr_fed_operator_is_tapped(self):
        impl = compile_spec(simple_mult_spec())
        assert len(impl.bus_tapped) == 1
        assert ComponentCategory.TIE_MULT in impl.bus_tap_complexity

    def test_second_stage_not_tapped(self):
        spec = TieSpec("staged", fmt="R3")
        a = spec.source("rs", width=8)
        b = spec.source("rt", width=8)
        first = spec.add(a, b, width=9)
        second = spec.add(first, spec.const(1, 9), width=10)
        spec.result(second)
        impl = compile_spec(spec)
        assert len(impl.bus_tapped) == 1  # only the first adder sees the bus

    def test_tap_through_wiring(self):
        spec = TieSpec("wired", fmt="R2")
        a = spec.source("rs")
        low = spec.slice(a, 0, 8)  # wiring is transparent to the bus
        spec.result(spec.zero_extend(spec.bit_not(low), 32))
        impl = compile_spec(spec)
        assert len(impl.bus_tapped) == 1

    def test_state_fed_operator_not_tapped(self):
        spec = TieSpec("statefed", fmt="RD1")
        acc = spec.state("acc", width=8)
        inverted = spec.bit_not(spec.read_state(acc))
        spec.result(spec.zero_extend(inverted, 32))
        spec.write_state(acc, inverted)
        impl = compile_spec(spec)
        assert impl.bus_tapped == ()


class TestSemantics:
    def test_mult_semantics(self):
        impl = compile_spec(simple_mult_spec())
        state = MachineState()
        state.set(2, 0x10003)  # low16 = 3
        state.set(3, 0x20005)  # low16 = 5
        impl.instruction.semantics(state, Instruction("xmul", rd=4, rs=2, rt=3))
        assert state.get(4) == 15

    def test_state_read_write_ordering(self):
        # reads must observe pre-instruction state even when written
        spec = TieSpec("swapish", fmt="R2")
        acc = spec.state("acc", width=8, init=7)
        old = spec.read_state(acc)
        spec.write_state(acc, spec.source("rs", width=8))
        spec.result(spec.zero_extend(old, 32))
        impl = compile_spec(spec)
        state = MachineState()
        state.tie_state["acc"] = 42
        state.set(2, 99)
        impl.instruction.semantics(state, Instruction("swapish", rd=4, rs=2))
        assert state.get(4) == 42        # old value returned
        assert state.tie_state["acc"] == 99  # new value latched

    def test_state_init_used_when_unset(self):
        spec = TieSpec("initread", fmt="RD1")
        acc = spec.state("acc", width=8, init=55)
        spec.result(spec.zero_extend(spec.read_state(acc), 32))
        impl = compile_spec(spec)
        state = MachineState()
        impl.instruction.semantics(state, Instruction("initread", rd=4))
        assert state.get(4) == 55

    @given(WORDS, WORDS)
    def test_width_masking_invariant(self, a, b):
        # every node's value fits its declared width, so the result of a
        # 9-bit adder can never exceed 0x1FF
        spec = TieSpec("narrow", fmt="R3")
        na = spec.source("rs", width=8)
        nb = spec.source("rt", width=8)
        spec.result(spec.add(na, nb, width=9))
        impl = compile_spec(spec)
        state = MachineState()
        state.set(2, a)
        state.set(3, b)
        impl.instruction.semantics(state, Instruction("narrow", rd=4, rs=2, rt=3))
        assert state.get(4) == ((a & 0xFF) + (b & 0xFF)) & 0x1FF

    @given(WORDS, WORDS, WORDS)
    def test_csa_plus_add_equals_sum(self, a, b, c):
        spec = TieSpec("csasum", fmt="R3")
        na = spec.source("rs", width=16)
        nb = spec.source("rt", width=16)
        nc = spec.const(c & 0xFFFF, 16)
        s, carry = spec.csa(
            spec.zero_extend(na, 18), spec.zero_extend(nb, 18), spec.zero_extend(nc, 18)
        )
        spec.result(spec.tie_add(s, carry, width=18))
        impl = compile_spec(spec)
        state = MachineState()
        state.set(2, a)
        state.set(3, b)
        impl.instruction.semantics(state, Instruction("csasum", rd=4, rs=2, rt=3))
        assert state.get(4) == ((a & 0xFFFF) + (b & 0xFFFF) + (c & 0xFFFF)) & 0x3FFFF


class TestExtensionChecks:
    def test_duplicate_mnemonics_rejected(self):
        with pytest.raises(TieSpecError, match="duplicate custom mnemonic"):
            compile_extension([simple_mult_spec(), simple_mult_spec()])

    def test_conflicting_shared_state_rejected(self):
        a = TieSpec("a", fmt="RS1")
        a.write_state(TieState("acc", width=8), a.source("rs", width=8))
        b = TieSpec("b", fmt="RS1")
        b.write_state(TieState("acc", width=16), b.source("rs", width=16))
        with pytest.raises(TieSpecError, match="inconsistently"):
            compile_extension([a, b])

    def test_instance_lookup(self):
        impl = compile_spec(simple_mult_spec())
        name = impl.instances[0].name
        assert impl.instance_by_name(name) is impl.instances[0]
        with pytest.raises(KeyError):
            impl.instance_by_name("nope")
