"""FIR design-space workload tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import Instruction, MachineState
from repro.programs.fir import (
    OUTPUTS,
    SAMPLES,
    TAPS,
    fir_choices,
    firstep2_spec,
    ref_firstep2,
    wrfir_spec,
)
from repro.tie import compile_spec

WORDS = st.integers(min_value=0, max_value=0xFFFFFFFF)


class TestFirstepSpec:
    @settings(max_examples=40)
    @given(WORDS, WORDS, st.integers(min_value=0, max_value=(1 << 33) - 1))
    def test_matches_reference_in_range(self, samples, coefficients, acc):
        """CSA compression is exact while the true sum fits 40 bits."""
        impl = compile_spec(firstep2_spec())
        machine = MachineState()
        machine.tie_state["firacc"] = acc
        machine.set(2, samples)
        machine.set(3, coefficients)
        impl.instruction.semantics(
            machine, Instruction("firstep2", rd=4, rs=2, rt=3)
        )
        expected = ref_firstep2(acc, samples, coefficients)
        if acc + 2 * (1 << 32) < (1 << 40):  # no 40-bit overflow possible
            assert machine.tie_state["firacc"] == expected
            assert machine.get(4) == expected & 0xFFFFFFFF

    def test_exercises_four_categories(self):
        from repro.hwlib import ComponentCategory

        impl = compile_spec(firstep2_spec())
        categories = {instance.category for instance in impl.instances}
        assert {
            ComponentCategory.TIE_MULT,
            ComponentCategory.TIE_CSA,
            ComponentCategory.TIE_ADD,
            ComponentCategory.CUSTOM_REG,
        } <= categories

    def test_wrfir_clears(self):
        impl = compile_spec(wrfir_spec())
        machine = MachineState()
        machine.tie_state["firacc"] = (1 << 39) | 123
        machine.set(2, 7)
        impl.instruction.semantics(machine, Instruction("wrfir", rs=2))
        assert machine.tie_state["firacc"] == 7


class TestFirVariants:
    def test_geometry(self):
        assert OUTPUTS == SAMPLES - TAPS + 1

    @pytest.mark.parametrize("name", ["fir_sw", "fir_mac", "fir_packed"])
    def test_variant_verifies(self, name):
        case = next(c for c in fir_choices() if c.name == name)
        case.run_verified()

    def test_all_variants_agree(self):
        outputs = None
        for case in fir_choices():
            result = case.run()
            values = result.words("outp", OUTPUTS)
            if outputs is None:
                outputs = values
            else:
                assert values == outputs, case.name

    def test_packed_variant_fastest(self):
        cycles = {case.name: case.run().cycles for case in fir_choices()}
        assert cycles["fir_packed"] < cycles["fir_sw"]
        assert cycles["fir_packed"] < cycles["fir_mac"]

    def test_mac_without_packing_support_is_no_faster(self):
        """An honest DSE data point: the plain MAC instruction does not pay
        off here because packing its operand costs two base instructions
        per tap — specialization only wins with the packed datapath."""
        cycles = {case.name: case.run().cycles for case in fir_choices()}
        assert cycles["fir_mac"] >= cycles["fir_sw"] * 0.9
