"""GF(2^8) arithmetic tests, including field-axiom property tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.programs import gf

ELEMENTS = st.integers(min_value=0, max_value=255)
NONZERO = st.integers(min_value=1, max_value=255)


class TestTables:
    def test_sizes(self):
        assert len(gf.log_table()) == 256
        assert len(gf.alog_table()) == 256

    def test_alog_wraps(self):
        alog = gf.alog_table()
        assert alog[0] == 1
        assert alog[255] == alog[0]

    def test_log_alog_inverse(self):
        log, alog = gf.log_table(), gf.alog_table()
        for exponent in range(255):
            assert log[alog[exponent]] == exponent

    def test_alog_values_are_field_elements(self):
        assert all(0 < value < 256 for value in gf.alog_table())


class TestMult:
    def test_known_values(self):
        assert gf.gf_mult(0, 5) == 0
        assert gf.gf_mult(1, 5) == 5
        assert gf.gf_mult(2, 0x80) == 0x1D  # reduction by 0x11D
        assert gf.gf_mult(0x53, 0x8C) == 0x01  # inverse pair under 0x11D

    def test_range_checked(self):
        with pytest.raises(ValueError):
            gf.gf_mult(256, 1)
        with pytest.raises(ValueError):
            gf.gf_mult(1, -1)

    @given(ELEMENTS, ELEMENTS)
    def test_table_based_matches_reference(self, a, b):
        assert gf.gf_mult_table(a, b) == gf.gf_mult(a, b)

    @given(ELEMENTS, ELEMENTS)
    def test_commutative(self, a, b):
        assert gf.gf_mult(a, b) == gf.gf_mult(b, a)

    @given(ELEMENTS, ELEMENTS, ELEMENTS)
    def test_associative(self, a, b, c):
        assert gf.gf_mult(gf.gf_mult(a, b), c) == gf.gf_mult(a, gf.gf_mult(b, c))

    @given(ELEMENTS, ELEMENTS, ELEMENTS)
    def test_distributes_over_xor(self, a, b, c):
        assert gf.gf_mult(a, b ^ c) == gf.gf_mult(a, b) ^ gf.gf_mult(a, c)

    @given(ELEMENTS)
    def test_identity(self, a):
        assert gf.gf_mult(a, 1) == a

    @given(NONZERO, NONZERO)
    def test_no_zero_divisors(self, a, b):
        assert gf.gf_mult(a, b) != 0

    @given(NONZERO)
    def test_every_nonzero_has_inverse(self, a):
        # a^254 is the inverse of a in GF(2^8)
        inverse = gf.gf_pow(a, 254)
        assert gf.gf_mult(a, inverse) == 1


class TestPow:
    def test_powers_of_two_match_alog(self):
        alog = gf.alog_table()
        for exponent in range(20):
            assert gf.gf_pow(2, exponent) == alog[exponent % 255]

    def test_zero_exponent(self):
        assert gf.gf_pow(7, 0) == 1


class TestSyndromes:
    def test_zero_codeword(self):
        assert gf.syndromes([0] * 16, 4) == [0, 0, 0, 0]

    def test_single_symbol(self):
        # r = [s] at position 0: S_j = s for all j
        assert gf.syndromes([0x37], 3) == [0x37, 0x37, 0x37]

    def test_matches_direct_evaluation(self):
        received = [3, 1, 4, 1, 5, 9, 2, 6]
        for j in range(1, 5):
            alpha_j = gf.gf_pow(2, j)
            direct = 0
            for i, symbol in enumerate(received):
                direct ^= gf.gf_mult(symbol, gf.gf_pow(alpha_j, i))
            assert gf.syndromes(received, 4)[j - 1] == direct

    @given(st.lists(ELEMENTS, min_size=1, max_size=16))
    def test_linearity(self, received):
        doubled = [gf.gf_mult(2, symbol) for symbol in received]
        base = gf.syndromes(received, 3)
        scaled = gf.syndromes(doubled, 3)
        assert scaled == [gf.gf_mult(2, value) for value in base]
