"""Tests for the benchmark plumbing: LCG data, case registry, variants."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.programs import BenchmarkCase, Lcg, expect_word, expect_words, rand_words
from repro.programs.data import chunked, format_words
from repro.programs.extensions import mul16_spec
from repro.programs.testsuite import dsp_extension_config
from repro.programs.variants import _make_density_case


class TestLcg:
    def test_deterministic(self):
        assert Lcg(42).words(10) == Lcg(42).words(10)
        assert rand_words(42, 10) == Lcg(42).words(10)

    def test_different_seeds_differ(self):
        assert Lcg(1).words(10) != Lcg(2).words(10)

    @given(st.integers(min_value=0, max_value=2**31 - 1), st.sampled_from([8, 16, 32]))
    def test_width_respected(self, seed, bits):
        for value in Lcg(seed).words(20, bits=bits):
            assert 0 <= value < (1 << bits)

    @given(st.integers(min_value=0, max_value=2**31 - 1), st.integers(min_value=1, max_value=1000))
    def test_below_bound(self, seed, bound):
        lcg = Lcg(seed)
        for _ in range(20):
            assert 0 <= lcg.below(bound) < bound

    def test_below_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Lcg(1).below(0)


class TestFormatting:
    def test_format_words(self):
        text = format_words([1, 2, 3], per_line=2)
        assert text == "    .word 1, 2\n    .word 3"

    def test_format_bytes_directive(self):
        text = format_words([255], directive=".byte")
        assert text == "    .byte 255"

    def test_chunked(self):
        assert list(chunked([1, 2, 3, 4, 5], 2)) == [[1, 2], [3, 4], [5]]


class TestBenchmarkCase:
    def test_build_cached(self):
        case = BenchmarkCase(
            name="cache-check",
            description="",
            source="main:\n    halt\n",
        )
        config_a, program_a = case.build()
        config_b, program_b = case.build()
        assert config_a is config_b
        assert program_a is program_b

    def test_spec_factories_compiled(self):
        case = BenchmarkCase(
            name="with-spec",
            description="",
            source="main:\n    mul16 a2, a3, a4\n    halt\n",
            spec_factories=(mul16_spec,),
        )
        config, _ = case.build()
        assert "mul16" in config.isa

    def test_shared_config_wins(self):
        shared = dsp_extension_config()
        case = BenchmarkCase(
            name="shared",
            description="",
            source="main:\n    halt\n",
            shared_config=shared,
        )
        config, _ = case.build()
        assert config is shared

    def test_run_verified_raises_on_bad_check(self):
        case = BenchmarkCase(
            name="failing",
            description="",
            source="    .data\nout: .word 0\n    .text\nmain:\n    halt\n",
            check=expect_word("out", 999),
        )
        with pytest.raises(AssertionError, match="output mismatch"):
            case.run_verified()

    def test_expect_words_reports_indices(self):
        case = BenchmarkCase(
            name="multi-fail",
            description="",
            source="    .data\nbuf: .word 1, 2, 3\n    .text\nmain:\n    halt\n",
            check=expect_words("buf", [1, 99, 98]),
        )
        with pytest.raises(AssertionError, match=r"\[1\] got 0x2"):
            case.run_verified()


class TestDensityVariants:
    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="stateless"):
            _make_density_case("bad", dsp_extension_config(), ("mac16",), 0, 10, 1)

    def test_generated_case_verifies(self):
        case = _make_density_case(
            "gen-check", dsp_extension_config(), ("mul16", "add4x8"), 5, 40, 12345
        )
        result = case.run_verified()
        assert result.stats.custom_counts["mul16"] == 40
        assert result.stats.custom_counts["add4x8"] == 40

    def test_data_mask_narrows_operands(self):
        narrow = _make_density_case(
            "narrow-data", dsp_extension_config(), ("mul16",), 0, 30, 7, data_mask=0xF
        )
        result = narrow.run_verified(collect_trace=True)
        for record in result.trace:
            if record.mnemonic == "mul16":
                assert all(op <= 0xF for op in record.operands)

    def test_pad_emits_filler_branches(self):
        case = _make_density_case(
            "branchy", dsp_extension_config(), ("sum4",), 14, 25, 9
        )
        result = case.run_verified()
        # pads 5,12 are never-taken `bne a0,a0`; pads 6,13 always-taken
        from repro.isa import InstructionClass

        assert result.stats.class_counts[InstructionClass.BRANCH_UNTAKEN] >= 2 * 25
        assert result.stats.class_counts[InstructionClass.BRANCH_TAKEN] >= 2 * 25

    def test_density_changes_custom_share(self):
        dense = _make_density_case("d", dsp_extension_config(), ("mul16",), 0, 50, 3)
        sparse = _make_density_case("s", dsp_extension_config(), ("mul16",), 15, 50, 3)
        dense_stats = dense.run().stats
        sparse_stats = sparse.run().stats
        dense_share = dense_stats.custom_counts["mul16"] / dense_stats.total_instructions
        sparse_share = sparse_stats.custom_counts["mul16"] / sparse_stats.total_instructions
        assert dense_share > 2 * sparse_share
