"""Every custom-instruction spec's semantics must match its Python ref.

The specs are exercised through the compiled TIE implementation over
randomized operands — this is the contract that makes the assembly
kernels' functional checks trustworthy.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import Instruction, MachineState
from repro.programs import extensions as ext
from repro.tie import compile_spec

WORDS = st.integers(min_value=0, max_value=0xFFFFFFFF)


def execute(impl, rd=None, rs_value=None, rt_value=None, state=None):
    machine = MachineState()
    if state:
        machine.tie_state.update(state)
    ins_kwargs = {}
    if rs_value is not None:
        machine.set(2, rs_value)
        ins_kwargs["rs"] = 2
    if rt_value is not None:
        machine.set(3, rt_value)
        ins_kwargs["rt"] = 3
    if rd is not None:
        ins_kwargs["rd"] = rd
    ins = Instruction(impl.mnemonic, **ins_kwargs)
    impl.instruction.semantics(machine, ins)
    return machine


class TestStatelessSpecs:
    @given(WORDS, WORDS)
    @settings(max_examples=40)
    def test_mul16(self, a, b):
        impl = compile_spec(ext.mul16_spec())
        machine = execute(impl, rd=4, rs_value=a, rt_value=b)
        assert machine.get(4) == ext.ref_mul16(a, b)

    @given(WORDS, WORDS)
    @settings(max_examples=40)
    def test_mul8(self, a, b):
        impl = compile_spec(ext.mul8_spec())
        machine = execute(impl, rd=4, rs_value=a, rt_value=b)
        assert machine.get(4) == ext.ref_mul8(a, b)

    @given(WORDS, WORDS)
    @settings(max_examples=40)
    def test_add4x8(self, a, b):
        impl = compile_spec(ext.add4x8_spec())
        machine = execute(impl, rd=4, rs_value=a, rt_value=b)
        assert machine.get(4) == ext.ref_add4x8(a, b)

    @given(WORDS, WORDS)
    @settings(max_examples=40)
    def test_min_max_absdiff(self, a, b):
        assert execute(compile_spec(ext.min2_spec()), rd=4, rs_value=a, rt_value=b).get(4) == min(a, b)
        assert execute(compile_spec(ext.max2_spec()), rd=4, rs_value=a, rt_value=b).get(4) == max(a, b)
        assert execute(compile_spec(ext.absdiff_spec()), rd=4, rs_value=a, rt_value=b).get(4) == ext.ref_absdiff(a, b)
        assert execute(compile_spec(ext.min2h_spec()), rd=4, rs_value=a, rt_value=b).get(4) == ext.ref_min2h(a, b)

    @given(WORDS)
    @settings(max_examples=40)
    def test_sat8_sum4_parity_swz_sqr(self, a):
        assert execute(compile_spec(ext.sat8_spec()), rd=4, rs_value=a).get(4) == ext.ref_sat8(a)
        assert execute(compile_spec(ext.sum4_spec()), rd=4, rs_value=a).get(4) == ext.ref_sum4(a)
        assert execute(compile_spec(ext.parity32_spec()), rd=4, rs_value=a).get(4) == ext.ref_parity32(a)
        assert execute(compile_spec(ext.swz_spec()), rd=4, rs_value=a).get(4) == ext.ref_swz(a)
        assert execute(compile_spec(ext.sqr16_spec()), rd=4, rs_value=a).get(4) == ext.ref_sqr16(a)

    @given(WORDS, st.integers(min_value=0, max_value=0xFFFF))
    @settings(max_examples=40)
    def test_sum3(self, a, b):
        impl = compile_spec(ext.sum3_spec())
        machine = execute(impl, rd=4, rs_value=a, rt_value=b)
        assert machine.get(4) == ext.ref_sum3(a, b)

    @given(WORDS, st.integers(min_value=0, max_value=31))
    @settings(max_examples=40)
    def test_shiftmix(self, a, amount):
        impl = compile_spec(ext.shiftmix_spec())
        machine = execute(impl, rd=4, rs_value=a, rt_value=amount)
        assert machine.get(4) == ext.ref_shiftmix(a, amount)

    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=256),
    )
    @settings(max_examples=40)
    def test_blend8(self, a, b, alpha):
        impl = compile_spec(ext.blend8_spec())
        machine = execute(impl, rd=4, rs_value=(b << 8) | a, rt_value=alpha)
        assert machine.get(4) == ext.ref_blend8(a, b, alpha)

    @given(st.integers(min_value=0, max_value=63))
    @settings(max_examples=40)
    def test_sbox(self, index):
        impl = compile_spec(ext.sbox_spec())
        machine = execute(impl, rd=4, rs_value=index)
        assert machine.get(4) == ext.ref_sbox(index)

    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
    @settings(max_examples=60)
    def test_gfmul(self, a, b):
        impl = compile_spec(ext.gfmul_spec())
        machine = execute(impl, rd=4, rs_value=a, rt_value=b)
        assert machine.get(4) == ext.ref_gfmul(a, b)


class TestStatefulSpecs:
    def test_mac16_sequence(self):
        impl = compile_spec(ext.mac16_spec())
        reader = compile_spec(ext.rdmac_spec())
        machine = MachineState()
        acc = 0
        for word in (0x0003_0005, 0xFFFF_FFFF, 0x1234_5678):
            machine.set(2, word)
            impl.instruction.semantics(machine, Instruction("mac16", rs=2))
            acc = ext.ref_mac16_step(acc, word)
        reader.instruction.semantics(machine, Instruction("rdmac", rd=4))
        assert machine.get(4) == acc & 0xFFFFFFFF

    def test_wrmac_clears_high_bits(self):
        writer = compile_spec(ext.wrmac_spec())
        machine = MachineState()
        machine.tie_state["acc40"] = (1 << 39) | 5
        machine.set(2, 0xABCD)
        writer.instruction.semantics(machine, Instruction("wrmac", rs=2))
        assert machine.tie_state["acc40"] == 0xABCD

    def test_mac8_independent_accumulator(self):
        mac8 = compile_spec(ext.mac8_spec())
        rd8 = compile_spec(ext.rdmac8_spec())
        machine = MachineState()
        machine.tie_state["acc40"] = 999  # must not be disturbed
        machine.set(2, (7 << 8) | 6)
        mac8.instruction.semantics(machine, Instruction("mac8", rs=2))
        rd8.instruction.semantics(machine, Instruction("rdmac8", rd=4))
        assert machine.get(4) == 42
        assert machine.tie_state["acc40"] == 999

    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=40)
    def test_gfmac_horner_step(self, acc, symbol, alpha):
        impl = compile_spec(ext.gfmac_spec())
        machine = MachineState()
        machine.tie_state["gfacc"] = acc
        machine.set(2, (alpha << 8) | symbol)
        impl.instruction.semantics(machine, Instruction("gfmac", rs=2))
        assert machine.tie_state["gfacc"] == ext.ref_gfmac_step(acc, symbol, alpha)

    def test_wrgf_rdgf(self):
        writer = compile_spec(ext.wrgf_spec())
        reader = compile_spec(ext.rdgf_spec())
        machine = MachineState()
        machine.set(2, 0x1AB)
        writer.instruction.semantics(machine, Instruction("wrgf", rs=2))
        reader.instruction.semantics(machine, Instruction("rdgf", rd=4))
        assert machine.get(4) == 0xAB  # 8-bit state


class TestLibraryShape:
    def test_registry_factories_compile(self):
        for name, factory in ext.ALL_SPEC_FACTORIES.items():
            impl = compile_spec(factory())
            assert impl.mnemonic == name

    def test_all_ten_categories_covered(self):
        from repro.hwlib import CATEGORY_ORDER

        covered = set()
        for factory in ext.ALL_SPEC_FACTORIES.values():
            impl = compile_spec(factory())
            covered.update(instance.category for instance in impl.instances)
        assert covered == set(CATEGORY_ORDER)

    def test_swz_is_pure_wiring(self):
        impl = compile_spec(ext.swz_spec())
        assert impl.instances == ()
        assert impl.per_exec_activity == {}
