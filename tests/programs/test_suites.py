"""Functional verification + coverage of all benchmark suites.

Every characterization program, application and Reed-Solomon variant runs
on its processor and checks its output against a pure-Python mirror.
"""

import pytest

from repro.core import Characterizer, audit_coverage
from repro.isa import InstructionClass
from repro.programs import (
    application_suite,
    characterization_suite,
    reed_solomon_choices,
)
from repro.programs import gf
from repro.programs.reed_solomon import BLOCK_SYMBOLS, SYNDROME_COUNT
from repro.programs.testsuite import bitops_extension_config, dsp_extension_config


@pytest.fixture(scope="module")
def char_suite():
    return characterization_suite()


@pytest.fixture(scope="module")
def app_suite():
    return application_suite()


class TestCharacterizationSuite:
    def test_core_suite_has_25_programs(self):
        core = characterization_suite(include_variants=False)
        assert len(core) == 25  # the paper's Fig. 3 count

    def test_full_suite_larger(self, char_suite):
        assert len(char_suite) > 25

    @pytest.mark.parametrize(
        "case_name", [c.name for c in characterization_suite()]
    )
    def test_program_verifies(self, char_suite, case_name):
        case = next(c for c in char_suite if c.name == case_name)
        case.run_verified()

    def test_unique_names(self, char_suite):
        names = [case.name for case in char_suite]
        assert len(set(names)) == len(names)

    def test_every_case_has_description_and_check(self, char_suite):
        for case in char_suite:
            assert case.description
            assert case.check is not None

    def test_shared_configs_reused(self, char_suite):
        dsp_cases = [c for c in char_suite if c.config.name == "xt-char-dsp"]
        assert len(dsp_cases) >= 6
        first = dsp_cases[0].config
        assert all(case.config is first for case in dsp_cases)

    def test_event_diversity(self, char_suite):
        """The suite must exercise every dynamic-event variable strongly."""
        totals = {"icache": 0, "dcache": 0, "uncached": 0, "interlock": 0}
        for case in char_suite:
            stats = case.run().stats
            totals["icache"] += stats.icache_misses
            totals["dcache"] += stats.dcache_misses
            totals["uncached"] += stats.uncached_fetches
            totals["interlock"] += stats.interlocks
        assert totals["icache"] > 100
        assert totals["dcache"] > 100
        assert totals["uncached"] > 100
        assert totals["interlock"] > 100

    def test_branch_class_diversity(self, char_suite):
        taken = untaken = 0
        for case in char_suite:
            stats = case.run().stats
            taken += stats.class_counts[InstructionClass.BRANCH_TAKEN]
            untaken += stats.class_counts[InstructionClass.BRANCH_UNTAKEN]
        assert taken > 1000 and untaken > 1000


class TestSuiteCoverage:
    def test_all_21_variables_exercised(self, char_suite):
        characterizer = Characterizer()
        for case in char_suite:
            config, program = case.build()
            characterizer.add_program(config, program)
        report = audit_coverage(characterizer.samples, characterizer.template)
        assert report.is_adequate, report.summary()
        assert report.rank == 21

    def test_extension_configs_cover_all_categories(self):
        from repro.hwlib import CATEGORY_ORDER

        covered = set()
        for config in (dsp_extension_config(), bitops_extension_config()):
            for instance in config.custom_instances:
                covered.add(instance.category)
        assert covered == set(CATEGORY_ORDER)


class TestApplications:
    def test_ten_applications(self, app_suite):
        # the paper's Table II application set
        names = {case.name for case in app_suite}
        assert names == {
            "ins_sort", "gcd", "alphablend", "add4", "bubsort",
            "des", "accumulate", "drawline", "multi_accumulate", "seq_mult",
        }

    @pytest.mark.parametrize("case_name", [c.name for c in application_suite()])
    def test_application_verifies(self, app_suite, case_name):
        case = next(c for c in app_suite if c.name == case_name)
        case.run_verified()

    def test_every_app_uses_custom_instructions(self, app_suite):
        for case in app_suite:
            stats = case.run().stats
            assert stats.custom_counts, f"{case.name} executes no custom instructions"

    def test_apps_disjoint_from_characterization(self, char_suite, app_suite):
        # Table II measures generalization: apps must not be in the suite
        suite_names = {case.name for case in char_suite}
        assert not suite_names & {case.name for case in app_suite}


class TestReedSolomon:
    def test_four_choices(self):
        choices = reed_solomon_choices()
        assert [case.name for case in choices] == ["rs_sw", "rs_gfmul", "rs_gfmac", "rs_dual"]

    @pytest.mark.parametrize("case_name", ["rs_sw", "rs_gfmul", "rs_gfmac", "rs_dual"])
    def test_variant_verifies(self, case_name):
        case = next(c for c in reed_solomon_choices() if c.name == case_name)
        case.run_verified()

    def test_all_variants_compute_identical_syndromes(self):
        expected = None
        for case in reed_solomon_choices():
            result = case.run()
            syndromes = result.words("synd", SYNDROME_COUNT)
            if expected is None:
                expected = syndromes
            else:
                assert syndromes == expected, case.name

    def test_reference_syndromes_match(self):
        case = reed_solomon_choices()[0]
        result = case.run()
        from repro.programs.data import Lcg

        received = [Lcg(1501).below(256) for _ in range(BLOCK_SYMBOLS)]
        assert result.words("synd", SYNDROME_COUNT) == gf.syndromes(received, SYNDROME_COUNT)

    def test_specialization_reduces_cycles(self):
        cycles = [case.run().cycles for case in reed_solomon_choices()]
        # sw >> gfmul/gfmac > dual
        assert cycles[0] > 3 * cycles[1]
        assert cycles[3] < cycles[1]
        assert cycles[3] < cycles[2]
