"""The DSE choice lists: determinism, valid pairs, fingerprint behavior.

These are the hand-built studies the bundled search spaces subsume; the
content-addressed result cache leans on their configs fingerprinting by
content, so collisions or drift between calls would silently cross-wire
cached scores.
"""

from repro.programs import fir_choices, reed_solomon_choices


def _all_choices():
    return {"fir": fir_choices(), "reed_solomon": reed_solomon_choices()}


class TestDeterminism:
    def test_names_and_order_are_stable(self):
        assert [c.name for c in fir_choices()] == ["fir_sw", "fir_mac", "fir_packed"]
        assert [c.name for c in reed_solomon_choices()] == [
            "rs_sw",
            "rs_gfmul",
            "rs_gfmac",
            "rs_dual",
        ]

    def test_sources_identical_across_calls(self):
        for name, choices in _all_choices().items():
            again = fir_choices() if name == "fir" else reed_solomon_choices()
            assert [c.source for c in choices] == [c.source for c in again]

    def test_fresh_case_objects_each_call(self):
        # each call must return independent cases: the cached _built pair
        # of one consumer must never leak into another
        first, second = fir_choices(), fir_choices()
        for a, b in zip(first, second):
            assert a is not b


class TestValidPairs:
    def test_every_choice_builds_and_verifies(self):
        for choices in _all_choices().values():
            for case in choices:
                config, program = case.build()
                assert program.name == case.name
                assert config.name == f"xt-{case.name}"
                # the program must be encodable against this config's ISA
                # (custom mnemonics included), which run_verified exercises
                case.run_verified()

    def test_extension_counts(self):
        assert [len(c.build()[0].extensions) for c in fir_choices()] == [0, 3, 2]
        assert [len(c.build()[0].extensions) for c in reed_solomon_choices()] == [
            0,
            1,
            3,
            3,
        ]


class TestFingerprints:
    def test_round_trip_across_separate_builds(self):
        for make in (fir_choices, reed_solomon_choices):
            first = [c.build()[0].fingerprint() for c in make()]
            second = [c.build()[0].fingerprint() for c in make()]
            assert first == second

    def test_no_collisions_within_a_study(self):
        # every choice differs in hardware content, so fingerprints must
        # all differ — a collision would make the result cache serve one
        # design point's score for another
        for choices in _all_choices().values():
            prints = [c.build()[0].fingerprint() for c in choices]
            assert len(set(prints)) == len(prints)

    def test_extension_free_choices_share_across_studies(self):
        # fir_sw and rs_sw build the *same* processor content (stock core,
        # no extensions), so content addressing must give them the same
        # fingerprint even though their names differ
        fir_sw = next(c for c in fir_choices() if c.name == "fir_sw")
        rs_sw = next(c for c in reed_solomon_choices() if c.name == "rs_sw")
        assert fir_sw.build()[0].fingerprint() == rs_sw.build()[0].fingerprint()
