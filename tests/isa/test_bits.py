"""Unit + property tests for the bit-manipulation helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import bits

WORDS = st.integers(min_value=0, max_value=0xFFFFFFFF)
WIDTHS = st.integers(min_value=1, max_value=64)


class TestMaskTruncate:
    def test_mask_values(self):
        assert bits.mask(0) == 0
        assert bits.mask(1) == 1
        assert bits.mask(8) == 0xFF
        assert bits.mask(32) == 0xFFFFFFFF

    def test_mask_negative_width_rejected(self):
        with pytest.raises(ValueError):
            bits.mask(-1)

    def test_truncate(self):
        assert bits.truncate(0x1_0000_0001) == 1
        assert bits.truncate(0xFF, 4) == 0xF

    @given(st.integers(), WIDTHS)
    def test_truncate_fits(self, value, width):
        assert 0 <= bits.truncate(value, width) <= bits.mask(width)


class TestSignedness:
    def test_to_signed_boundaries(self):
        assert bits.to_signed(0x7FFFFFFF) == 2**31 - 1
        assert bits.to_signed(0x80000000) == -(2**31)
        assert bits.to_signed(0xFFFFFFFF) == -1
        assert bits.to_signed(0) == 0

    def test_to_signed_narrow(self):
        assert bits.to_signed(0x80, 8) == -128
        assert bits.to_signed(0x7F, 8) == 127

    @given(WORDS)
    def test_signed_unsigned_roundtrip(self, value):
        assert bits.to_unsigned(bits.to_signed(value)) == value

    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_unsigned_signed_roundtrip(self, value):
        assert bits.to_signed(bits.to_unsigned(value)) == value

    def test_fits_signed(self):
        assert bits.fits_signed(2047, 12)
        assert not bits.fits_signed(2048, 12)
        assert bits.fits_signed(-2048, 12)
        assert not bits.fits_signed(-2049, 12)

    def test_fits_unsigned(self):
        assert bits.fits_unsigned(4095, 12)
        assert not bits.fits_unsigned(4096, 12)
        assert not bits.fits_unsigned(-1, 12)


class TestExtension:
    def test_sign_extend(self):
        assert bits.sign_extend(0xFF, 8) == 0xFFFFFFFF
        assert bits.sign_extend(0x7F, 8) == 0x7F
        assert bits.sign_extend(0x8000, 16) == 0xFFFF8000

    @given(WORDS, st.integers(min_value=1, max_value=31))
    def test_sign_extend_preserves_value(self, value, from_width):
        narrowed = value & bits.mask(from_width)
        extended = bits.sign_extend(narrowed, from_width)
        assert bits.to_signed(extended) == bits.to_signed(narrowed, from_width)


class TestRotation:
    def test_rotate_left_known(self):
        assert bits.rotate_left(0x80000001, 1) == 0x00000003
        assert bits.rotate_left(0x1, 31) == 0x80000000

    @given(WORDS, st.integers(min_value=0, max_value=64))
    def test_rotate_inverse(self, value, amount):
        rotated = bits.rotate_left(value, amount)
        assert bits.rotate_right(rotated, amount) == value

    @given(WORDS, st.integers(min_value=0, max_value=31), st.integers(min_value=0, max_value=31))
    def test_rotate_composes(self, value, a, b):
        combined = bits.rotate_left(value, a + b)
        sequential = bits.rotate_left(bits.rotate_left(value, a), b)
        assert combined == sequential

    @given(WORDS)
    def test_rotate_by_width_is_identity(self, value):
        assert bits.rotate_left(value, 32) == value


class TestCounts:
    def test_popcount(self):
        assert bits.popcount(0) == 0
        assert bits.popcount(0xFFFFFFFF) == 32
        assert bits.popcount(0b1011) == 3

    def test_popcount_negative_rejected(self):
        with pytest.raises(ValueError):
            bits.popcount(-1)

    def test_clz_ctz(self):
        assert bits.count_leading_zeros(0) == 32
        assert bits.count_trailing_zeros(0) == 32
        assert bits.count_leading_zeros(1) == 31
        assert bits.count_trailing_zeros(0x80000000) == 31
        assert bits.count_leading_zeros(0x80000000) == 0
        assert bits.count_trailing_zeros(1) == 0

    @given(WORDS.filter(lambda v: v != 0))
    def test_clz_ctz_bounds(self, value):
        clz = bits.count_leading_zeros(value)
        ctz = bits.count_trailing_zeros(value)
        assert clz + ctz <= 31
        assert (value >> ctz) & 1 == 1
        assert value >> (32 - clz) == 0


class TestByteSwap:
    def test_known(self):
        assert bits.byte_swap(0x12345678) == 0x78563412
        assert bits.byte_swap(0xAABB, 16) == 0xBBAA

    def test_width_must_be_byte_multiple(self):
        with pytest.raises(ValueError):
            bits.byte_swap(1, 12)

    @given(WORDS)
    def test_involution(self, value):
        assert bits.byte_swap(bits.byte_swap(value)) == value


class TestHamming:
    def test_known(self):
        assert bits.hamming_distance(0, 0) == 0
        assert bits.hamming_distance(0, 0xFFFFFFFF) == 32
        assert bits.hamming_distance(0b1010, 0b0101) == 4

    @given(WORDS, WORDS)
    def test_symmetry(self, a, b):
        assert bits.hamming_distance(a, b) == bits.hamming_distance(b, a)

    @given(WORDS, WORDS, WORDS)
    def test_triangle_inequality(self, a, b, c):
        ab = bits.hamming_distance(a, b)
        bc = bits.hamming_distance(b, c)
        ac = bits.hamming_distance(a, c)
        assert ac <= ab + bc

    @given(WORDS)
    def test_identity(self, a):
        assert bits.hamming_distance(a, a) == 0

    def test_weight_fraction(self):
        assert bits.hamming_weight_fraction(0) == 0.0
        assert bits.hamming_weight_fraction(0xFFFFFFFF) == 1.0
        assert bits.hamming_weight_fraction(0xF, 4) == 1.0
        assert bits.hamming_weight_fraction(0, 0) == 0.0
