"""Encode/decode round-trip tests, including a hypothesis sweep."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import BASE_ISA, EncodingError, Instruction, decode, encode
from repro.isa.instructions import FORMAT_FIELDS

REGS = st.integers(min_value=0, max_value=63)


def _roundtrip(ins: Instruction) -> Instruction:
    definition = BASE_ISA.lookup(ins.mnemonic)
    word = encode(definition, ins, BASE_ISA)
    assert 0 <= word <= 0xFFFFFFFF
    return decode(word, ins.addr, BASE_ISA)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "ins",
        [
            Instruction("add", rd=1, rs=2, rt=3),
            Instruction("mov", rd=63, rs=0),
            Instruction("jx", rs=17),
            Instruction("addi", rd=5, rs=6, imm=-2048),
            Instruction("addi", rd=5, rs=6, imm=2047),
            Instruction("andi", rd=5, rs=6, imm=4095),
            Instruction("slli", rd=5, rs=6, imm=31),
            Instruction("movi", rd=7, imm=-1),
            Instruction("movhi", rd=7, imm=0x3FFFF),
            Instruction("l32i", rt=9, rs=10, imm=-4),
            Instruction("s8i", rt=9, rs=10, imm=2047),
            Instruction("beq", rs=1, rt=2, imm=0x100 + 4 * 100, addr=0x100),
            Instruction("bnez", rs=1, imm=0x100 - 4 * 512, addr=0x100),
            Instruction("beqi", rs=1, rt=-32, imm=0x104, addr=0x100),
            Instruction("bbs", rs=1, rt=31, imm=0x104, addr=0x100),
            Instruction("j", imm=0x100 + 4 * (2**23 - 1), addr=0x100),
            Instruction("call", imm=0x0, addr=0x100),
            Instruction("ret",),
            Instruction("nop",),
        ],
    )
    def test_specific_cases(self, ins):
        assert _roundtrip(ins) == ins

    @given(
        mnemonic=st.sampled_from([d.mnemonic for d in BASE_ISA]),
        rd=REGS, rs=REGS, rt=REGS,
        raw_imm=st.integers(min_value=-(2**23), max_value=2**23 - 1),
        data=st.data(),
    )
    def test_random_roundtrip(self, mnemonic, rd, rs, rt, raw_imm, data):
        definition = BASE_ISA.lookup(mnemonic)
        fields = FORMAT_FIELDS[definition.fmt]
        kwargs = {"addr": 0x1000}
        for field in fields:
            if field == "rd":
                kwargs["rd"] = rd
            elif field == "rs":
                kwargs["rs"] = rs
            elif field == "rt":
                kwargs["rt"] = rt
            elif field == "imm2":
                if mnemonic in ("bbs", "bbc"):
                    kwargs["rt"] = data.draw(st.integers(min_value=0, max_value=63))
                else:
                    kwargs["rt"] = data.draw(st.integers(min_value=-32, max_value=31))
            elif field == "imm":
                if definition.fmt in ("B2", "B1", "BI"):
                    offset = data.draw(st.integers(min_value=-2048, max_value=2047))
                    kwargs["imm"] = 0x1000 + 4 * offset
                elif definition.fmt == "J":
                    offset = data.draw(st.integers(min_value=-(2**23), max_value=2**23 - 1))
                    kwargs["imm"] = 0x1000 + 4 * offset
                elif definition.fmt == "SHI":
                    kwargs["imm"] = data.draw(st.integers(min_value=0, max_value=31))
                elif definition.fmt == "IU":
                    kwargs["imm"] = data.draw(st.integers(min_value=0, max_value=4095))
                elif definition.fmt == "UI":
                    kwargs["imm"] = data.draw(st.integers(min_value=0, max_value=2**18 - 1))
                else:  # I, LI, M: signed 12-bit
                    kwargs["imm"] = data.draw(st.integers(min_value=-2048, max_value=2047))
        ins = Instruction(mnemonic, **kwargs)
        assert _roundtrip(ins) == ins


class TestEncodingErrors:
    def test_register_out_of_range(self):
        ins = Instruction("add", rd=64, rs=0, rt=0)
        with pytest.raises(EncodingError):
            encode(BASE_ISA.lookup("add"), ins, BASE_ISA)

    def test_missing_register(self):
        ins = Instruction("add", rd=1, rs=None, rt=2)
        with pytest.raises(EncodingError):
            encode(BASE_ISA.lookup("add"), ins, BASE_ISA)

    def test_immediate_out_of_range(self):
        ins = Instruction("addi", rd=1, rs=2, imm=2048)
        with pytest.raises(EncodingError):
            encode(BASE_ISA.lookup("addi"), ins, BASE_ISA)

    def test_unsigned_immediate_rejects_negative(self):
        ins = Instruction("andi", rd=1, rs=2, imm=-1)
        with pytest.raises(EncodingError):
            encode(BASE_ISA.lookup("andi"), ins, BASE_ISA)

    def test_shift_amount_out_of_range(self):
        ins = Instruction("slli", rd=1, rs=2, imm=32)
        with pytest.raises(EncodingError):
            encode(BASE_ISA.lookup("slli"), ins, BASE_ISA)

    def test_branch_out_of_range(self):
        ins = Instruction("beq", rs=1, rt=2, imm=0x100 + 4 * 5000, addr=0x100)
        with pytest.raises(EncodingError):
            encode(BASE_ISA.lookup("beq"), ins, BASE_ISA)

    def test_misaligned_branch_target(self):
        ins = Instruction("beq", rs=1, rt=2, imm=0x102, addr=0x100)
        with pytest.raises(EncodingError):
            encode(BASE_ISA.lookup("beq"), ins, BASE_ISA)

    def test_unknown_opcode_decode(self):
        with pytest.raises(KeyError):
            decode(0xFF << 24, 0, BASE_ISA)
