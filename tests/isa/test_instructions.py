"""Semantics tests for every base-ISA instruction.

Table-driven: each case builds a machine state, executes one decoded
instruction through its definition's semantics, and checks register,
memory and control-flow effects.  Collectively these cover all ~90 base
instructions (an exhaustive-coverage test at the bottom enforces it).
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import (
    BASE_ISA,
    BreakpointHit,
    Instruction,
    InstructionClass,
    LINK_REGISTER,
    MachineState,
    NUM_REGISTERS,
)
from repro.isa.bits import to_signed, to_unsigned

WORDS = st.integers(min_value=0, max_value=0xFFFFFFFF)


def run(mnemonic, rd=None, rs=None, rt=None, imm=None, regs=None, mem=None, pc=0x100):
    """Execute one instruction; returns (state, next_pc)."""
    state = MachineState()
    state.pc = pc
    for reg, value in (regs or {}).items():
        state.set(reg, value)
    for addr, (value, size) in (mem or {}).items():
        state.memory.write(addr, value, size)
    ins = Instruction(mnemonic, rd=rd, rs=rs, rt=rt, imm=imm, addr=pc)
    next_pc = BASE_ISA.lookup(mnemonic).semantics(state, ins)
    return state, next_pc


# (mnemonic, rs_value, rt_value, expected_rd) for R3 ALU instructions
R3_CASES = [
    ("add", 7, 5, 12),
    ("add", 0xFFFFFFFF, 1, 0),
    ("sub", 5, 7, 0xFFFFFFFE),
    ("and", 0xF0F0, 0xFF00, 0xF000),
    ("or", 0xF0F0, 0x0F0F, 0xFFFF),
    ("xor", 0xFF, 0x0F, 0xF0),
    ("nor", 0, 0, 0xFFFFFFFF),
    ("andn", 0xFF, 0x0F, 0xF0),
    ("orn", 0, 0xFFFFFFFE, 1),
    ("xnor", 0xFF, 0xFF, 0xFFFFFFFF),
    ("addx2", 3, 4, 10),
    ("addx4", 3, 4, 16),
    ("addx8", 3, 4, 28),
    ("subx2", 3, 4, 2),
    ("subx4", 3, 4, 8),
    ("slt", to_unsigned(-1), 1, 1),
    ("slt", 1, to_unsigned(-1), 0),
    ("sltu", to_unsigned(-1), 1, 0),
    ("sltu", 1, 2, 1),
    ("min", to_unsigned(-5), 3, to_unsigned(-5)),
    ("max", to_unsigned(-5), 3, 3),
    ("minu", to_unsigned(-5), 3, 3),
    ("maxu", to_unsigned(-5), 3, to_unsigned(-5)),
    ("mull", 0x10000, 0x10000, 0),
    ("mull", 7, 6, 42),
    ("mulh", to_unsigned(-2), 3, 0xFFFFFFFF),
    ("mulhu", 0x80000000, 2, 1),
    ("quos", to_unsigned(-7), 2, to_unsigned(-3)),
    ("quou", 7, 2, 3),
    ("rems", to_unsigned(-7), 2, to_unsigned(-1)),
    ("remu", 7, 2, 1),
    ("quos", 5, 0, 0xFFFFFFFF),
    ("quou", 5, 0, 0xFFFFFFFF),
    ("rems", 5, 0, 5),
    ("remu", 5, 0, 5),
    ("sll", 1, 4, 16),
    ("sll", 1, 32, 1),  # shift amount masked to 5 bits
    ("srl", 0x80000000, 31, 1),
    ("sra", 0x80000000, 31, 0xFFFFFFFF),
    ("rotl", 0x80000001, 1, 3),
    ("rotr", 3, 1, 0x80000001),
    ("moveqz", 11, 0, 11),
    ("movnez", 11, 5, 11),
    ("movltz", 11, to_unsigned(-1), 11),
    ("movgez", 11, 0, 11),
]

R3_NO_WRITE_CASES = [
    ("moveqz", 11, 7),  # rt != 0: no move
    ("movnez", 11, 0),
    ("movltz", 11, 5),
    ("movgez", 11, to_unsigned(-3)),
]

R2_CASES = [
    ("mov", 0xDEADBEEF, 0xDEADBEEF),
    ("neg", 5, to_unsigned(-5)),
    ("not", 0, 0xFFFFFFFF),
    ("abs", to_unsigned(-9), 9),
    ("abs", 9, 9),
    ("sext8", 0x80, 0xFFFFFF80),
    ("sext16", 0x8000, 0xFFFF8000),
    ("zext8", 0x1FF, 0xFF),
    ("zext16", 0x1FFFF, 0xFFFF),
    ("clz", 1, 31),
    ("clz", 0, 32),
    ("ctz", 0x80000000, 31),
    ("popc", 0xF0F0, 8),
    ("bswap", 0x12345678, 0x78563412),
]

I_CASES = [
    ("addi", 10, 5, 15),
    ("addi", 0, -1, 0xFFFFFFFF),
    ("addmi", 1, 4, 1 + (4 << 8)),
    ("andi", 0xABCD, 0xFF, 0xCD),
    ("ori", 0xF000, 0xFF, 0xF0FF),
    ("xori", 0xFF, 0xFF, 0),
    ("slti", to_unsigned(-1), 0, 1),
    ("sltiu", 1, 2, 1),
    ("slli", 1, 5, 32),
    ("srli", 32, 5, 1),
    ("srai", 0x80000000, 1, 0xC0000000),
    ("roli", 0x80000001, 1, 3),
    ("rori", 3, 1, 0x80000001),
]


class TestArithmetic:
    @pytest.mark.parametrize("mnemonic,a,b,expected", R3_CASES)
    def test_r3(self, mnemonic, a, b, expected):
        state, next_pc = run(mnemonic, rd=4, rs=2, rt=3, regs={2: a, 3: b})
        assert state.get(4) == expected
        assert next_pc is None

    @pytest.mark.parametrize("mnemonic,a,b", R3_NO_WRITE_CASES)
    def test_conditional_move_holds(self, mnemonic, a, b):
        state, _ = run(mnemonic, rd=4, rs=2, rt=3, regs={2: a, 3: b, 4: 0x123})
        assert state.get(4) == 0x123

    @pytest.mark.parametrize("mnemonic,a,expected", R2_CASES)
    def test_r2(self, mnemonic, a, expected):
        state, _ = run(mnemonic, rd=4, rs=2, regs={2: a})
        assert state.get(4) == expected

    @pytest.mark.parametrize("mnemonic,a,imm,expected", I_CASES)
    def test_immediates(self, mnemonic, a, imm, expected):
        state, _ = run(mnemonic, rd=4, rs=2, imm=imm, regs={2: a})
        assert state.get(4) == expected

    def test_movi(self):
        state, _ = run("movi", rd=4, imm=-1)
        assert state.get(4) == 0xFFFFFFFF

    def test_movhi(self):
        state, _ = run("movhi", rd=4, imm=0x3FFFF)
        assert state.get(4) == 0x3FFFF << 12

    @given(WORDS, WORDS)
    def test_add_matches_python(self, a, b):
        state, _ = run("add", rd=4, rs=2, rt=3, regs={2: a, 3: b})
        assert state.get(4) == (a + b) & 0xFFFFFFFF

    @given(WORDS, WORDS)
    def test_mull_matches_python(self, a, b):
        state, _ = run("mull", rd=4, rs=2, rt=3, regs={2: a, 3: b})
        assert state.get(4) == (a * b) & 0xFFFFFFFF

    @given(WORDS, WORDS)
    def test_mulh_matches_python(self, a, b):
        state, _ = run("mulh", rd=4, rs=2, rt=3, regs={2: a, 3: b})
        assert state.get(4) == to_unsigned((to_signed(a) * to_signed(b)) >> 32)

    @given(WORDS, st.integers(min_value=1, max_value=0xFFFFFFFF))
    def test_division_identity(self, a, b):
        quotient, _ = run("quou", rd=4, rs=2, rt=3, regs={2: a, 3: b})
        remainder, _ = run("remu", rd=4, rs=2, rt=3, regs={2: a, 3: b})
        assert quotient.get(4) * b + remainder.get(4) == a


class TestMemory:
    def test_l32i(self):
        state, _ = run("l32i", rt=4, rs=2, imm=8, regs={2: 0x1000}, mem={0x1008: (0xCAFEBABE, 4)})
        assert state.get(4) == 0xCAFEBABE

    def test_l16ui_l16si(self):
        mem = {0x1000: (0x8001, 2)}
        unsigned, _ = run("l16ui", rt=4, rs=2, imm=0, regs={2: 0x1000}, mem=mem)
        signed, _ = run("l16si", rt=4, rs=2, imm=0, regs={2: 0x1000}, mem=mem)
        assert unsigned.get(4) == 0x8001
        assert signed.get(4) == 0xFFFF8001

    def test_l8ui_l8si(self):
        mem = {0x1000: (0x80, 1)}
        unsigned, _ = run("l8ui", rt=4, rs=2, imm=0, regs={2: 0x1000}, mem=mem)
        signed, _ = run("l8si", rt=4, rs=2, imm=0, regs={2: 0x1000}, mem=mem)
        assert unsigned.get(4) == 0x80
        assert signed.get(4) == 0xFFFFFF80

    def test_negative_offset(self):
        state, _ = run("l32i", rt=4, rs=2, imm=-4, regs={2: 0x1004}, mem={0x1000: (42, 4)})
        assert state.get(4) == 42

    @pytest.mark.parametrize(
        "mnemonic,size", [("s32i", 4), ("s16i", 2), ("s8i", 1)]
    )
    def test_stores(self, mnemonic, size):
        state, _ = run(mnemonic, rt=4, rs=2, imm=4, regs={2: 0x2000, 4: 0xDDCCBBAA})
        stored = state.memory.read(0x2004, size)
        assert stored == 0xDDCCBBAA & ((1 << (8 * size)) - 1)

    def test_store_does_not_clobber_neighbors(self):
        state, _ = run(
            "s8i", rt=4, rs=2, imm=1,
            regs={2: 0x2000, 4: 0xFF},
            mem={0x2000: (0x11223344, 4)},
        )
        assert state.memory.read(0x2000, 4) == 0x1122FF44

    @given(WORDS, st.integers(min_value=0, max_value=0xFFFF))
    def test_store_load_roundtrip(self, value, addr_base):
        addr = 0x4000 + addr_base
        state, _ = run("s32i", rt=4, rs=2, imm=0, regs={2: addr, 4: value})
        assert state.memory.read(addr, 4) == value


class TestControlFlow:
    def test_j(self):
        _, next_pc = run("j", imm=0x400)
        assert next_pc == 0x400

    def test_jx(self):
        _, next_pc = run("jx", rs=2, regs={2: 0x1234})
        assert next_pc == 0x1234

    def test_call_sets_link(self):
        state, next_pc = run("call", imm=0x800, pc=0x100)
        assert next_pc == 0x800
        assert state.get(LINK_REGISTER) == 0x104

    def test_callx(self):
        state, next_pc = run("callx", rs=2, regs={2: 0x900}, pc=0x200)
        assert next_pc == 0x900
        assert state.get(LINK_REGISTER) == 0x204

    def test_ret(self):
        _, next_pc = run("ret", regs={LINK_REGISTER: 0x555})
        assert next_pc == 0x555

    @pytest.mark.parametrize(
        "mnemonic,a,b,taken",
        [
            ("beq", 5, 5, True),
            ("beq", 5, 6, False),
            ("bne", 5, 6, True),
            ("bne", 5, 5, False),
            ("blt", to_unsigned(-1), 0, True),
            ("blt", 0, to_unsigned(-1), False),
            ("bge", 0, to_unsigned(-1), True),
            ("bge", to_unsigned(-1), 0, False),
            ("bltu", 1, to_unsigned(-1), True),
            ("bltu", to_unsigned(-1), 1, False),
            ("bgeu", to_unsigned(-1), 1, True),
            ("bgeu", 1, to_unsigned(-1), False),
        ],
    )
    def test_two_register_branches(self, mnemonic, a, b, taken):
        _, next_pc = run(mnemonic, rs=2, rt=3, imm=0x300, regs={2: a, 3: b})
        assert (next_pc == 0x300) == taken
        if not taken:
            assert next_pc is None

    @pytest.mark.parametrize(
        "mnemonic,a,taken",
        [
            ("beqz", 0, True),
            ("beqz", 1, False),
            ("bnez", 1, True),
            ("bnez", 0, False),
            ("bltz", to_unsigned(-1), True),
            ("bltz", 0, False),
            ("bgez", 0, True),
            ("bgez", to_unsigned(-1), False),
        ],
    )
    def test_zero_branches(self, mnemonic, a, taken):
        _, next_pc = run(mnemonic, rs=2, imm=0x300, regs={2: a})
        assert (next_pc == 0x300) == taken

    @pytest.mark.parametrize(
        "mnemonic,a,small,taken",
        [
            ("beqi", 7, 7, True),
            ("beqi", 7, 8, False),
            ("bnei", 7, 8, True),
            ("blti", to_unsigned(-5), -4, True),
            ("blti", 5, -4, False),
            ("bgei", 5, 5, True),
            ("bgei", 4, 5, False),
        ],
    )
    def test_immediate_branches(self, mnemonic, a, small, taken):
        # BI-format: the small immediate rides in the rt field
        _, next_pc = run(mnemonic, rs=2, rt=small, imm=0x300, regs={2: a})
        assert (next_pc == 0x300) == taken

    @pytest.mark.parametrize(
        "mnemonic,a,bit,taken",
        [
            ("bbs", 0b100, 2, True),
            ("bbs", 0b011, 2, False),
            ("bbc", 0b011, 2, True),
            ("bbc", 0b100, 2, False),
        ],
    )
    def test_bit_branches(self, mnemonic, a, bit, taken):
        _, next_pc = run(mnemonic, rs=2, rt=bit, imm=0x300, regs={2: a})
        assert (next_pc == 0x300) == taken


class TestSystem:
    def test_nop(self):
        state, next_pc = run("nop")
        assert next_pc is None
        assert not state.halted

    def test_halt(self):
        state, _ = run("halt")
        assert state.halted

    def test_break_raises(self):
        with pytest.raises(BreakpointHit) as info:
            run("break", pc=0x42 * 4)
        assert info.value.pc == 0x42 * 4


class TestDefinitionsMetadata:
    def test_isa_size_matches_paper_scale(self):
        # "The base ISA defines approximately 80 instructions"
        assert 80 <= len(BASE_ISA) <= 110

    def test_all_instructions_covered_by_semantics_tests(self):
        tested = {case[0] for case in R3_CASES}
        tested |= {case[0] for case in R2_CASES}
        tested |= {case[0] for case in I_CASES}
        tested |= {
            "movi", "movhi",
            "l32i", "l16ui", "l16si", "l8ui", "l8si", "s32i", "s16i", "s8i",
            "j", "jx", "call", "callx", "ret",
            "beq", "bne", "blt", "bge", "bltu", "bgeu",
            "beqz", "bnez", "bltz", "bgez",
            "beqi", "bnei", "blti", "bgei", "bbs", "bbc",
            "nop", "halt", "break",
        }
        all_mnemonics = {d.mnemonic for d in BASE_ISA}
        missing = all_mnemonics - tested
        assert not missing, f"instructions without semantics tests: {sorted(missing)}"

    def test_every_instruction_has_description(self):
        for definition in BASE_ISA:
            assert definition.description, definition.mnemonic

    def test_classes_partition(self):
        for definition in BASE_ISA:
            assert definition.iclass in (
                InstructionClass.ARITH,
                InstructionClass.LOAD,
                InstructionClass.STORE,
                InstructionClass.JUMP,
                InstructionClass.BRANCH,
                InstructionClass.SYSTEM,
            )

    def test_source_dest_registers(self):
        add = BASE_ISA.lookup("add")
        ins = Instruction("add", rd=4, rs=2, rt=3)
        assert add.source_registers(ins) == (2, 3)
        assert add.dest_registers(ins) == (4,)

        load = BASE_ISA.lookup("l32i")
        lins = Instruction("l32i", rt=4, rs=2, imm=0)
        assert load.source_registers(lins) == (2,)
        assert load.dest_registers(lins) == (4,)

        store = BASE_ISA.lookup("s32i")
        sins = Instruction("s32i", rt=4, rs=2, imm=0)
        assert set(store.source_registers(sins)) == {2, 4}
        assert store.dest_registers(sins) == ()

        call = BASE_ISA.lookup("call")
        cins = Instruction("call", imm=0x100)
        assert LINK_REGISTER in call.dest_registers(cins)

    def test_opcode_stability_and_lookup(self):
        for definition in BASE_ISA:
            opcode = BASE_ISA.opcode(definition.mnemonic)
            assert BASE_ISA.mnemonic_for(opcode) == definition.mnemonic

    def test_unknown_mnemonic_raises(self):
        with pytest.raises(KeyError):
            BASE_ISA.lookup("frobnicate")
        with pytest.raises(KeyError):
            BASE_ISA.opcode("frobnicate")

    def test_extend_rejects_duplicates(self):
        definition = BASE_ISA.lookup("add")
        with pytest.raises(ValueError):
            BASE_ISA.extend("dup", [definition])

    def test_register_bounds_enforced(self):
        state = MachineState()
        with pytest.raises(IndexError):
            state.get(NUM_REGISTERS)
        with pytest.raises(IndexError):
            state.set(-1, 0)
