"""Hypothesis property tests over instruction-family semantics.

Complements the table-driven tests in test_instructions.py: each family
is checked against an independent Python formulation across the whole
operand space, plus algebraic identities that must hold architecturally.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import BASE_ISA, Instruction, MachineState
from repro.isa.bits import rotate_left, to_signed, to_unsigned

WORDS = st.integers(min_value=0, max_value=0xFFFFFFFF)
SHIFTS = st.integers(min_value=0, max_value=31)


def execute(mnemonic, **fields):
    state = MachineState()
    regs = fields.pop("regs", {})
    for reg, value in regs.items():
        state.set(reg, value)
    ins = Instruction(mnemonic, **fields)
    next_pc = BASE_ISA.lookup(mnemonic).semantics(state, ins)
    return state, next_pc


class TestShiftFamily:
    @given(WORDS, SHIFTS)
    def test_slli_equals_sll(self, value, amount):
        by_imm, _ = execute("slli", rd=4, rs=2, imm=amount, regs={2: value})
        by_reg, _ = execute("sll", rd=4, rs=2, rt=3, regs={2: value, 3: amount})
        assert by_imm.get(4) == by_reg.get(4) == (value << amount) & 0xFFFFFFFF

    @given(WORDS, SHIFTS)
    def test_srl_then_sll_masks_low_bits(self, value, amount):
        down, _ = execute("srli", rd=4, rs=2, imm=amount, regs={2: value})
        back, _ = execute("slli", rd=5, rs=4, imm=amount, regs={4: down.get(4)})
        assert back.get(5) == value & (0xFFFFFFFF << amount) & 0xFFFFFFFF

    @given(WORDS, SHIFTS)
    def test_sra_sign_fills(self, value, amount):
        state, _ = execute("srai", rd=4, rs=2, imm=amount, regs={2: value})
        assert state.get(4) == to_unsigned(to_signed(value) >> amount)

    @given(WORDS, SHIFTS)
    def test_rot_pair_identity(self, value, amount):
        left, _ = execute("roli", rd=4, rs=2, imm=amount, regs={2: value})
        back, _ = execute("rori", rd=5, rs=4, imm=amount, regs={4: left.get(4)})
        assert back.get(5) == value
        assert left.get(4) == rotate_left(value, amount)


class TestCompareFamily:
    @given(WORDS, WORDS)
    def test_slt_matches_branch_blt(self, a, b):
        flag, _ = execute("slt", rd=4, rs=2, rt=3, regs={2: a, 3: b})
        _, next_pc = execute("blt", rs=2, rt=3, imm=0x40, regs={2: a, 3: b})
        assert bool(flag.get(4)) == (next_pc == 0x40)

    @given(WORDS, WORDS)
    def test_sltu_matches_branch_bltu(self, a, b):
        flag, _ = execute("sltu", rd=4, rs=2, rt=3, regs={2: a, 3: b})
        _, next_pc = execute("bltu", rs=2, rt=3, imm=0x40, regs={2: a, 3: b})
        assert bool(flag.get(4)) == (next_pc == 0x40)

    @given(WORDS, WORDS)
    def test_branch_pairs_are_complements(self, a, b):
        for taken_op, untaken_op in (("beq", "bne"), ("blt", "bge"), ("bltu", "bgeu")):
            _, taken = execute(taken_op, rs=2, rt=3, imm=0x40, regs={2: a, 3: b})
            _, complement = execute(untaken_op, rs=2, rt=3, imm=0x40, regs={2: a, 3: b})
            assert (taken == 0x40) != (complement == 0x40)

    @given(WORDS, WORDS)
    def test_min_max_partition(self, a, b):
        low, _ = execute("minu", rd=4, rs=2, rt=3, regs={2: a, 3: b})
        high, _ = execute("maxu", rd=5, rs=2, rt=3, regs={2: a, 3: b})
        assert {low.get(4), high.get(5)} == {min(a, b), max(a, b)}
        slow, _ = execute("min", rd=4, rs=2, rt=3, regs={2: a, 3: b})
        shigh, _ = execute("max", rd=5, rs=2, rt=3, regs={2: a, 3: b})
        assert to_signed(slow.get(4)) <= to_signed(shigh.get(5))
        assert {slow.get(4), shigh.get(5)} == {a, b} or a == b


class TestLogicFamily:
    @given(WORDS, WORDS)
    def test_de_morgan(self, a, b):
        nor, _ = execute("nor", rd=4, rs=2, rt=3, regs={2: a, 3: b})
        by_parts_or, _ = execute("or", rd=5, rs=2, rt=3, regs={2: a, 3: b})
        inverted, _ = execute("not", rd=6, rs=5, regs={5: by_parts_or.get(5)})
        assert nor.get(4) == inverted.get(6)

    @given(WORDS)
    def test_xor_self_is_zero(self, a):
        state, _ = execute("xor", rd=4, rs=2, rt=2, regs={2: a})
        assert state.get(4) == 0

    @given(WORDS, WORDS)
    def test_andn_orn_definitions(self, a, b):
        andn, _ = execute("andn", rd=4, rs=2, rt=3, regs={2: a, 3: b})
        orn, _ = execute("orn", rd=5, rs=2, rt=3, regs={2: a, 3: b})
        assert andn.get(4) == a & (~b & 0xFFFFFFFF)
        assert orn.get(5) == (a | (~b & 0xFFFFFFFF)) & 0xFFFFFFFF


class TestArithmeticIdentities:
    @given(WORDS, WORDS)
    def test_add_sub_inverse(self, a, b):
        total, _ = execute("add", rd=4, rs=2, rt=3, regs={2: a, 3: b})
        back, _ = execute("sub", rd=5, rs=4, rt=3, regs={4: total.get(4), 3: b})
        assert back.get(5) == a

    @given(WORDS)
    def test_neg_twice_is_identity(self, a):
        once, _ = execute("neg", rd=4, rs=2, regs={2: a})
        twice, _ = execute("neg", rd=5, rs=4, regs={4: once.get(4)})
        assert twice.get(5) == a

    @given(WORDS, WORDS)
    def test_addx_family_consistent(self, a, b):
        for mnemonic, factor in (("addx2", 2), ("addx4", 4), ("addx8", 8)):
            state, _ = execute(mnemonic, rd=4, rs=2, rt=3, regs={2: a, 3: b})
            assert state.get(4) == (a * factor + b) & 0xFFFFFFFF

    @given(WORDS)
    def test_abs_non_negative_unless_min_int(self, a):
        state, _ = execute("abs", rd=4, rs=2, regs={2: a})
        result = state.get(4)
        if a == 0x80000000:  # |INT_MIN| wraps, as in real hardware
            assert result == 0x80000000
        else:
            assert to_signed(result) == abs(to_signed(a))

    @settings(max_examples=60)
    @given(WORDS, WORDS)
    def test_mull_commutative(self, a, b):
        ab, _ = execute("mull", rd=4, rs=2, rt=3, regs={2: a, 3: b})
        ba, _ = execute("mull", rd=5, rs=3, rt=2, regs={2: a, 3: b})
        assert ab.get(4) == ba.get(5)


class TestClassMetadata:
    def test_branch_classes_resolve_dynamically(self):
        from repro.isa import InstructionClass

        assert InstructionClass.BRANCH_TAKEN.is_dynamic
        assert InstructionClass.BRANCH_UNTAKEN.is_dynamic
        assert not InstructionClass.ARITH.is_dynamic
        assert not InstructionClass.BRANCH.is_dynamic
