"""Tests for the sparse memory and bare machine state."""

from hypothesis import given
from hypothesis import strategies as st

from repro.isa import MachineState, SparseMemory

ADDRS = st.integers(min_value=0, max_value=0xFFFFF)
WORDS = st.integers(min_value=0, max_value=0xFFFFFFFF)


class TestSparseMemory:
    def test_unwritten_reads_zero(self):
        memory = SparseMemory()
        assert memory.read(0x1234, 4) == 0
        assert memory.read_byte(0xDEAD) == 0
        assert memory.touched_pages == 0

    def test_little_endian_layout(self):
        memory = SparseMemory()
        memory.write(0x100, 0xAABBCCDD, 4)
        assert memory.read_byte(0x100) == 0xDD
        assert memory.read_byte(0x103) == 0xAA
        assert memory.read(0x100, 2) == 0xCCDD

    def test_cross_page_access(self):
        memory = SparseMemory()
        boundary = SparseMemory.PAGE_SIZE - 2
        memory.write(boundary, 0x11223344, 4)
        assert memory.read(boundary, 4) == 0x11223344
        assert memory.touched_pages == 2

    def test_write_bytes_read_bytes(self):
        memory = SparseMemory()
        memory.write_bytes(0x200, b"hello")
        assert memory.read_bytes(0x200, 5) == b"hello"

    @given(ADDRS, WORDS, st.sampled_from([1, 2, 4]))
    def test_roundtrip(self, addr, value, size):
        memory = SparseMemory()
        memory.write(addr, value, size)
        assert memory.read(addr, size) == value & ((1 << (8 * size)) - 1)

    @given(ADDRS, WORDS, WORDS)
    def test_last_write_wins(self, addr, first, second):
        memory = SparseMemory()
        memory.write(addr, first, 4)
        memory.write(addr, second, 4)
        assert memory.read(addr, 4) == second


class TestMachineState:
    def test_registers_start_zero(self):
        state = MachineState()
        assert all(state.get(i) == 0 for i in range(state.num_registers))

    def test_set_truncates(self):
        state = MachineState()
        state.set(3, 0x1_0000_0002)
        assert state.get(3) == 2

    def test_signed_load(self):
        state = MachineState()
        state.memory.write(0x10, 0x80, 1)
        assert state.load(0x10, 1, signed=True) == 0xFFFFFF80
        assert state.load(0x10, 1, signed=False) == 0x80

    def test_halt_flag(self):
        state = MachineState()
        assert not state.halted
        state.halt()
        assert state.halted

    def test_tie_state_dict(self):
        state = MachineState()
        assert state.tie_state == {}
        state.tie_state["acc"] = 42
        assert state.tie_state["acc"] == 42
