"""DSE against the real characterized model (slow, session-cached).

The acceptance bar for the exploration engine: on the bundled spaces it
must reproduce the hand-built studies' EDP ranking exactly and the
macro-model ranking must track the reference RTL estimator (Spearman
rho >= 0.9 — the paper's Fig. 4 relative-accuracy claim).
"""

import pytest

from repro.dse import ExhaustiveStrategy, cross_check, explore, get_space


@pytest.mark.slow
class TestDseReproducesTheStudies:
    def _hand_ranking(self, model, choices):
        rows = []
        for case in choices():
            config, program = case.build()
            estimate = model.estimate(config, program)
            rows.append((case.name, estimate.energy * estimate.cycles))
        rows.sort(key=lambda row: row[1])
        return [name for name, _ in rows]

    @pytest.mark.parametrize(
        "space_name, choices_name",
        [("reed_solomon", "reed_solomon_choices"), ("fir", "fir_choices")],
    )
    def test_explore_matches_hand_built_edp_ranking(
        self, experiment_context, space_name, choices_name
    ):
        import repro.programs as programs

        model = experiment_context.model
        report = explore(model, get_space(space_name), ExhaustiveStrategy())
        assert report.ok
        engine_ranking = [s.program_name for s in report.ranked()]
        hand_ranking = self._hand_ranking(model, getattr(programs, choices_name))
        assert engine_ranking == hand_ranking

    def test_rs_winner_is_the_papers(self, experiment_context):
        report = explore(
            experiment_context.model, get_space("reed_solomon"), ExhaustiveStrategy()
        )
        assert report.best.program_name == "rs_dual"

    def test_fir_winner_is_packed(self, experiment_context):
        report = explore(
            experiment_context.model, get_space("fir"), ExhaustiveStrategy()
        )
        assert report.best.program_name == "fir_packed"


@pytest.mark.slow
class TestCrossCheck:
    @pytest.mark.parametrize("space_name", ["reed_solomon", "fir"])
    def test_macro_ranking_tracks_reference(self, experiment_context, space_name):
        space = get_space(space_name)
        report = explore(experiment_context.model, space, ExhaustiveStrategy())
        result = cross_check(space, report.scores)
        assert len(result.rows) == space.size
        assert result.rho >= 0.9

    def test_needs_two_points(self, experiment_context):
        space = get_space("fir")
        report = explore(experiment_context.model, space, ExhaustiveStrategy())
        with pytest.raises(ValueError):
            cross_check(space, report.scores[:1])
