"""FIR generalization: a workload family the model has never seen.

The FIR variants use an extension (``firstep2``) that combines four
hardware categories in one datapath and appears nowhere in the
characterization suite or the Table II applications — a stronger
generalization probe than either.
"""

import pytest

from repro.analysis import spearman_rho
from repro.programs import fir_choices
from repro.rtl import RtlEnergyEstimator, generate_netlist


@pytest.mark.slow
class TestFirGeneralization:
    @pytest.fixture(scope="class")
    def profiles(self, experiment_context):
        model = experiment_context.model
        macro, reference, names = [], [], []
        for case in fir_choices():
            config, program = case.build()
            estimate = model.estimate(config, program)
            report, _ = RtlEnergyEstimator(generate_netlist(config)).estimate_program(program)
            names.append(case.name)
            macro.append(estimate.energy)
            reference.append(report.total)
        return names, macro, reference

    def test_absolute_accuracy(self, profiles):
        """fir_sw and fir_mac estimate within the Table II regime.

        fir_packed is a deliberately adversarial probe: its extension's
        operand-bus taps are multiplier/CSA only, while the suite
        configs' structural coefficients also carry logic/table tap
        energy — a category-allocation limit of the paper's template
        that shows up as a ~15% over-estimate on spurious-dominated
        unseen configs (EXPERIMENTS.md §6).  The bound below documents
        the limitation without hiding it.
        """
        names, macro, reference = profiles
        bounds = {"fir_sw": 8.0, "fir_mac": 10.0, "fir_packed": 18.0}
        for name, estimate, truth in zip(names, macro, reference):
            error = abs(100.0 * (estimate - truth) / truth)
            assert error < bounds[name], f"{name}: {error:.1f}% error"

    def test_relative_accuracy(self, profiles):
        _, macro, reference = profiles
        assert spearman_rho(macro, reference) == pytest.approx(1.0)

    def test_design_decision_matches_reference(self, profiles):
        names, macro, reference = profiles
        macro_winner = names[macro.index(min(macro))]
        reference_winner = names[reference.index(min(reference))]
        assert macro_winner == reference_winner == "fir_packed"
