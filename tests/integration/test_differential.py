"""Differential testing: the timed ISS vs a bare functional executor.

Hypothesis generates random programs; both execution engines must agree
on the final architectural state.  The bare executor knows nothing about
pipelines, caches or statistics, so any divergence pinpoints a bug in the
simulator's added machinery (or in the generator's assumptions).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import assemble
from repro.isa import MachineState
from repro.programs.extensions import add4x8_spec, mul16_spec
from repro.xtcore import DEFAULT_STACK_TOP, EXIT_ADDRESS, Simulator, build_processor

#: straight-line instruction templates over registers a2..a9
_R3_OPS = ("add", "sub", "and", "or", "xor", "min", "maxu", "sll", "srl", "mull")
_R2_OPS = ("mov", "neg", "not", "abs", "sext8", "zext16", "clz", "popc", "bswap")
_I_OPS = ("addi", "slti")
_CUSTOM_OPS = ("xm16", "xa48")


def _custom_specs():
    mul = mul16_spec()
    mul.mnemonic = "xm16"
    add = add4x8_spec()
    add.mnemonic = "xa48"
    return [mul, add]


REG = st.integers(min_value=2, max_value=9)


@st.composite
def straightline_program(draw):
    lines = ["main:"]
    # seed some registers
    for reg in range(2, 6):
        lines.append(f"    movi a{reg}, {draw(st.integers(-2048, 2047))}")
    for _ in range(draw(st.integers(min_value=1, max_value=25))):
        choice = draw(st.integers(0, 3))
        rd, rs, rt = draw(REG), draw(REG), draw(REG)
        if choice == 0:
            op = draw(st.sampled_from(_R3_OPS))
            lines.append(f"    {op} a{rd}, a{rs}, a{rt}")
        elif choice == 1:
            op = draw(st.sampled_from(_R2_OPS))
            lines.append(f"    {op} a{rd}, a{rs}")
        elif choice == 2:
            op = draw(st.sampled_from(_I_OPS))
            imm = draw(st.integers(-2048, 2047))
            lines.append(f"    {op} a{rd}, a{rs}, {imm}")
        else:
            op = draw(st.sampled_from(_CUSTOM_OPS))
            lines.append(f"    {op} a{rd}, a{rs}, a{rt}")
    lines.append("    halt")
    return "\n".join(lines) + "\n"


def _bare_execute(program, config):
    """Reference executor: semantics only, no timing machinery."""
    state = MachineState(config.num_registers)
    for addr, blob in program.data:
        state.memory.write_bytes(addr, blob)
    state.tie_state.update(config.state_inits)
    state.set(0, EXIT_ADDRESS)
    state.set(1, DEFAULT_STACK_TOP)
    state.pc = program.entry
    isa = config.isa
    steps = 0
    while not state.halted and state.pc != EXIT_ADDRESS and steps < 100_000:
        ins = program.instructions[state.pc]
        next_pc = isa.lookup(ins.mnemonic).semantics(state, ins)
        state.pc = next_pc if next_pc is not None else state.pc + 4
        steps += 1
    return state


class TestDifferential:
    @settings(max_examples=60, deadline=None)
    @given(straightline_program())
    def test_iss_matches_bare_semantics(self, source):
        config = build_processor("diff-test", _custom_specs())
        program = assemble(source, "diff", isa=config.isa)
        timed = Simulator(config, program).run().state
        bare = _bare_execute(program, config)
        assert timed.regs == bare.regs
        assert timed.tie_state == bare.tie_state

    @settings(max_examples=25, deadline=None)
    @given(straightline_program())
    def test_trace_collection_does_not_change_results(self, source):
        config = build_processor("diff-test", _custom_specs())
        program = assemble(source, "diff", isa=config.isa)
        plain = Simulator(config, program).run()
        traced = Simulator(config, program, collect_trace=True).run()
        assert plain.state.regs == traced.state.regs
        assert plain.stats.total_cycles == traced.stats.total_cycles
        assert plain.stats.class_cycles == traced.stats.class_cycles
