"""Determinism: the whole flow is reproducible bit-for-bit.

Everything except wall-clock timing is derived from fixed LCG data and
CRC-based hardware variation, so two independent characterizations must
produce identical design matrices, energies and coefficients — this is
what makes EXPERIMENTS.md numbers stable across machines.
"""

import numpy as np
import pytest

from repro.core import Characterizer
from repro.programs import characterization_suite
from repro.rtl import reference_energy


@pytest.mark.slow
class TestDeterminism:
    def test_two_characterizations_identical(self):
        def one_pass():
            characterizer = Characterizer()
            for case in characterization_suite(include_variants=False)[:8]:
                config, program = case.build()
                characterizer.add_program(config, program)
            design, energies = characterizer.design_matrix()
            return design, energies

        design_a, energy_a = one_pass()
        design_b, energy_b = one_pass()
        assert np.array_equal(design_a, design_b)
        assert np.array_equal(energy_a, energy_b)

    def test_full_context_reproducible(self, experiment_context):
        # re-estimate one reference energy and compare with the sample
        # recorded during the session characterization
        case = experiment_context.suite[0]
        config, program = case.build()
        report, _ = reference_energy(config, program)
        recorded = experiment_context.characterization.samples[0].energy
        assert report.total == pytest.approx(recorded, rel=1e-12)

    def test_model_estimates_reproducible(self, experiment_context):
        case = experiment_context.applications[0]
        config, program = case.build()
        first = experiment_context.model.estimate(config, program).energy
        second = experiment_context.model.estimate(config, program).energy
        assert first == second
