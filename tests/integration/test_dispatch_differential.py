"""Differential tests: compiled dispatch == reference interpreter.

The compiled engine (:class:`repro.xtcore.Simulator`) must be bitwise
equivalent to the retained reference interpreter
(:class:`repro.xtcore.ReferenceSimulator`) on statistics, traces and
final machine state — on every bundled benchmark and on hundreds of
seeded random programs from :mod:`repro.testing.progen`.
"""

import dataclasses

import pytest

from repro.programs import characterization_suite
from repro.testing.progen import generate_program, generate_source, stress_programs
from repro.xtcore import (
    ReferenceSimulator,
    SimulationError,
    SimulationLimitExceeded,
    Simulator,
    build_processor,
    compile_program,
)

TRACE_FIELDS = (
    "addr",
    "mnemonic",
    "iclass",
    "cycles",
    "operands",
    "result",
    "icache_miss",
    "dcache_miss",
    "uncached_fetch",
    "interlock",
    "mem_addr",
)

#: Seed count for the randomized sweep (the issue floor is 200).
RANDOM_SEEDS = range(220)

MAX_INSTRUCTIONS = 200_000


def assert_stats_equal(expected, actual, context):
    for field in dataclasses.fields(expected):
        a = getattr(expected, field.name)
        b = getattr(actual, field.name)
        assert a == b, f"{context}: stats.{field.name} differs: {a!r} != {b!r}"


def assert_traces_equal(expected, actual, context):
    assert len(expected) == len(actual), (
        f"{context}: trace length differs: {len(expected)} != {len(actual)}"
    )
    for i, (ref, new) in enumerate(zip(expected, actual)):
        for field in TRACE_FIELDS:
            a = getattr(ref, field)
            b = getattr(new, field)
            assert a == b, (
                f"{context}: trace[{i}].{field} differs: {a!r} != {b!r}"
            )


def assert_states_equal(expected, actual, context):
    assert expected.regs == actual.regs, f"{context}: register file differs"
    assert expected.pc == actual.pc, (
        f"{context}: final pc differs: {expected.pc:#x} != {actual.pc:#x}"
    )
    assert expected.halted == actual.halted, f"{context}: halted flag differs"
    assert expected.tie_state == actual.tie_state, f"{context}: TIE state differs"
    ref_pages = {k: bytes(v) for k, v in expected.memory._pages.items()}
    new_pages = {k: bytes(v) for k, v in actual.memory._pages.items()}
    assert ref_pages == new_pages, f"{context}: memory contents differ"


def run_both(config, program, max_instructions=MAX_INSTRUCTIONS):
    reference = ReferenceSimulator(
        config, program, collect_trace=True, max_instructions=max_instructions
    )
    ref_result = reference.run()
    executable = compile_program(config, program)
    compiled = Simulator(
        config,
        program,
        collect_trace=True,
        max_instructions=max_instructions,
        executable=executable,
    )
    new_result = compiled.run()
    return reference, ref_result, compiled, new_result, executable


class TestBundledSuiteEquivalence:
    @pytest.mark.parametrize(
        "case", characterization_suite(include_variants=False), ids=lambda c: c.name
    )
    def test_case_bitwise_identical(self, case):
        config, program = case.build()
        reference, ref_result, compiled, new_result, executable = run_both(
            config, program, max_instructions=case.max_instructions
        )
        assert_stats_equal(ref_result.stats, new_result.stats, case.name)
        assert_traces_equal(ref_result.trace, new_result.trace, case.name)
        assert_states_equal(ref_result.state, new_result.state, case.name)
        case.verify(new_result)

        # both untraced tiers (per-op fast path and fused superop blocks)
        # must agree as well; auto resolves to superop, so the compiled
        # tier needs an explicit request
        for engine in ("compiled", "superop"):
            fast = Simulator(
                config,
                program,
                max_instructions=case.max_instructions,
                executable=executable,
                engine=engine,
            )
            fast_result = fast.run()
            context = f"{case.name} ({engine})"
            assert fast_result.engine == engine
            assert_stats_equal(ref_result.stats, fast_result.stats, context)
            assert fast_result.trace is None  # trace off => not materialized
            assert_states_equal(ref_result.state, fast_result.state, context)


class TestRandomProgramEquivalence:
    def test_generator_is_deterministic(self):
        assert generate_source(1234) == generate_source(1234)
        assert generate_source(1) != generate_source(2)

    def test_random_sweep(self):
        config = build_processor("xt-differential", [])
        for seed in RANDOM_SEEDS:
            program = generate_program(seed)
            reference, ref_result, compiled, new_result, executable = run_both(
                config, program
            )
            context = f"seed {seed}"
            assert_stats_equal(ref_result.stats, new_result.stats, context)
            assert_traces_equal(ref_result.trace, new_result.trace, context)
            assert_states_equal(ref_result.state, new_result.state, context)

            for engine in ("compiled", "superop"):
                fast = Simulator(
                    config,
                    program,
                    max_instructions=MAX_INSTRUCTIONS,
                    executable=executable,
                    engine=engine,
                )
                fast_result = fast.run()
                assert fast_result.engine == engine
                assert_stats_equal(
                    ref_result.stats, fast_result.stats, f"{context} ({engine})"
                )
                assert_states_equal(
                    ref_result.state, fast_result.state, f"{context} ({engine})"
                )

    def test_sweep_exercises_interesting_shapes(self):
        sources = [generate_source(seed) for seed in RANDOM_SEEDS]
        assert any(".utext" in src for src in sources), "no uncached programs generated"
        assert any("loop" in src for src in sources), "no loops generated"
        assert any("skip" in src for src in sources), "no branch skips generated"
        assert all(src.rstrip().endswith("halt") for src in sources)


class TestStressPrograms:
    """Superop side-exit seams: handwritten programs that pin each one.

    Each :func:`~repro.testing.progen.stress_cases` program targets one
    spot where the fused block path hands control back to the per-op
    path (single-op blocks, taken-to-fall-through branches, dynamic
    jumps landing mid-block, budget expiry inside a block, faults).
    """

    @pytest.mark.parametrize(
        "case_program", stress_programs(), ids=lambda cp: cp[0].name
    )
    def test_engines_agree(self, case_program):
        case, program = case_program
        config = build_processor("xt-stress", [])
        if not case.faulting:
            reference = ReferenceSimulator(
                config, program, max_instructions=case.max_instructions
            )
            ref_result = reference.run()
            for engine in ("compiled", "superop"):
                result = Simulator(
                    config,
                    program,
                    max_instructions=case.max_instructions,
                    engine=engine,
                ).run()
                assert result.engine == engine
                context = f"{case.name} ({engine})"
                assert_stats_equal(ref_result.stats, result.stats, context)
                assert_states_equal(ref_result.state, result.state, context)
            return

        # faulting case: same exception type everywhere; the compiled
        # tiers agree exactly, and both extend the reference's bare
        # message with locator diagnostics (never contradict it)
        errors = {}
        for engine in ("reference", "compiled", "superop"):
            with pytest.raises((SimulationError, SimulationLimitExceeded)) as info:
                Simulator(
                    config,
                    program,
                    max_instructions=case.max_instructions,
                    engine=engine,
                ).run()
            errors[engine] = info.value
        assert type(errors["compiled"]) is type(errors["reference"])
        assert type(errors["superop"]) is type(errors["reference"])
        assert str(errors["compiled"]) == str(errors["superop"])
        assert str(errors["superop"]).startswith(str(errors["reference"]))

    def test_fused_fall_off_end_diagnostics(self):
        """Satellite: the fused path's invalid-pc fault names the nearest
        preceding symbol (with offset) and the last retired address."""
        config = build_processor("xt-stress", [])
        case, program = next(
            cp for cp in stress_programs() if cp[0].name == "stress_fall_off_end"
        )
        with pytest.raises(SimulationError) as info:
            Simulator(config, program, engine="superop").run()
        message = str(info.value)
        assert "is not a valid instruction address" in message
        assert "nearest preceding symbol: 'tail'" in message
        assert "last retired instruction at 0x" in message
