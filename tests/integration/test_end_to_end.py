"""End-to-end reproduction tests: the paper's headline results must hold.

These use the session-scoped characterized model (built once) and assert
the *shape* criteria from DESIGN.md:

* characterization fitting error: RMS of a few percent, max under ~10%
  (paper: RMS 3.8%, max < 8.9%);
* unseen-application accuracy: mean absolute error of a few percent
  (paper: mean 3.3%, max 8.5%);
* relative accuracy: the Reed-Solomon profiles rank-correlate perfectly;
* the macro-model path is substantially faster than the reference path.
"""

import numpy as np
import pytest

from repro.analysis import run_fig3, run_fig4, run_table1, run_table2
from repro.core import EnergyMacroModel


@pytest.mark.slow
class TestFig3Fit:
    def test_fit_quality_matches_paper_shape(self, experiment_context):
        fig3 = run_fig3(experiment_context)
        assert fig3.rms < 6.0, f"fitting RMS {fig3.rms:.2f}% too large"
        assert fig3.max_abs < 12.0, f"max fitting error {fig3.max_abs:.2f}% too large"

    def test_fit_not_degenerate(self, experiment_context):
        # a perfect fit would mean the ground truth carries no information
        # beyond the template — the abstraction error must be visible
        fig3 = run_fig3(experiment_context)
        assert fig3.rms > 0.1

    def test_report_lists_all_programs(self, experiment_context):
        report = run_fig3(experiment_context).report()
        assert "tp01_alu_mix" in report
        assert "tp25_app_like" in report
        assert "RMS" in report


@pytest.mark.slow
class TestTable1Coefficients:
    def test_all_coefficients_physical(self, experiment_context):
        model = experiment_context.model
        for key, value in model.coefficients_by_key().items():
            assert value >= 0.0, f"{key} fitted negative ({value:.1f})"

    def test_event_coefficients_recover_ground_truth(self, experiment_context):
        from repro.rtl import EVENT_ENERGY

        model = experiment_context.model
        # events include penalty-cycle overheads, so recovered values sit
        # somewhat above the bare event energies
        assert model.coefficient("N_cm") == pytest.approx(EVENT_ENERGY["icache_miss"], rel=1.0)
        assert model.coefficient("N_uf") == pytest.approx(EVENT_ENERGY["uncached_fetch"], rel=1.0)
        assert model.coefficient("N_cm") > model.coefficient("N_a")

    def test_class_coefficients_ordering(self, experiment_context):
        model = experiment_context.model
        # memory-class cycles cost more than plain arithmetic cycles
        assert model.coefficient("N_ld") > model.coefficient("N_a")
        assert model.coefficient("N_st") > model.coefficient("N_a")

    def test_coverage_adequate(self, experiment_context):
        assert experiment_context.coverage.is_adequate

    def test_table_report(self, experiment_context):
        report = run_table1(experiment_context).report()
        assert "N_sd" in report and "S_table" in report


@pytest.mark.slow
class TestTable2Applications:
    def test_accuracy_matches_paper_shape(self, experiment_context):
        table2 = run_table2(experiment_context)
        assert table2.mean_abs_percent_error < 8.0, table2.report()
        assert table2.max_abs_percent_error < 15.0, table2.report()

    def test_all_ten_applications_present(self, experiment_context):
        table2 = run_table2(experiment_context)
        assert len(table2.study.rows) == 10

    def test_macro_path_is_faster(self, experiment_context):
        table2 = run_table2(experiment_context)
        assert table2.mean_speedup > 1.5
        for row in table2.study.rows:
            assert row.reference_seconds > row.macro_seconds


@pytest.mark.slow
class TestFig4RelativeAccuracy:
    def test_profiles_track(self, experiment_context):
        fig4 = run_fig4(experiment_context)
        assert fig4.rank_correlation == pytest.approx(1.0)
        assert fig4.max_abs_percent_error < 12.0

    def test_specialization_saves_energy(self, experiment_context):
        fig4 = run_fig4(experiment_context)
        by_choice = {row.choice: row for row in fig4.rows}
        # software GF multiply is by far the most energy-hungry choice,
        # and the dual fused datapath is the leanest — in both estimators
        for field in ("macro_energy", "reference_energy"):
            values = {name: getattr(row, field) for name, row in by_choice.items()}
            assert values["rs_sw"] > 5 * values["rs_gfmul"]
            assert values["rs_dual"] < values["rs_gfmul"]
            assert values["rs_dual"] < values["rs_gfmac"]


@pytest.mark.slow
class TestModelShipping:
    def test_serialized_model_reproduces_estimates(self, experiment_context, tmp_path):
        model = experiment_context.model
        path = tmp_path / "xt1040.json"
        model.save(str(path))
        restored = EnergyMacroModel.load(str(path))
        case = experiment_context.applications[0]
        config, program = case.build()
        original = model.estimate(config, program).energy
        reloaded = restored.estimate(config, program).energy
        assert reloaded == pytest.approx(original)

    def test_fit_info_recorded(self, experiment_context):
        info = experiment_context.model.fit_info
        assert info["samples"] == len(experiment_context.suite)
        assert info["method"] == "nnls"
        assert np.isfinite(info["rms_percent_error"])
