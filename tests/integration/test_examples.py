"""Smoke tests: every example script runs to completion.

The slow examples share the process-wide cached characterization context
(monkeypatched in), so the whole module costs one characterization.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"


def _run_example(name, monkeypatch, capsys, experiment_context, argv=None):
    # examples call repro.analysis.default_context(); reuse the session one
    import repro.analysis.experiments as experiments

    monkeypatch.setattr(experiments, "_CACHED_CONTEXT", experiment_context)
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    if argv is not None:
        monkeypatch.setattr(sys, "argv", argv)
    spec.loader.exec_module(module)
    module.main()
    return capsys.readouterr().out


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self, monkeypatch, capsys, experiment_context):
        out = _run_example("quickstart", monkeypatch, capsys, experiment_context)
        assert "macro-model estimate" in out
        assert "estimation error" in out

    def test_custom_instruction_tutorial(self, monkeypatch, capsys, experiment_context):
        out = _run_example(
            "custom_instruction_tutorial", monkeypatch, capsys, experiment_context
        )
        assert "compiled custom instruction" in out
        assert "expected 39" in out

    def test_design_space_exploration(self, monkeypatch, capsys, experiment_context):
        out = _run_example(
            "design_space_exploration", monkeypatch, capsys, experiment_context
        )
        assert "lowest EDP: fir_packed" in out
        assert "rs_dual" in out
        assert "exactly as the reference" in out

    def test_profile_hotspots(self, monkeypatch, capsys, experiment_context):
        out = _run_example("profile_hotspots", monkeypatch, capsys, experiment_context)
        assert "energy profile" in out
        assert "drift 0.00e+00" in out

    def test_characterize_processor(
        self, monkeypatch, capsys, experiment_context, tmp_path
    ):
        model_path = str(tmp_path / "model.json")
        out = _run_example(
            "characterize_processor",
            monkeypatch,
            capsys,
            experiment_context,
            argv=["characterize_processor.py", model_path],
        )
        assert "Energy coefficients" in out
        assert (tmp_path / "model.json").exists()

    def test_recharacterize_family(self, monkeypatch, capsys, experiment_context):
        out = _run_example(
            "recharacterize_family", monkeypatch, capsys, experiment_context
        )
        assert "out of family" in out
        assert "restored" in out
