"""Scope of a characterized model: what transfers and what does not.

The macro-model is characterized per processor *family* (fixed base
configuration).  Custom-instruction extensions are inside the family —
that is the paper's entire point — but changing the base configuration's
*timing/energy* parameters (e.g. the memory system's miss penalty) is
out of scope and must degrade accuracy.  These tests document both
sides of that boundary.
"""

import dataclasses

import pytest

from repro.asm import assemble
from repro.rtl import RtlEnergyEstimator, generate_netlist
from repro.tie import TieSpec
from repro.xtcore import CacheConfig, build_processor

# a kernel dominated by I-cache misses (six aliasing one-line blocks)
MISS_HEAVY = """
main:
    movi a2, 120
    movi a6, 0
    j b0
    .org 0x4000
b0:
    addi a6, a6, 1
    j b1
    .org 0x8000
b1:
    addi a6, a6, 2
    j b2
    .org 0xC000
b2:
    addi a6, a6, 3
    j b3
    .org 0x10000
b3:
    addi a6, a6, 4
    j b4
    .org 0x14000
b4:
    addi a6, a6, 5
    j b5
    .org 0x18000
b5:
    addi a6, a6, 6
    addi a2, a2, -1
    bnez a2, back
    halt
back:
    j b0
"""


def _error(model, config, program):
    estimate = model.estimate(config, program)
    reference, _ = RtlEnergyEstimator(generate_netlist(config)).estimate_program(program)
    return 100.0 * (estimate.energy - reference.total) / reference.total


@pytest.mark.slow
class TestFamilyScope:
    def test_new_extension_is_in_scope(self, experiment_context):
        """An extension never seen during characterization estimates fine."""
        spec = TieSpec("scope_rot", fmt="R3", description="rd = rotl-ish mix")
        a = spec.source("rs")
        amount = spec.source("rt", width=5)
        spec.result(spec.bit_or(spec.shift_left(a, amount), spec.shift_right(a, amount)))
        config = build_processor("scope-new-ext", [spec])
        program = assemble(
            "main:\n    movi a2, 200\n    li a3, 0x12345\nl:\n    andi a4, a2, 31\n"
            "    scope_rot a3, a3, a4\n    addi a2, a2, -1\n    bnez a2, l\n    halt\n",
            "new-ext",
            isa=config.isa,
        )
        error = _error(experiment_context.model, config, program)
        assert abs(error) < 12.0

    def test_changed_miss_penalty_is_out_of_scope(self, experiment_context):
        """Quadrupling the I$ miss penalty breaks the N_cm coefficient.

        The model was characterized at a 12-cycle penalty; at 48 cycles
        each miss carries ~4x the pipeline/idle overhead, which the fixed
        per-miss coefficient cannot represent.  Accuracy must degrade
        markedly on a miss-dominated kernel — re-characterization is
        required when the base configuration changes, exactly as the
        paper scopes the method to a processor family.
        """
        base = build_processor("scope-base")
        program_base = assemble(MISS_HEAVY, "miss-heavy", isa=base.isa)
        in_family_error = _error(experiment_context.model, base, program_base)

        slow_memory = dataclasses.replace(
            base,
            name="scope-slowmem",
            icache=CacheConfig(miss_penalty=48),
        )
        program_slow = assemble(MISS_HEAVY, "miss-heavy", isa=slow_memory.isa)
        out_of_family_error = _error(experiment_context.model, slow_memory, program_slow)

        assert abs(in_family_error) < 8.0
        assert abs(out_of_family_error) > 2 * abs(in_family_error)
        assert out_of_family_error < 0  # under-prediction: misses got pricier


@pytest.mark.slow
class TestRecharacterization:
    def test_recharacterizing_restores_accuracy(self, experiment_context):
        """Running the identical suite on the out-of-family base fixes it.

        This is the `examples/recharacterize_family.py` workflow as a
        regression test: same suite, same flow, new base configuration.
        """
        from repro.analysis import build_context
        from repro.programs import characterization_suite

        base = build_processor("scope-re-base")
        slow_memory = dataclasses.replace(
            base, name="scope-re-slowmem", icache=CacheConfig(miss_penalty=48)
        )
        program = assemble(MISS_HEAVY, "miss-heavy", isa=slow_memory.isa)

        stale_error = _error(experiment_context.model, slow_memory, program)
        assert abs(stale_error) > 20.0  # badly out of family

        fresh_ctx = build_context(suite=characterization_suite(base=slow_memory))
        fresh_error = _error(fresh_ctx.model, slow_memory, program)
        assert abs(fresh_error) < 5.0

        # the per-miss coefficient grew to absorb the larger penalty
        assert fresh_ctx.model.coefficient("N_cm") > 1.5 * experiment_context.model.coefficient("N_cm")
