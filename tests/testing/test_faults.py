"""Fault-injection harness tests: determinism and failure-mode fidelity."""

import pytest

from repro.asm import assemble
from repro.core import Characterizer
from repro.core.runner import default_estimate, default_simulate
from repro.testing import FaultPlan, InjectedFault, corrupt_checkpoint, hanging_task
from repro.xtcore import SimulationLimitExceeded, build_processor

pytestmark = pytest.mark.faults

SOURCE = "main:\n    movi a2, 5\nl:\n    addi a2, a2, -1\n    bnez a2, l\n    halt\n"


@pytest.fixture(scope="module")
def run_args():
    config = build_processor("faults-base")
    program = assemble(SOURCE, "victim", isa=config.isa)
    return config, program


class TestSimulationFaults:
    def test_injects_exactly_n_times(self, run_args):
        config, program = run_args
        session = FaultPlan().fail_simulation("victim", times=2).wrap_session()
        for _ in range(2):
            with pytest.raises(InjectedFault, match="victim"):
                session(config, program, max_instructions=1000)
        result = session(config, program, max_instructions=1000)  # injections used up
        assert result.stats.total_instructions > 0

    def test_always_injects_by_default(self, run_args):
        config, program = run_args
        session = FaultPlan().fail_simulation("victim").wrap_session()
        for _ in range(5):
            with pytest.raises(InjectedFault):
                session(config, program, max_instructions=1000)

    def test_budget_exhaustion_kind(self, run_args):
        config, program = run_args
        session = FaultPlan().exhaust_budget("victim", times=1).wrap_session()
        with pytest.raises(SimulationLimitExceeded, match="injected"):
            session(config, program, max_instructions=1000)

    def test_unlisted_programs_pass_through(self, run_args):
        config, program = run_args
        plan = FaultPlan().fail_simulation("someone-else")
        result = plan.wrap_session()(config, program, max_instructions=1000)
        assert result.stats.total_instructions > 0
        assert plan.injected == []


class TestEnergyFaults:
    @pytest.mark.parametrize("kind", ["nan", "inf"])
    def test_injects_non_finite_energy(self, run_args, kind):
        import math

        config, program = run_args
        characterizer = Characterizer()
        plan = FaultPlan()
        getattr(plan, f"{kind}_energy")("victim", times=1)
        estimate = plan.wrap_estimate(default_estimate(characterizer))
        result = default_simulate(config, program, True, 1000)
        first = estimate(config, result)
        second = estimate(config, result)
        assert math.isnan(first) if kind == "nan" else math.isinf(first)
        assert math.isfinite(second)
        assert plan.injected == [("victim", kind)]


class TestHangingTask:
    def test_genuinely_hangs_until_budget(self):
        task = hanging_task(max_instructions=500)
        config, program = task.builder()
        with pytest.raises(SimulationLimitExceeded):
            default_simulate(config, program, False, task.max_instructions)


class TestCheckpointCorruption:
    def _valid_checkpoint(self, tmp_path):
        characterizer = Characterizer()
        config = build_processor("ckpt-corrupt")
        characterizer.add_program(config, assemble(SOURCE, "victim", isa=config.isa))
        path = str(tmp_path / "samples.json")
        characterizer.save_samples(path)
        return path

    @pytest.mark.parametrize("mode", ["truncate", "garbage"])
    def test_corrupted_file_rejected_with_actionable_error(self, tmp_path, mode):
        path = self._valid_checkpoint(tmp_path)
        corrupt_checkpoint(path, mode)
        with pytest.raises(ValueError, match="not valid JSON"):
            Characterizer().load_samples(path)

    def test_unknown_mode_rejected(self, tmp_path):
        path = self._valid_checkpoint(tmp_path)
        with pytest.raises(ValueError, match="corruption mode"):
            corrupt_checkpoint(path, "gamma-rays")
