"""Chaos tests: the service under injected worker crashes, hangs, poison.

Everything runs the inline (thread) pool, where the chaos harness's
``crash`` directive raises
:class:`~repro.serve.supervise.InjectedWorkerCrash` instead of killing
the test process — the supervisor treats both identically via
:func:`~repro.serve.supervise.is_pool_crash`, and the fork-mode
equivalent (real ``os._exit`` children) is exercised by
``benchmarks/bench_serve_chaos.py`` and ``scripts/ci/smoke_chaos.sh``.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.runner import RetryPolicy
from repro.testing.faults import ServiceChaosPlan

pytestmark = pytest.mark.chaos


def inline_body(name: str, loops: int) -> dict:
    """A tiny unique program: ``loops`` varies the image, so distinct
    ``loops`` values get distinct content-addressed request keys (the
    name alone does not change the assembled image)."""
    source = f"""
    .data
out: .word 0
    .text
main:
    movi a2, {loops}
    movi a3, 0
loop:
    add a3, a3, a2
    addi a2, a2, -1
    bnez a2, loop
    la a4, out
    s32i a3, a4, 0
    halt
"""
    return {"program": {"source": source, "name": name}}


class TestCrashRecovery:
    def test_every_request_answered_despite_crashes(self, make_server):
        # ordinals 0 and 1 both crash; quarantine_after is high so the
        # re-dispatched singleton is retried, not condemned
        server = make_server(
            chaos=ServiceChaosPlan(seed=3, crashes=2, horizon=2),
            quarantine_after=5,
        )
        statuses = []
        for i in range(6):
            status, body = server.estimate(inline_body(f"prog{i}", loops=5 + i))
            statuses.append(status)
            assert "energy" in body or "error" in body
        # exactly-once, all successful: crashes were retried transparently
        assert statuses == [200] * 6
        _, metrics = server.request("GET", "/metrics")
        counters = metrics["counters"]
        assert counters["worker_crashes_total"] == 2
        assert counters["pool_restarts_total"] == 2
        assert counters["chaos_injected_total"] == 2
        assert metrics["supervision"]["chaos"]["injected"] == {"crash": 2}
        # nothing ended up quarantined: successes exonerated the retried key
        assert metrics["supervision"]["quarantine"]["held"] == 0

    def test_prometheus_exposes_supervision_gauges(self, make_server):
        server = make_server(chaos=ServiceChaosPlan(seed=3, crashes=1, horizon=1))
        assert server.estimate(inline_body("p", loops=9))[0] == 200
        _, text = server.request("GET", "/metrics?format=prom")
        assert "repro_serve_breaker_state 0" in text
        assert "repro_serve_pool_restarts 1" in text
        assert "repro_serve_worker_crashes_total 1" in text
        assert "repro_serve_quarantine_held 0" in text


class TestPoisonQuarantine:
    def test_bisect_isolates_poison_and_quarantines_it(self, make_server):
        server = make_server(
            chaos=ServiceChaosPlan(poison=("bad",)),
            quarantine_after=2,
            breaker_failures=10,  # keep the breaker out of this scenario
            batch_max=8,
            batch_window=0.25,
        )
        results: dict[str, tuple[int, dict]] = {}
        lock = threading.Lock()

        def post(name: str, loops: int) -> None:
            outcome = server.estimate(inline_body(name, loops), timeout=60)
            with lock:
                results[name] = outcome

        names = ["bad", "good1", "good2", "good3"]
        threads = [
            threading.Thread(target=post, args=(name, 3 + i))
            for i, name in enumerate(names)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)

        assert set(results) == set(names)
        # the innocents that shared batches with the poison all succeeded
        for name in ("good1", "good2", "good3"):
            status, body = results[name]
            assert status == 200, body
        # the poison was isolated by bisection and quarantined
        status, body = results["bad"]
        assert status == 500
        assert body["stage"] == "quarantine"

        _, metrics = server.request("GET", "/metrics")
        assert metrics["counters"]["quarantined_total"] == 1
        quarantine = metrics["supervision"]["quarantine"]
        assert quarantine["held"] == 1
        assert "bad" in quarantine["keys"].values()

        # the key stays quarantined: repeats answer 500 without dispatch
        status, body = server.estimate(inline_body("bad", loops=3))
        assert status == 500
        assert body["stage"] == "quarantine"
        _, metrics = server.request("GET", "/metrics")
        assert metrics["counters"]["quarantine_rejections_total"] >= 1

        # /healthz stays ok but names the quarantine in its reasons
        _, health = server.request("GET", "/healthz")
        assert health["status"] == "ok"
        assert any("quarantined" in reason for reason in health["reasons"])


class TestCircuitBreaker:
    def test_crash_trips_breaker_into_degraded_serving(self, make_server):
        server = make_server(
            chaos=ServiceChaosPlan(poison=("bad",)),
            breaker_failures=1,
            breaker_cooldown=60.0,
        )
        # the poisoned request crashes the pool once, trips the breaker,
        # and is then served by the chaos-free degraded inline path
        status, body = server.estimate(inline_body("bad", loops=3))
        assert status == 200, body

        _, metrics = server.request("GET", "/metrics")
        counters = metrics["counters"]
        assert counters["breaker_trips_total"] == 1
        assert counters["worker_crashes_total"] == 1
        assert counters["degraded_batches_total"] >= 1
        assert metrics["supervision"]["breaker"]["state"] == "open"

        # while open, even clean requests take the degraded path
        status, _ = server.estimate(inline_body("fine", loops=7))
        assert status == 200
        _, metrics = server.request("GET", "/metrics")
        assert metrics["counters"]["degraded_batches_total"] >= 2

        _, health = server.request("GET", "/healthz")
        assert health["status"] == "degraded"
        assert any("circuit breaker" in reason for reason in health["reasons"])


class TestWorkerHang:
    def test_hang_times_out_then_retry_succeeds(self, make_server):
        server = make_server(
            chaos=ServiceChaosPlan(seed=5, hangs=1, horizon=1, hang_seconds=0.4),
            request_timeout=0.2,
            retry=RetryPolicy(max_attempts=3),
        )
        status, body = server.estimate(inline_body("slowpoke", loops=6), timeout=30)
        assert status == 200, body
        _, metrics = server.request("GET", "/metrics")
        counters = metrics["counters"]
        assert counters["timeouts_total"] >= 1
        assert counters["retries_total"] >= 1
        assert metrics["supervision"]["chaos"]["injected"]["hang"] == 1


class TestConnectionReset:
    def test_torn_response_then_service_keeps_going(self, make_server):
        server = make_server(chaos=ServiceChaosPlan(seed=1, resets=1, horizon=1))
        # the first response is cut mid-write: the client sees a torn read
        with pytest.raises(Exception):
            server.request("GET", "/healthz")
        # the service itself is unharmed
        status, health = server.request("GET", "/healthz")
        assert status == 200
        assert health["status"] == "ok"
        status, _ = server.estimate(inline_body("after_reset", loops=4))
        assert status == 200
        _, metrics = server.request("GET", "/metrics")
        assert metrics["supervision"]["chaos"]["injected"]["reset"] == 1
