"""Shared fixtures for the estimation-service tests.

The end-to-end tests run a real :class:`EstimationServer` on an
ephemeral port, with its asyncio loop on a background thread so the
tests can speak plain blocking ``http.client`` — exactly what an
external client does.  The default service uses the in-process pool
(``workers=0``) and tiny inline programs, so each request costs well
under a millisecond of simulation.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading

import numpy as np
import pytest

from repro.core import EnergyMacroModel, default_template
from repro.serve import EstimationServer, EstimationService

TINY_SOURCE = """
    .data
out: .word 0
    .text
main:
    movi a2, 6
    movi a3, 0
loop:
    add a3, a3, a2
    addi a2, a2, -1
    bnez a2, loop
    la a4, out
    s32i a3, a4, 0
    halt
"""


@pytest.fixture(scope="session")
def serve_model() -> EnergyMacroModel:
    template = default_template()
    return EnergyMacroModel(template, np.linspace(50, 5000, len(template)))


class ServerHarness:
    """A live server on an ephemeral port + a blocking JSON client."""

    def __init__(self, service: EstimationService) -> None:
        self.service = service
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run_loop, daemon=True)
        self._thread.start()
        self.server = EstimationServer(service, port=0)
        self.run(self.server.start(), timeout=60)
        self.port = self.server.port

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    def run(self, coro, timeout: float = 60):
        """Run a coroutine on the server's loop from the test thread."""
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(timeout)

    def request(self, method: str, path: str, body: object = None, timeout: float = 60):
        """One blocking HTTP round-trip; returns (status, decoded body)."""
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=timeout)
        try:
            payload = None if body is None else json.dumps(body)
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, payload, headers)
            response = conn.getresponse()
            raw = response.read()
            content_type = response.getheader("Content-Type", "")
            decoded = (
                json.loads(raw) if content_type.startswith("application/json") else raw.decode()
            )
            return response.status, decoded
        finally:
            conn.close()

    def estimate(self, body: object, timeout: float = 60):
        return self.request("POST", "/estimate", body, timeout)

    def close(self) -> None:
        if self._loop.is_closed():
            return
        self.run(self.server.stop())

        async def drain() -> None:
            # reap lingering keep-alive connection handlers before the loop dies
            current = asyncio.current_task()
            for task in asyncio.all_tasks():
                if task is not current:
                    task.cancel()
            await asyncio.sleep(0)

        self.run(drain())
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._loop.close()


@pytest.fixture
def make_server(serve_model):
    """Factory fixture: build a live server with custom service options."""
    harnesses: list[ServerHarness] = []

    def factory(**options) -> ServerHarness:
        options.setdefault("workers", 0)
        options.setdefault("batch_window", 0.005)
        harness = ServerHarness(EstimationService(serve_model, **options))
        harnesses.append(harness)
        return harness

    yield factory
    for harness in harnesses:
        harness.close()
