"""Request parsing/validation and the content-addressed request key."""

from __future__ import annotations

import pytest

from repro.asm import assemble
from repro.dse.cache import candidate_cache_key
from repro.serve import parse_estimate, parse_explore, request_key
from repro.serve.api import ApiError, MAX_SOURCE_BYTES
from repro.xtcore import build_processor


class TestParseEstimate:
    def test_benchmark_form(self):
        req = parse_estimate({"benchmark": "tp01_alu_mix"})
        assert req.benchmark == "tp01_alu_mix"
        assert req.source is None
        assert req.name == "tp01_alu_mix"
        assert req.extensions == ()

    def test_inline_form(self):
        req = parse_estimate(
            {
                "program": {"source": "main:\n    halt\n", "name": "p"},
                "extensions": ["mul16"],
                "max_instructions": 500,
                "variables": True,
            }
        )
        assert req.source is not None
        assert req.extensions == ("mul16",)
        assert req.max_instructions == 500
        assert req.variables

    def test_extensions_accept_comma_string(self):
        req = parse_estimate(
            {"program": {"source": "main:\n    halt\n"}, "extensions": "mul16, mac16"}
        )
        assert req.extensions == ("mul16", "mac16")

    @pytest.mark.parametrize(
        "body",
        [
            {},  # neither form
            {"benchmark": "a", "program": {"source": "x"}},  # both forms
            {"benchmark": ""},
            {"benchmark": "a", "extensions": ["mul16"]},  # ext on benchmark
            {"program": {"source": ""}},
            {"program": {"source": "x", "name": ""}},
            {"program": {"source": "x"}, "max_instructions": 0},
            {"program": {"source": "x"}, "max_instructions": True},
            {"program": {"source": "x"}, "variables": "yes"},
            {"program": {"source": "x"}, "extensions": [1]},
            [],  # not an object
        ],
    )
    def test_rejects_bad_bodies(self, body):
        with pytest.raises(ApiError) as exc_info:
            parse_estimate(body)
        assert exc_info.value.status == 400

    def test_rejects_oversized_source(self):
        body = {"program": {"source": "x" * (MAX_SOURCE_BYTES + 1)}}
        with pytest.raises(ApiError) as exc_info:
            parse_estimate(body)
        assert exc_info.value.status == 413

    def test_rejects_absurd_budget(self):
        with pytest.raises(ApiError):
            parse_estimate(
                {"program": {"source": "x"}, "max_instructions": 10**12}
            )


class TestParseExplore:
    def test_defaults(self):
        req = parse_explore({"space": "reed_solomon"})
        assert req.strategy == "exhaustive"
        assert req.objective == "edp"
        assert req.seed == 0
        assert req.budget is None

    @pytest.mark.parametrize(
        "body",
        [
            {},
            {"space": "s", "strategy": "annealing"},
            {"space": "s", "budget": 0},
            {"space": "s", "objective": "speed"},
            {"space": "s", "seed": "one"},
            {"space": "s", "top_k": 0},
        ],
    )
    def test_rejects_bad_bodies(self, body):
        with pytest.raises(ApiError) as exc_info:
            parse_explore(body)
        assert exc_info.value.status == 400


class TestRequestKey:
    def test_matches_dse_content_address(self):
        """Service results and exploration results share one address space."""
        config = build_processor("key-test")
        program = assemble("main:\n    halt\n", "p", isa=config.isa)
        assert request_key("m" * 64, config, program, 1000) == candidate_cache_key(
            "m" * 64, config, program, 1000
        )

    def test_sensitive_to_each_component(self):
        config = build_processor("key-test")
        program = assemble("main:\n    halt\n", "p", isa=config.isa)
        other = assemble("main:\n    nop\n    halt\n", "p", isa=config.isa)
        base = request_key("m" * 64, config, program, 1000)
        assert request_key("n" * 64, config, program, 1000) != base
        assert request_key("m" * 64, config, other, 1000) != base
        assert request_key("m" * 64, config, program, 999) != base

    def test_name_insensitive(self):
        """Cosmetic program names must not defeat coalescing."""
        config = build_processor("key-test")
        a = assemble("main:\n    halt\n", "first", isa=config.isa)
        b = assemble("main:\n    halt\n", "second", isa=config.isa)
        assert request_key("m" * 64, config, a, 1000) == request_key(
            "m" * 64, config, b, 1000
        )


class TestDeadlineMs:
    def test_defaults_to_none(self):
        assert parse_estimate({"benchmark": "b"}).deadline_ms is None

    def test_accepts_positive_deadline(self):
        req = parse_estimate({"benchmark": "b", "deadline_ms": 2500})
        assert req.deadline_ms == 2500

    @pytest.mark.parametrize("bad", [0, -5, True, 1.5, "100"])
    def test_rejects_non_positive_or_non_int(self, bad):
        with pytest.raises(ApiError) as excinfo:
            parse_estimate({"benchmark": "b", "deadline_ms": bad})
        assert excinfo.value.status == 400

    def test_rejects_over_ceiling(self):
        from repro.serve.api import MAX_DEADLINE_MS

        with pytest.raises(ApiError) as excinfo:
            parse_estimate({"benchmark": "b", "deadline_ms": MAX_DEADLINE_MS + 1})
        assert excinfo.value.status == 400
