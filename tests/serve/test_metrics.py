"""Latency windows, the metrics registry, and Prometheus rendering."""

from __future__ import annotations

from repro.obs import RunTallyObserver, run_session
from repro.serve import LatencyWindow, ServiceMetrics, ServiceMetricsObserver, render_prometheus
from repro.serve.metrics import ServiceMetricsObserver as _ObserverAlias


class TestLatencyWindow:
    def test_empty_window_is_zero(self):
        window = LatencyWindow()
        assert window.percentile(50) == 0.0
        assert window.snapshot()["p95_ms"] == 0.0

    def test_percentiles(self):
        window = LatencyWindow()
        for ms in range(1, 101):  # 1..100 ms
            window.record(ms / 1e3)
        snap = window.snapshot()
        assert 45 <= snap["p50_ms"] <= 55
        assert 90 <= snap["p95_ms"] <= 100
        assert snap["count"] == 100

    def test_bounded_reservoir(self):
        window = LatencyWindow(maxlen=8)
        for _ in range(100):
            window.record(0.001)
        assert window.snapshot()["window"] == 8
        assert window.count == 100


class TestServiceMetricsObserver:
    def test_rides_the_observer_protocol(self, base_config, tiny_loop_program):
        observer = ServiceMetricsObserver()
        result = run_session(base_config, tiny_loop_program, observers=[observer])
        run_session(base_config, tiny_loop_program, observers=[observer])
        snap = observer.snapshot()
        assert snap["runs_finished"] == 2
        assert snap["instructions"] == 2 * result.stats.total_instructions
        assert snap["cycles"] == 2 * result.stats.total_cycles
        assert snap["sim_seconds"] > 0

    def test_is_a_run_tally(self):
        # the service observer is the obs-layer tally, shipped across forks
        assert issubclass(_ObserverAlias, RunTallyObserver)


class TestServiceMetrics:
    def test_duplicates_merged_combines_sources(self):
        metrics = ServiceMetrics()
        metrics.incr("coalesced_total", 2)
        metrics.incr("memo_hits_total", 3)
        metrics.incr("disk_cache_hits_total", 1)
        assert metrics.duplicates_merged == 6
        payload = metrics.to_payload()
        assert payload["counters"]["duplicates_merged"] == 6

    def test_payload_shape_and_cache_rates(self):
        metrics = ServiceMetrics()
        metrics.observe_latency("estimate", 0.002)
        metrics.merge_sim_snapshot({"runs_finished": 4, "instructions": 100})
        payload = metrics.to_payload(
            compilation_cache={"hits": 3, "misses": 1},
            result_cache={"hits": 0, "misses": 0},
        )
        assert payload["caches"]["compilation"]["hit_rate"] == 0.75
        assert payload["caches"]["results"]["hit_rate"] == 0.0
        assert payload["simulation"]["runs_finished"] == 4
        assert payload["latency"]["estimate"]["count"] == 1

    def test_prometheus_rendering(self):
        metrics = ServiceMetrics()
        metrics.incr("requests_total", 7)
        metrics.observe_latency("estimate", 0.010)
        text = render_prometheus(
            metrics.to_payload(compilation_cache={"hits": 1, "misses": 1})
        )
        assert "repro_serve_requests_total 7" in text
        assert 'repro_serve_latency_p50_ms{endpoint="estimate"} 10' in text
        assert 'repro_serve_cache_hit_rate{cache="compilation"} 0.5' in text
        assert text.endswith("\n")
