"""End-to-end service tests over real HTTP, plus service-level policy units.

The HTTP tests go through :class:`ServerHarness` (a live asyncio server on
an ephemeral port); the backpressure and timeout/retry tests drive the
service object directly so the failure timing is deterministic.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import multiprocessing
import threading

import pytest

from repro.core.runner import RetryPolicy
from repro.serve import EstimationService, Job
from repro.serve.api import ApiError

from .conftest import TINY_SOURCE

INLINE_BODY = {
    "program": {"source": TINY_SOURCE, "name": "tiny"},
    "max_instructions": 10_000,
}


class TestEstimateEndpoint:
    def test_fresh_then_memo(self, make_server):
        server = make_server()
        status, first = server.estimate({"benchmark": "tp01_alu_mix"})
        assert status == 200
        assert first["dedup"] == "fresh"
        assert first["energy"] > 0
        assert first["cycles"] > 0
        assert first["edp"] == pytest.approx(first["energy"] * first["cycles"])
        status, second = server.estimate({"benchmark": "tp01_alu_mix"})
        assert status == 200
        assert second["dedup"] == "memo"
        assert second["energy"] == first["energy"]
        assert second["key"] == first["key"]

    def test_inline_program_with_variables(self, make_server, serve_model):
        server = make_server()
        status, body = server.estimate({**INLINE_BODY, "variables": True})
        assert status == 200
        assert body["dedup"] == "fresh"
        assert set(body["variables"]) == set(serve_model.template.keys())
        recomputed = sum(
            body["variables"][name] * coeff
            for name, coeff in zip(serve_model.template.keys(), serve_model.coefficients)
        )
        assert body["energy"] == pytest.approx(recomputed)

    def test_variables_omitted_by_default(self, make_server):
        server = make_server()
        status, body = server.estimate(INLINE_BODY)
        assert status == 200
        assert "variables" not in body

    def test_concurrent_duplicates_merge(self, make_server):
        """N identical requests cost one simulation: 1 fresh + N-1 merged."""
        server = make_server(batch_window=0.05)
        results: list[tuple[int, dict]] = []
        lock = threading.Lock()

        def fire():
            outcome = server.estimate(INLINE_BODY)
            with lock:
                results.append(outcome)

        threads = [threading.Thread(target=fire) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert len(results) == 4
        assert all(status == 200 for status, _ in results)
        energies = {body["energy"] for _, body in results}
        assert len(energies) == 1
        dedups = sorted(body["dedup"] for _, body in results)
        assert dedups.count("fresh") == 1
        assert all(d in ("fresh", "coalesced", "memo") for d in dedups)
        _, metrics = server.request("GET", "/metrics")
        assert metrics["counters"]["duplicates_merged"] == 3
        assert metrics["counters"]["estimate_requests"] == 4

    def test_dedupe_disabled_runs_every_request(self, make_server):
        server = make_server(dedupe=False)
        assert server.estimate(INLINE_BODY)[1]["dedup"] == "fresh"
        assert server.estimate(INLINE_BODY)[1]["dedup"] == "fresh"
        _, metrics = server.request("GET", "/metrics")
        assert metrics["counters"]["duplicates_merged"] == 0
        assert metrics["counters"]["batched_requests"] == 2

    def test_unknown_benchmark_is_bad_request(self, make_server):
        server = make_server()
        status, body = server.estimate({"benchmark": "no_such_benchmark"})
        assert status == 400
        assert body["error"] == "bad_workload"

    def test_broken_program_is_bad_request(self, make_server):
        server = make_server()
        status, body = server.estimate({"program": {"source": "main:\n    bogus_op\n"}})
        assert status == 400

    def test_malformed_json_is_bad_request(self, make_server):
        server = make_server()
        status, _ = server.request("POST", "/estimate", body=None)
        assert status == 400

    def test_batch_counters_advance(self, make_server):
        server = make_server()
        server.estimate({"benchmark": "tp01_alu_mix"})
        server.estimate(INLINE_BODY)
        _, metrics = server.request("GET", "/metrics")
        assert metrics["counters"]["batches_dispatched"] >= 2
        assert metrics["counters"]["batched_requests"] >= 2
        assert metrics["simulation"]["runs_finished"] >= 2
        assert metrics["latency"]["estimate"]["count"] == 2


class TestDiskCache:
    def test_results_survive_restart(self, make_server, tmp_path):
        cache_dir = str(tmp_path / "serve-cache")
        first = make_server(cache_dir=cache_dir)
        status, body = first.estimate(INLINE_BODY)
        assert status == 200 and body["dedup"] == "fresh"
        _, metrics = first.request("GET", "/metrics")
        assert metrics["caches"]["results"]["stores"] == 1
        first.close()

        second = make_server(cache_dir=cache_dir)
        status, again = second.estimate(INLINE_BODY)
        assert status == 200
        assert again["dedup"] == "disk"
        assert again["energy"] == body["energy"]
        # the disk hit was promoted to the memo
        assert second.estimate(INLINE_BODY)[1]["dedup"] == "memo"


class TestIntrospection:
    def test_healthz(self, make_server):
        server = make_server(queue_limit=7)
        status, body = server.request("GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["pool"]["mode"] == "inline"
        assert body["queue"] == {"depth": 0, "limit": 7}
        assert body["recent_failures"] == []

    def test_metrics_json_and_prometheus(self, make_server):
        server = make_server()
        server.estimate({"benchmark": "tp01_alu_mix"})
        status, body = server.request("GET", "/metrics")
        assert status == 200
        assert body["counters"]["responses_ok"] == 1
        assert body["caches"]["compilation"]["hits"] + body["caches"]["compilation"][
            "misses"
        ] >= 1
        status, text = server.request("GET", "/metrics?format=prom")
        assert status == 200
        assert isinstance(text, str)
        assert "repro_serve_requests_total" in text

    def test_unknown_path_404(self, make_server):
        status, body = make_server().request("GET", "/nope")
        assert status == 404
        assert body["error"] == "not_found"

    def test_wrong_method_405(self, make_server):
        server = make_server()
        assert server.request("POST", "/healthz", body={})[0] == 405
        assert server.request("GET", "/estimate")[0] == 405


class TestBackpressure:
    def test_full_queue_answers_429(self, serve_model):
        async def scenario():
            service = EstimationService(serve_model, workers=0, queue_limit=1)
            # never started: nothing drains the queue, so fill it by hand
            loop = asyncio.get_running_loop()
            service.queue.put_nowait(
                Job(
                    key="occupant",
                    group="g",
                    item={"max_instructions": 100},
                    future=loop.create_future(),
                )
            )
            with pytest.raises(ApiError) as exc_info:
                await service._obtain("rejected", "g", {"max_instructions": 100})
            service.pool.shutdown()
            return service, exc_info.value

        service, error = asyncio.run(scenario())
        assert error.status == 429
        assert error.code == "overloaded"
        # the hint is computed from queue depth and observed drain rate;
        # a cold service (no drains observed yet) quotes the cold-start
        # fallback rather than a hard-coded constant
        from repro.serve.admission import COLD_START_RETRY_AFTER

        assert error.headers == {"Retry-After": str(COLD_START_RETRY_AFTER)}
        assert service.metrics.counters["rejected_total"] == 1
        # the rejected key must not linger as a phantom in-flight owner
        assert service.coalescer.inflight_count == 0


class StallingPool:
    """A pool stub whose batches never finish — forces the timeout path."""

    mode = "stub"
    workers = 1
    prewarmed = 0
    generation = 0
    restarts = 0

    def __init__(self) -> None:
        self.budgets: list[list[int]] = []

    def submit_estimate_batch(self, items):
        self.budgets.append([item["max_instructions"] for item in items])
        return concurrent.futures.Future()  # intentionally never resolved

    def shutdown(self) -> None:
        pass


class TestTimeoutRetry:
    def test_retries_with_lowered_budget_then_times_out(self, serve_model):
        async def scenario():
            service = EstimationService(
                serve_model,
                workers=0,
                request_timeout=0.05,
                retry=RetryPolicy(max_attempts=2),
            )
            service.pool.shutdown()
            stub = StallingPool()
            service.pool = stub
            job = Job(
                key="k",
                group="g",
                item={"benchmark": "tp01_alu_mix", "max_instructions": 1000},
                future=asyncio.get_running_loop().create_future(),
            )
            service.coalescer.open(job)
            await service._run_batch([job])
            return service, stub, job.future.result()

        service, stub, payload = asyncio.run(scenario())
        # attempt 2 reran the batch at the policy's halved budget
        assert stub.budgets == [[1000], [500]]
        assert payload["ok"] is False
        assert payload["stage"] == "timeout"
        assert service.metrics.counters["timeouts_total"] == 2
        assert service.metrics.counters["retries_total"] == 1
        assert service.metrics.counters["failures_total"] == 1
        assert service.coalescer.inflight_count == 0
        failure = service.failures[-1]
        assert failure.stage == "timeout"
        assert failure.attempts == 2

    def test_timeout_surfaces_as_504(self, make_server, serve_model):
        server = make_server()
        service = server.service
        real_pool = service.pool
        service.pool = StallingPool()
        service.request_timeout = 0.05
        service.retry = RetryPolicy(max_attempts=1)
        try:
            status, body = server.estimate(INLINE_BODY)
        finally:
            service.pool = real_pool
        assert status == 504
        assert body["stage"] == "timeout"


class TestExploreEndpoint:
    def test_random_exploration(self, make_server):
        server = make_server()
        status, report = server.request(
            "POST",
            "/explore",
            {"space": "fir_tuned", "strategy": "random", "budget": 2, "top_k": 2},
            timeout=300,
        )
        assert status == 200
        assert len(report["scores"]) == 2
        assert all(score["energy"] > 0 for score in report["scores"])
        _, metrics = server.request("GET", "/metrics")
        assert metrics["counters"]["explore_requests"] == 1
        assert metrics["latency"]["explore"]["count"] == 1

    def test_unknown_space_is_bad_request(self, make_server):
        status, body = make_server().request(
            "POST", "/explore", {"space": "not_a_space"}
        )
        assert status == 400
        assert body["error_type"] == "SpaceError"


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)
class TestForkPool:
    def test_forked_workers_report_tallies(self, make_server):
        server = make_server(workers=1, prewarm=["tp01_alu_mix"])
        _, health = server.request("GET", "/healthz")
        assert health["pool"] == {
            "mode": "fork",
            "workers": 1,
            "prewarmed": 1,
            "restarts": 0,
            "generation": 0,
        }
        status, body = server.estimate({"benchmark": "tp01_alu_mix"})
        assert status == 200
        assert body["dedup"] == "fresh"
        # the worker-side observer snapshot crossed the process boundary
        _, metrics = server.request("GET", "/metrics")
        assert metrics["simulation"]["runs_finished"] >= 1
        assert metrics["simulation"]["instructions"] > 0


class TestCliWiring:
    def test_serve_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve", "model.json"])
        assert args.model == "model.json"
        assert args.port == 8731
        assert args.workers == 2
        assert args.queue_limit == 64
        assert args.batch_max == 8
        assert args.batch_window_ms == 5.0
        assert not args.no_dedupe
        assert args.func.__name__ == "_cmd_serve"

    def test_serve_parser_overrides(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "serve",
                "m.json",
                "--port",
                "0",
                "--workers",
                "0",
                "--no-dedupe",
                "--prewarm",
                "suite",
                "--cache",
                "/tmp/c",
            ]
        )
        assert args.port == 0
        assert args.workers == 0
        assert args.no_dedupe
        assert args.prewarm == "suite"
        assert args.cache == "/tmp/c"


class TestDeadlines:
    def test_expired_deadline_shed_with_504(self, make_server):
        # a 1 ms deadline expires inside the 100 ms batch window, so the
        # job is shed at harvest time without paying for simulation
        server = make_server(batch_window=0.1)
        status, body = server.estimate({**INLINE_BODY, "deadline_ms": 1})
        assert status == 504
        assert body["stage"] == "deadline"
        assert body["error_type"] == "DeadlineExceeded"
        _, metrics = server.request("GET", "/metrics")
        assert metrics["counters"]["deadline_shed_total"] == 1
        # sheds are load management, not failures
        assert metrics["counters"]["failures_total"] == 0

    def test_generous_deadline_serves_normally(self, make_server):
        server = make_server()
        status, body = server.estimate({**INLINE_BODY, "deadline_ms": 60_000})
        assert status == 200
        assert body["energy"] > 0


class TestGracefulDrain:
    def test_drain_completes_inflight_and_refuses_new(self, make_server):
        import time

        server = make_server()
        service = server.service
        gate = threading.Event()
        original = service.pool.submit_estimate_batch

        def gated(items):
            # hold the batch hostage until the test releases the gate,
            # making "in-flight during drain" deterministic
            outer: concurrent.futures.Future = concurrent.futures.Future()

            def run() -> None:
                gate.wait(30)
                try:
                    outer.set_result(original(items).result(30))
                except BaseException as exc:  # noqa: BLE001 — relayed to the service
                    outer.set_exception(exc)

            threading.Thread(target=run, daemon=True).start()
            return outer

        service.pool.submit_estimate_batch = gated

        results: dict[str, tuple] = {}

        def post() -> None:
            results["inflight"] = server.estimate(INLINE_BODY, timeout=60)

        client = threading.Thread(target=post)
        client.start()
        for _ in range(500):
            if service.coalescer.inflight_count:
                break
            time.sleep(0.01)
        assert service.coalescer.inflight_count == 1

        async def begin() -> None:
            service.begin_drain()

        server.run(begin())

        # introspection stays up and reports draining
        status, health = server.request("GET", "/healthz")
        assert status == 200
        assert health["status"] == "draining"
        assert any("shutdown" in reason for reason in health["reasons"])

        # new work is refused with a typed 503
        status, body = server.request("POST", "/estimate", {"benchmark": "tp01_alu_mix"})
        assert status == 503
        assert body["error"] == "draining"

        # the in-flight request still completes successfully
        gate.set()
        client.join(timeout=30)
        status, body = results["inflight"]
        assert status == 200
        assert body["energy"] > 0

        async def drained() -> bool:
            return await service.drain(grace=10)

        assert server.run(drained()) is True
        assert service.metrics.counters["drain_rejected_total"] == 1
