"""Drain-rate estimation and computed Retry-After hints."""

from __future__ import annotations

import math

import pytest

from repro.serve.admission import (
    COLD_START_RETRY_AFTER,
    MAX_RETRY_AFTER,
    DrainRateEstimator,
    retry_after_seconds,
)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestDrainRateEstimator:
    def test_starts_at_zero(self):
        est = DrainRateEstimator(clock=FakeClock())
        assert est.rate == 0.0
        assert est.completions == 0

    def test_steady_stream_converges_on_true_rate(self):
        clock = FakeClock()
        est = DrainRateEstimator(tau=10.0, clock=clock)
        # 5 completions/second for 10 time constants
        for _ in range(1000):
            clock.advance(0.2)
            est.record(1)
        assert est.rate == pytest.approx(5.0, rel=0.05)

    def test_idle_estimate_decays_toward_zero(self):
        clock = FakeClock()
        est = DrainRateEstimator(tau=10.0, clock=clock)
        for _ in range(100):
            clock.advance(0.1)
            est.record(1)
        busy = est.rate
        clock.advance(50.0)  # five time constants of silence
        assert est.rate < busy * math.exp(-4.5)

    def test_batch_record_counts_every_completion(self):
        clock = FakeClock()
        est = DrainRateEstimator(tau=10.0, clock=clock)
        est.record(8)
        assert est.completions == 8
        assert est.rate == pytest.approx(8 / 10.0)

    def test_nonpositive_record_is_ignored(self):
        est = DrainRateEstimator(clock=FakeClock())
        est.record(0)
        est.record(-3)
        assert est.completions == 0

    def test_tau_must_be_positive(self):
        with pytest.raises(ValueError):
            DrainRateEstimator(tau=0.0)

    def test_snapshot_shape(self):
        est = DrainRateEstimator(tau=7.0, clock=FakeClock())
        est.record(2)
        snap = est.snapshot()
        assert snap["tau_seconds"] == 7.0
        assert snap["completions"] == 2
        assert snap["rate_per_s"] > 0


class TestRetryAfterSeconds:
    def test_empty_queue_is_one_second(self):
        assert retry_after_seconds(0, rate=100.0) == 1

    def test_cold_start_fallback_when_rate_unknown(self):
        assert retry_after_seconds(10, rate=0.0) == COLD_START_RETRY_AFTER

    def test_depth_over_rate_rounded_up(self):
        assert retry_after_seconds(10, rate=4.0) == 3  # ceil(2.5)
        assert retry_after_seconds(4, rate=4.0) == 1
        assert retry_after_seconds(5, rate=4.0) == 2

    def test_capped_at_max(self):
        assert retry_after_seconds(10_000, rate=0.5) == MAX_RETRY_AFTER
        assert retry_after_seconds(10_000, rate=0.5, cap=9) == 9

    def test_custom_cold_start(self):
        assert retry_after_seconds(3, rate=0.0, cold_start=5) == 5

    def test_fast_drain_never_quotes_zero(self):
        assert retry_after_seconds(1, rate=1e6) == 1
