"""Operating points over the wire: request schema, dedup, metrics."""

import pytest

from repro.tech import default_calibration

from .conftest import TINY_SOURCE


def _estimate_body(**extra):
    return {"program": {"name": "tiny", "source": TINY_SOURCE}, **extra}


class TestEstimateEndpoint:
    def test_point_scales_energy_and_adds_seconds(self, make_server):
        server = make_server()
        status, base = server.estimate(_estimate_body())
        assert status == 200
        status, scaled = server.estimate(
            _estimate_body(operating_point="65nm@1.1V@800MHz")
        )
        assert status == 200
        scale = default_calibration().energy_scale("65nm@1.1V@800MHz")
        assert scaled["energy"] == pytest.approx(base["energy"] * scale)
        # the simulation itself is untouched by the point
        assert scaled["cycles"] == base["cycles"]
        assert scaled["operating_point"] == "65nm@1.1V@800MHz"
        assert scaled["frequency_mhz"] == 800.0
        assert scaled["seconds"] == pytest.approx(base["cycles"] / 800e6)
        # the fit-point response keeps the legacy wire shape
        assert "operating_point" not in base

    def test_point_is_canonicalized(self, make_server):
        server = make_server()
        status, body = server.estimate(
            _estimate_body(operating_point="65 nm @ 1.1 V @ 800 MHz")
        )
        assert status == 200
        assert body["operating_point"] == "65nm@1.1V@800MHz"

    def test_bad_point_is_rejected(self, make_server):
        server = make_server()
        for bad in ("65nm", "65nm@9V@800MHz", "10nm@0.7V@2000MHz", 65):
            status, body = server.estimate(_estimate_body(operating_point=bad))
            assert status == 400
            assert body["error"] == "bad_request"

    def test_points_dedupe_separately(self, make_server):
        server = make_server()
        for _ in range(2):
            status, _ = server.estimate(
                _estimate_body(operating_point="65nm@1.1V@800MHz")
            )
            assert status == 200
        status, _ = server.estimate(
            _estimate_body(operating_point="90nm@1.2V@600MHz")
        )
        assert status == 200
        status, metrics = server.request("GET", "/metrics")
        assert status == 200
        # the duplicate at the same point merged; the other point did not
        assert metrics["counters"]["duplicates_merged"] == 1

    def test_metrics_count_per_point(self, make_server):
        server = make_server()
        server.estimate(_estimate_body())
        server.estimate(_estimate_body(operating_point="65nm@1.1V@800MHz"))
        server.estimate(_estimate_body(operating_point="65 nm@1.1 V@800 MHz"))
        status, metrics = server.request("GET", "/metrics")
        assert status == 200
        points = metrics["operating_points"]
        assert points["fit-point"] == 1
        assert points["65nm@1.1V@800MHz"] == 2
        status, prom = server.request("GET", "/metrics?format=prom")
        assert status == 200
        assert 'operating_point_requests{point="65nm@1.1V@800MHz"} 2' in prom


class TestExploreEndpoint:
    def test_explore_at_point(self, make_server):
        server = make_server()
        body = {"space": "reed_solomon", "objective": "edp_seconds",
                "operating_point": "65nm@1.1V@800MHz"}
        status, base_body = server.request(
            "POST", "/explore", {"space": "reed_solomon"}
        )
        assert status == 200
        status, scaled_body = server.request("POST", "/explore", body)
        assert status == 200
        scale = default_calibration().energy_scale("65nm@1.1V@800MHz")
        base = {s["key"]: s for s in base_body["scores"]}
        for score in scaled_body["scores"]:
            assert score["operating_point"] == "65nm@1.1V@800MHz"
            assert score["energy"] == pytest.approx(
                base[score["key"]]["energy"] * scale
            )
            assert score["cycles"] == base[score["key"]]["cycles"]

    def test_time_objective_needs_a_point(self, make_server):
        server = make_server()
        status, _ = server.request(
            "POST", "/explore", {"space": "reed_solomon", "objective": "time"}
        )
        assert status == 400
