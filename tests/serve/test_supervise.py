"""Unit tests for the self-healing primitives (`repro.serve.supervise`).

Everything here is pure and clock-injectable — no server, no pool, no
sleeping — so the supervisor's decision logic (quarantine accounting,
breaker state machine, deadline math, chaos-plan determinism) is pinned
exactly.
"""

from __future__ import annotations

import concurrent.futures
import time

import pytest

from repro.serve.supervise import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    InjectedWorkerCrash,
    QuarantineRegistry,
    deadline_at,
    deadline_expired,
    execute_chaos_directive,
    is_pool_crash,
)
from repro.testing.faults import ServiceChaosPlan


class TestIsPoolCrash:
    def test_broken_executor_counts(self):
        assert is_pool_crash(concurrent.futures.BrokenExecutor("gone"))

    def test_injected_crash_counts(self):
        assert is_pool_crash(InjectedWorkerCrash("chaos"))

    def test_ordinary_exceptions_do_not(self):
        assert not is_pool_crash(RuntimeError("boom"))
        assert not is_pool_crash(TimeoutError())


class TestDeadlines:
    def test_none_never_expires(self):
        assert deadline_at(None) is None
        assert not deadline_expired(None)

    def test_future_deadline_not_expired(self):
        assert not deadline_expired(deadline_at(60_000))

    def test_past_deadline_expired(self):
        assert deadline_expired(time.monotonic() - 0.001)


class TestQuarantineRegistry:
    def test_quarantines_at_threshold(self):
        registry = QuarantineRegistry(threshold=2)
        assert registry.record_crash("k1", "prog") is False
        assert not registry.is_quarantined("k1")
        assert registry.record_crash("k1", "prog") is True
        assert registry.is_quarantined("k1")
        assert registry.quarantined_count == 1
        assert registry.total_quarantined == 1

    def test_success_exonerates_suspects(self):
        registry = QuarantineRegistry(threshold=2)
        registry.record_crash("k1")
        registry.record_success("k1")
        # the count restarted: one more crash must not quarantine
        assert registry.record_crash("k1") is False
        assert not registry.is_quarantined("k1")

    def test_release_lifts_quarantine(self):
        registry = QuarantineRegistry(threshold=1)
        registry.record_crash("k1", "prog")
        assert registry.release("k1") is True
        assert not registry.is_quarantined("k1")
        assert registry.release("k1") is False
        # total stays monotonic for metrics even after release
        assert registry.total_quarantined == 1

    def test_snapshot_names_held_keys(self):
        registry = QuarantineRegistry(threshold=1)
        registry.record_crash("kbad", "poison_prog")
        registry.record_crash("kother")  # threshold=1: also quarantined
        snap = registry.snapshot()
        assert snap["held"] == 2
        assert snap["keys"]["kbad"] == "poison_prog"
        assert snap["threshold"] == 1

    def test_bounded_suspect_table(self):
        registry = QuarantineRegistry(threshold=10, max_entries=4)
        for i in range(8):
            registry.record_crash(f"k{i}")
        assert len(registry.snapshot()["suspects"]) == 4

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            QuarantineRegistry(threshold=0)


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, cooldown=30.0, clock=clock)
        assert breaker.state == BREAKER_CLOSED
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.record_failure() is True  # the trip
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allows_pool()
        assert breaker.trips == 1

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        assert breaker.record_failure() is False
        assert breaker.state == BREAKER_CLOSED

    def test_half_open_after_cooldown_then_probe_outcome(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=30.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        clock.now += 31.0
        assert breaker.state == BREAKER_HALF_OPEN
        assert breaker.allows_pool()  # exactly the probe window
        # failed probe: re-open for a fresh cooldown, not a new trip
        assert breaker.record_failure() is False
        assert breaker.state == BREAKER_OPEN
        assert breaker.trips == 1
        clock.now += 31.0
        assert breaker.state == BREAKER_HALF_OPEN
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED

    def test_snapshot_reports_open_duration(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=30.0, clock=clock)
        breaker.record_failure()
        clock.now += 5.0
        snap = breaker.snapshot()
        assert snap["state"] == BREAKER_OPEN
        assert snap["open_for_seconds"] == 5.0
        assert snap["trips"] == 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=0)


class TestExecuteChaosDirective:
    def test_inline_crash_raises_injected(self):
        with pytest.raises(InjectedWorkerCrash):
            execute_chaos_directive("crash", fork=False)

    def test_hang_sleeps_for_the_given_seconds(self):
        began = time.monotonic()
        execute_chaos_directive("hang:0.05", fork=False)
        assert time.monotonic() - began >= 0.05

    def test_unknown_directive_rejected(self):
        with pytest.raises(ValueError):
            execute_chaos_directive("meteor", fork=False)


class TestServiceChaosPlan:
    def test_same_seed_same_schedule(self):
        a = ServiceChaosPlan(seed=7, crashes=3, hangs=1, resets=2, horizon=24)
        b = ServiceChaosPlan(seed=7, crashes=3, hangs=1, resets=2, horizon=24)
        schedule_a = [a.directive_for_batch(i) for i in range(24)]
        schedule_b = [b.directive_for_batch(i) for i in range(24)]
        assert schedule_a == schedule_b
        assert sum(1 for d in schedule_a if d == "crash") == 3
        assert sum(1 for d in schedule_a if d and d.startswith("hang:")) == 1

    def test_directives_fire_once(self):
        plan = ServiceChaosPlan(seed=1, crashes=1, horizon=4)
        fired = [i for i in range(4) if plan.directive_for_batch(i)]
        assert len(fired) == 1
        assert plan.directive_for_batch(fired[0]) is None  # consumed
        assert plan.injected_counts() == {"crash": 1}

    def test_poison_matches_benchmark_and_name(self):
        plan = ServiceChaosPlan(poison=("bad_prog",))
        assert plan.is_poisoned({"benchmark": "bad_prog"})
        assert plan.is_poisoned({"name": "bad_prog", "source": "..."})
        assert not plan.is_poisoned({"benchmark": "fine_prog"})

    def test_connection_resets_by_response_ordinal(self):
        plan = ServiceChaosPlan(seed=3, resets=2, horizon=8)
        hits = [plan.take_connection_reset() for _ in range(8)]
        assert sum(hits) == 2
        assert plan.injected_counts() == {"reset": 2}

    def test_rearm_reschedules_an_unexecuted_directive(self):
        plan = ServiceChaosPlan(seed=1, crashes=1, horizon=4)
        fired = [i for i in range(4) if plan.directive_for_batch(i)]
        assert plan.injected_counts() == {"crash": 1}
        # the batch never reached a worker: hand the directive back
        plan.rearm("crash", not_before=fired[0] + 1)
        assert plan.injected_counts() == {}
        refired = [i for i in range(fired[0] + 1, 10) if plan.directive_for_batch(i)]
        assert len(refired) == 1
        assert plan.injected_counts() == {"crash": 1}

    def test_rearm_skips_occupied_ordinals(self):
        plan = ServiceChaosPlan(seed=2, crashes=2, horizon=2)  # ordinals 0 and 1
        assert plan.directive_for_batch(0) == "crash"
        plan.rearm("crash", not_before=1)  # 1 is still armed: lands on 2
        assert plan.directive_for_batch(1) == "crash"
        assert plan.directive_for_batch(2) == "crash"
        assert plan.injected_counts() == {"crash": 2}

    def test_rejects_overfull_horizon(self):
        with pytest.raises(ValueError):
            ServiceChaosPlan(crashes=20, hangs=10, horizon=24)

    def test_parse_round_trip(self):
        plan = ServiceChaosPlan.parse(
            "seed=7,crashes=3,hangs=1,resets=1,horizon=24,hang=2.5,poison=a|b"
        )
        assert plan.seed == 7
        assert plan.horizon == 24
        assert plan.hang_seconds == 2.5
        assert plan.poison == frozenset({"a", "b"})

    def test_parse_rejects_unknown_keys(self):
        with pytest.raises(ValueError):
            ServiceChaosPlan.parse("seed=7,meteors=2")
        with pytest.raises(ValueError):
            ServiceChaosPlan.parse("justaword")
