"""Coalescer semantics, windowed batch harvesting, and group partitioning."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve import BatchQueue, Coalescer, Job, partition_compatible


def job_without_future(key: str, group: str = "g") -> Job:
    """Jobs for sync-only tests; the future is never awaited."""
    loop = asyncio.new_event_loop()
    try:
        return Job(key=key, group=group, item={"max_instructions": 1}, future=loop.create_future())
    finally:
        loop.close()


class TestCoalescer:
    def test_inflight_attach_counts_waiters(self):
        coalescer = Coalescer()
        job = job_without_future("k1")
        coalescer.open(job)
        assert coalescer.find_inflight("k1") is job
        assert coalescer.find_inflight("k1") is job
        assert job.waiters == 3  # owner + two attachments
        assert coalescer.coalesced == 2
        assert coalescer.find_inflight("other") is None

    def test_close_memoizes_and_clears_inflight(self):
        coalescer = Coalescer()
        job = job_without_future("k1")
        coalescer.open(job)
        coalescer.close("k1", {"ok": True, "energy": 1.0})
        assert coalescer.inflight_count == 0
        assert coalescer.find_memo("k1") == {"ok": True, "energy": 1.0}
        assert coalescer.memo_hits == 1

    def test_failed_close_does_not_memoize(self):
        coalescer = Coalescer()
        coalescer.open(job_without_future("k1"))
        coalescer.close("k1")  # failure path: no payload
        assert coalescer.find_memo("k1") is None
        assert coalescer.memo_hits == 0

    def test_memo_lru_eviction(self):
        coalescer = Coalescer(memo_size=2)
        for key in ("a", "b", "c"):
            coalescer.close(key, {"ok": True, "key": key})
        assert coalescer.memo_count == 2
        assert coalescer.find_memo("a") is None  # oldest evicted
        assert coalescer.find_memo("b") is not None
        # touching "b" makes "c" the eviction victim
        coalescer.close("d", {"ok": True})
        assert coalescer.find_memo("c") is None
        assert coalescer.find_memo("b") is not None

    def test_zero_memo_size_disables_memoization(self):
        coalescer = Coalescer(memo_size=0)
        coalescer.close("a", {"ok": True})
        assert coalescer.memo_count == 0
        assert coalescer.find_memo("a") is None

    def test_negative_memo_size_rejected(self):
        with pytest.raises(ValueError):
            Coalescer(memo_size=-1)


class TestBatchQueue:
    def test_rejects_silly_maxsize(self):
        with pytest.raises(ValueError):
            BatchQueue(0)

    def test_full_queue_raises(self):
        async def scenario():
            queue = BatchQueue(2)
            queue.put_nowait(job_without_future("a"))
            queue.put_nowait(job_without_future("b"))
            with pytest.raises(asyncio.QueueFull):
                queue.put_nowait(job_without_future("c"))
            assert queue.qsize() == 2

        asyncio.run(scenario())

    def test_harvests_queued_jobs_up_to_max(self):
        async def scenario():
            queue = BatchQueue(16)
            for key in "abcde":
                queue.put_nowait(job_without_future(key))
            batch = await queue.next_batch(max_batch=3, window=0.0)
            assert [job.key for job in batch] == ["a", "b", "c"]
            batch = await queue.next_batch(max_batch=8, window=0.0)
            assert [job.key for job in batch] == ["d", "e"]

        asyncio.run(scenario())

    def test_window_waits_for_stragglers(self):
        async def scenario():
            queue = BatchQueue(16)
            queue.put_nowait(job_without_future("first"))

            async def straggler():
                await asyncio.sleep(0.02)
                queue.put_nowait(job_without_future("late"))

            task = asyncio.create_task(straggler())
            batch = await queue.next_batch(max_batch=8, window=0.5)
            await task
            assert [job.key for job in batch] == ["first", "late"]

        asyncio.run(scenario())

    def test_blocks_until_first_job(self):
        async def scenario():
            queue = BatchQueue(4)

            async def producer():
                await asyncio.sleep(0.02)
                queue.put_nowait(job_without_future("only"))

            task = asyncio.create_task(producer())
            batch = await queue.next_batch(max_batch=4, window=0.0)
            await task
            assert [job.key for job in batch] == ["only"]

        asyncio.run(scenario())


class TestPartitionCompatible:
    def test_groups_by_fingerprint_preserving_order(self):
        jobs = [
            job_without_future("a", group="base"),
            job_without_future("b", group="ext"),
            job_without_future("c", group="base"),
            job_without_future("d", group="ext"),
        ]
        groups = partition_compatible(jobs)
        assert [[job.key for job in group] for group in groups] == [
            ["a", "c"],
            ["b", "d"],
        ]

    def test_single_group_stays_whole(self):
        jobs = [job_without_future(k) for k in "abc"]
        assert partition_compatible(jobs) == [jobs]

    def test_empty(self):
        assert partition_compatible([]) == []
