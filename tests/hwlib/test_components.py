"""Tests for the custom-hardware component library."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hwlib import (
    CATEGORY_ORDER,
    CATEGORY_TABLE,
    REFERENCE_WIDTH,
    SPURIOUS_ACTIVATION_WEIGHT,
    ComplexityLaw,
    ComponentCategory,
    ComponentInstance,
    category_info,
)


class TestCategories:
    def test_exactly_ten_categories(self):
        # The paper defines ten custom-hardware categories (Sec. IV-B.1).
        assert len(CATEGORY_ORDER) == 10
        assert len(CATEGORY_TABLE) == 10

    def test_order_is_stable_and_matches_table1(self):
        assert CATEGORY_ORDER[0] is ComponentCategory.MULT
        assert CATEGORY_ORDER[-1] is ComponentCategory.TABLE

    def test_paper_table1_unit_energies(self):
        # Ground-truth unit energies use the paper's Table I values.
        assert category_info(ComponentCategory.MULT).unit_energy == 152.0
        assert category_info(ComponentCategory.ADD_SUB_CMP).unit_energy == 70.0
        assert category_info(ComponentCategory.LOGIC_RED_MUX).unit_energy == 12.0
        assert category_info(ComponentCategory.SHIFTER).unit_energy == 377.0
        assert category_info(ComponentCategory.CUSTOM_REG).unit_energy == 177.0
        assert category_info(ComponentCategory.TIE_MULT).unit_energy == 165.0
        assert category_info(ComponentCategory.TIE_MAC).unit_energy == 190.0
        assert category_info(ComponentCategory.TIE_ADD).unit_energy == 69.0
        assert category_info(ComponentCategory.TIE_CSA).unit_energy == 37.0
        assert category_info(ComponentCategory.TABLE).unit_energy == 27.0

    def test_multiplier_categories_are_quadratic(self):
        for category in (
            ComponentCategory.MULT,
            ComponentCategory.TIE_MULT,
            ComponentCategory.TIE_MAC,
        ):
            assert category_info(category).law is ComplexityLaw.QUADRATIC

    def test_linear_categories(self):
        for category in (
            ComponentCategory.ADD_SUB_CMP,
            ComponentCategory.LOGIC_RED_MUX,
            ComponentCategory.SHIFTER,
            ComponentCategory.CUSTOM_REG,
            ComponentCategory.TIE_ADD,
            ComponentCategory.TIE_CSA,
        ):
            assert category_info(category).law is ComplexityLaw.LINEAR

    def test_spurious_weight_physical(self):
        assert 0.0 < SPURIOUS_ACTIVATION_WEIGHT < 1.0


class TestComplexityLaws:
    def test_linear_reference_point(self):
        assert ComplexityLaw.LINEAR.complexity(REFERENCE_WIDTH) == 1.0
        assert ComplexityLaw.LINEAR.complexity(16) == 0.5

    def test_quadratic_reference_point(self):
        assert ComplexityLaw.QUADRATIC.complexity(REFERENCE_WIDTH) == 1.0
        assert ComplexityLaw.QUADRATIC.complexity(16) == 0.25

    def test_table_law(self):
        # entries x width normalized by 32x32
        assert ComplexityLaw.TABLE.complexity(8, entries=256) == 2.0
        assert ComplexityLaw.TABLE.complexity(4, entries=64) == 0.25

    def test_quadratic_grows_faster_than_linear(self):
        for width in (33, 48, 64):
            assert ComplexityLaw.QUADRATIC.complexity(width) > ComplexityLaw.LINEAR.complexity(width)

    @given(st.integers(min_value=1, max_value=256))
    def test_monotone_in_width(self, width):
        for law in (ComplexityLaw.LINEAR, ComplexityLaw.QUADRATIC):
            assert law.complexity(width + 1) > law.complexity(width)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            ComplexityLaw.LINEAR.complexity(0)

    def test_table_needs_entries(self):
        with pytest.raises(ValueError):
            ComplexityLaw.TABLE.complexity(8)


class TestComponentInstance:
    def test_complexity_and_unit_energy(self):
        instance = ComponentInstance("m", ComponentCategory.MULT, width=32)
        assert instance.complexity == 1.0
        assert instance.unit_energy == 152.0

    def test_narrow_instance_cheaper(self):
        wide = ComponentInstance("w", ComponentCategory.TIE_MULT, width=32)
        narrow = ComponentInstance("n", ComponentCategory.TIE_MULT, width=16)
        assert narrow.unit_energy == pytest.approx(wide.unit_energy / 4)

    def test_table_instance(self):
        instance = ComponentInstance("t", ComponentCategory.TABLE, width=8, entries=256)
        assert instance.complexity == 2.0

    def test_table_requires_entries(self):
        with pytest.raises(ValueError):
            ComponentInstance("t", ComponentCategory.TABLE, width=8)

    def test_width_must_be_positive(self):
        with pytest.raises(ValueError):
            ComponentInstance("x", ComponentCategory.SHIFTER, width=0)
