"""Tutorial: author a custom instruction and inspect what it becomes.

Builds a dot-product-step instruction out of hardware-library primitives
and shows every artifact the toolchain derives from the spec:

* the compiled schedule (latency, per-cycle component activation);
* the hardware instances and their complexity (bit-width law);
* the operand-bus taps (which components base instructions will
  spuriously activate — paper Example 1);
* the generated processor's synthesis report;
* the energy impact, measured with the reference estimator.

Run:  python examples/custom_instruction_tutorial.py
"""

from repro import TieSpec, build_processor, compile_spec, generate_netlist, reference_energy
from repro.asm import assemble
from repro.obs import SimObserver, run_session


def make_dot2() -> TieSpec:
    """dot2 rd, rs, rt — rd = rs.lo16*rt.lo16 + rs.hi16*rt.hi16."""
    spec = TieSpec("dot2", fmt="R3", description="2-way 16-bit dot product")
    a = spec.source("rs")
    b = spec.source("rt")
    a_lo, a_hi = spec.slice(a, 0, 16), spec.slice(a, 16, 16)
    b_lo, b_hi = spec.slice(b, 0, 16), spec.slice(b, 16, 16)
    p0 = spec.tie_mult(a_lo, b_lo)        # 32-bit product
    p1 = spec.tie_mult(a_hi, b_hi)
    spec.result(spec.slice(spec.add(p0, p1, width=33), 0, 32))
    return spec


SOURCE = """
main:
    li a2, 0x00030004   ; (3, 4)
    li a3, 0x00050006   ; (5, 6)
    movi a5, 50
loop:
    dot2 a4, a2, a3     ; 3*5 + 4*6 = 39
    add a2, a2, a4
    addi a5, a5, -1
    bnez a5, loop
    halt
"""


def main() -> None:
    spec = make_dot2()
    impl = compile_spec(spec)

    print("=== compiled custom instruction ===")
    print(f"mnemonic       : {impl.mnemonic} ({spec.fmt} format)")
    print(f"issue latency  : {impl.latency} cycle(s)")
    print(f"accesses GPR   : {impl.accesses_gpr} (feeds the N_sd macro-model variable)")

    print("\nhardware instances (one per operator node):")
    for instance in impl.instances:
        active = impl.active_cycles[instance.name]
        tapped = "bus-tapped" if instance.name in impl.bus_tapped else "internal"
        print(
            f"  {instance.name:<18} {instance.category.value:<13} "
            f"w={instance.width:<3} C={instance.complexity:5.2f}  "
            f"active in cycle(s) {active}  [{tapped}]"
        )

    print("\nper-execution structural-variable increments:")
    for category, activity in impl.per_exec_activity.items():
        print(f"  S_{category.value:<14} += {activity:.3f}")

    config = build_processor("tutorial", [make_dot2()])
    print("\n=== processor generator report ===")
    print(generate_netlist(config).synthesis_report())

    program = assemble(SOURCE, "tutorial", isa=config.isa)
    report, _ = reference_energy(config, program)
    print("\n=== reference energy of the demo kernel ===")
    print(report.summary())

    # The reference estimator streams — no trace is materialized.  To peek
    # at a single retired value, attach a one-off observer instead.
    class FirstDot2(SimObserver):
        needs_result = True
        value = None

        def on_retire(self, event):
            if self.value is None and event.mnemonic == "dot2":
                self.value = event.result

    probe = FirstDot2()
    run_session(config, program, observers=(probe,))
    print(f"\nfirst dot2 result: {probe.value} (expected 39)")


if __name__ == "__main__":
    main()
