"""Re-characterizing for a new processor family (model scope in action).

The macro-model is valid for one processor *family*: a fixed base
configuration plus any custom-instruction extensions.  Custom
instructions never require re-characterization — that is the paper's
contribution — but changing the base configuration's timing/energy
behaviour (here: a 4x slower memory system) does.

This example makes the boundary concrete:

1. the stock xt1040 model estimates a miss-dominated kernel on the
   *stock* core within a few percent;
2. the same model applied to a slow-memory core under-predicts badly
   (each miss now drags 48 penalty cycles of pipeline/clock energy that
   the fitted per-miss coefficient does not contain);
3. re-running the identical characterization suite on the slow-memory
   base produces a new model whose per-miss coefficient has grown to
   match — and accuracy is restored.

Run:  python examples/recharacterize_family.py   (~30 s: two characterizations)
"""

import dataclasses

from repro.analysis import build_context, default_context
from repro.asm import assemble
from repro.programs import characterization_suite
from repro.rtl import RtlEnergyEstimator, generate_netlist
from repro.xtcore import CacheConfig, build_processor

MISS_HEAVY = """
main:
    movi a2, 150
    movi a6, 0
    j b0
    .org 0x4000
b0:
    addi a6, a6, 1
    j b1
    .org 0x8000
b1:
    addi a6, a6, 2
    j b2
    .org 0xC000
b2:
    addi a6, a6, 3
    j b3
    .org 0x10000
b3:
    addi a6, a6, 4
    j b4
    .org 0x14000
b4:
    addi a6, a6, 5
    j b5
    .org 0x18000
b5:
    mull a6, a6, a6
    addi a2, a2, -1
    bnez a2, back
    halt
back:
    j b0
"""


def measure(model, config, program) -> float:
    estimate = model.estimate(config, program)
    reference, _ = RtlEnergyEstimator(generate_netlist(config)).estimate_program(program)
    return 100.0 * (estimate.energy - reference.total) / reference.total


def main() -> None:
    stock = build_processor("xt1040-stock")
    slow = dataclasses.replace(
        stock, name="xt1040-slowmem", icache=CacheConfig(miss_penalty=48)
    )
    program_stock = assemble(MISS_HEAVY, "miss_heavy", isa=stock.isa)
    program_slow = assemble(MISS_HEAVY, "miss_heavy", isa=slow.isa)

    print("characterizing the stock family...")
    stock_model = default_context().model
    print(f"  stock model, stock core     : {measure(stock_model, stock, program_stock):+7.2f}% error")
    print(f"  stock model, slow-mem core  : {measure(stock_model, slow, program_slow):+7.2f}% error  <- out of family")

    print("\nre-characterizing on the slow-memory base (same suite, same flow)...")
    slow_ctx = build_context(suite=characterization_suite(base=slow))
    slow_model = slow_ctx.model
    print(f"  new model,  slow-mem core   : {measure(slow_model, slow, program_slow):+7.2f}% error  <- restored")

    old_cm = stock_model.coefficient("N_cm")
    new_cm = slow_model.coefficient("N_cm")
    print(f"\nper-I$-miss coefficient: stock {old_cm:.0f} -> slow-memory {new_cm:.0f} "
          f"({new_cm / old_cm:.2f}x, tracking the 4x penalty growth in the "
          "miss's pipeline/clock overhead share)")


if __name__ == "__main__":
    main()
