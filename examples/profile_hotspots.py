"""Energy hotspot profiling: where does the energy go?

An extension built on the macro-model's linearity: because the estimate
is a dot product over per-cycle/per-event counts, it decomposes exactly
over any partition of the dynamic execution.  The profiler splits a
traced run by code region (one region per text label) and prices each
region with the same characterized coefficients.

The demo program interleaves three phases with very different energy
signatures — a MAC-heavy filter, a cache-thrashing scatter, and a
branchy scan — and the profile makes the ranking obvious.

Run:  python examples/profile_hotspots.py
"""

from repro.analysis import default_context
from repro.asm import assemble
from repro.core import EnergyProfiler
from repro.programs.extensions import mac16_spec, rdmac_spec, wrmac_spec
from repro.xtcore import build_processor

SOURCE = """
    .data
samples:
    .word 1201, 3390, 871, 2204, 999, 4123, 77, 1580, 2099, 3011, 458, 1777
    .word 905, 2344, 1222, 678, 3504, 91, 2890, 1404, 566, 3178, 841, 1932
scatter: .space 32768
out: .space 12
    .text
main:
    call filter_phase
    call scatter_phase
    call scan_phase
    halt

filter_phase:            ; MAC over the sample window, 40 passes
    movi a8, 40
fp_outer:
    la a2, samples
    movi a3, 24
fp_loop:
    l32i a4, a2, 0
    mac16 a4
    addi a2, a2, 4
    addi a3, a3, -1
    bnez a3, fp_loop
    addi a8, a8, -1
    bnez a8, fp_outer
    rdmac a5
    la a2, out
    s32i a5, a2, 0
    ret

scatter_phase:           ; D$-hostile strided writes (4 KB stride)
    movi a8, 60
scat_outer:
    la a2, scatter
    li a9, 4096
    movi a3, 8
scat_loop:
    l32i a4, a2, 0
    addi a4, a4, 1
    s32i a4, a2, 0
    add a2, a2, a9
    addi a3, a3, -1
    bnez a3, scat_loop
    addi a8, a8, -1
    bnez a8, scat_outer
    ret

scan_phase:              ; branchy threshold scan over the samples
    movi a8, 50
    movi a7, 0
scan_outer:
    la a2, samples
    movi a3, 24
    li a10, 2000
scan_loop:
    l32i a4, a2, 0
    bltu a4, a10, scan_skip
    addi a7, a7, 1
scan_skip:
    addi a2, a2, 4
    addi a3, a3, -1
    bnez a3, scan_loop
    addi a8, a8, -1
    bnez a8, scan_outer
    la a2, out
    s32i a7, a2, 4
    ret
"""


def main() -> None:
    config = build_processor(
        "hotspots", [mac16_spec(), rdmac_spec(), wrmac_spec()]
    )
    program = assemble(SOURCE, "hotspots", isa=config.isa)

    print("characterizing the processor family (one-time cost)...")
    model = default_context().model

    profiler = EnergyProfiler(model)
    report = profiler.profile(config, program)
    print()
    print(report.table())

    whole = model.estimate(config, program)
    drift = abs(report.total_energy - whole.energy) / whole.energy
    print(f"\nprofile total vs whole-program estimate: drift {drift:.2e} "
          "(exact decomposition, up to float rounding)")


if __name__ == "__main__":
    main()
