"""Design-space exploration: pick custom instructions with the macro-model.

The paper's motivating use case (Sec. I): during ASIP design, many
candidate custom-instruction sets must be compared on energy — and
synthesizing + RTL-simulating each candidate is impractical.  With the
energy macro-model, each candidate costs one instruction-set simulation.

This example evaluates the four Reed-Solomon syndrome-kernel design
points (paper Fig. 4) on energy, performance and energy-delay product,
using *only* the fast macro-model path, then cross-checks the chosen
ranking against the slow reference estimator.

Run:  python examples/design_space_exploration.py
"""

from repro.analysis import default_context, spearman_rho
from repro.programs import fir_choices, reed_solomon_choices
from repro.rtl import RtlEnergyEstimator, generate_netlist


def _study(model, cases, title):
    print(f"\n--- {title} " + "-" * max(0, 60 - len(title)))
    rows = []
    for case in cases:
        config, program = case.build()
        estimate = model.estimate(config, program)
        rows.append((case.name, estimate.energy, estimate.cycles,
                     estimate.energy * estimate.cycles))
    print(f"{'choice':<12}{'energy':>13}{'cycles':>9}{'EDP':>15}")
    for name, energy, cycles, edp in rows:
        print(f"{name:<12}{energy:>13.0f}{cycles:>9}{edp:>15.3g}")
    best = min(rows, key=lambda row: row[3])
    print(f"lowest EDP: {best[0]}")
    return rows


def main() -> None:
    print("characterizing the processor family (one-time cost)...")
    model = default_context().model

    # second workload: 16-tap FIR with three implementation choices —
    # note that the plain MAC instruction does NOT pay off (operand
    # packing eats the gain); only the packed 2-tap datapath wins.
    _study(model, fir_choices(), "FIR filter design points (macro-model only)")

    print("\nevaluating 4 Reed-Solomon custom-instruction choices:\n")
    rows = []
    for case in reed_solomon_choices():
        config, program = case.build()
        estimate = model.estimate(config, program)
        hw_area = generate_netlist(config).custom_area
        rows.append(
            {
                "choice": case.name,
                "desc": case.description,
                "energy": estimate.energy,
                "cycles": estimate.cycles,
                "edp": estimate.energy * estimate.cycles,
                "area": hw_area,
                "config": config,
                "program": program,
            }
        )

    header = f"{'choice':<10}{'energy':>13}{'cycles':>9}{'EDP':>15}{'hw area':>9}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['choice']:<10}{row['energy']:>13.0f}{row['cycles']:>9}"
            f"{row['edp']:>15.3g}{row['area']:>9.2f}"
        )

    best = min(rows, key=lambda row: row["edp"])
    print(f"\nlowest energy-delay product: {best['choice']} ({best['desc']})")

    # cross-check the *ranking* against the reference estimator — the
    # relative-accuracy property the paper's Fig. 4 establishes
    print("\ncross-checking ranking against the RTL-level reference...")
    reference_energies = []
    for row in rows:
        estimator = RtlEnergyEstimator(generate_netlist(row["config"]))
        report, _ = estimator.estimate_program(row["program"])
        reference_energies.append(report.total)
    rho = spearman_rho([row["energy"] for row in rows], reference_energies)
    print(f"Spearman rank correlation macro vs reference: {rho:.3f}")
    assert abs(rho - 1.0) < 1e-9, "macro-model ranking diverged from the reference!"
    print("the macro-model ranks every design point exactly as the reference does.")


if __name__ == "__main__":
    main()
