"""Design-space exploration: pick custom instructions with the macro-model.

The paper's motivating use case (Sec. I): during ASIP design, many
candidate custom-instruction sets must be compared on energy — and
synthesizing + RTL-simulating each candidate is impractical.  With the
energy macro-model, each candidate costs one instruction-set simulation.

This example drives :mod:`repro.dse` over the two bundled spaces — the
three FIR implementation choices and the paper's four Fig. 4
Reed-Solomon custom-instruction choices — ranks them on energy-delay
product, and cross-checks the winning ranking against the slow
reference estimator.

Run:  python examples/design_space_exploration.py
"""

from repro.analysis import default_context
from repro.dse import ExhaustiveStrategy, cross_check, explore, get_space


def main() -> None:
    print("characterizing the processor family (one-time cost)...")
    model = default_context().model

    # second workload first: the plain MAC instruction does NOT pay off
    # (operand packing eats the gain); only the packed 2-tap datapath wins.
    fir = explore(model, get_space("fir"), ExhaustiveStrategy())
    print("\n--- FIR filter design points (macro-model only) " + "-" * 12)
    print(fir.table())
    print(f"lowest EDP: {fir.best.program_name}")

    print("\nevaluating 4 Reed-Solomon custom-instruction choices:\n")
    rs = explore(model, get_space("reed_solomon"), ExhaustiveStrategy())
    print(rs.table())
    print(f"\nlowest energy-delay product: {rs.best.program_name}")

    # cross-check the *ranking* against the reference estimator — the
    # relative-accuracy property the paper's Fig. 4 establishes
    print("\ncross-checking ranking against the RTL-level reference...")
    check = cross_check(get_space("reed_solomon"), rs.scores)
    print(check.table())
    assert abs(check.rho - 1.0) < 1e-9, "macro-model ranking diverged from the reference!"
    print("the macro-model ranks every design point exactly as the reference does.")


if __name__ == "__main__":
    main()
