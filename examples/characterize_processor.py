"""Characterize the extensible-processor family, end to end.

Reproduces the paper's Fig. 2 flow, steps 1-8:

* run every characterization test program on its (extended) processor,
  collecting instruction-set statistics and reference RTL energies;
* audit the suite's coverage of the 21 macro-model variables;
* fit the energy coefficients by regression (Table I);
* report the per-program fitting errors (Fig. 3);
* save the model to JSON so downstream users can estimate without any of
  the characterization machinery.

Run:  python examples/characterize_processor.py [output_model.json]
"""

import sys

from repro.core import Characterizer, audit_coverage
from repro.programs import characterization_suite


def main() -> None:
    output_path = sys.argv[1] if len(sys.argv) > 1 else "xt1040_macro_model.json"

    characterizer = Characterizer(method="nnls")
    suite = characterization_suite()
    print(f"characterizing over {len(suite)} test programs...")
    for case in suite:
        config, program = case.build()
        sample = characterizer.add_program(config, program)
        print(f"  {case.name:<24} on {config.name:<14} "
              f"{sample.cycles:>7} cycles  E={sample.energy:12.0f}")

    print("\n--- suite coverage audit " + "-" * 40)
    coverage = audit_coverage(characterizer.samples, characterizer.template)
    print(coverage.summary())
    if not coverage.is_adequate:
        raise SystemExit("characterization suite does not cover the template")

    result = characterizer.fit()
    print("\n--- fitting errors (the paper's Fig. 3) " + "-" * 25)
    print(result.fitting_error_table())

    print("\n--- energy coefficients (the paper's Table I) " + "-" * 19)
    print(result.model.coefficient_table())

    result.model.save(output_path)
    print(f"\nmodel written to {output_path}")


if __name__ == "__main__":
    main()
