"""Quickstart: estimate the energy of a program on an extended processor.

Walks the paper's whole story in one page:

1. define a custom (TIE-substitute) instruction;
2. build an extended processor and run a program on it;
3. characterize the processor family once (regression macro-model);
4. estimate the program's energy the fast way (no RTL) and compare with
   the slow reference estimator.

Run:  python examples/quickstart.py
"""

from repro import TieSpec, build_processor, reference_energy, simulate
from repro.analysis import default_context
from repro.asm import assemble


def make_sataccum() -> TieSpec:
    """A saturating byte accumulator: rd = min(rs + rt, 255)."""
    spec = TieSpec("sataccum", fmt="R3", description="rd = sat8(rs + rt)")
    a = spec.source("rs", width=8)
    b = spec.source("rt", width=8)
    total = spec.add(a, b, width=9)
    clamped = spec.mux(
        spec.compare("ge_u", total, spec.const(256, 9)),
        spec.const(255, 9),
        total,
    )
    spec.result(clamped)
    return spec


SOURCE = """
    .data
pixels:
    .byte 200, 100, 255, 30, 99, 250, 8, 77, 180, 60, 240, 15, 90, 200, 5, 128
out: .word 0
    .text
main:
    la a2, pixels
    movi a3, 8          ; pairs
    movi a6, 0          ; sum of saturated pair sums
loop:
    l8ui a4, a2, 0
    l8ui a5, a2, 1
    sataccum a7, a4, a5
    add a6, a6, a7
    addi a2, a2, 2
    addi a3, a3, -1
    bnez a3, loop
    la a2, out
    s32i a6, a2, 0
    halt
"""


def main() -> None:
    # 1-2. extended processor + functional simulation
    config = build_processor("quickstart", [make_sataccum()])
    print(config.describe())
    program = assemble(SOURCE, "quickstart", isa=config.isa)
    result = simulate(config, program)
    print(f"\nprogram output: {result.word('out')}  "
          f"({result.instructions} instructions, {result.cycles} cycles)\n")

    # 3. the macro-model is characterized once per processor *family*
    #    (this runs the full flow over the bundled 50-program suite; ~10 s)
    print("characterizing the processor family (one-time cost)...")
    model = default_context().model

    # 4. fast estimation vs slow reference
    estimate = model.estimate(config, program)
    reference, _ = reference_energy(config, program)
    error = 100.0 * (estimate.energy - reference.total) / reference.total
    print(f"\nmacro-model estimate : {estimate.energy:12.1f} units   (ISS only)")
    print(f"reference (RTL-level): {reference.total:12.1f} units   (netlist + trace walk)")
    print(f"estimation error     : {error:+.2f}%")


if __name__ == "__main__":
    main()
