"""Accuracy metrics used across the evaluation.

Small, dependency-light helpers: percentage errors, their aggregates, and
the Spearman rank correlation used to assess *relative* accuracy (the
paper's Fig. 4 criterion: the macro-model and reference profiles must
track one another across design points, i.e. rank identically).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def percent_error(estimate: float, reference: float) -> float:
    """Signed percentage error of ``estimate`` w.r.t. ``reference``."""
    if reference == 0:
        return 0.0 if estimate == 0 else float("inf")
    return 100.0 * (estimate - reference) / reference


def percent_errors(estimates: Sequence[float], references: Sequence[float]) -> np.ndarray:
    if len(estimates) != len(references):
        raise ValueError(
            f"length mismatch: {len(estimates)} estimates vs {len(references)} references"
        )
    return np.array([percent_error(e, r) for e, r in zip(estimates, references)])


def mean_absolute_percent_error(estimates: Sequence[float], references: Sequence[float]) -> float:
    errors = percent_errors(estimates, references)
    return float(np.mean(np.abs(errors)))


def max_absolute_percent_error(estimates: Sequence[float], references: Sequence[float]) -> float:
    errors = percent_errors(estimates, references)
    return float(np.max(np.abs(errors)))


def rms_percent_error(estimates: Sequence[float], references: Sequence[float]) -> float:
    errors = percent_errors(estimates, references)
    return float(np.sqrt(np.mean(errors**2)))


def _ranks(values: Sequence[float]) -> np.ndarray:
    """Average ranks (1-based) with tie handling."""
    array = np.asarray(values, dtype=float)
    order = np.argsort(array, kind="stable")
    ranks = np.empty(len(array), dtype=float)
    i = 0
    while i < len(array):
        j = i
        while j + 1 < len(array) and array[order[j + 1]] == array[order[i]]:
            j += 1
        ranks[order[i : j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    return ranks


def spearman_rho(a: Sequence[float], b: Sequence[float]) -> float:
    """Spearman rank correlation between two profiles.

    rho = 1.0 means the two estimators rank all design points identically
    — the paper's notion of "good relative accuracy".
    """
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    if len(a) < 2:
        raise ValueError("need at least two points for a rank correlation")
    ranks_a = _ranks(a)
    ranks_b = _ranks(b)
    std_a = np.std(ranks_a)
    std_b = np.std(ranks_b)
    if std_a == 0 or std_b == 0:
        return 1.0 if np.array_equal(ranks_a, ranks_b) else 0.0
    covariance = np.mean((ranks_a - ranks_a.mean()) * (ranks_b - ranks_b.mean()))
    return float(covariance / (std_a * std_b))
