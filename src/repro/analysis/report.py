"""One-shot Markdown report over all experiments.

``markdown_report`` stitches every table/figure (and optionally the
ablations) into a single self-contained document — the machine-generated
companion to the hand-annotated ``EXPERIMENTS.md``.  Exposed on the
command line as ``python -m repro experiments --output report.md``.
"""

from __future__ import annotations

from typing import Optional

from .experiments import (
    ExperimentContext,
    default_context,
    run_ablation_bitwidth,
    run_ablation_ground_truth,
    run_ablation_hybrid,
    run_fig3,
    run_fig4,
    run_suite_quality,
    run_suite_size_study,
    run_table1,
    run_table2,
)


def _section(title: str, body: str) -> str:
    return f"## {title}\n\n```\n{body}\n```\n"


def markdown_report(
    ctx: Optional[ExperimentContext] = None,
    include_ablations: bool = False,
) -> str:
    """Render all evaluation artifacts as one Markdown document."""
    ctx = ctx or default_context()
    table2 = run_table2(ctx)
    fig3 = run_fig3(ctx)
    fig4 = run_fig4(ctx)

    parts = [
        "# Energy Estimation for Extensible Processors — regenerated evaluation\n",
        f"Characterization: {len(ctx.suite)} test programs, "
        f"method `{ctx.method}`, template "
        f"`{ctx.model.template.name}`.\n",
        "| metric | value |\n|---|---|",
        f"| suite fitting error | RMS {fig3.rms:.2f} %, max {fig3.max_abs:.2f} % |",
        f"| unseen-application error | mean {table2.mean_abs_percent_error:.2f} %, "
        f"max {table2.max_abs_percent_error:.2f} % |",
        f"| Reed-Solomon relative accuracy | Spearman rho = "
        f"{fig4.rank_correlation:.3f}, max {fig4.max_abs_percent_error:.2f} % |",
        f"| mean macro-vs-reference speedup | {table2.mean_speedup:.1f}x |\n",
        _section("Table I — energy coefficients", run_table1(ctx).report()),
        _section("Fig. 3 — fitting errors", fig3.report()),
        _section("Table II — unseen-application accuracy", table2.report()),
        _section("Fig. 4 — relative accuracy (Reed-Solomon)", fig4.report()),
        _section("Suite quality (LOOCV)", run_suite_quality(ctx).report()),
        _section("Suite-size study", run_suite_size_study(ctx).report()),
    ]
    if include_ablations:
        parts.append(_section("Ablation: hybrid template", run_ablation_hybrid(ctx).report()))
        parts.append(_section("Ablation: bit-width law", run_ablation_bitwidth(ctx).report()))
        parts.append(
            _section("Ablation: ground-truth data dependence", run_ablation_ground_truth(ctx).report())
        )
    return "\n".join(parts)
