"""Plain-text chart rendering for the paper's figures.

The paper's Fig. 3 is a bar chart of per-program fitting errors and
Fig. 4 a grouped profile over design points.  This module renders those
shapes as deterministic ASCII art so the benchmark artifacts are figures
(not just tables) while remaining diff-able and dependency-free.
"""

from __future__ import annotations

from typing import Optional, Sequence


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    unit: str = "%",
    title: str = "",
) -> str:
    """Horizontal bar chart with signed values around a zero axis.

    Negative values extend left of the axis, positive values right —
    matching the signed-error presentation of the paper's Fig. 3.
    """
    if len(labels) != len(values):
        raise ValueError(f"{len(labels)} labels but {len(values)} values")
    if not labels:
        raise ValueError("empty chart")
    if width < 10:
        raise ValueError("chart width must be at least 10 columns")

    magnitude = max(abs(v) for v in values) or 1.0
    half = width // 2
    label_width = max(len(label) for label in labels)

    lines: list[str] = []
    if title:
        lines.append(title)
    axis_header = " " * (label_width + 1) + f"{-magnitude:.1f}".rjust(half) + "0".rjust(1) + f"+{magnitude:.1f}".rjust(half)
    lines.append(axis_header)
    for label, value in zip(labels, values):
        cells = int(round(abs(value) / magnitude * half))
        if value < 0:
            bar = " " * (half - cells) + "#" * cells + "|" + " " * half
        else:
            bar = " " * half + "|" + "#" * cells + " " * (half - cells)
        lines.append(f"{label.ljust(label_width)} {bar} {value:+.2f}{unit}")
    return "\n".join(lines)


def profile_chart(
    labels: Sequence[str],
    series: dict[str, Sequence[float]],
    width: int = 46,
    log: bool = True,
    title: str = "",
) -> str:
    """Grouped magnitude chart for two (or more) profiles per design point.

    Used for Fig. 4: the macro-model and reference energy profiles over
    the custom-instruction choices, side by side.  ``log=True`` scales
    bars logarithmically — the paper's profiles span >10x.
    """
    import math

    if not labels or not series:
        raise ValueError("empty chart")
    for name, values in series.items():
        if len(values) != len(labels):
            raise ValueError(f"series {name!r} has {len(values)} values for {len(labels)} labels")
        if any(v <= 0 for v in values):
            raise ValueError(f"series {name!r} must be positive for a magnitude chart")

    peak = max(max(values) for values in series.values())
    floor = min(min(values) for values in series.values())
    label_width = max(len(label) for label in labels)
    series_width = max(len(name) for name in series)

    def bar_cells(value: float) -> int:
        if log and peak > floor:
            span = math.log10(peak) - math.log10(floor) or 1.0
            fraction = (math.log10(value) - math.log10(floor)) / span
            # keep the smallest value visible
            return max(1, int(round(fraction * (width - 1))) + 1)
        return max(1, int(round(value / peak * width)))

    lines: list[str] = []
    if title:
        lines.append(title + ("   (log scale)" if log else ""))
    for i, label in enumerate(labels):
        for j, (name, values) in enumerate(series.items()):
            prefix = label.ljust(label_width) if j == 0 else " " * label_width
            value = values[i]
            lines.append(
                f"{prefix} {name.ljust(series_width)} "
                f"{'#' * bar_cells(value)} {value:,.0f}"
            )
        lines.append("")
    return "\n".join(lines[:-1])


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """A one-line 8-level sparkline (for compact report footers)."""
    if not values:
        raise ValueError("empty sparkline")
    glyphs = " .:-=+*#"
    low = min(values)
    high = max(values)
    span = (high - low) or 1.0
    cells = [glyphs[min(7, int((v - low) / span * 7.999))] for v in values]
    if width is not None and len(cells) > width:
        # downsample by taking the max of each bucket (peaks matter)
        bucket = len(cells) / width
        cells = [
            max(cells[int(i * bucket) : max(int(i * bucket) + 1, int((i + 1) * bucket))])
            for i in range(width)
        ]
    return "".join(cells)
