"""The paper's experiments, runnable as a library.

One function per table/figure of the evaluation section, all operating on
a shared :class:`ExperimentContext` (the characterized macro-model plus
the suites), so the pytest benchmarks, the examples and the
EXPERIMENTS.md generator never duplicate experiment logic:

=====================  ====================================================
:func:`run_table1`     fitted energy coefficients (paper Table I)
:func:`run_fig3`       per-test-program fitting errors (paper Fig. 3)
:func:`run_table2`     unseen-application accuracy + speedup (Table II)
:func:`run_fig4`       Reed-Solomon relative accuracy (Fig. 4)
:func:`run_speedup`    macro-model vs reference wall-clock (Sec. V-B text)
:func:`run_ablation_hybrid`        hybrid vs instruction-only template
:func:`run_ablation_bitwidth`      C(w) law vs unweighted structural vars
:func:`run_ablation_ground_truth`  data-dependent vs frozen ground truth
=====================  ====================================================
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from ..core import (
    CharacterizationResult,
    CharacterizationRunner,
    Characterizer,
    CoverageReport,
    EstimationStudy,
    MacroModelTemplate,
    RunReport,
    RunnerTask,
    StudyReport,
    instruction_level_template,
    unweighted_template,
)
from ..core.runner import default_estimate
from ..core.model import EnergyMacroModel
from ..programs import (
    BenchmarkCase,
    application_suite,
    characterization_suite,
    reed_solomon_choices,
)
from ..rtl import RtlEnergyEstimator, generate_netlist
from ..obs import run_session
from .metrics import spearman_rho


@dataclasses.dataclass
class ExperimentContext:
    """Shared state: the characterized model + evaluation suites."""

    characterization: CharacterizationResult
    coverage: CoverageReport
    suite: list[BenchmarkCase]
    applications: list[BenchmarkCase]
    rs_choices: list[BenchmarkCase]
    method: str
    #: fault-isolation record of the characterization run (None only for
    #: contexts built before the fault-tolerant runner existed)
    run_report: Optional[RunReport] = None

    @property
    def model(self) -> EnergyMacroModel:
        return self.characterization.model


def build_context(
    method: str = "nnls",
    template: Optional[MacroModelTemplate] = None,
    include_variants: bool = True,
    suite: Optional[Sequence[BenchmarkCase]] = None,
    fault_plan=None,
    checkpoint_path: Optional[str] = None,
    max_failures: Optional[int] = None,
) -> ExperimentContext:
    """Run the full characterization flow and package the context.

    The characterization loop runs under the fault-tolerant
    :class:`~repro.core.CharacterizationRunner`, so a paper-reproduction
    sweep survives individual bad samples instead of discarding the run.
    ``fault_plan`` (a :class:`repro.testing.faults.FaultPlan`) injects
    deterministic faults into the simulate/estimate stages — used by the
    robustness tests; ``checkpoint_path`` persists samples as they
    complete.  Failures are reported in ``ExperimentContext.run_report``.
    """
    cases = list(suite) if suite is not None else characterization_suite(include_variants)
    characterizer = Characterizer(template=template, method=method)
    simulate = estimate = None
    if fault_plan is not None:
        simulate = fault_plan.wrap_session()
        estimate = fault_plan.wrap_estimate(default_estimate(characterizer))
    runner = CharacterizationRunner(
        characterizer,
        checkpoint_path=checkpoint_path,
        max_failures=max_failures,
        simulate=simulate,
        estimate_energy=estimate,
    )
    report = runner.run(
        [RunnerTask.from_case(case) for case in cases],
        with_loocv=(method != "nnls"),
    )
    assert report.result is not None and report.coverage is not None
    return ExperimentContext(
        characterization=report.result,
        coverage=report.coverage,
        suite=cases,
        applications=application_suite(),
        rs_choices=reed_solomon_choices(),
        method=method,
        run_report=report,
    )


_CACHED_CONTEXT: Optional[ExperimentContext] = None


def default_context() -> ExperimentContext:
    """A process-wide cached default context (characterization is slow)."""
    global _CACHED_CONTEXT
    if _CACHED_CONTEXT is None:
        _CACHED_CONTEXT = build_context()
    return _CACHED_CONTEXT


# ---------------------------------------------------------------------------
# Table I — energy coefficients
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class Table1Result:
    model: EnergyMacroModel
    coverage: CoverageReport

    def report(self) -> str:
        return self.model.coefficient_table() + "\n\n" + self.coverage.summary()


def run_table1(ctx: Optional[ExperimentContext] = None) -> Table1Result:
    """Paper Table I: the 21 fitted energy coefficients."""
    ctx = ctx or default_context()
    return Table1Result(model=ctx.model, coverage=ctx.coverage)


# ---------------------------------------------------------------------------
# Fig. 3 — fitting errors of the characterization programs
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class Fig3Result:
    characterization: CharacterizationResult

    @property
    def rms(self) -> float:
        return self.characterization.regression.rms_percent_error

    @property
    def max_abs(self) -> float:
        return self.characterization.regression.max_abs_percent_error

    def report(self) -> str:
        from .charts import bar_chart

        chart = bar_chart(
            [sample.name for sample in self.characterization.samples],
            list(self.characterization.regression.percent_errors),
            title="fitting error per characterization program (the paper's Fig. 3)",
        )
        return self.characterization.fitting_error_table() + "\n\n" + chart


def run_fig3(ctx: Optional[ExperimentContext] = None) -> Fig3Result:
    """Paper Fig. 3: per-test-program fitting error profile."""
    ctx = ctx or default_context()
    return Fig3Result(characterization=ctx.characterization)


# ---------------------------------------------------------------------------
# Table II — application accuracy (+ the speedup claim)
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class Table2Result:
    study: StudyReport

    @property
    def mean_abs_percent_error(self) -> float:
        return self.study.mean_abs_percent_error

    @property
    def max_abs_percent_error(self) -> float:
        return self.study.max_abs_percent_error

    @property
    def mean_speedup(self) -> float:
        return self.study.mean_speedup

    def report(self) -> str:
        return self.study.table()


def run_table2(ctx: Optional[ExperimentContext] = None) -> Table2Result:
    """Paper Table II: macro-model vs reference on ten unseen apps."""
    ctx = ctx or default_context()
    study = EstimationStudy(ctx.model)
    for case in ctx.applications:
        config, program = case.build()
        study.compare(config, program, max_instructions=case.max_instructions)
    return Table2Result(study=study.report())


def run_speedup(ctx: Optional[ExperimentContext] = None) -> Table2Result:
    """The paper's Sec. V-B speedup claim rides on the Table II runs."""
    return run_table2(ctx)


# ---------------------------------------------------------------------------
# Fig. 4 — relative accuracy over Reed-Solomon design points
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class Fig4Row:
    choice: str
    macro_energy: float
    reference_energy: float
    cycles: int

    @property
    def percent_error(self) -> float:
        if self.reference_energy == 0:
            return 0.0
        return 100.0 * (self.macro_energy - self.reference_energy) / self.reference_energy


@dataclasses.dataclass
class Fig4Result:
    rows: list[Fig4Row]

    @property
    def rank_correlation(self) -> float:
        return spearman_rho(
            [row.macro_energy for row in self.rows],
            [row.reference_energy for row in self.rows],
        )

    @property
    def max_abs_percent_error(self) -> float:
        return max(abs(row.percent_error) for row in self.rows)

    def report(self) -> str:
        lines = [
            f"{'custom-instruction choice':<28}{'macro':>12}{'reference':>12}"
            f"{'err %':>8}{'cycles':>10}"
        ]
        lines.append("-" * 70)
        for row in self.rows:
            lines.append(
                f"{row.choice:<28}{row.macro_energy:>12.1f}{row.reference_energy:>12.1f}"
                f"{row.percent_error:>+8.2f}{row.cycles:>10}"
            )
        lines.append("-" * 70)
        lines.append(
            f"Spearman rank correlation (profiles track): {self.rank_correlation:.3f}   "
            f"max |err| {self.max_abs_percent_error:.2f}%"
        )
        from .charts import profile_chart

        chart = profile_chart(
            [row.choice for row in self.rows],
            {
                "macro": [row.macro_energy for row in self.rows],
                "ref  ": [row.reference_energy for row in self.rows],
            },
            title="energy profile over custom-instruction choices (the paper's Fig. 4)",
        )
        return "\n".join(lines) + "\n\n" + chart


def run_fig4(ctx: Optional[ExperimentContext] = None) -> Fig4Result:
    """Paper Fig. 4: Reed-Solomon with four custom-instruction choices."""
    ctx = ctx or default_context()
    rows: list[Fig4Row] = []
    for case in ctx.rs_choices:
        config, program = case.build()
        macro = ctx.model.estimate(config, program, max_instructions=case.max_instructions)
        estimator = RtlEnergyEstimator(generate_netlist(config))
        reference, _ = estimator.estimate_program(
            program, max_instructions=case.max_instructions
        )
        rows.append(
            Fig4Row(
                choice=case.name,
                macro_energy=macro.energy,
                reference_energy=reference.total,
                cycles=macro.cycles,
            )
        )
    return Fig4Result(rows=rows)


# ---------------------------------------------------------------------------
# Suite-size study (extension): how many programs does the fit need?
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class SuiteSizeRow:
    size: int
    rank: int
    fit_rms: float
    app_mean_error: float
    app_max_error: float


@dataclasses.dataclass
class SuiteSizeResult:
    """Unseen-application error as a function of characterization-suite size.

    The quantitative basis for DESIGN.md deviation D2: the paper's ~25
    real benchmarks evidently spanned enough directions; our synthetic
    25-program core alone leaves the 21-coefficient fit under-determined,
    and the density/width/toggle variants buy the identifiability back.
    """

    rows: list[SuiteSizeRow]

    def report(self) -> str:
        lines = [
            f"{'suite size':>10}{'rank':>6}{'fit RMS %':>11}"
            f"{'apps mean %':>13}{'apps max %':>12}"
        ]
        lines.append("-" * 52)
        for row in self.rows:
            lines.append(
                f"{row.size:>10}{row.rank:>6}{row.fit_rms:>11.2f}"
                f"{row.app_mean_error:>13.2f}{row.app_max_error:>12.2f}"
            )
        return "\n".join(lines)


def run_suite_size_study(
    ctx: Optional[ExperimentContext] = None,
    sizes: Optional[Sequence[int]] = None,
) -> SuiteSizeResult:
    """Refit on growing prefixes of the suite; evaluate Table II error."""
    ctx = ctx or default_context()
    total = len(ctx.suite)
    if sizes is None:
        sizes = sorted({25, 25 + (total - 25) // 3, 25 + 2 * (total - 25) // 3, total})
    rows: list[SuiteSizeRow] = []
    design = ctx.characterization.design
    energies = ctx.characterization.energies
    for size in sizes:
        sub_design = design[:size]
        sub_energies = energies[:size]
        from ..core.regression import fit_nnls

        regression = fit_nnls(sub_design, sub_energies)
        model = EnergyMacroModel(ctx.model.template, regression.coefficients)
        errors = _application_errors(model, ctx.applications)
        mean, peak = _mean_max(errors)
        rows.append(
            SuiteSizeRow(
                size=size,
                rank=int(np.linalg.matrix_rank(sub_design)),
                fit_rms=regression.rms_percent_error,
                app_mean_error=mean,
                app_max_error=peak,
            )
        )
    return SuiteSizeResult(rows=rows)


# ---------------------------------------------------------------------------
# Suite quality (extension): LOOCV + coverage in one report
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class SuiteQualityResult:
    """Cross-validated generalization of the characterization suite.

    Leave-one-out errors (OLS) approximate how the fit would estimate a
    characterization program it had never seen — a suite-internal preview
    of Table II generalization, and the diagnostic a suite designer
    iterates on.  High-leverage programs (the only sample exercising some
    variable direction) show up as LOO outliers.
    """

    names: list[str]
    loo_percent_errors: np.ndarray
    coverage: CoverageReport

    @property
    def loo_rms(self) -> float:
        return float(np.sqrt(np.mean(self.loo_percent_errors**2)))

    @property
    def loo_max_abs(self) -> float:
        return float(np.max(np.abs(self.loo_percent_errors)))

    def worst(self, count: int = 5) -> list[tuple[str, float]]:
        order = np.argsort(-np.abs(self.loo_percent_errors))
        return [(self.names[i], float(self.loo_percent_errors[i])) for i in order[:count]]

    def report(self) -> str:
        lines = [
            f"suite quality: {len(self.names)} programs, "
            f"LOOCV RMS {self.loo_rms:.2f}%  max |err| {self.loo_max_abs:.2f}%",
            "highest-leverage programs (largest leave-one-out errors):",
        ]
        for name, error in self.worst():
            lines.append(f"  {name:<26}{error:+8.2f}%")
        lines.append("")
        lines.append(self.coverage.summary())
        return "\n".join(lines)


def run_suite_quality(ctx: Optional[ExperimentContext] = None) -> SuiteQualityResult:
    """Leave-one-out cross-validation + coverage audit of the suite."""
    from ..core.regression import leave_one_out_errors

    ctx = ctx or default_context()
    design = ctx.characterization.design
    energies = ctx.characterization.energies
    loo = leave_one_out_errors(design, energies)
    return SuiteQualityResult(
        names=[sample.name for sample in ctx.characterization.samples],
        loo_percent_errors=loo,
        coverage=ctx.coverage,
    )


# ---------------------------------------------------------------------------
# Ablations (DESIGN.md design-choice studies)
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class AblationResult:
    name: str
    baseline_label: str
    variant_label: str
    baseline_mean_error: float
    variant_mean_error: float
    baseline_max_error: float
    variant_max_error: float

    def report(self) -> str:
        return (
            f"ablation {self.name}:\n"
            f"  {self.baseline_label:<38} mean |err| {self.baseline_mean_error:6.2f}%  "
            f"max {self.baseline_max_error:6.2f}%\n"
            f"  {self.variant_label:<38} mean |err| {self.variant_mean_error:6.2f}%  "
            f"max {self.variant_max_error:6.2f}%"
        )


def _application_errors(model: EnergyMacroModel, applications: list[BenchmarkCase]) -> list[float]:
    errors: list[float] = []
    for case in applications:
        config, program = case.build()
        macro = model.estimate(config, program, max_instructions=case.max_instructions)
        estimator = RtlEnergyEstimator(generate_netlist(config))
        reference, _ = estimator.estimate_program(
            program, max_instructions=case.max_instructions
        )
        errors.append(100.0 * (macro.energy - reference.total) / reference.total)
    return errors


def _mean_max(errors: list[float]) -> tuple[float, float]:
    magnitudes = [abs(e) for e in errors]
    return sum(magnitudes) / len(magnitudes), max(magnitudes)


def run_ablation_hybrid(ctx: Optional[ExperimentContext] = None) -> AblationResult:
    """Hybrid (instruction + structural) vs instruction-level-only template.

    Tests the paper's core hypothesis (Sec. I): for extensible processors
    a hybrid macro-model is needed; instruction-level variables alone
    cannot account for custom-hardware energy.
    """
    ctx = ctx or default_context()
    alt = build_context(
        method=ctx.method, template=instruction_level_template(), suite=ctx.suite
    )
    base_errors = _application_errors(ctx.model, ctx.applications)
    variant_errors = _application_errors(alt.model, ctx.applications)
    base_mean, base_max = _mean_max(base_errors)
    var_mean, var_max = _mean_max(variant_errors)
    return AblationResult(
        name="hybrid-vs-instruction-only",
        baseline_label="hybrid template (21 vars, the paper's)",
        variant_label="instruction-level only (11 vars)",
        baseline_mean_error=base_mean,
        variant_mean_error=var_mean,
        baseline_max_error=base_max,
        variant_max_error=var_max,
    )


def run_ablation_bitwidth(ctx: Optional[ExperimentContext] = None) -> AblationResult:
    """Bit-width complexity law C(w) vs unweighted instance counting.

    Tests the paper's Sec. IV-B.1 choice of weighting structural variables
    by the linear/quadratic complexity of each component.
    """
    ctx = ctx or default_context()
    alt = build_context(method=ctx.method, template=unweighted_template(), suite=ctx.suite)
    base_errors = _application_errors(ctx.model, ctx.applications)
    variant_errors = _application_errors(alt.model, ctx.applications)
    base_mean, base_max = _mean_max(base_errors)
    var_mean, var_max = _mean_max(variant_errors)
    return AblationResult(
        name="bitwidth-law",
        baseline_label="complexity-weighted C(w) (the paper's)",
        variant_label="unweighted instance-cycle counting",
        baseline_mean_error=base_mean,
        variant_mean_error=var_mean,
        baseline_max_error=base_max,
        variant_max_error=var_max,
    )


def run_ablation_ground_truth(ctx: Optional[ExperimentContext] = None) -> AblationResult:
    """Where does the error come from?  Freeze ground-truth data dependence.

    With switching activity and per-mnemonic variation frozen at their
    means, the reference estimator becomes expressible by the template
    and the fit collapses toward 0% — evidence that the headline errors
    measure the class-level *abstraction*, not the regression machinery.
    """
    ctx = ctx or default_context()
    characterizer = Characterizer(method=ctx.method)
    for case in ctx.suite:
        config, program = case.build()
        frozen = RtlEnergyEstimator(generate_netlist(config), data_dependent=False)
        observer = frozen.observer()
        sim = run_session(
            config,
            program,
            observers=(observer,),
            max_instructions=case.max_instructions,
        )
        report = observer.report
        from ..core import extract_variables
        from ..core.characterize import CharacterizationSample

        characterizer.add_sample(
            CharacterizationSample(
                name=case.name,
                processor_name=config.name,
                variables=extract_variables(sim.stats, config, characterizer.template),
                energy=report.total,
                stats=sim.stats,
            )
        )
    frozen_fit = characterizer.fit()
    live = ctx.characterization.regression
    return AblationResult(
        name="ground-truth-data-dependence",
        baseline_label="data-dependent ground truth (fit error)",
        variant_label="frozen-activity ground truth (fit error)",
        baseline_mean_error=live.mean_abs_percent_error,
        variant_mean_error=frozen_fit.regression.mean_abs_percent_error,
        baseline_max_error=live.max_abs_percent_error,
        variant_max_error=frozen_fit.regression.max_abs_percent_error,
    )
