"""The characterization flow (paper Fig. 2, steps 1-8).

For every test program (on whatever extended-processor configuration it
targets) the characterizer:

1. simulates it with full tracing (step 6: instruction-set simulation);
2. runs the dynamic resource-usage analysis (step 7) and extracts the
   template variables — one design-matrix row;
3. generates the custom processor's netlist and runs the reference RTL
   energy estimator on the trace (steps 4-5) — one energy sample;

and finally fits the energy coefficients by regression (step 8).

Because regression characterization is *in-situ*, any program works — the
only requirement is diversity: the suite must exercise every template
variable, which :mod:`repro.core.coverage` audits.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Callable, Optional, Sequence

import numpy as np

from ..asm import Program
from ..obs import run_session
from ..rtl import RtlEnergyEstimator, generate_netlist
from ..tech import OperatingPoint, default_calibration
from ..xtcore import DEFAULT_MAX_INSTRUCTIONS, ExecutionStats, ProcessorConfig
from .extract import extract_variables
from .model import EnergyMacroModel
from .regression import (
    RegressionResult,
    fit_least_squares,
    fit_nnls,
    fit_ridge,
    leave_one_out_errors,
)
from .template import MacroModelTemplate, default_template

#: On-disk format tag for saved sample sets and runner checkpoints.
SAMPLES_FORMAT = "repro-characterization-samples/1"


def atomic_write_json(path: str, payload: dict) -> None:
    """Write JSON durably: tmp file in the same directory + ``os.replace``.

    A crash mid-write leaves either the previous file or a stray ``.tmp``,
    never a truncated checkpoint masquerading as a valid one.
    """
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)


@dataclasses.dataclass
class CharacterizationSample:
    """One (program, processor) characterization point."""

    name: str
    processor_name: str
    variables: np.ndarray
    energy: float
    stats: ExecutionStats

    @property
    def cycles(self) -> int:
        return self.stats.total_cycles

    def to_payload(self) -> dict:
        """JSON-serializable form (variables + energy; stats reduced)."""
        return {
            "name": self.name,
            "processor": self.processor_name,
            "variables": [float(v) for v in self.variables],
            "energy": float(self.energy),
            "cycles": int(self.stats.total_cycles) if self.stats else 0,
            "instructions": int(self.stats.total_instructions) if self.stats else 0,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CharacterizationSample":
        stats = ExecutionStats()
        stats.total_cycles = int(payload.get("cycles", 0))
        stats.total_instructions = int(payload.get("instructions", 0))
        return cls(
            name=payload["name"],
            processor_name=payload["processor"],
            variables=np.asarray(payload["variables"], dtype=float),
            energy=float(payload["energy"]),
            stats=stats,
        )


@dataclasses.dataclass
class CharacterizationResult:
    """A fitted macro-model plus everything needed to audit the fit."""

    model: EnergyMacroModel
    samples: list[CharacterizationSample]
    design: np.ndarray
    energies: np.ndarray
    regression: RegressionResult
    loo_percent_errors: Optional[np.ndarray] = None

    @property
    def fitting_errors(self) -> np.ndarray:
        """Per-test-program percentage fitting errors (the paper's Fig. 3)."""
        return self.regression.percent_errors

    def fitting_error_table(self) -> str:
        """Fig. 3 as text: fitting error per characterization program."""
        lines = [f"{'#':>3} {'test program':<28}{'processor':<22}{'fit err %':>10}"]
        lines.append("-" * 65)
        for i, sample in enumerate(self.samples, start=1):
            lines.append(
                f"{i:>3} {sample.name:<28}{sample.processor_name:<22}"
                f"{self.regression.percent_errors[i - 1]:>+10.2f}"
            )
        lines.append("-" * 65)
        lines.append(
            f"    RMS {self.regression.rms_percent_error:.2f}%   "
            f"max |err| {self.regression.max_abs_percent_error:.2f}%   "
            f"R^2 {self.regression.r_squared:.5f}"
        )
        return "\n".join(lines)


class Characterizer:
    """Accumulates characterization samples and fits the macro-model.

    ``operating_point`` binds the whole run — reference estimation,
    collected samples and the fitted model — to one technology operating
    point; ``None`` characterizes at the calibration reference.  Samples
    collected at one point never mix with another (``load_samples``
    enforces the binding), because energy magnitudes differ by the
    technology scale factor and would corrupt the regression.
    """

    def __init__(
        self,
        template: Optional[MacroModelTemplate] = None,
        processor_family: str = "xt1040",
        method: str = "nnls",
        ridge_alpha: float = 1e-6,
        operating_point: "OperatingPoint | str | None" = None,
    ) -> None:
        if method not in ("ols", "nnls", "ridge"):
            raise ValueError(
                f"unknown regression method {method!r} (use 'ols', 'nnls' or 'ridge')"
            )
        self.template = template if template is not None else default_template()
        self.processor_family = processor_family
        self.method = method
        self.ridge_alpha = ridge_alpha
        self.operating_point: Optional[OperatingPoint] = (
            default_calibration().validate(operating_point)
            if operating_point is not None
            else None
        )
        self.samples: list[CharacterizationSample] = []
        # Keyed by content fingerprint: equal configs share one estimator
        # no matter how many distinct (or identically-named) objects the
        # caller builds, in this process or a resumed one.
        self._estimators: dict[str, RtlEnergyEstimator] = {}

    def __len__(self) -> int:
        return len(self.samples)

    # -- sample collection ------------------------------------------------

    def _estimator_for(self, config: ProcessorConfig) -> RtlEnergyEstimator:
        key = config.fingerprint()
        estimator = self._estimators.get(key)
        if estimator is None:
            estimator = RtlEnergyEstimator(
                generate_netlist(config), operating_point=self.operating_point
            )
            self._estimators[key] = estimator
        return estimator

    def add_program(
        self,
        config: ProcessorConfig,
        program: Program,
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    ) -> CharacterizationSample:
        """Run one test program through the full characterization pipeline.

        The reference energy is accumulated online by the estimator's
        streaming observer — no trace is materialized, so characterizing
        long programs costs O(1) memory.
        """
        observer = self._estimator_for(config).observer()
        result = run_session(
            config, program, observers=(observer,), max_instructions=max_instructions
        )
        report = observer.report
        variables = extract_variables(result.stats, config, self.template)
        sample = CharacterizationSample(
            name=program.name,
            processor_name=config.name,
            variables=variables,
            energy=report.total,
            stats=result.stats,
        )
        self.add_sample(sample)
        return sample

    def save_samples(self, path: str) -> None:
        """Persist collected samples as JSON.

        The expensive half of characterization is the per-program traced
        simulation + reference RTL estimation; saved samples let a later
        session re-fit (e.g. with a different regression method) without
        touching the simulator.  Samples are bound to the template they
        were extracted under.  The write is atomic (tmp + ``os.replace``).
        """
        atomic_write_json(path, self.samples_payload())

    def samples_payload(self) -> dict:
        """The JSON payload ``save_samples`` writes (also the checkpoint base)."""
        return {
            "format": SAMPLES_FORMAT,
            "template": self.template.name,
            "processor_family": self.processor_family,
            "operating_point": (
                self.operating_point.key if self.operating_point is not None else None
            ),
            "samples": [sample.to_payload() for sample in self.samples],
        }

    def load_samples(self, path: str) -> int:
        """Load previously saved samples; returns how many were added.

        Raises :class:`ValueError` with an actionable message on corrupted
        or truncated JSON, a foreign format tag, a template mismatch, or
        malformed/non-finite sample records.  The characterizer is left
        unchanged on any failure (all records are validated before any is
        added).
        """
        with open(path, "r", encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"samples file {path!r} is not valid JSON ({exc}); the file "
                    "is corrupted or was truncated mid-write — delete it and "
                    "re-run, or restore from a good checkpoint"
                ) from exc
        if not isinstance(payload, dict) or payload.get("format") != SAMPLES_FORMAT:
            raise ValueError(f"unrecognized samples format in {path!r}")
        if payload.get("template") != self.template.name:
            raise ValueError(
                f"samples were extracted under template {payload.get('template')!r}, "
                f"this characterizer uses {self.template.name!r}"
            )
        # Pre-operating-point sample files carry no key, which is exactly
        # the None (calibration-reference) binding — so legacy files load
        # into a reference-point characterizer unchanged.
        saved_point = payload.get("operating_point")
        own_point = (
            self.operating_point.key if self.operating_point is not None else None
        )
        if saved_point != own_point:
            raise ValueError(
                f"samples were collected at operating point "
                f"{saved_point or 'calibration reference'}, this characterizer "
                f"runs at {own_point or 'calibration reference'}; energies at "
                "different points are not comparable — re-characterize instead"
            )
        try:
            loaded = [CharacterizationSample.from_payload(p) for p in payload["samples"]]
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                f"samples file {path!r} has a malformed sample record: {exc}"
            ) from exc
        for sample in loaded:
            self._check_sample(sample)
        self.samples.extend(loaded)
        return len(loaded)

    def _check_sample(self, sample: CharacterizationSample) -> None:
        if sample.variables.shape != (len(self.template),):
            raise ValueError(
                f"sample {sample.name!r} has {sample.variables.shape[0]} variables, "
                f"template expects {len(self.template)}"
            )
        if not np.all(np.isfinite(sample.variables)):
            raise ValueError(
                f"sample {sample.name!r} has non-finite template variables; "
                "refusing to add it (it would poison the regression)"
            )
        if not np.isfinite(sample.energy):
            raise ValueError(
                f"sample {sample.name!r} has non-finite energy {sample.energy!r}; "
                "refusing to add it (it would poison the regression)"
            )

    def add_sample(self, sample: CharacterizationSample) -> None:
        """Add a precomputed sample (e.g. from a cached measurement).

        Rejects shape mismatches and NaN/Inf variables or energy with a
        clear :class:`ValueError` instead of letting them silently poison
        the regression.
        """
        self._check_sample(sample)
        self.samples.append(sample)

    # -- fitting -----------------------------------------------------------

    def design_matrix(self) -> tuple[np.ndarray, np.ndarray]:
        if not self.samples:
            raise ValueError("no characterization samples collected")
        design = np.vstack([sample.variables for sample in self.samples])
        energies = np.array([sample.energy for sample in self.samples])
        return design, energies

    def fit(self, with_loocv: bool = False) -> CharacterizationResult:
        """Fit the energy coefficients and package the result."""
        design, energies = self.design_matrix()
        if self.method == "ridge":
            regression = fit_ridge(design, energies, alpha=self.ridge_alpha)
        elif self.method == "ols":
            regression = fit_least_squares(design, energies)
        else:
            regression = fit_nnls(design, energies)

        loo = None
        if with_loocv and design.shape[0] > design.shape[1]:
            loo = leave_one_out_errors(design, energies)

        fit_info = {
            "samples": len(self.samples),
            "method": self.method,
            "rms_percent_error": regression.rms_percent_error,
            "max_abs_percent_error": regression.max_abs_percent_error,
            "r_squared": regression.r_squared,
            "condition_number": regression.condition_number,
        }
        if self.operating_point is not None:
            fit_info["operating_point"] = self.operating_point.key
        model = EnergyMacroModel(
            template=self.template,
            coefficients=regression.coefficients,
            processor_family=self.processor_family,
            fit_info=fit_info,
            operating_point=self.operating_point,
        )
        return CharacterizationResult(
            model=model,
            samples=list(self.samples),
            design=design,
            energies=energies,
            regression=regression,
            loo_percent_errors=loo,
        )


def characterize(
    runs: Sequence[tuple[ProcessorConfig, Program]],
    template: Optional[MacroModelTemplate] = None,
    processor_family: str = "xt1040",
    method: str = "nnls",
    progress: Optional[Callable[[str], None]] = None,
    retry: Optional[object] = None,
    checkpoint_path: Optional[str] = None,
    checkpoint_every: int = 5,
    max_failures: Optional[int] = None,
    operating_point: "OperatingPoint | str | None" = None,
) -> CharacterizationResult:
    """One-shot characterization over (config, program) pairs.

    By default this is all-or-nothing: the first simulation/estimation
    error aborts the run (historical behavior).  Passing any of ``retry``
    (a :class:`repro.core.runner.RetryPolicy`), ``checkpoint_path`` or
    ``max_failures`` routes the run through the fault-tolerant
    :class:`repro.core.runner.CharacterizationRunner` instead: failures
    are isolated per sample, progress is checkpointed, and the model is
    fitted from the surviving samples.
    """
    characterizer = Characterizer(
        template=template,
        processor_family=processor_family,
        method=method,
        operating_point=operating_point,
    )
    fault_tolerant = (
        retry is not None or checkpoint_path is not None or max_failures is not None
    )
    if fault_tolerant:
        from .runner import CharacterizationRunner, RunnerTask

        runner = CharacterizationRunner(
            characterizer,
            retry=retry,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            max_failures=max_failures,
            progress=progress,
        )
        report = runner.run([RunnerTask.from_pair(c, p) for c, p in runs])
        assert report.result is not None
        return report.result
    for config, program in runs:
        if progress is not None:
            progress(f"characterizing {program.name} on {config.name}")
        characterizer.add_program(config, program)
    return characterizer.fit()
