"""The characterization flow (paper Fig. 2, steps 1-8).

For every test program (on whatever extended-processor configuration it
targets) the characterizer:

1. simulates it with full tracing (step 6: instruction-set simulation);
2. runs the dynamic resource-usage analysis (step 7) and extracts the
   template variables — one design-matrix row;
3. generates the custom processor's netlist and runs the reference RTL
   energy estimator on the trace (steps 4-5) — one energy sample;

and finally fits the energy coefficients by regression (step 8).

Because regression characterization is *in-situ*, any program works — the
only requirement is diversity: the suite must exercise every template
variable, which :mod:`repro.core.coverage` audits.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Sequence

import numpy as np

from ..asm import Program
from ..rtl import RtlEnergyEstimator, generate_netlist
from ..xtcore import ExecutionStats, ProcessorConfig, Simulator
from .extract import extract_variables
from .model import EnergyMacroModel
from .regression import (
    RegressionResult,
    fit_least_squares,
    fit_nnls,
    fit_ridge,
    leave_one_out_errors,
)
from .template import MacroModelTemplate, default_template


@dataclasses.dataclass
class CharacterizationSample:
    """One (program, processor) characterization point."""

    name: str
    processor_name: str
    variables: np.ndarray
    energy: float
    stats: ExecutionStats

    @property
    def cycles(self) -> int:
        return self.stats.total_cycles

    def to_payload(self) -> dict:
        """JSON-serializable form (variables + energy; stats reduced)."""
        return {
            "name": self.name,
            "processor": self.processor_name,
            "variables": [float(v) for v in self.variables],
            "energy": float(self.energy),
            "cycles": int(self.stats.total_cycles) if self.stats else 0,
            "instructions": int(self.stats.total_instructions) if self.stats else 0,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CharacterizationSample":
        stats = ExecutionStats()
        stats.total_cycles = int(payload.get("cycles", 0))
        stats.total_instructions = int(payload.get("instructions", 0))
        return cls(
            name=payload["name"],
            processor_name=payload["processor"],
            variables=np.asarray(payload["variables"], dtype=float),
            energy=float(payload["energy"]),
            stats=stats,
        )


@dataclasses.dataclass
class CharacterizationResult:
    """A fitted macro-model plus everything needed to audit the fit."""

    model: EnergyMacroModel
    samples: list[CharacterizationSample]
    design: np.ndarray
    energies: np.ndarray
    regression: RegressionResult
    loo_percent_errors: Optional[np.ndarray] = None

    @property
    def fitting_errors(self) -> np.ndarray:
        """Per-test-program percentage fitting errors (the paper's Fig. 3)."""
        return self.regression.percent_errors

    def fitting_error_table(self) -> str:
        """Fig. 3 as text: fitting error per characterization program."""
        lines = [f"{'#':>3} {'test program':<28}{'processor':<22}{'fit err %':>10}"]
        lines.append("-" * 65)
        for i, sample in enumerate(self.samples, start=1):
            lines.append(
                f"{i:>3} {sample.name:<28}{sample.processor_name:<22}"
                f"{self.regression.percent_errors[i - 1]:>+10.2f}"
            )
        lines.append("-" * 65)
        lines.append(
            f"    RMS {self.regression.rms_percent_error:.2f}%   "
            f"max |err| {self.regression.max_abs_percent_error:.2f}%   "
            f"R^2 {self.regression.r_squared:.5f}"
        )
        return "\n".join(lines)


class Characterizer:
    """Accumulates characterization samples and fits the macro-model."""

    def __init__(
        self,
        template: Optional[MacroModelTemplate] = None,
        processor_family: str = "xt1040",
        method: str = "nnls",
        ridge_alpha: float = 1e-6,
    ) -> None:
        if method not in ("ols", "nnls", "ridge"):
            raise ValueError(
                f"unknown regression method {method!r} (use 'ols', 'nnls' or 'ridge')"
            )
        self.template = template if template is not None else default_template()
        self.processor_family = processor_family
        self.method = method
        self.ridge_alpha = ridge_alpha
        self.samples: list[CharacterizationSample] = []
        self._estimators: dict[str, RtlEnergyEstimator] = {}

    def __len__(self) -> int:
        return len(self.samples)

    # -- sample collection ------------------------------------------------

    def _estimator_for(self, config: ProcessorConfig) -> RtlEnergyEstimator:
        estimator = self._estimators.get(config.name)
        if estimator is None or estimator.config is not config:
            estimator = RtlEnergyEstimator(generate_netlist(config))
            self._estimators[config.name] = estimator
        return estimator

    def add_program(
        self,
        config: ProcessorConfig,
        program: Program,
        max_instructions: int = 5_000_000,
    ) -> CharacterizationSample:
        """Run one test program through the full characterization pipeline."""
        result = Simulator(
            config, program, collect_trace=True, max_instructions=max_instructions
        ).run()
        report = self._estimator_for(config).estimate(result)
        variables = extract_variables(result.stats, config, self.template)
        sample = CharacterizationSample(
            name=program.name,
            processor_name=config.name,
            variables=variables,
            energy=report.total,
            stats=result.stats,
        )
        self.samples.append(sample)
        return sample

    def save_samples(self, path: str) -> None:
        """Persist collected samples as JSON.

        The expensive half of characterization is the per-program traced
        simulation + reference RTL estimation; saved samples let a later
        session re-fit (e.g. with a different regression method) without
        touching the simulator.  Samples are bound to the template they
        were extracted under.
        """
        import json

        payload = {
            "format": "repro-characterization-samples/1",
            "template": self.template.name,
            "processor_family": self.processor_family,
            "samples": [sample.to_payload() for sample in self.samples],
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)

    def load_samples(self, path: str) -> int:
        """Load previously saved samples; returns how many were added."""
        import json

        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("format") != "repro-characterization-samples/1":
            raise ValueError(f"unrecognized samples format in {path!r}")
        if payload.get("template") != self.template.name:
            raise ValueError(
                f"samples were extracted under template {payload.get('template')!r}, "
                f"this characterizer uses {self.template.name!r}"
            )
        loaded = [CharacterizationSample.from_payload(p) for p in payload["samples"]]
        for sample in loaded:
            self.add_sample(sample)
        return len(loaded)

    def add_sample(self, sample: CharacterizationSample) -> None:
        """Add a precomputed sample (e.g. from a cached measurement)."""
        if sample.variables.shape != (len(self.template),):
            raise ValueError(
                f"sample {sample.name!r} has {sample.variables.shape[0]} variables, "
                f"template expects {len(self.template)}"
            )
        self.samples.append(sample)

    # -- fitting -----------------------------------------------------------

    def design_matrix(self) -> tuple[np.ndarray, np.ndarray]:
        if not self.samples:
            raise ValueError("no characterization samples collected")
        design = np.vstack([sample.variables for sample in self.samples])
        energies = np.array([sample.energy for sample in self.samples])
        return design, energies

    def fit(self, with_loocv: bool = False) -> CharacterizationResult:
        """Fit the energy coefficients and package the result."""
        design, energies = self.design_matrix()
        if self.method == "ridge":
            regression = fit_ridge(design, energies, alpha=self.ridge_alpha)
        elif self.method == "ols":
            regression = fit_least_squares(design, energies)
        else:
            regression = fit_nnls(design, energies)

        loo = None
        if with_loocv and design.shape[0] > design.shape[1]:
            loo = leave_one_out_errors(design, energies)

        model = EnergyMacroModel(
            template=self.template,
            coefficients=regression.coefficients,
            processor_family=self.processor_family,
            fit_info={
                "samples": len(self.samples),
                "method": self.method,
                "rms_percent_error": regression.rms_percent_error,
                "max_abs_percent_error": regression.max_abs_percent_error,
                "r_squared": regression.r_squared,
                "condition_number": regression.condition_number,
            },
        )
        return CharacterizationResult(
            model=model,
            samples=list(self.samples),
            design=design,
            energies=energies,
            regression=regression,
            loo_percent_errors=loo,
        )


def characterize(
    runs: Sequence[tuple[ProcessorConfig, Program]],
    template: Optional[MacroModelTemplate] = None,
    processor_family: str = "xt1040",
    method: str = "nnls",
    progress: Optional[Callable[[str], None]] = None,
) -> CharacterizationResult:
    """One-shot characterization over (config, program) pairs."""
    characterizer = Characterizer(
        template=template, processor_family=processor_family, method=method
    )
    for config, program in runs:
        if progress is not None:
            progress(f"characterizing {program.name} on {config.name}")
        characterizer.add_program(config, program)
    return characterizer.fit()
