"""Macro-model variable extraction: statistics → design-matrix row.

Combines the instruction-set simulation statistics (instruction-level
variables) with the dynamic resource-usage analysis (structural
variables) into the row vector the regression consumes — paper steps
6-7 during characterization and steps 9-10 during estimation.
"""

from __future__ import annotations

import numpy as np

from ..xtcore import ExecutionStats, ProcessorConfig
from .resource import ResourceUsage, analyze_resource_usage
from .template import MacroModelTemplate, VariableDomain, default_template

#: event-variable key -> ExecutionStats attribute
_EVENT_ATTR = {
    "N_cm": "icache_misses",
    "N_dm": "dcache_misses",
    "N_uf": "uncached_fetches",
    "N_il": "interlocks",
    "N_sd": "custom_gpr_cycles",
}


def extract_variables(
    stats: ExecutionStats,
    config: ProcessorConfig,
    template: MacroModelTemplate | None = None,
    usage: ResourceUsage | None = None,
) -> np.ndarray:
    """Build the template-ordered variable vector for one program run.

    ``usage`` may be supplied to reuse an existing resource-usage
    analysis; otherwise one is run on the fly.
    """
    if template is None:
        template = default_template()
    if usage is None:
        usage = analyze_resource_usage(stats, config)

    values = np.zeros(len(template), dtype=float)
    structural = (
        usage.weighted_activity if template.weighted_complexity else usage.raw_activity
    )
    for i, variable in enumerate(template):
        if variable.domain is VariableDomain.STRUCTURAL:
            values[i] = structural.get(variable.category, 0.0)
        elif variable.iclass is not None:
            values[i] = stats.class_cycles[variable.iclass]
        else:
            values[i] = getattr(stats, _EVENT_ATTR[variable.key])
    return values


def variables_as_dict(
    stats: ExecutionStats,
    config: ProcessorConfig,
    template: MacroModelTemplate | None = None,
) -> dict[str, float]:
    """Same extraction, keyed by variable name (reporting convenience)."""
    if template is None:
        template = default_template()
    vector = extract_variables(stats, config, template)
    return dict(zip(template.keys(), vector.tolist()))
