"""The fitted energy macro-model object.

An :class:`EnergyMacroModel` is the artifact the characterization flow
produces once per processor *family*: 21 energy coefficients over the
macro-model template.  Applying it to a new application with arbitrary
custom instructions requires only instruction-set simulation and
resource-usage analysis — no processor generation, no RTL simulation —
which is the paper's headline speed win.

A model is fitted at one technology **operating point** (process node,
supply voltage, clock).  ``model.at("65nm@1.1V@800MHz")`` derives the
same model rescaled to another point via the committed calibration table
(see ``repro.tech`` and ``docs/CALIBRATION.md``); the derived model's
JSON — and therefore its content digest — carries the point, so cache
keys at different points never collide.

Models serialize to JSON so a characterized model can ship without the
characterization infrastructure.
"""

from __future__ import annotations

import dataclasses
import json
import warnings
from typing import Optional


import numpy as np

from ..asm import Program
from ..obs import run_session
from ..tech import CalibrationError, OperatingPoint, TechCalibration, default_calibration
from ..xtcore import DEFAULT_MAX_INSTRUCTIONS, ExecutionStats, ProcessorConfig
from .extract import extract_variables
from .template import (
    MacroModelTemplate,
    default_template,
    instruction_level_template,
    unweighted_template,
)

#: Current model-file schema.  ``/2`` adds the ``operating_point`` field.
MODEL_FORMAT = "repro-energy-macro-model/2"

#: Older schemas :meth:`EnergyMacroModel.from_json` still accepts (with a
#: migration warning) instead of rejecting.
LEGACY_MODEL_FORMATS = ("repro-energy-macro-model/1",)

_TEMPLATE_REGISTRY = {
    "hybrid-21": default_template,
    "instruction-only-11": instruction_level_template,
    "hybrid-21-unweighted": unweighted_template,
}


@dataclasses.dataclass
class MacroEstimate:
    """One macro-model energy estimate for an application."""

    program_name: str
    processor_name: str
    energy: float
    stats: ExecutionStats
    variables: dict[str, float]
    operating_point: Optional[OperatingPoint] = None

    @property
    def cycles(self) -> int:
        return self.stats.total_cycles

    @property
    def seconds(self) -> Optional[float]:
        """Wall-clock runtime; needs an operating point to pin the clock."""
        if self.operating_point is None:
            return None
        return self.operating_point.seconds(self.cycles)

    @property
    def edp_seconds(self) -> Optional[float]:
        """Energy-delay product with delay in real seconds."""
        seconds = self.seconds
        if seconds is None:
            return None
        return self.energy * seconds

    def summary(self) -> str:
        text = (
            f"macro-model estimate: {self.program_name} on {self.processor_name}: "
            f"{self.energy:.1f} units over {self.cycles} cycles"
        )
        if self.operating_point is not None:
            text += (
                f" ({self.seconds * 1e6:.2f} us at {self.operating_point.key})"
            )
        return text


@dataclasses.dataclass
class EnergyMacroModel:
    """A characterized extensible-processor energy macro-model.

    ``operating_point`` records where the coefficients are valid: the
    point the model was characterized at, or the point a derived model
    was rescaled to.  ``None`` means the calibration table's reference
    point (every pre-``/2`` model file is in that state).
    """

    template: MacroModelTemplate
    coefficients: np.ndarray
    processor_family: str = "xt1040"
    fit_info: dict = dataclasses.field(default_factory=dict)
    operating_point: Optional[OperatingPoint] = None

    def __post_init__(self) -> None:
        self.coefficients = np.asarray(self.coefficients, dtype=float)
        if self.coefficients.shape != (len(self.template),):
            raise ValueError(
                f"coefficient vector shape {self.coefficients.shape} does not match "
                f"template {self.template.name!r} with {len(self.template)} variables"
            )
        if self.operating_point is not None and not isinstance(
            self.operating_point, OperatingPoint
        ):
            self.operating_point = OperatingPoint.parse(self.operating_point)
        # Per-instance memo of derived models (key -> EnergyMacroModel).
        # Kept out of __eq__ semantics by not being a dataclass field, and
        # out of pickles (forked DSE/serve workers) via __getstate__.
        self._derived_cache: dict[str, "EnergyMacroModel"] = {}

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_derived_cache", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._derived_cache = {}

    # -- operating-point rescaling -----------------------------------------

    def at(
        self,
        operating_point: "OperatingPoint | str | None",
        calibration: Optional[TechCalibration] = None,
    ) -> "EnergyMacroModel":
        """This model rescaled to another operating point.

        Per-operation energies scale by the calibration's first-order
        CMOS factor ``C(node)/C(node_base) * (V/V_base)^2`` relative to
        the point this model is valid at (its own ``operating_point``,
        or the calibration reference when unset).  Frequency is carried
        along for time conversion but does not touch the coefficients —
        and nothing here touches simulation, so ``ExecutionStats`` stay
        bitwise identical across points.

        ``at(None)`` returns ``self`` (the model at its own fit point).
        Results are memoized per instance, so repeated requests for the
        same point (the DSE hot loop) share one derived model object.
        """
        if operating_point is None:
            return self
        cache_key: Optional[str] = None
        if calibration is None:
            calibration = default_calibration()
            cache_key = OperatingPoint.parse(operating_point).key
            cached = self._derived_cache.get(cache_key)
            if cached is not None:
                return cached
        op = calibration.validate(operating_point)
        base = self.operating_point or calibration.reference
        scale = calibration.relative_scale(op, base)
        derived = EnergyMacroModel(
            template=self.template,
            coefficients=self.coefficients * scale,
            processor_family=self.processor_family,
            fit_info={
                **self.fit_info,
                "derived_from": base.key,
                "energy_scale": scale,
            },
            operating_point=op,
        )
        if cache_key is not None:
            self._derived_cache[cache_key] = derived
        return derived

    # -- estimation -------------------------------------------------------

    def coefficient(self, key: str) -> float:
        """The fitted energy coefficient of one template variable."""
        return float(self.coefficients[self.template.index_of(key)])

    def coefficients_by_key(self) -> dict[str, float]:
        return dict(zip(self.template.keys(), self.coefficients.tolist()))

    def estimate_from_stats(self, stats: ExecutionStats, config: ProcessorConfig) -> float:
        """Energy from already-collected execution statistics."""
        variables = extract_variables(stats, config, self.template)
        return float(variables @ self.coefficients)

    def estimate(
        self,
        config: ProcessorConfig,
        program: Program,
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    ) -> MacroEstimate:
        """The fast estimation path: ISS (no trace) + variable extraction.

        This is exactly what the paper promises: evaluating a candidate
        custom-instruction set needs no synthesized processor.
        """
        result = run_session(config, program, max_instructions=max_instructions)
        variables = extract_variables(result.stats, config, self.template)
        return MacroEstimate(
            program_name=program.name,
            processor_name=config.name,
            energy=float(variables @ self.coefficients),
            stats=result.stats,
            variables=dict(zip(self.template.keys(), variables.tolist())),
            operating_point=self.operating_point,
        )

    # -- reporting -----------------------------------------------------------

    def coefficient_table(self) -> str:
        """Format the fitted coefficients in the shape of the paper's Table I."""
        point = (
            self.operating_point.key
            if self.operating_point is not None
            else "calibration reference"
        )
        header = (
            f"Energy coefficients of the characterized {self.processor_family} processor\n"
            f"(template {self.template.name}; "
            f"{self.fit_info.get('samples', '?')} characterization programs; "
            f"operating point {point})\n"
        )
        rows = [f"{'coefficient':<16}{'description':<58}{'value':>12}"]
        rows.append("-" * 86)
        for variable, value in zip(self.template, self.coefficients):
            rows.append(f"{variable.key:<16}{variable.description:<58}{value:>12.2f}")
        return header + "\n".join(rows)

    # -- serialization -----------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "format": MODEL_FORMAT,
            "template": self.template.name,
            "processor_family": self.processor_family,
            "coefficients": dict(
                zip(self.template.keys(), (float(c) for c in self.coefficients))
            ),
            "fit_info": self.fit_info,
            "operating_point": (
                self.operating_point.to_payload()
                if self.operating_point is not None
                else None
            ),
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "EnergyMacroModel":
        payload = json.loads(text)
        file_format = payload.get("format")
        if file_format in LEGACY_MODEL_FORMATS:
            warnings.warn(
                f"model file uses legacy schema {file_format!r} "
                f"(current: {MODEL_FORMAT!r}); it predates operating-point "
                "metadata and is treated as fitted at the calibration "
                "reference point — re-save with model.save() to migrate",
                UserWarning,
                stacklevel=2,
            )
            operating_point = None
        elif file_format == MODEL_FORMAT:
            raw_point = payload.get("operating_point")
            try:
                operating_point = (
                    OperatingPoint.from_payload(raw_point)
                    if raw_point is not None
                    else None
                )
            except CalibrationError as exc:
                raise ValueError(f"model file has a bad operating point: {exc}") from exc
        else:
            raise ValueError(f"unrecognized model format {file_format!r}")
        template_name = payload["template"]
        factory = _TEMPLATE_REGISTRY.get(template_name)
        if factory is None:
            raise ValueError(f"unknown template {template_name!r}")
        template = factory()
        stored = payload["coefficients"]
        missing = set(template.keys()) - set(stored)
        if missing:
            raise ValueError(f"model file missing coefficients {sorted(missing)}")
        coefficients = np.array([stored[key] for key in template.keys()], dtype=float)
        return cls(
            template=template,
            coefficients=coefficients,
            processor_family=payload.get("processor_family", "unknown"),
            fit_info=payload.get("fit_info", {}),
            operating_point=operating_point,
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "EnergyMacroModel":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())
