"""The fitted energy macro-model object.

An :class:`EnergyMacroModel` is the artifact the characterization flow
produces once per processor *family*: 21 energy coefficients over the
macro-model template.  Applying it to a new application with arbitrary
custom instructions requires only instruction-set simulation and
resource-usage analysis — no processor generation, no RTL simulation —
which is the paper's headline speed win.

Models serialize to JSON so a characterized model can ship without the
characterization infrastructure.
"""

from __future__ import annotations

import dataclasses
import json


import numpy as np

from ..asm import Program
from ..obs import run_session
from ..xtcore import DEFAULT_MAX_INSTRUCTIONS, ExecutionStats, ProcessorConfig
from .extract import extract_variables
from .template import (
    MacroModelTemplate,
    default_template,
    instruction_level_template,
    unweighted_template,
)

_TEMPLATE_REGISTRY = {
    "hybrid-21": default_template,
    "instruction-only-11": instruction_level_template,
    "hybrid-21-unweighted": unweighted_template,
}


@dataclasses.dataclass
class MacroEstimate:
    """One macro-model energy estimate for an application."""

    program_name: str
    processor_name: str
    energy: float
    stats: ExecutionStats
    variables: dict[str, float]

    @property
    def cycles(self) -> int:
        return self.stats.total_cycles

    def summary(self) -> str:
        return (
            f"macro-model estimate: {self.program_name} on {self.processor_name}: "
            f"{self.energy:.1f} units over {self.cycles} cycles"
        )


@dataclasses.dataclass
class EnergyMacroModel:
    """A characterized extensible-processor energy macro-model."""

    template: MacroModelTemplate
    coefficients: np.ndarray
    processor_family: str = "xt1040"
    fit_info: dict = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        self.coefficients = np.asarray(self.coefficients, dtype=float)
        if self.coefficients.shape != (len(self.template),):
            raise ValueError(
                f"coefficient vector shape {self.coefficients.shape} does not match "
                f"template {self.template.name!r} with {len(self.template)} variables"
            )

    # -- estimation -------------------------------------------------------

    def coefficient(self, key: str) -> float:
        """The fitted energy coefficient of one template variable."""
        return float(self.coefficients[self.template.index_of(key)])

    def coefficients_by_key(self) -> dict[str, float]:
        return dict(zip(self.template.keys(), self.coefficients.tolist()))

    def estimate_from_stats(self, stats: ExecutionStats, config: ProcessorConfig) -> float:
        """Energy from already-collected execution statistics."""
        variables = extract_variables(stats, config, self.template)
        return float(variables @ self.coefficients)

    def estimate(
        self,
        config: ProcessorConfig,
        program: Program,
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    ) -> MacroEstimate:
        """The fast estimation path: ISS (no trace) + variable extraction.

        This is exactly what the paper promises: evaluating a candidate
        custom-instruction set needs no synthesized processor.
        """
        result = run_session(config, program, max_instructions=max_instructions)
        variables = extract_variables(result.stats, config, self.template)
        return MacroEstimate(
            program_name=program.name,
            processor_name=config.name,
            energy=float(variables @ self.coefficients),
            stats=result.stats,
            variables=dict(zip(self.template.keys(), variables.tolist())),
        )

    # -- reporting -----------------------------------------------------------

    def coefficient_table(self) -> str:
        """Format the fitted coefficients in the shape of the paper's Table I."""
        header = (
            f"Energy coefficients of the characterized {self.processor_family} processor\n"
            f"(template {self.template.name}; "
            f"{self.fit_info.get('samples', '?')} characterization programs)\n"
        )
        rows = [f"{'coefficient':<16}{'description':<58}{'value':>12}"]
        rows.append("-" * 86)
        for variable, value in zip(self.template, self.coefficients):
            rows.append(f"{variable.key:<16}{variable.description:<58}{value:>12.2f}")
        return header + "\n".join(rows)

    # -- serialization -----------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "format": "repro-energy-macro-model/1",
            "template": self.template.name,
            "processor_family": self.processor_family,
            "coefficients": dict(
                zip(self.template.keys(), (float(c) for c in self.coefficients))
            ),
            "fit_info": self.fit_info,
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "EnergyMacroModel":
        payload = json.loads(text)
        if payload.get("format") != "repro-energy-macro-model/1":
            raise ValueError(f"unrecognized model format {payload.get('format')!r}")
        template_name = payload["template"]
        factory = _TEMPLATE_REGISTRY.get(template_name)
        if factory is None:
            raise ValueError(f"unknown template {template_name!r}")
        template = factory()
        stored = payload["coefficients"]
        missing = set(template.keys()) - set(stored)
        if missing:
            raise ValueError(f"model file missing coefficients {sorted(missing)}")
        coefficients = np.array([stored[key] for key in template.keys()], dtype=float)
        return cls(
            template=template,
            coefficients=coefficients,
            processor_family=payload.get("processor_family", "unknown"),
            fit_info=payload.get("fit_info", {}),
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "EnergyMacroModel":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())
