"""Characterization-suite coverage audit (extension beyond the paper).

Regression macro-modeling accepts arbitrary test programs, but the suite
must still have "diversity in instruction statistics so as to cover the
instruction space" (paper Sec. I) *and* exercise every custom-hardware
library category.  This module turns that informal requirement into a
checkable report: which template variables a suite leaves unexercised,
how well-conditioned the design matrix is, and which samples dominate
individual variables (leverage).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .characterize import CharacterizationSample
from .regression import CONDITION_WARNING_THRESHOLD, column_coverage
from .template import MacroModelTemplate

#: Below this fraction of samples exercising a variable, warn.
LOW_COVERAGE_THRESHOLD = 0.10

#: Pairwise column correlation above which two variables are flagged as
#: nearly indistinguishable to the regression.
CORRELATION_WARNING_THRESHOLD = 0.985


@dataclasses.dataclass
class CoverageReport:
    """Audit result of one characterization suite against a template."""

    template_name: str
    n_samples: int
    coverage: dict[str, float]
    unexercised: list[str]
    low_coverage: list[str]
    rank: int
    n_variables: int
    condition_number: float
    warnings: list[str]
    #: variable pairs whose design-matrix columns are nearly collinear
    #: (|correlation| above CORRELATION_WARNING_THRESHOLD); the fit can
    #: trade their coefficients almost freely, so predictions transfer
    #: badly to workloads that decouple them
    collinear_pairs: list[tuple[str, str, float]] = dataclasses.field(
        default_factory=list
    )

    @property
    def is_adequate(self) -> bool:
        """True when the suite can identify every coefficient."""
        return not self.unexercised and self.rank == self.n_variables

    def summary(self) -> str:
        lines = [
            f"coverage audit: template {self.template_name}, "
            f"{self.n_samples} samples, rank {self.rank}/{self.n_variables}, "
            f"condition {self.condition_number:.3g}",
        ]
        for key, fraction in self.coverage.items():
            marker = ""
            if key in self.unexercised:
                marker = "  << UNEXERCISED"
            elif key in self.low_coverage:
                marker = "  << low coverage"
            lines.append(f"  {key:<20}{100.0 * fraction:6.1f}% of samples{marker}")
        for first, second, correlation in self.collinear_pairs:
            lines.append(
                f"  near-collinear: {first} ~ {second} (r = {correlation:+.3f})"
            )
        for warning in self.warnings:
            lines.append(f"  warning: {warning}")
        return "\n".join(lines)


def audit_coverage(
    samples: list[CharacterizationSample],
    template: MacroModelTemplate,
) -> CoverageReport:
    """Audit a collected sample set against the template."""
    if not samples:
        raise ValueError("cannot audit an empty characterization suite")
    design = np.vstack([sample.variables for sample in samples])
    fractions = column_coverage(design)
    keys = template.keys()
    coverage = dict(zip(keys, fractions.tolist()))
    unexercised = [key for key, fraction in coverage.items() if fraction == 0.0]
    low = [
        key
        for key, fraction in coverage.items()
        if 0.0 < fraction < LOW_COVERAGE_THRESHOLD
    ]
    rank = int(np.linalg.matrix_rank(design))
    condition = float(np.linalg.cond(design))
    collinear = collinear_columns(design, keys)

    warnings: list[str] = []
    if collinear:
        worst = max(collinear, key=lambda item: abs(item[2]))
        warnings.append(
            f"{len(collinear)} near-collinear variable pair(s); worst: "
            f"{worst[0]} ~ {worst[1]} (r = {worst[2]:+.3f}) — their "
            "coefficients trade freely; add programs that vary them "
            "independently"
        )
    if unexercised:
        warnings.append(
            f"variables {unexercised} are never exercised; their coefficients "
            "are unidentifiable (pseudo-inverse will pin them to 0)"
        )
    if rank < len(keys):
        warnings.append(
            f"design matrix rank {rank} < {len(keys)} variables; "
            "add programs that vary the missing directions"
        )
    if condition > CONDITION_WARNING_THRESHOLD and rank == len(keys):
        warnings.append(
            f"design matrix is ill-conditioned ({condition:.3g}); "
            "coefficients may be unstable — consider ridge regression"
        )
    if design.shape[0] < 2 * len(keys):
        warnings.append(
            f"only {design.shape[0]} samples for {len(keys)} variables; "
            "the paper used ~25 programs for 21 variables — more is safer"
        )

    return CoverageReport(
        template_name=template.name,
        n_samples=len(samples),
        coverage=coverage,
        unexercised=unexercised,
        low_coverage=low,
        rank=rank,
        n_variables=len(keys),
        condition_number=condition,
        warnings=warnings,
        collinear_pairs=collinear,
    )


def collinear_columns(
    design: np.ndarray,
    keys: tuple[str, ...],
    threshold: float = CORRELATION_WARNING_THRESHOLD,
) -> list[tuple[str, str, float]]:
    """Find variable pairs whose columns correlate above ``threshold``.

    Correlations are computed over the samples where at least one of the
    pair is non-zero; all-zero columns are skipped (they are reported as
    unexercised instead).
    """
    pairs: list[tuple[str, str, float]] = []
    design = np.asarray(design, dtype=float)
    n_vars = design.shape[1]
    stds = design.std(axis=0)
    for i in range(n_vars):
        if stds[i] == 0:
            continue
        for j in range(i + 1, n_vars):
            if stds[j] == 0:
                continue
            correlation = float(np.corrcoef(design[:, i], design[:, j])[0, 1])
            if abs(correlation) >= threshold:
                pairs.append((keys[i], keys[j], correlation))
    return pairs
