"""Region-level energy profiling on top of the macro-model.

A practical extension beyond the paper: because the macro-model is linear
in per-cycle/per-event counts, a program's estimated energy decomposes
*exactly* over any partition of its dynamic execution.  The profiler
splits a traced run by code region (by default: one region per text-label
in the program, i.e. per "function") and rebuilds each region's
macro-model variable vector from its trace records — answering "where
does the energy go?" with the same model that answers "how much".

The per-region energies sum to the whole-program macro-model estimate to
within floating-point error; a property test enforces this.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Optional, Sequence

from ..asm import Program
from ..isa import InstructionClass
from ..isa.classes import BASE_ENERGY_CLASSES
from ..obs.bundled import apply_event, gpr_accessing_mnemonics
from ..obs.protocol import SimObserver
from ..obs.session import run_session
from ..xtcore import DEFAULT_MAX_INSTRUCTIONS, ExecutionStats, ProcessorConfig, TraceRecord
from .model import EnergyMacroModel

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.events import RetireEvent


@dataclasses.dataclass(frozen=True)
class CodeRegion:
    """A named, half-open instruction-address interval ``[start, end)``."""

    name: str
    start: int
    end: int

    def __contains__(self, addr: int) -> bool:
        return self.start <= addr < self.end


def regions_from_symbols(program: Program) -> list[CodeRegion]:
    """Derive code regions from the program's text-section labels.

    Every label that names an instruction address starts a region running
    to the next such label (or the end of the text range).  Labels inside
    loops create fine-grained regions; callers wanting coarser regions can
    pass their own list to :meth:`EnergyProfiler.profile`.
    """
    text_addresses = set(program.instructions)
    label_addrs = sorted(
        (addr, name)
        for name, addr in program.symbols.items()
        if addr in text_addresses
    )
    if not label_addrs:
        ranges = program.text_ranges()
        return [CodeRegion("<text>", ranges[0].start, ranges[-1].end)]

    end_of_text = max(text_addresses) + 4
    regions: list[CodeRegion] = []
    first_start = label_addrs[0][0]
    if min(text_addresses) < first_start:
        regions.append(CodeRegion("<prologue>", min(text_addresses), first_start))
    for i, (addr, name) in enumerate(label_addrs):
        next_start = label_addrs[i + 1][0] if i + 1 < len(label_addrs) else end_of_text
        regions.append(CodeRegion(name, addr, next_start))
    return regions


@dataclasses.dataclass
class RegionProfile:
    """One region's share of the program's estimated energy."""

    region: CodeRegion
    energy: float
    cycles: int
    instructions: int
    stats: ExecutionStats

    @property
    def name(self) -> str:
        return self.region.name


@dataclasses.dataclass
class ProfileReport:
    """Per-region energy decomposition of one run."""

    program_name: str
    processor_name: str
    regions: list[RegionProfile]
    total_energy: float

    def sorted_by_energy(self) -> list[RegionProfile]:
        return sorted(self.regions, key=lambda r: -r.energy)

    def table(self, top: Optional[int] = None) -> str:
        rows = self.sorted_by_energy()
        if top is not None:
            rows = rows[:top]
        lines = [
            f"energy profile: {self.program_name} on {self.processor_name}",
            f"{'region':<22}{'energy':>14}{'share':>8}{'cycles':>9}{'instrs':>8}",
            "-" * 62,
        ]
        for row in rows:
            share = 100.0 * row.energy / self.total_energy if self.total_energy else 0.0
            lines.append(
                f"{row.name:<22}{row.energy:>14.1f}{share:>7.1f}%"
                f"{row.cycles:>9}{row.instructions:>8}"
            )
        lines.append("-" * 62)
        lines.append(f"{'total':<22}{self.total_energy:>14.1f}")
        return "\n".join(lines)

    def to_payload(self) -> dict:
        """JSON-ready payload (mirrors the observer reports' shape)."""
        return {
            "program": self.program_name,
            "processor": self.processor_name,
            "total_energy": self.total_energy,
            "regions": [
                {
                    "name": row.name,
                    "start": row.region.start,
                    "end": row.region.end,
                    "energy": row.energy,
                    "cycles": row.cycles,
                    "instructions": row.instructions,
                }
                for row in self.sorted_by_energy()
            ],
        }


def _record_issue_cycles(record: TraceRecord, config: ProcessorConfig) -> int:
    """Strip penalty cycles off a trace record, leaving issue cycles."""
    penalties = 0
    if record.icache_miss:
        penalties += config.icache.miss_penalty
    if record.dcache_miss:
        penalties += config.dcache.miss_penalty
    if record.uncached_fetch:
        penalties += config.timing.uncached_fetch_penalty
    if record.interlock:
        penalties += config.timing.interlock_stall
    return record.cycles - penalties


def stats_from_records(
    records: Sequence[TraceRecord], config: ProcessorConfig
) -> ExecutionStats:
    """Rebuild :class:`ExecutionStats` from a subset of trace records.

    This is the inverse of trace collection for a *partition* of a run:
    summing the stats of a partition's parts reproduces the whole run's
    stats (tested property), which is what makes exact energy attribution
    possible.
    """
    stats = ExecutionStats()
    extensions = config.extension_index
    for record in records:
        issue = _record_issue_cycles(record, config)
        iclass = record.iclass
        if iclass in BASE_ENERGY_CLASSES:
            stats.class_cycles[iclass] += issue
            stats.class_counts[iclass] += 1
        elif iclass is InstructionClass.CUSTOM:
            stats.custom_cycles[record.mnemonic] = (
                stats.custom_cycles.get(record.mnemonic, 0) + issue
            )
            stats.custom_counts[record.mnemonic] = (
                stats.custom_counts.get(record.mnemonic, 0) + 1
            )
            impl = extensions.get(record.mnemonic)
            if impl is not None and impl.accesses_gpr:
                stats.custom_gpr_cycles += issue
        else:  # SYSTEM
            stats.system_cycles += issue
        if record.icache_miss:
            stats.icache_misses += 1
        if record.dcache_miss:
            stats.dcache_misses += 1
        if record.uncached_fetch:
            stats.uncached_fetches += 1
        if record.interlock:
            stats.interlocks += 1
        if iclass is not InstructionClass.CUSTOM and record.operands:
            stats.base_bus_cycles += issue
        stats.total_cycles += record.cycles
        stats.total_instructions += 1
        stats.mnemonic_counts[record.mnemonic] = (
            stats.mnemonic_counts.get(record.mnemonic, 0) + 1
        )
    return stats


class RegionStatsObserver(SimObserver):
    """Streams retire events into per-region :class:`ExecutionStats`.

    Replaces the trace-bucketing profiler pass: each retired instruction
    is folded into the stats of the first region (in ascending-start
    order) containing its address, with a per-address memo so the region
    scan runs once per static instruction rather than once per dynamic
    one.  Addresses outside every region accumulate into a synthetic
    ``<unmapped>`` region spanning the stray addresses seen.
    """

    wants_retire = True

    def __init__(self, regions: Sequence[CodeRegion]) -> None:
        self.regions = sorted(regions, key=lambda region: region.start)
        self._stats: dict[str, ExecutionStats] = {}
        self._by_addr: dict[int, ExecutionStats] = {}
        self._region_of: dict[int, Optional[CodeRegion]] = {}
        self._overflow: Optional[ExecutionStats] = None
        self._overflow_min = 0
        self._overflow_max = 0
        self._gpr_mnemonics: frozenset[str] = frozenset()

    def on_run_start(self, config: ProcessorConfig, program: Program) -> None:
        self._gpr_mnemonics = gpr_accessing_mnemonics(config)

    def on_retire(self, event: "RetireEvent") -> None:
        addr = event.addr
        stats = self._by_addr.get(addr)
        if stats is None:
            target = None
            for region in self.regions:
                if addr in region:
                    target = region
                    break
            self._region_of[addr] = target
            if target is None:
                if self._overflow is None:
                    self._overflow = ExecutionStats()
                    self._overflow_min = self._overflow_max = addr
                stats = self._overflow
            else:
                stats = self._stats.setdefault(target.name, ExecutionStats())
            self._by_addr[addr] = stats
        if stats is self._overflow:
            self._overflow_min = min(self._overflow_min, addr)
            self._overflow_max = max(self._overflow_max, addr)
        apply_event(stats, event, self._gpr_mnemonics)

    def buckets(self) -> list[tuple[CodeRegion, ExecutionStats]]:
        """(region, stats) pairs in region order, unmapped last; empty
        regions are omitted."""
        pairs = [
            (region, self._stats[region.name])
            for region in self.regions
            if region.name in self._stats
        ]
        if self._overflow is not None:
            pairs.append(
                (
                    CodeRegion(
                        "<unmapped>", self._overflow_min, self._overflow_max + 4
                    ),
                    self._overflow,
                )
            )
        return pairs


class EnergyProfiler:
    """Attributes a program's macro-model energy to its code regions."""

    def __init__(self, model: EnergyMacroModel) -> None:
        self.model = model

    def observer(
        self,
        program: Program,
        regions: Optional[Sequence[CodeRegion]] = None,
    ) -> RegionStatsObserver:
        """A fresh region observer for ``program`` (label-derived regions
        by default) — register it on a session, then pass it to
        :meth:`report_from`.  Lets callers compose the region profile with
        other observers in a single simulation run."""
        if regions is None:
            regions = regions_from_symbols(program)
        return RegionStatsObserver(regions)

    def report_from(
        self,
        observer: RegionStatsObserver,
        config: ProcessorConfig,
        program: Program,
    ) -> ProfileReport:
        """Decompose a completed region observer into a :class:`ProfileReport`."""
        profiles: list[RegionProfile] = []
        total = 0.0
        for region, stats in observer.buckets():
            energy = self.model.estimate_from_stats(stats, config)
            total += energy
            profiles.append(
                RegionProfile(
                    region=region,
                    energy=energy,
                    cycles=stats.total_cycles,
                    instructions=stats.total_instructions,
                    stats=stats,
                )
            )

        return ProfileReport(
            program_name=program.name,
            processor_name=config.name,
            regions=profiles,
            total_energy=total,
        )

    def profile(
        self,
        config: ProcessorConfig,
        program: Program,
        regions: Optional[Sequence[CodeRegion]] = None,
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    ) -> ProfileReport:
        """Run once, decomposing the estimated energy by region online.

        Region statistics accumulate in a streaming observer, so no trace
        is materialized and peak memory is independent of run length.
        """
        observer = self.observer(program, regions)
        run_session(
            config,
            program,
            observers=(observer,),
            max_instructions=max_instructions,
        )
        return self.report_from(observer, config, program)
