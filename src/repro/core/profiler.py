"""Region-level energy profiling on top of the macro-model.

A practical extension beyond the paper: because the macro-model is linear
in per-cycle/per-event counts, a program's estimated energy decomposes
*exactly* over any partition of its dynamic execution.  The profiler
splits a traced run by code region (by default: one region per text-label
in the program, i.e. per "function") and rebuilds each region's
macro-model variable vector from its trace records — answering "where
does the energy go?" with the same model that answers "how much".

The per-region energies sum to the whole-program macro-model estimate to
within floating-point error; a property test enforces this.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from ..asm import Program
from ..isa import InstructionClass
from ..isa.classes import BASE_ENERGY_CLASSES
from ..xtcore import ExecutionStats, ProcessorConfig, Simulator, TraceRecord
from .model import EnergyMacroModel


@dataclasses.dataclass(frozen=True)
class CodeRegion:
    """A named, half-open instruction-address interval ``[start, end)``."""

    name: str
    start: int
    end: int

    def __contains__(self, addr: int) -> bool:
        return self.start <= addr < self.end


def regions_from_symbols(program: Program) -> list[CodeRegion]:
    """Derive code regions from the program's text-section labels.

    Every label that names an instruction address starts a region running
    to the next such label (or the end of the text range).  Labels inside
    loops create fine-grained regions; callers wanting coarser regions can
    pass their own list to :meth:`EnergyProfiler.profile`.
    """
    text_addresses = set(program.instructions)
    label_addrs = sorted(
        (addr, name)
        for name, addr in program.symbols.items()
        if addr in text_addresses
    )
    if not label_addrs:
        ranges = program.text_ranges()
        return [CodeRegion("<text>", ranges[0].start, ranges[-1].end)]

    end_of_text = max(text_addresses) + 4
    regions: list[CodeRegion] = []
    first_start = label_addrs[0][0]
    if min(text_addresses) < first_start:
        regions.append(CodeRegion("<prologue>", min(text_addresses), first_start))
    for i, (addr, name) in enumerate(label_addrs):
        next_start = label_addrs[i + 1][0] if i + 1 < len(label_addrs) else end_of_text
        regions.append(CodeRegion(name, addr, next_start))
    return regions


@dataclasses.dataclass
class RegionProfile:
    """One region's share of the program's estimated energy."""

    region: CodeRegion
    energy: float
    cycles: int
    instructions: int
    stats: ExecutionStats

    @property
    def name(self) -> str:
        return self.region.name


@dataclasses.dataclass
class ProfileReport:
    """Per-region energy decomposition of one run."""

    program_name: str
    processor_name: str
    regions: list[RegionProfile]
    total_energy: float

    def sorted_by_energy(self) -> list[RegionProfile]:
        return sorted(self.regions, key=lambda r: -r.energy)

    def table(self, top: Optional[int] = None) -> str:
        rows = self.sorted_by_energy()
        if top is not None:
            rows = rows[:top]
        lines = [
            f"energy profile: {self.program_name} on {self.processor_name}",
            f"{'region':<22}{'energy':>14}{'share':>8}{'cycles':>9}{'instrs':>8}",
            "-" * 62,
        ]
        for row in rows:
            share = 100.0 * row.energy / self.total_energy if self.total_energy else 0.0
            lines.append(
                f"{row.name:<22}{row.energy:>14.1f}{share:>7.1f}%"
                f"{row.cycles:>9}{row.instructions:>8}"
            )
        lines.append("-" * 62)
        lines.append(f"{'total':<22}{self.total_energy:>14.1f}")
        return "\n".join(lines)


def _record_issue_cycles(record: TraceRecord, config: ProcessorConfig) -> int:
    """Strip penalty cycles off a trace record, leaving issue cycles."""
    penalties = 0
    if record.icache_miss:
        penalties += config.icache.miss_penalty
    if record.dcache_miss:
        penalties += config.dcache.miss_penalty
    if record.uncached_fetch:
        penalties += config.timing.uncached_fetch_penalty
    if record.interlock:
        penalties += config.timing.interlock_stall
    return record.cycles - penalties


def stats_from_records(
    records: Sequence[TraceRecord], config: ProcessorConfig
) -> ExecutionStats:
    """Rebuild :class:`ExecutionStats` from a subset of trace records.

    This is the inverse of trace collection for a *partition* of a run:
    summing the stats of a partition's parts reproduces the whole run's
    stats (tested property), which is what makes exact energy attribution
    possible.
    """
    stats = ExecutionStats()
    extensions = config.extension_index
    for record in records:
        issue = _record_issue_cycles(record, config)
        iclass = record.iclass
        if iclass in BASE_ENERGY_CLASSES:
            stats.class_cycles[iclass] += issue
            stats.class_counts[iclass] += 1
        elif iclass is InstructionClass.CUSTOM:
            stats.custom_cycles[record.mnemonic] = (
                stats.custom_cycles.get(record.mnemonic, 0) + issue
            )
            stats.custom_counts[record.mnemonic] = (
                stats.custom_counts.get(record.mnemonic, 0) + 1
            )
            impl = extensions.get(record.mnemonic)
            if impl is not None and impl.accesses_gpr:
                stats.custom_gpr_cycles += issue
        else:  # SYSTEM
            stats.system_cycles += issue
        if record.icache_miss:
            stats.icache_misses += 1
        if record.dcache_miss:
            stats.dcache_misses += 1
        if record.uncached_fetch:
            stats.uncached_fetches += 1
        if record.interlock:
            stats.interlocks += 1
        if iclass is not InstructionClass.CUSTOM and record.operands:
            stats.base_bus_cycles += issue
        stats.total_cycles += record.cycles
        stats.total_instructions += 1
        stats.mnemonic_counts[record.mnemonic] = (
            stats.mnemonic_counts.get(record.mnemonic, 0) + 1
        )
    return stats


class EnergyProfiler:
    """Attributes a program's macro-model energy to its code regions."""

    def __init__(self, model: EnergyMacroModel) -> None:
        self.model = model

    def profile(
        self,
        config: ProcessorConfig,
        program: Program,
        regions: Optional[Sequence[CodeRegion]] = None,
        max_instructions: int = 5_000_000,
    ) -> ProfileReport:
        """Trace one run and decompose its estimated energy by region."""
        if regions is None:
            regions = regions_from_symbols(program)
        result = Simulator(
            config, program, collect_trace=True, max_instructions=max_instructions
        ).run()
        assert result.trace is not None

        buckets: dict[str, list[TraceRecord]] = {region.name: [] for region in regions}
        overflow: list[TraceRecord] = []
        region_list = sorted(regions, key=lambda region: region.start)
        for record in result.trace:
            target = None
            for region in region_list:
                if record.addr in region:
                    target = region
                    break
            if target is None:
                overflow.append(record)
            else:
                buckets[target.name].append(record)

        profiles: list[RegionProfile] = []
        all_regions = list(region_list)
        if overflow:
            start = min(record.addr for record in overflow)
            end = max(record.addr for record in overflow) + 4
            region = CodeRegion("<unmapped>", start, end)
            all_regions.append(region)
            buckets[region.name] = overflow

        total = 0.0
        for region in all_regions:
            records = buckets[region.name]
            if not records:
                continue
            stats = stats_from_records(records, config)
            energy = self.model.estimate_from_stats(stats, config)
            total += energy
            profiles.append(
                RegionProfile(
                    region=region,
                    energy=energy,
                    cycles=stats.total_cycles,
                    instructions=stats.total_instructions,
                    stats=stats,
                )
            )

        return ProfileReport(
            program_name=program.name,
            processor_name=config.name,
            regions=profiles,
            total_energy=total,
        )
