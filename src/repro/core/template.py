"""The energy macro-model template (paper Eq. 2-4).

The template expresses program energy as a linear function

.. math::

    E = E_{inst} + E_{struct} = \\sum_i c_i \\cdot N_i + \\sum_j c_j \\cdot S_j

of 21 variables drawn from two domains:

**Instruction-level** (11 variables) — characterize effects on the fixed
base core:

* ``N_a, N_ld, N_st, N_j, N_bt, N_bu`` — cycles spent in the six base
  instruction classes (arithmetic, load, store, jump, branch-taken,
  branch-untaken);
* ``N_cm, N_dm, N_uf, N_il`` — occurrence counts of the dynamic
  non-idealities (I-cache miss, D-cache miss, uncached instruction
  fetch, pipeline interlock);
* ``N_sd`` — cycles of custom instructions that access the generic
  register file (the custom→base side effect of paper Example 1).

**Structural** (10 variables) — characterize usage of custom hardware by
base *or* custom instructions: one variable per component category of
the hardware library, each accumulating *complexity-weighted active
cycles* (``Σ instances C(w) x active cycles``), including spurious
operand-bus activations.

Variants of the template power the ablation studies: an instruction-only
template (is the structural domain needed?) and an unweighted-complexity
template (does the bit-width law matter?).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Iterator

from ..hwlib import CATEGORY_ORDER, CATEGORY_TABLE, ComponentCategory
from ..isa import InstructionClass


class VariableDomain(enum.Enum):
    """Which of the paper's two macro-modeling domains a variable is from."""

    INSTRUCTION = "instruction"
    STRUCTURAL = "structural"


@dataclasses.dataclass(frozen=True)
class MacroModelVariable:
    """One independent variable of the macro-model template."""

    key: str
    description: str
    domain: VariableDomain
    #: set for class-cycle variables
    iclass: InstructionClass | None = None
    #: set for structural variables
    category: ComponentCategory | None = None

    def __str__(self) -> str:
        return self.key


#: Instruction-class cycle variables in paper order.
CLASS_VARIABLES: tuple[MacroModelVariable, ...] = (
    MacroModelVariable("N_a", "arithmetic instruction cycles", VariableDomain.INSTRUCTION, iclass=InstructionClass.ARITH),
    MacroModelVariable("N_ld", "load instruction cycles", VariableDomain.INSTRUCTION, iclass=InstructionClass.LOAD),
    MacroModelVariable("N_st", "store instruction cycles", VariableDomain.INSTRUCTION, iclass=InstructionClass.STORE),
    MacroModelVariable("N_j", "jump instruction cycles", VariableDomain.INSTRUCTION, iclass=InstructionClass.JUMP),
    MacroModelVariable("N_bt", "branch taken cycles", VariableDomain.INSTRUCTION, iclass=InstructionClass.BRANCH_TAKEN),
    MacroModelVariable("N_bu", "branch untaken cycles", VariableDomain.INSTRUCTION, iclass=InstructionClass.BRANCH_UNTAKEN),
)

#: Dynamic-event variables in paper order.
EVENT_VARIABLES: tuple[MacroModelVariable, ...] = (
    MacroModelVariable("N_cm", "instruction cache misses", VariableDomain.INSTRUCTION),
    MacroModelVariable("N_dm", "data cache misses", VariableDomain.INSTRUCTION),
    MacroModelVariable("N_uf", "uncached instruction fetches", VariableDomain.INSTRUCTION),
    MacroModelVariable("N_il", "processor interlocks", VariableDomain.INSTRUCTION),
)

#: The custom→base side-effect variable.
SIDE_EFFECT_VARIABLE = MacroModelVariable(
    "N_sd",
    "side effects due to custom instructions (GPR-accessing custom cycles)",
    VariableDomain.INSTRUCTION,
)


def _structural_variable(category: ComponentCategory) -> MacroModelVariable:
    info = CATEGORY_TABLE[category]
    return MacroModelVariable(
        f"S_{category.value}",
        f"custom hardware activity: {info.display_name} "
        f"(complexity-weighted active cycles, {info.law.value} law)",
        VariableDomain.STRUCTURAL,
        category=category,
    )


STRUCTURAL_VARIABLES: tuple[MacroModelVariable, ...] = tuple(
    _structural_variable(category) for category in CATEGORY_ORDER
)


@dataclasses.dataclass(frozen=True)
class MacroModelTemplate:
    """An ordered set of macro-model variables (the design-matrix columns).

    ``weighted_complexity`` selects whether structural variables apply
    the bit-width complexity law ``C(w)`` (the paper's choice) or count
    raw instance-cycles (the ablation baseline).
    """

    name: str
    variables: tuple[MacroModelVariable, ...]
    weighted_complexity: bool = True

    def __len__(self) -> int:
        return len(self.variables)

    def __iter__(self) -> Iterator[MacroModelVariable]:
        return iter(self.variables)

    def keys(self) -> tuple[str, ...]:
        return tuple(v.key for v in self.variables)

    def index_of(self, key: str) -> int:
        for i, variable in enumerate(self.variables):
            if variable.key == key:
                return i
        raise KeyError(f"template {self.name!r} has no variable {key!r}")

    @property
    def instruction_variables(self) -> tuple[MacroModelVariable, ...]:
        return tuple(v for v in self.variables if v.domain is VariableDomain.INSTRUCTION)

    @property
    def structural_variables(self) -> tuple[MacroModelVariable, ...]:
        return tuple(v for v in self.variables if v.domain is VariableDomain.STRUCTURAL)


def default_template() -> MacroModelTemplate:
    """The paper's full hybrid template: 21 variables."""
    return MacroModelTemplate(
        name="hybrid-21",
        variables=CLASS_VARIABLES
        + EVENT_VARIABLES
        + (SIDE_EFFECT_VARIABLE,)
        + STRUCTURAL_VARIABLES,
    )


def instruction_level_template() -> MacroModelTemplate:
    """Ablation: instruction-level domain only (11 variables)."""
    return MacroModelTemplate(
        name="instruction-only-11",
        variables=CLASS_VARIABLES + EVENT_VARIABLES + (SIDE_EFFECT_VARIABLE,),
    )


def unweighted_template() -> MacroModelTemplate:
    """Ablation: hybrid, but structural variables ignore bit-width."""
    return MacroModelTemplate(
        name="hybrid-21-unweighted",
        variables=CLASS_VARIABLES
        + EVENT_VARIABLES
        + (SIDE_EFFECT_VARIABLE,)
        + STRUCTURAL_VARIABLES,
        weighted_complexity=False,
    )
