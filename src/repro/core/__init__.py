"""``repro.core`` — the paper's contribution: the energy macro-model.

Typical use::

    from repro.core import Characterizer, audit_coverage

    characterizer = Characterizer()
    for config, program in characterization_suite:
        characterizer.add_program(config, program)
    result = characterizer.fit()
    model = result.model                       # 21 fitted coefficients
    estimate = model.estimate(config, program) # fast path: ISS only
"""

from .characterize import (
    CharacterizationResult,
    CharacterizationSample,
    Characterizer,
    characterize,
)
from .coverage import CoverageReport, audit_coverage, collinear_columns
from .estimator import ComparisonRow, EstimationStudy, StudyReport
from .extract import extract_variables, variables_as_dict
from .model import EnergyMacroModel, MacroEstimate
from .profiler import (
    CodeRegion,
    EnergyProfiler,
    ProfileReport,
    RegionProfile,
    RegionStatsObserver,
    regions_from_symbols,
    stats_from_records,
)
from .regression import (
    CONDITION_WARNING_THRESHOLD,
    IllConditionedDesignWarning,
    RegressionError,
    RegressionResult,
    column_coverage,
    fit_least_squares,
    fit_nnls,
    fit_ridge,
    leave_one_out_errors,
)
from .runner import (
    CharacterizationRunError,
    CharacterizationRunner,
    CheckpointError,
    CoverageLossError,
    RetryPolicy,
    RunReport,
    RunnerTask,
    SampleFailure,
    TooManyFailures,
)
from .resource import ResourceUsage, analyze_resource_usage
from .template import (
    CLASS_VARIABLES,
    EVENT_VARIABLES,
    SIDE_EFFECT_VARIABLE,
    STRUCTURAL_VARIABLES,
    MacroModelTemplate,
    MacroModelVariable,
    VariableDomain,
    default_template,
    instruction_level_template,
    unweighted_template,
)

__all__ = [
    "CLASS_VARIABLES",
    "CONDITION_WARNING_THRESHOLD",
    "CharacterizationResult",
    "CharacterizationRunError",
    "CharacterizationRunner",
    "CheckpointError",
    "CodeRegion",
    "CharacterizationSample",
    "Characterizer",
    "ComparisonRow",
    "CoverageLossError",
    "CoverageReport",
    "IllConditionedDesignWarning",
    "RetryPolicy",
    "RunReport",
    "RunnerTask",
    "SampleFailure",
    "TooManyFailures",
    "EVENT_VARIABLES",
    "EnergyMacroModel",
    "EnergyProfiler",
    "EstimationStudy",
    "MacroEstimate",
    "MacroModelTemplate",
    "MacroModelVariable",
    "ProfileReport",
    "RegionProfile",
    "RegionStatsObserver",
    "RegressionError",
    "RegressionResult",
    "ResourceUsage",
    "SIDE_EFFECT_VARIABLE",
    "STRUCTURAL_VARIABLES",
    "StudyReport",
    "VariableDomain",
    "analyze_resource_usage",
    "regions_from_symbols",
    "stats_from_records",
    "audit_coverage",
    "characterize",
    "collinear_columns",
    "column_coverage",
    "default_template",
    "extract_variables",
    "fit_least_squares",
    "fit_nnls",
    "fit_ridge",
    "instruction_level_template",
    "leave_one_out_errors",
    "unweighted_template",
    "variables_as_dict",
]
