"""Fault-tolerant characterization runtime (robustness extension).

In-situ characterization (paper Fig. 2, steps 1-8) is the expensive half
of the flow: every sample costs a fully-traced ISS run plus a reference
RTL estimation.  The plain :class:`~repro.core.characterize.Characterizer`
is all-or-nothing — one :class:`~repro.xtcore.SimulationError`, assembly
failure or non-finite energy aborts the suite and discards every prior
sample.  At production scale (large suites, many processor variants,
partially-failing batch sweeps) that is unacceptable, so this module
wraps the sim→RTL→extract pipeline per sample with:

* **error isolation** — each failure is captured as a structured
  :class:`SampleFailure` record instead of propagating;
* **a retry policy** (:class:`RetryPolicy`) — transient failures are
  retried with a lowered instruction budget and an optional cheap
  trace-off probe before the traced re-run;
* **checkpointing** — completed samples (plus failure records) are
  periodically written to the ``save_samples`` JSON format with atomic
  tmp + ``os.replace`` writes, and a later run can resume from the
  checkpoint, skipping completed samples;
* **degradation rules** — the run proceeds on the surviving samples when
  coverage still spans the template (audited by
  :mod:`repro.core.coverage`); in strict mode a coverage-destroying
  failure pattern raises :class:`CoverageLossError` naming the variables
  that lost coverage, and more failures than ``max_failures`` raises
  :class:`TooManyFailures`.

The simulation and energy-estimation stages are injectable, which is how
:mod:`repro.testing.faults` deterministically injects simulator
exceptions, NaN/Inf energies and budget exhaustion to prove containment.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Callable, Optional, Sequence, Union

import numpy as np

from ..asm import Program
from ..obs.session import DEFAULT_MAX_INSTRUCTIONS, SessionFn, run_session
from ..xtcore import ProcessorConfig, SimulationResult
from .characterize import (
    CharacterizationResult,
    CharacterizationSample,
    Characterizer,
    atomic_write_json,
)
from .coverage import CoverageReport, audit_coverage
from .extract import extract_variables

#: Legacy positional ``simulate(config, program, collect_trace,
#: max_instructions)`` seam shape.  The runner now invokes its simulation
#: stage with keyword arguments (the :data:`~repro.obs.session.SessionFn`
#: contract); callables of this legacy shape keep working as long as they
#: use the standard parameter names.
SimulateFn = Callable[[ProcessorConfig, Program, bool, int], SimulationResult]

#: ``estimate_energy(config, sim_result) -> float`` seam.
EstimateFn = Callable[[ProcessorConfig, SimulationResult], float]


class CharacterizationRunError(RuntimeError):
    """A fault-tolerant characterization run could not produce a model."""


class TooManyFailures(CharacterizationRunError):
    """More samples failed than the configured ``max_failures`` budget."""

    def __init__(self, message: str, failures: list["SampleFailure"]) -> None:
        super().__init__(message)
        self.failures = failures


class CoverageLossError(CharacterizationRunError):
    """Failures left the surviving suite unable to span the template."""

    def __init__(
        self,
        message: str,
        coverage: CoverageReport,
        lost_variables: list[str],
    ) -> None:
        super().__init__(message)
        self.coverage = coverage
        self.lost_variables = lost_variables


class CheckpointError(ValueError):
    """A checkpoint file could not be read back."""


def default_simulate(
    config: ProcessorConfig,
    program: Program,
    collect_trace: bool = False,
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
) -> SimulationResult:
    """Positional-compatibility wrapper around :func:`repro.obs.run_session`.

    The production simulation stage is :func:`~repro.obs.session.run_session`
    itself; this shim keeps the pre-session positional call shape working.
    """
    return run_session(
        config,
        program,
        collect_trace=collect_trace,
        max_instructions=max_instructions,
    )


def default_estimate(characterizer: Characterizer) -> EstimateFn:
    """The production RTL-reference energy stage, sharing the
    characterizer's per-config netlist/estimator cache."""

    def estimate(config: ProcessorConfig, result: SimulationResult) -> float:
        return characterizer._estimator_for(config).estimate(result).total

    return estimate


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How a failed sample is retried before being recorded as a failure.

    ``max_attempts`` bounds total attempts per sample (1 = no retries).
    On each retry the instruction budget is multiplied by
    ``budget_factor`` so a deterministically hanging program (budget
    exhaustion) fails fast instead of paying the full budget again, while
    a transient failure gets a real second chance — characterization
    programs finish far below their budget.  With ``probe_without_trace``
    a retry first re-runs the simulator trace-off (cheap) to confirm the
    program terminates before paying for the traced run.
    """

    max_attempts: int = 2
    budget_factor: float = 0.5
    probe_without_trace: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if not 0.0 < self.budget_factor <= 1.0:
            raise ValueError(
                f"budget_factor must be in (0, 1], got {self.budget_factor}"
            )

    def budget_for(self, attempt: int, base_budget: int) -> int:
        """Instruction budget for 1-indexed ``attempt``."""
        return max(1, int(base_budget * self.budget_factor ** (attempt - 1)))


@dataclasses.dataclass
class SampleFailure:
    """One contained per-sample failure (instead of an aborted run)."""

    name: str
    processor_name: str
    #: pipeline stage that failed: build | simulate | estimate | extract | validate
    stage: str
    error_type: str
    message: str
    attempts: int

    @classmethod
    def from_exception(
        cls,
        name: str,
        processor_name: str,
        stage: str,
        exc: BaseException,
        attempts: int = 1,
    ) -> "SampleFailure":
        """Capture an exception as a structured failure record.

        The one spelling shared by the characterization runner, the DSE
        engine's worker payloads and the estimation service, so failure
        records look identical no matter which layer contained the error.
        """
        return cls(
            name=name,
            processor_name=processor_name,
            stage=stage,
            error_type=type(exc).__name__,
            message=str(exc),
            attempts=attempts,
        )

    def describe(self) -> str:
        return (
            f"{self.name} ({self.processor_name or '?'}) failed at {self.stage} "
            f"after {self.attempts} attempt(s): {self.error_type}: {self.message}"
        )

    def to_payload(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_payload(cls, payload: dict) -> "SampleFailure":
        return cls(
            name=payload["name"],
            processor_name=payload.get("processor_name", ""),
            stage=payload.get("stage", "?"),
            error_type=payload.get("error_type", "?"),
            message=payload.get("message", ""),
            attempts=int(payload.get("attempts", 1)),
        )


@dataclasses.dataclass
class RunnerTask:
    """One unit of characterization work with a deferred (fallible) build."""

    name: str
    builder: Callable[[], tuple[ProcessorConfig, Program]]
    max_instructions: int = 2_000_000

    @classmethod
    def from_case(cls, case) -> "RunnerTask":
        """Adapt a :class:`repro.programs.BenchmarkCase`-like object."""
        return cls(
            name=case.name,
            builder=case.build,
            max_instructions=case.max_instructions,
        )

    @classmethod
    def from_pair(
        cls,
        config: ProcessorConfig,
        program: Program,
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    ) -> "RunnerTask":
        return cls(
            name=program.name,
            builder=lambda: (config, program),
            max_instructions=max_instructions,
        )


TaskLike = Union[RunnerTask, tuple]


def as_task(item: TaskLike) -> RunnerTask:
    """Coerce a RunnerTask, (config, program) pair, or BenchmarkCase."""
    if isinstance(item, RunnerTask):
        return item
    if isinstance(item, tuple):
        return RunnerTask.from_pair(*item)
    if hasattr(item, "build") and hasattr(item, "name"):
        return RunnerTask.from_case(item)
    raise TypeError(f"cannot interpret {item!r} as a characterization task")


@dataclasses.dataclass
class RunReport:
    """Everything a caller needs to audit a fault-tolerant run."""

    samples: list[CharacterizationSample]
    failures: list[SampleFailure]
    #: task names skipped because a resumed checkpoint already had them
    resumed: list[str]
    coverage: Optional[CoverageReport]
    result: Optional[CharacterizationResult]
    checkpoint_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        """Structured human-readable failure/coverage summary."""
        lines = [
            f"characterization run: {len(self.samples)} sample(s) ok "
            f"({len(self.resumed)} resumed from checkpoint), "
            f"{len(self.failures)} failure(s)"
        ]
        if self.failures:
            lines.append(f"{'test program':<24}{'stage':<10}{'attempts':>9}  error")
            lines.append("-" * 72)
            for failure in self.failures:
                message = f"{failure.error_type}: {failure.message}"
                if len(message) > 60:
                    message = message[:57] + "..."
                lines.append(
                    f"{failure.name:<24}{failure.stage:<10}"
                    f"{failure.attempts:>9}  {message}"
                )
        if self.coverage is not None and not self.coverage.is_adequate:
            lines.append(
                f"coverage: rank {self.coverage.rank}/{self.coverage.n_variables}"
                + (
                    f", unexercised: {self.coverage.unexercised}"
                    if self.coverage.unexercised
                    else ""
                )
            )
        return "\n".join(lines)


class CharacterizationRunner:
    """Run a characterization suite with per-sample fault isolation.

    Parameters
    ----------
    characterizer:
        Receives the surviving samples; a fresh default-template
        :class:`Characterizer` when omitted.
    retry:
        :class:`RetryPolicy`; default retries once with a halved budget.
    checkpoint_path / checkpoint_every:
        When a path is given, the sample set (plus failure records) is
        atomically rewritten after every ``checkpoint_every`` completed
        tasks and once at the end of the run.
    max_failures:
        Abort (raising :class:`TooManyFailures`) once more than this many
        samples have failed this run.  ``None`` = unlimited.
    degradation:
        ``"warn"`` (default) never fails a run over coverage; ``"strict"``
        raises :class:`CoverageLossError` when failures occurred *and* the
        surviving samples no longer span the template.
    simulate / estimate_energy:
        Injectable pipeline stages (used by the fault-injection harness).
        ``simulate`` is invoked with keyword arguments per the
        :data:`~repro.obs.session.SessionFn` contract — wrap it with
        :meth:`repro.testing.faults.FaultPlan.wrap_session`; legacy
        positional-signature callables keep working as long as their
        parameters are named ``collect_trace`` / ``max_instructions``.
    """

    def __init__(
        self,
        characterizer: Optional[Characterizer] = None,
        *,
        retry: Optional[RetryPolicy] = None,
        checkpoint_path: Optional[str] = None,
        checkpoint_every: int = 5,
        max_failures: Optional[int] = None,
        degradation: str = "warn",
        progress: Optional[Callable[[str], None]] = None,
        simulate: Optional[SessionFn] = None,
        estimate_energy: Optional[EstimateFn] = None,
    ) -> None:
        if degradation not in ("warn", "strict"):
            raise ValueError(
                f"unknown degradation mode {degradation!r} (use 'warn' or 'strict')"
            )
        if checkpoint_every < 1:
            raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
        self.characterizer = characterizer if characterizer is not None else Characterizer()
        self.retry = retry if retry is not None else RetryPolicy()
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = checkpoint_every
        self.max_failures = max_failures
        self.degradation = degradation
        self.progress = progress
        self.failures: list[SampleFailure] = []
        self._simulate: SessionFn = simulate if simulate is not None else run_session
        self._estimate = (
            estimate_energy
            if estimate_energy is not None
            else default_estimate(self.characterizer)
        )

    # -- checkpointing -----------------------------------------------------

    def resume(self) -> list[str]:
        """Load the checkpoint file (if configured and present).

        Returns the names of the samples restored; tasks with those names
        are skipped by :meth:`run`.  Previously recorded *failures* are
        not restored — a resumed run re-attempts them (they may have been
        transient).  Raises :class:`CheckpointError` (with the underlying
        cause and a recovery hint) when the file exists but is unreadable.
        """
        if self.checkpoint_path is None or not os.path.exists(self.checkpoint_path):
            return []
        before = len(self.characterizer.samples)
        try:
            self.characterizer.load_samples(self.checkpoint_path)
        except ValueError as exc:
            raise CheckpointError(
                f"cannot resume from checkpoint {self.checkpoint_path!r}: {exc}"
            ) from exc
        restored = [s.name for s in self.characterizer.samples[before:]]
        self._emit(f"resumed {len(restored)} sample(s) from {self.checkpoint_path}")
        return restored

    def _write_checkpoint(self) -> None:
        if self.checkpoint_path is None:
            return
        payload = self.characterizer.samples_payload()
        payload["failures"] = [f.to_payload() for f in self.failures]
        atomic_write_json(self.checkpoint_path, payload)

    # -- the run loop ------------------------------------------------------

    def run(
        self,
        tasks: Sequence[TaskLike],
        fit: bool = True,
        with_loocv: bool = False,
    ) -> RunReport:
        """Run every task, isolating failures; checkpoint; audit; fit."""
        tasks = [as_task(t) for t in tasks]
        completed = {s.name for s in self.characterizer.samples}
        resumed = [t.name for t in tasks if t.name in completed]
        pending = [t for t in tasks if t.name not in completed]
        since_checkpoint = 0
        try:
            for task in pending:
                outcome = self._run_task(task)
                if isinstance(outcome, SampleFailure):
                    self.failures.append(outcome)
                    self._emit(f"FAILED {outcome.describe()}")
                    if (
                        self.max_failures is not None
                        and len(self.failures) > self.max_failures
                    ):
                        raise TooManyFailures(
                            f"aborting: {len(self.failures)} sample failure(s) "
                            f"exceed max_failures={self.max_failures}\n"
                            + "\n".join(f.describe() for f in self.failures),
                            failures=list(self.failures),
                        )
                else:
                    self.characterizer.add_sample(outcome)
                    self._emit(f"characterized {outcome.name} on {outcome.processor_name}")
                since_checkpoint += 1
                if since_checkpoint >= self.checkpoint_every:
                    self._write_checkpoint()
                    since_checkpoint = 0
        finally:
            # Persist whatever completed, even when aborting mid-run.
            if since_checkpoint or self.failures:
                self._write_checkpoint()

        samples = list(self.characterizer.samples)
        coverage = (
            audit_coverage(samples, self.characterizer.template) if samples else None
        )
        if self.degradation == "strict" and self.failures:
            if coverage is None:
                raise CharacterizationRunError(
                    "no samples survived characterization; "
                    f"{len(self.failures)} failure(s):\n"
                    + "\n".join(f.describe() for f in self.failures)
                )
            if not coverage.is_adequate:
                lost = list(coverage.unexercised)
                raise CoverageLossError(
                    "failures degraded suite coverage below the template: "
                    f"rank {coverage.rank}/{coverage.n_variables}"
                    + (f", unexercised variables {lost}" if lost else "")
                    + f" after {len(self.failures)} failure(s)",
                    coverage=coverage,
                    lost_variables=lost,
                )
        result = None
        if fit:
            if not samples:
                raise CharacterizationRunError(
                    "no samples survived characterization; "
                    f"{len(self.failures)} failure(s):\n"
                    + "\n".join(f.describe() for f in self.failures)
                )
            result = self.characterizer.fit(with_loocv=with_loocv)
        return RunReport(
            samples=samples,
            failures=list(self.failures),
            resumed=resumed,
            coverage=coverage,
            result=result,
            checkpoint_path=self.checkpoint_path,
        )

    def _run_task(self, task: RunnerTask) -> CharacterizationSample | SampleFailure:
        """One task through build→(simulate→estimate→extract→validate)×retry."""
        try:
            config, program = task.builder()
        except Exception as exc:  # noqa: BLE001 — isolation is the point
            return SampleFailure.from_exception(task.name, "", "build", exc)
        stage = "simulate"
        last_exc: Optional[Exception] = None
        attempt = 0
        while attempt < self.retry.max_attempts:
            attempt += 1
            budget = self.retry.budget_for(attempt, task.max_instructions)
            try:
                stage = "simulate"
                if attempt > 1 and self.retry.probe_without_trace:
                    # cheap termination probe before paying for the trace
                    self._simulate(
                        config, program, collect_trace=False, max_instructions=budget
                    )
                sim = self._simulate(
                    config, program, collect_trace=True, max_instructions=budget
                )
                stage = "estimate"
                energy = float(self._estimate(config, sim))
                stage = "extract"
                variables = extract_variables(
                    sim.stats, config, self.characterizer.template
                )
                stage = "validate"
                if not np.isfinite(energy):
                    raise ValueError(f"non-finite energy {energy!r}")
                if not np.all(np.isfinite(variables)):
                    raise ValueError("non-finite template variables")
                return CharacterizationSample(
                    name=task.name,
                    processor_name=config.name,
                    variables=variables,
                    energy=energy,
                    stats=sim.stats,
                )
            except Exception as exc:  # noqa: BLE001 — isolation is the point
                last_exc = exc
        assert last_exc is not None
        return SampleFailure.from_exception(
            task.name, config.name, stage, last_exc, attempts=attempt
        )

    def _emit(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)
