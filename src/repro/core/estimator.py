"""Side-by-side estimation paths + accuracy/speedup instrumentation.

The paper's evaluation (Table II, Fig. 4, and the speedup claim) always
compares two paths on the same application:

* the **macro-model path** — ISS without tracing, variable extraction,
  one dot product (seconds in the paper);
* the **reference path** — processor generation + traced simulation +
  RTL-level energy estimation (hours in the paper).

:class:`EstimationStudy` runs both, timing each, and accumulates the
per-application comparison rows that the Table II benchmark prints.
"""

from __future__ import annotations

import dataclasses
import time

from ..asm import Program
from ..rtl import RtlEnergyEstimator, generate_netlist
from ..xtcore import DEFAULT_MAX_INSTRUCTIONS, ProcessorConfig
from .model import EnergyMacroModel, MacroEstimate


@dataclasses.dataclass
class ComparisonRow:
    """One application's macro-model vs reference comparison."""

    application: str
    processor: str
    macro_energy: float
    reference_energy: float
    macro_seconds: float
    reference_seconds: float
    cycles: int

    @property
    def percent_error(self) -> float:
        """Signed error of the macro estimate w.r.t. the reference."""
        if self.reference_energy == 0:
            return 0.0
        return 100.0 * (self.macro_energy - self.reference_energy) / self.reference_energy

    @property
    def speedup(self) -> float:
        if self.macro_seconds <= 0:
            return float("inf")
        return self.reference_seconds / self.macro_seconds


@dataclasses.dataclass
class StudyReport:
    """Aggregated Table-II-style accuracy results."""

    rows: list[ComparisonRow]

    @property
    def mean_abs_percent_error(self) -> float:
        if not self.rows:
            return 0.0
        return sum(abs(r.percent_error) for r in self.rows) / len(self.rows)

    @property
    def max_abs_percent_error(self) -> float:
        if not self.rows:
            return 0.0
        return max(abs(r.percent_error) for r in self.rows)

    @property
    def mean_speedup(self) -> float:
        if not self.rows:
            return 0.0
        return sum(r.speedup for r in self.rows) / len(self.rows)

    def table(self) -> str:
        """Format like the paper's Table II (+ timing columns)."""
        lines = [
            f"{'application':<20}{'estimate':>12}{'reference':>12}{'err %':>8}"
            f"{'t_macro s':>11}{'t_ref s':>10}{'speedup':>9}"
        ]
        lines.append("-" * 82)
        for row in self.rows:
            lines.append(
                f"{row.application:<20}{row.macro_energy:>12.1f}{row.reference_energy:>12.1f}"
                f"{row.percent_error:>+8.2f}{row.macro_seconds:>11.4f}"
                f"{row.reference_seconds:>10.3f}{row.speedup:>8.1f}x"
            )
        lines.append("-" * 82)
        lines.append(
            f"mean |err| {self.mean_abs_percent_error:.2f}%   "
            f"max |err| {self.max_abs_percent_error:.2f}%   "
            f"mean speedup {self.mean_speedup:.1f}x"
        )
        return "\n".join(lines)


class EstimationStudy:
    """Runs macro-model and reference estimation side by side."""

    def __init__(self, model: EnergyMacroModel) -> None:
        self.model = model
        self.rows: list[ComparisonRow] = []

    def compare(
        self,
        config: ProcessorConfig,
        program: Program,
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    ) -> ComparisonRow:
        """Estimate one application both ways and record the comparison."""
        start = time.perf_counter()
        macro: MacroEstimate = self.model.estimate(
            config, program, max_instructions=max_instructions
        )
        macro_seconds = time.perf_counter() - start

        start = time.perf_counter()
        estimator = RtlEnergyEstimator(generate_netlist(config))
        report, _ = estimator.estimate_program(program, max_instructions=max_instructions)
        reference_seconds = time.perf_counter() - start

        row = ComparisonRow(
            application=program.name,
            processor=config.name,
            macro_energy=macro.energy,
            reference_energy=report.total,
            macro_seconds=macro_seconds,
            reference_seconds=reference_seconds,
            cycles=macro.cycles,
        )
        self.rows.append(row)
        return row

    def report(self) -> StudyReport:
        return StudyReport(rows=list(self.rows))
