"""Dynamic resource-usage analysis (step 10 of the paper's flow).

Given the execution statistics of a program and the processor's extension
descriptions, this analysis determines the activation of every custom
hardware component over the run — *without* simulating the hardware.
Two activation sources are modelled, exactly as in paper Example 1:

* **architected activation** — executing a custom instruction activates
  the components its schedule places in each cycle;
* **spurious activation** — components whose inputs tap the shared GPR
  operand buses are partially activated every cycle a *base* instruction
  drives those buses (weight :data:`~repro.hwlib.SPURIOUS_ACTIVATION_WEIGHT`).

The per-category totals (complexity-weighted active cycles) are the
structural macro-model variables.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

from ..hwlib import CATEGORY_ORDER, SPURIOUS_ACTIVATION_WEIGHT, ComponentCategory
from ..xtcore import ExecutionStats, ProcessorConfig


@dataclasses.dataclass(frozen=True)
class ResourceUsage:
    """Per-category and per-instance custom-hardware activity of one run."""

    #: category -> complexity-weighted active cycles (macro-model S_j)
    weighted_activity: Mapping[ComponentCategory, float]
    #: category -> raw instance-cycle counts (for the unweighted ablation)
    raw_activity: Mapping[ComponentCategory, float]
    #: instance name -> architected active cycles over the run
    instance_active_cycles: Mapping[str, int]
    #: instance name -> spurious (bus-tap) activation cycles, weighted
    instance_spurious_cycles: Mapping[str, float]

    def vector(self, weighted: bool = True) -> list[float]:
        """The ten structural-variable values, in CATEGORY_ORDER."""
        source = self.weighted_activity if weighted else self.raw_activity
        return [source.get(category, 0.0) for category in CATEGORY_ORDER]

    def total_weighted(self) -> float:
        return sum(self.weighted_activity.values())


def analyze_resource_usage(stats: ExecutionStats, config: ProcessorConfig) -> ResourceUsage:
    """Run the dynamic resource-usage analysis for one simulated program."""
    weighted: dict[ComponentCategory, float] = {}
    raw: dict[ComponentCategory, float] = {}
    instance_active: dict[str, int] = {}
    instance_spurious: dict[str, float] = {}

    for impl in config.extensions:
        executions = stats.custom_counts.get(impl.mnemonic, 0)

        # Architected activations: schedule x execution count.
        if executions:
            for category, activity in impl.per_exec_activity.items():
                weighted[category] = weighted.get(category, 0.0) + activity * executions
            for category, count in impl.per_exec_counts.items():
                raw[category] = raw.get(category, 0.0) + float(count * executions)
            for name, cycles in impl.active_cycles.items():
                instance_active[name] = instance_active.get(name, 0) + len(cycles) * executions

        # Spurious activations: base instructions driving the operand bus
        # toggle the inputs of bus-tapped components whether or not the
        # custom instruction ever executes.
        if stats.base_bus_cycles and impl.bus_tapped:
            spurious_cycles = SPURIOUS_ACTIVATION_WEIGHT * stats.base_bus_cycles
            for category, complexity in impl.bus_tap_complexity.items():
                weighted[category] = weighted.get(category, 0.0) + complexity * spurious_cycles
            for category, count in impl.bus_tap_counts.items():
                raw[category] = raw.get(category, 0.0) + count * spurious_cycles
            for name in impl.bus_tapped:
                instance_spurious[name] = instance_spurious.get(name, 0.0) + spurious_cycles

    return ResourceUsage(
        weighted_activity=weighted,
        raw_activity=raw,
        instance_active_cycles=instance_active,
        instance_spurious_cycles=instance_spurious,
    )
