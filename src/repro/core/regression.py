"""Regression machinery for macro-model fitting (paper Sec. IV-B.2).

The paper determines the energy coefficients by solving ``E = X C`` in
the least-squares sense with the pseudo-inverse (its Eq. 5):

.. math::

    \\hat{C} = (X^T X)^{-1} X^T E

We implement that literal formula (with an SVD pseudo-inverse fallback
when :math:`X^T X` is singular — e.g. when the test suite leaves some
template variable unexercised), plus ridge regression and efficient
leave-one-out cross-validation diagnostics as extensions.
"""

from __future__ import annotations

import dataclasses
import warnings

import numpy as np

#: Design-matrix condition number above which fitted coefficients are
#: numerically unstable (shared with the coverage audit).
CONDITION_WARNING_THRESHOLD = 1e8


class RegressionError(ValueError):
    """The regression inputs are unusable."""


class IllConditionedDesignWarning(UserWarning):
    """The design matrix is ill-conditioned; coefficients may be unstable."""


@dataclasses.dataclass
class RegressionResult:
    """A fitted linear model with its fit diagnostics."""

    coefficients: np.ndarray
    predictions: np.ndarray
    residuals: np.ndarray
    #: per-sample percentage errors: 100 * (pred - actual) / actual
    percent_errors: np.ndarray
    r_squared: float
    condition_number: float
    used_pseudo_inverse_fallback: bool = False

    @property
    def rms_percent_error(self) -> float:
        return float(np.sqrt(np.mean(self.percent_errors**2)))

    @property
    def max_abs_percent_error(self) -> float:
        return float(np.max(np.abs(self.percent_errors)))

    @property
    def mean_abs_percent_error(self) -> float:
        return float(np.mean(np.abs(self.percent_errors)))


def _validate(design: np.ndarray, energies: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    design = np.asarray(design, dtype=float)
    energies = np.asarray(energies, dtype=float)
    if design.ndim != 2:
        raise RegressionError(f"design matrix must be 2-D, got shape {design.shape}")
    if energies.ndim != 1:
        raise RegressionError(f"energy vector must be 1-D, got shape {energies.shape}")
    if design.shape[0] != energies.shape[0]:
        raise RegressionError(
            f"{design.shape[0]} design rows but {energies.shape[0]} energy samples"
        )
    if design.shape[0] == 0:
        raise RegressionError("no characterization samples")
    if not np.all(np.isfinite(design)) or not np.all(np.isfinite(energies)):
        raise RegressionError("non-finite values in regression inputs")
    return design, energies


def _diagnostics(
    design: np.ndarray,
    energies: np.ndarray,
    coefficients: np.ndarray,
    fallback: bool,
) -> RegressionResult:
    predictions = design @ coefficients
    residuals = predictions - energies
    with np.errstate(divide="ignore", invalid="ignore"):
        percent = np.where(energies != 0, 100.0 * residuals / energies, 0.0)
    total_ss = float(np.sum((energies - energies.mean()) ** 2))
    residual_ss = float(np.sum(residuals**2))
    r_squared = 1.0 - residual_ss / total_ss if total_ss > 0 else 1.0
    condition = float(np.linalg.cond(design))
    if condition > CONDITION_WARNING_THRESHOLD:
        warnings.warn(
            f"design matrix condition number {condition:.3g} exceeds "
            f"{CONDITION_WARNING_THRESHOLD:.0e}; fitted coefficients may be "
            "numerically unstable — consider ridge regression or a more "
            "diverse characterization suite",
            IllConditionedDesignWarning,
            stacklevel=3,
        )
    return RegressionResult(
        coefficients=coefficients,
        predictions=predictions,
        residuals=residuals,
        percent_errors=percent,
        r_squared=r_squared,
        condition_number=condition,
        used_pseudo_inverse_fallback=fallback,
    )


def fit_least_squares(design: np.ndarray, energies: np.ndarray) -> RegressionResult:
    """Ordinary least squares via the normal-equation pseudo-inverse.

    Follows the paper's Eq. 5 literally when :math:`X^T X` is invertible;
    falls back to the SVD pseudo-inverse (minimum-norm solution) when the
    design is rank-deficient, flagging the fallback in the result so
    callers can warn about an under-exercised characterization suite.
    """
    design, energies = _validate(design, energies)
    gram = design.T @ design
    fallback = False
    try:
        coefficients = np.linalg.solve(gram, design.T @ energies)
        # Guard against a numerically singular-but-solvable system.
        if not np.all(np.isfinite(coefficients)):
            raise np.linalg.LinAlgError("non-finite solution")
    except np.linalg.LinAlgError:
        fallback = True
        coefficients = np.linalg.pinv(design) @ energies
    return _diagnostics(design, energies, coefficients, fallback)


def fit_ridge(design: np.ndarray, energies: np.ndarray, alpha: float = 1.0) -> RegressionResult:
    """Ridge (L2-regularized) least squares: extension beyond the paper.

    Useful when the characterization suite leaves the design matrix
    ill-conditioned; shrinks coefficients toward zero with strength
    ``alpha`` (in the units of squared column magnitude).
    """
    if alpha < 0:
        raise RegressionError(f"ridge alpha must be non-negative, got {alpha}")
    design, energies = _validate(design, energies)
    n_vars = design.shape[1]
    # Scale-aware regularization: normalize alpha by mean column energy so
    # one alpha works across very differently scaled variables.
    column_scale = np.mean(np.sum(design**2, axis=0)) or 1.0
    gram = design.T @ design + alpha * column_scale / max(1, n_vars) * np.eye(n_vars)
    coefficients = np.linalg.solve(gram, design.T @ energies)
    return _diagnostics(design, energies, coefficients, fallback=False)


def fit_nnls(design: np.ndarray, energies: np.ndarray, max_iter: int | None = None) -> RegressionResult:
    """Non-negative least squares (Lawson-Hanson active set).

    Energy coefficients are physical quantities: a cycle of activity can
    never *remove* energy.  Plain OLS (the paper's choice) can return
    negative coefficients when the characterization suite leaves the
    design matrix nearly degenerate — such solutions fit the suite but
    extrapolate catastrophically to unseen custom-instruction mixes.
    Imposing C >= 0 keeps every coefficient physically meaningful and, in
    our experiments, roughly halves the unseen-application error.  This
    is an extension beyond the paper (which relied on its suite being
    benign enough for OLS).
    """
    design, energies = _validate(design, energies)
    n_vars = design.shape[1]
    if max_iter is None:
        max_iter = 3 * n_vars

    # Lawson & Hanson (1974), Algorithm NNLS.
    passive: list[int] = []
    coefficients = np.zeros(n_vars)
    gradient = design.T @ (energies - design @ coefficients)
    tolerance = 10 * np.finfo(float).eps * np.linalg.norm(design, 1) * max(design.shape)

    outer = 0
    while outer < max_iter:
        outer += 1
        candidates = [j for j in range(n_vars) if j not in passive and gradient[j] > tolerance]
        if not candidates:
            break
        passive.append(max(candidates, key=lambda j: float(gradient[j])))
        # inner loop: restore feasibility of the passive-set solution
        while passive:
            sub = design[:, passive]
            trial, *_ = np.linalg.lstsq(sub, energies, rcond=None)
            if np.all(trial > tolerance):
                coefficients = np.zeros(n_vars)
                coefficients[passive] = trial
                break
            current = coefficients[passive]
            with np.errstate(divide="ignore", invalid="ignore"):
                ratios = np.where(trial <= tolerance, current / (current - trial), np.inf)
            alpha = float(np.min(ratios))
            blended = current + alpha * (trial - current)
            keep = [
                (index, value)
                for index, value in zip(passive, blended)
                if value > tolerance
            ]
            coefficients = np.zeros(n_vars)
            passive = [index for index, _ in keep]
            for index, value in keep:
                coefficients[index] = value
        gradient = design.T @ (energies - design @ coefficients)

    return _diagnostics(design, energies, coefficients, fallback=False)


def leave_one_out_errors(design: np.ndarray, energies: np.ndarray) -> np.ndarray:
    """Per-sample leave-one-out percentage errors (PRESS residuals).

    Uses the hat-matrix identity ``e_loo = e / (1 - h_ii)`` so the cost is
    one SVD rather than N refits.  Samples with leverage ~1 (a variable
    exercised by a single program) produce large LOO errors — exactly the
    diagnostic a characterization-suite designer needs.
    """
    design, energies = _validate(design, energies)
    n_samples, n_vars = design.shape
    if n_samples <= n_vars:
        raise RegressionError(
            f"LOOCV needs more samples ({n_samples}) than variables ({n_vars})"
        )
    pinv = np.linalg.pinv(design)
    hat_diag = np.einsum("ij,ji->i", design, pinv)
    coefficients = pinv @ energies
    residuals = design @ coefficients - energies
    denom = np.clip(1.0 - hat_diag, 1e-9, None)
    loo_residuals = residuals / denom
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(energies != 0, 100.0 * loo_residuals / energies, 0.0)


def column_coverage(design: np.ndarray) -> np.ndarray:
    """Fraction of samples exercising each variable (non-zero entries)."""
    design = np.asarray(design, dtype=float)
    if design.size == 0:
        return np.zeros(0)
    return np.count_nonzero(design, axis=0) / design.shape[0]
