"""``repro.obs`` — streaming simulation instrumentation.

The instruction-set simulator emits a stream of events — run start,
per-instruction retire, fine-grained cache/fetch/interlock events, run
finish — to any number of registered :class:`SimObserver` subscribers.
The formerly hard-wired consumers (aggregate statistics, trace
materialization) are the two bundled observers; everything else — the
reference RTL estimator's online switching-activity accumulator, the
energy timeline, hot-spot and cache-event profilers, future metrics
exporters — plugs into the same seam.

:func:`run_session` is the entry point that consolidates every
simulation call site: observers, trace policy and instruction budgets
are configured in one place (and fault harnesses wrap exactly this
signature).
"""

from typing import Any

from .bundled import StatsObserver, TraceObserver, apply_event, gpr_accessing_mnemonics
from .events import RetireEvent
from .profilers import (
    CacheEventObserver,
    CacheEventReport,
    EnergyTimelineObserver,
    HotSpotObserver,
    HotSpotReport,
    ObserverStateError,
    TimelineInterval,
    TimelineReport,
)
from .protocol import SimObserver
from .records import ExecutionStats, TraceRecord, class_mix
from .session import DEFAULT_MAX_INSTRUCTIONS, SessionFn, run_session
from .tally import RunTallyObserver

def __getattr__(name: str) -> Any:
    # Lazy: the observer lives with its consumers in repro.discover, whose
    # package import is far heavier than this one.
    if name == "DataflowTraceObserver":
        from ..discover.trace import DataflowTraceObserver

        return DataflowTraceObserver
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CacheEventObserver",
    "CacheEventReport",
    "DEFAULT_MAX_INSTRUCTIONS",
    "DataflowTraceObserver",
    "EnergyTimelineObserver",
    "ExecutionStats",
    "HotSpotObserver",
    "HotSpotReport",
    "ObserverStateError",
    "RetireEvent",
    "RunTallyObserver",
    "SessionFn",
    "SimObserver",
    "StatsObserver",
    "TimelineInterval",
    "TimelineReport",
    "TraceObserver",
    "TraceRecord",
    "apply_event",
    "class_mix",
    "gpr_accessing_mnemonics",
    "run_session",
]
