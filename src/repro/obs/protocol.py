"""The streaming observer protocol of the instruction-set simulator.

The simulator used to hard-wire its two consumers: aggregate statistics
(always) and full trace materialization (``collect_trace=True``).  Both
are now ordinary :class:`SimObserver` subscribers of one event stream,
and anything else — online switching-activity accumulation for the
reference RTL estimator, energy timelines, hot-spot histograms, cache
trackers, metrics export — plugs into the same seam without touching the
simulator loop.

Callback contract, in firing order for one run:

``on_run_start(config, program)``
    Once, before the first instruction.  Raise here to veto the run
    (e.g. a config/netlist fingerprint mismatch).
``on_icache_miss / on_dcache_miss / on_uncached_fetch / on_interlock``
    Fine-grained micro-architectural events, fired *during* the
    instruction that incurs them, before its retire event.  Delivered
    only to observers with ``wants_events = True``.
``on_retire(event)``
    Once per retired instruction, with the shared, **reused**
    :class:`~repro.obs.events.RetireEvent` (copy what you keep).  The
    event's flag fields mirror the fine-grained callbacks, so an
    observer should subscribe to one granularity, not both, unless it
    deliberately wants the duplication.  Delivered only to observers
    with ``wants_retire = True`` (the default).
``on_run_finish(result)``
    Once, after the run completes normally, with the final
    :class:`~repro.xtcore.SimulationResult`.  Not called when the run
    raises (a failed run has no result to observe).

Class-attribute flags keep the hot loop cheap: the simulator prefilters
its observer lists once per run, so an unused granularity costs nothing.
``needs_result`` asks the simulator to populate ``event.result`` (one
extra register read per instruction); leave it ``False`` unless the
observer actually reads destination values.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..asm import Program
    from ..xtcore import ProcessorConfig, SimulationResult
    from .events import RetireEvent


class SimObserver:
    """Base class for simulation-event subscribers (all callbacks no-op)."""

    #: receive :meth:`on_retire` for every retired instruction
    wants_retire: bool = True
    #: receive the fine-grained cache/fetch/interlock callbacks
    wants_events: bool = False
    #: populate ``event.result`` (costs a register read per instruction)
    needs_result: bool = False

    def on_run_start(self, config: "ProcessorConfig", program: "Program") -> None:
        """The run is about to execute its first instruction."""

    def on_retire(self, event: "RetireEvent") -> None:
        """One instruction retired (``event`` is reused — copy to keep)."""

    def on_icache_miss(self, addr: int) -> None:
        """Instruction fetch at ``addr`` missed the I-cache."""

    def on_dcache_miss(self, addr: int) -> None:
        """Load/store to ``addr`` missed the D-cache."""

    def on_uncached_fetch(self, addr: int) -> None:
        """Instruction fetch at ``addr`` hit an uncached region."""

    def on_interlock(self, addr: int) -> None:
        """The instruction at ``addr`` stalled on a load-use dependence."""

    def on_run_finish(self, result: "SimulationResult") -> None:
        """The run completed normally."""
