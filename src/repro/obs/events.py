"""The per-instruction event the simulator streams to observers.

One :class:`RetireEvent` instance is allocated per run and **reused for
every retired instruction** — that is what makes the streaming path O(1)
in trace memory.  Observers that need to retain an instruction beyond the
callback must copy it (:meth:`RetireEvent.to_record` produces the
persistent :class:`~repro.obs.records.TraceRecord` form); observers that
consume values immediately (stats accumulation, online switching
activity) pay no allocation at all.

The field layout deliberately matches :class:`TraceRecord`, so code
written against trace records (the reference RTL estimator's activity
accumulator, ``stats_from_records``-style reconstruction) accepts either
interchangeably.  ``issue_cycles`` is the one addition: the event carries
the penalty-free issue cycles directly instead of making every consumer
re-derive them from the processor's timing configuration.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .records import TraceRecord

if TYPE_CHECKING:  # pragma: no cover
    from ..isa import InstructionClass


class RetireEvent:
    """One retired instruction, streamed to ``on_retire`` observers.

    ``iclass`` is the *resolved* energy class (branches appear as
    ``BRANCH_TAKEN``/``BRANCH_UNTAKEN``).  ``result`` is the value written
    to the first destination register — populated only when a registered
    observer declares ``needs_result`` (reading it back costs a register
    access per instruction), ``0`` otherwise.
    """

    __slots__ = (
        "addr",
        "mnemonic",
        "iclass",
        "cycles",
        "issue_cycles",
        "operands",
        "result",
        "icache_miss",
        "dcache_miss",
        "uncached_fetch",
        "interlock",
        "mem_addr",
    )

    def __init__(self) -> None:
        self.addr = 0
        self.mnemonic = ""
        self.iclass: Optional["InstructionClass"] = None
        self.cycles = 0
        self.issue_cycles = 0
        self.operands: tuple[int, ...] = ()
        self.result = 0
        self.icache_miss = False
        self.dcache_miss = False
        self.uncached_fetch = False
        self.interlock = False
        self.mem_addr: Optional[int] = None

    def to_record(self) -> TraceRecord:
        """Persistent copy of this event (the materialized-trace form)."""
        return TraceRecord(
            addr=self.addr,
            mnemonic=self.mnemonic,
            iclass=self.iclass,
            cycles=self.cycles,
            operands=self.operands,
            result=self.result,
            icache_miss=self.icache_miss,
            dcache_miss=self.dcache_miss,
            uncached_fetch=self.uncached_fetch,
            interlock=self.interlock,
            mem_addr=self.mem_addr,
        )

    def __repr__(self) -> str:
        return (
            f"RetireEvent({self.addr:#08x} {self.mnemonic} "
            f"[{self.iclass.value if self.iclass else '?'}] {self.cycles}cyc)"
        )
