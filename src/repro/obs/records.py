"""Execution statistics and trace records — the bundled observers' output.

Two consumers with very different appetites read simulation output:

* the **macro-model path** needs only aggregate statistics — class cycle
  counts, event counts, per-custom-instruction execution counts.  These
  live in :class:`ExecutionStats` and are always collected (cheap).
* the **reference RTL estimator** needs the dynamic execution stream with
  operand values, to compute data-dependent switching activity.  It can
  consume the stream online (see :class:`repro.rtl.RtlEnergyObserver`) or
  from materialized :class:`TraceRecord` lists (``collect_trace=True``),
  mirroring how RTL simulation is the slow, detailed path in the paper.

These types are defined here (not in :mod:`repro.xtcore`) so the observer
package has no import-time dependency on the simulator; ``repro.xtcore``
re-exports them under their historical names.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..isa import InstructionClass
from ..isa.classes import BASE_ENERGY_CLASSES


@dataclasses.dataclass
class ExecutionStats:
    """Aggregate dynamic statistics of one program run.

    The fields marked (MM) feed macro-model variables directly.
    """

    #: (MM) cycles attributed to each of the six base energy classes
    class_cycles: dict[InstructionClass, int] = dataclasses.field(
        default_factory=lambda: {c: 0 for c in BASE_ENERGY_CLASSES}
    )
    #: dynamic instruction counts per class (diagnostics, not MM variables)
    class_counts: dict[InstructionClass, int] = dataclasses.field(
        default_factory=lambda: {c: 0 for c in BASE_ENERGY_CLASSES}
    )
    #: (MM) N_cm — instruction-cache misses
    icache_misses: int = 0
    #: (MM) N_dm — data-cache misses
    dcache_misses: int = 0
    #: (MM) N_uf — uncached instruction fetches
    uncached_fetches: int = 0
    #: (MM) N_il — pipeline interlocks
    interlocks: int = 0
    #: (MM) N_sd — cycles of custom instructions that access the GPR file
    custom_gpr_cycles: int = 0
    #: cycles spent executing custom instructions, per mnemonic
    custom_cycles: dict[str, int] = dataclasses.field(default_factory=dict)
    #: (feeds structural variables) executions per custom mnemonic
    custom_counts: dict[str, int] = dataclasses.field(default_factory=dict)
    #: cycles in which the shared operand buses are driven by *base*
    #: instructions (spurious custom-hardware activation source)
    base_bus_cycles: int = 0
    #: dynamic instruction count per mnemonic (diagnostics/coverage)
    mnemonic_counts: dict[str, int] = dataclasses.field(default_factory=dict)
    total_instructions: int = 0
    total_cycles: int = 0
    #: cycles attributed to the SYSTEM class (nop/halt — tiny)
    system_cycles: int = 0

    def merge(self, other: "ExecutionStats") -> "ExecutionStats":
        """Return element-wise sum of two stats (e.g. multi-run workloads)."""
        merged = ExecutionStats()
        for cls in BASE_ENERGY_CLASSES:
            merged.class_cycles[cls] = self.class_cycles[cls] + other.class_cycles[cls]
            merged.class_counts[cls] = self.class_counts[cls] + other.class_counts[cls]
        for field in (
            "icache_misses",
            "dcache_misses",
            "uncached_fetches",
            "interlocks",
            "custom_gpr_cycles",
            "base_bus_cycles",
            "total_instructions",
            "total_cycles",
            "system_cycles",
        ):
            setattr(merged, field, getattr(self, field) + getattr(other, field))
        for source in (self, other):
            for key, value in source.custom_cycles.items():
                merged.custom_cycles[key] = merged.custom_cycles.get(key, 0) + value
            for key, value in source.custom_counts.items():
                merged.custom_counts[key] = merged.custom_counts.get(key, 0) + value
            for key, value in source.mnemonic_counts.items():
                merged.mnemonic_counts[key] = merged.mnemonic_counts.get(key, 0) + value
        return merged

    @property
    def base_class_cycle_total(self) -> int:
        return sum(self.class_cycles.values())

    def summary(self) -> str:
        """Multi-line human-readable digest."""
        lines = [
            f"instructions: {self.total_instructions}, cycles: {self.total_cycles}",
            "class cycles: "
            + ", ".join(f"{c.value}={self.class_cycles[c]}" for c in BASE_ENERGY_CLASSES),
            f"events: icache_miss={self.icache_misses} dcache_miss={self.dcache_misses} "
            f"uncached_fetch={self.uncached_fetches} interlock={self.interlocks}",
            f"custom: gpr_cycles={self.custom_gpr_cycles} counts={self.custom_counts}",
        ]
        return "\n".join(lines)


class TraceRecord:
    """One executed instruction, with the detail the RTL estimator needs."""

    __slots__ = (
        "addr",
        "mnemonic",
        "iclass",
        "cycles",
        "operands",
        "result",
        "icache_miss",
        "dcache_miss",
        "uncached_fetch",
        "interlock",
        "mem_addr",
    )

    def __init__(
        self,
        addr: int,
        mnemonic: str,
        iclass: InstructionClass,
        cycles: int,
        operands: tuple[int, ...],
        result: int,
        icache_miss: bool = False,
        dcache_miss: bool = False,
        uncached_fetch: bool = False,
        interlock: bool = False,
        mem_addr: Optional[int] = None,
    ) -> None:
        self.addr = addr
        self.mnemonic = mnemonic
        self.iclass = iclass
        self.cycles = cycles
        self.operands = operands
        self.result = result
        self.icache_miss = icache_miss
        self.dcache_miss = dcache_miss
        self.uncached_fetch = uncached_fetch
        self.interlock = interlock
        self.mem_addr = mem_addr

    def __repr__(self) -> str:
        flags = "".join(
            flag
            for flag, present in (
                ("I", self.icache_miss),
                ("D", self.dcache_miss),
                ("U", self.uncached_fetch),
                ("L", self.interlock),
            )
            if present
        )
        return (
            f"TraceRecord({self.addr:#08x} {self.mnemonic} [{self.iclass.value}] "
            f"{self.cycles}cyc{' ' + flags if flags else ''})"
        )


def class_mix(stats: ExecutionStats) -> dict[str, float]:
    """Fraction of base-class cycles per class (diagnostic for coverage)."""
    total = stats.base_class_cycle_total
    if total == 0:
        return {c.value: 0.0 for c in BASE_ENERGY_CLASSES}
    return {c.value: stats.class_cycles[c] / total for c in BASE_ENERGY_CLASSES}
