"""The two bundled observers every simulation run used to hard-wire.

:class:`StatsObserver` accumulates :class:`~repro.obs.records.ExecutionStats`
(the macro-model path's aggregate view) and :class:`TraceObserver`
materializes :class:`~repro.obs.records.TraceRecord` lists (the
reference path's detailed view).  The simulator registers a
``StatsObserver`` on every run and a ``TraceObserver`` only when
``collect_trace=True`` — exactly the seed behaviour, expressed through
the public observer protocol instead of special cases in the loop.

:func:`apply_event` is the single source of truth for folding one retire
event into an ``ExecutionStats``; the interval/region profilers reuse it
so their per-bucket stats stay field-for-field consistent with the
whole-run stats.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..isa import InstructionClass
from .events import RetireEvent
from .protocol import SimObserver
from .records import ExecutionStats, TraceRecord

if TYPE_CHECKING:  # pragma: no cover
    from ..asm import Program
    from ..xtcore import ProcessorConfig


def gpr_accessing_mnemonics(config: "ProcessorConfig") -> frozenset:
    """The custom mnemonics whose hardware reads/writes the GPR file."""
    return frozenset(
        mnemonic
        for mnemonic, impl in config.extension_index.items()
        if impl.accesses_gpr
    )


def apply_event(
    stats: ExecutionStats, event: RetireEvent, gpr_mnemonics: frozenset
) -> None:
    """Fold one retire event into ``stats`` (shared accumulation rule)."""
    iclass = event.iclass
    issue = event.issue_cycles
    mnemonic = event.mnemonic
    if iclass is InstructionClass.CUSTOM:
        stats.custom_cycles[mnemonic] = stats.custom_cycles.get(mnemonic, 0) + issue
        stats.custom_counts[mnemonic] = stats.custom_counts.get(mnemonic, 0) + 1
        if mnemonic in gpr_mnemonics:
            stats.custom_gpr_cycles += issue
    elif iclass in stats.class_cycles:
        stats.class_cycles[iclass] += issue
        stats.class_counts[iclass] += 1
    else:  # SYSTEM
        stats.system_cycles += issue
    if event.icache_miss:
        stats.icache_misses += 1
    if event.dcache_miss:
        stats.dcache_misses += 1
    if event.uncached_fetch:
        stats.uncached_fetches += 1
    if event.interlock:
        stats.interlocks += 1
    if iclass is not InstructionClass.CUSTOM and event.operands:
        stats.base_bus_cycles += issue
    stats.total_cycles += event.cycles
    stats.total_instructions += 1
    stats.mnemonic_counts[mnemonic] = stats.mnemonic_counts.get(mnemonic, 0) + 1


class StatsObserver(SimObserver):
    """Accumulates the aggregate :class:`ExecutionStats` of one run."""

    wants_retire = True

    def __init__(self) -> None:
        self.stats = ExecutionStats()
        self._gpr_mnemonics: frozenset = frozenset()

    def on_run_start(self, config: "ProcessorConfig", program: "Program") -> None:
        self.stats = ExecutionStats()
        self._gpr_mnemonics = gpr_accessing_mnemonics(config)

    def on_retire(self, event: RetireEvent) -> None:
        apply_event(self.stats, event, self._gpr_mnemonics)


class TraceObserver(SimObserver):
    """Materializes the full execution trace (the O(trace)-memory path)."""

    wants_retire = True
    needs_result = True

    def __init__(self) -> None:
        self.records: list[TraceRecord] = []

    def on_run_start(self, config: "ProcessorConfig", program: "Program") -> None:
        self.records = []

    def on_retire(self, event: RetireEvent) -> None:
        self.records.append(event.to_record())
