"""Observability observers: energy timeline, hot spots, cache events.

Three ready-made :class:`~repro.obs.protocol.SimObserver` implementations
that answer the operational questions a pluggable event stream unlocks —
*when* does a program burn energy (per-interval timeline driven by the
fitted macro-model), *where* does it execute (hot-PC / basic-block
histogram), and *what* does its memory system do (cache-event tracker).
All three are O(program)-memory streaming consumers: none of them
materializes the execution trace.

Each observer exposes a ``report`` property after the run finishes; the
reports render as aligned text tables or JSON-ready payloads, which is
what the ``repro profile`` CLI surfaces.
"""

from __future__ import annotations

import bisect
import dataclasses
from typing import TYPE_CHECKING, Optional

from .bundled import apply_event, gpr_accessing_mnemonics
from .events import RetireEvent
from .protocol import SimObserver
from .records import ExecutionStats

if TYPE_CHECKING:  # pragma: no cover
    from ..asm import Program
    from ..core.model import EnergyMacroModel
    from ..xtcore import ProcessorConfig, SimulationResult


class ObserverStateError(RuntimeError):
    """A report was requested before the observed run finished."""


def _require(report, name: str):
    if report is None:
        raise ObserverStateError(
            f"{name} has no report yet; register it with run_session() and "
            "read .report after the run finishes"
        )
    return report


# ---------------------------------------------------------------------------
# energy timeline
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class TimelineInterval:
    """One slice of the run, with its macro-model energy attribution."""

    index: int
    start_instruction: int
    instructions: int
    cycles: int
    energy: float

    @property
    def energy_per_cycle(self) -> float:
        return self.energy / self.cycles if self.cycles else 0.0


@dataclasses.dataclass
class TimelineReport:
    """Per-interval energy decomposition of one run."""

    program_name: str
    processor_name: str
    interval_instructions: int
    intervals: list[TimelineInterval]
    total_energy: float

    def table(self) -> str:
        lines = [
            f"energy timeline: {self.program_name} on {self.processor_name} "
            f"({self.interval_instructions} instructions/interval)",
            f"{'interval':>8}{'instrs':>9}{'cycles':>9}{'energy':>14}{'e/cycle':>10}  profile",
            "-" * 72,
        ]
        peak = max((iv.energy_per_cycle for iv in self.intervals), default=0.0)
        for iv in self.intervals:
            bar = "#" * int(round(18 * iv.energy_per_cycle / peak)) if peak else ""
            lines.append(
                f"{iv.index:>8}{iv.instructions:>9}{iv.cycles:>9}"
                f"{iv.energy:>14.1f}{iv.energy_per_cycle:>10.2f}  {bar}"
            )
        lines.append("-" * 72)
        lines.append(f"{'total':>8}{'':>18}{self.total_energy:>14.1f}")
        return "\n".join(lines)

    def to_payload(self) -> dict:
        return {
            "program": self.program_name,
            "processor": self.processor_name,
            "interval_instructions": self.interval_instructions,
            "total_energy": self.total_energy,
            "intervals": [
                {
                    "index": iv.index,
                    "start_instruction": iv.start_instruction,
                    "instructions": iv.instructions,
                    "cycles": iv.cycles,
                    "energy": iv.energy,
                }
                for iv in self.intervals
            ],
        }


class EnergyTimelineObserver(SimObserver):
    """Streams the run into fixed-size instruction intervals and charges
    each with the fitted macro-model — "when does the energy go?".

    Because the macro-model is linear in the stats, the interval energies
    sum exactly to the whole-run macro-model estimate (same property the
    region profiler relies on).
    """

    wants_retire = True

    def __init__(self, model: "EnergyMacroModel", interval_instructions: int = 1000) -> None:
        if interval_instructions < 1:
            raise ValueError(
                f"interval_instructions must be >= 1, got {interval_instructions}"
            )
        self.model = model
        self.interval_instructions = interval_instructions
        self._config: Optional["ProcessorConfig"] = None
        self._gpr: frozenset = frozenset()
        self._current = ExecutionStats()
        self._start_instruction = 0
        self._intervals: list[TimelineInterval] = []
        self._report: Optional[TimelineReport] = None

    def on_run_start(self, config: "ProcessorConfig", program: "Program") -> None:
        self._config = config
        self._gpr = gpr_accessing_mnemonics(config)
        self._current = ExecutionStats()
        self._start_instruction = 0
        self._intervals = []
        self._report = None

    def _close_interval(self) -> None:
        stats = self._current
        if stats.total_instructions == 0:
            return
        energy = self.model.estimate_from_stats(stats, self._config)
        self._intervals.append(
            TimelineInterval(
                index=len(self._intervals),
                start_instruction=self._start_instruction,
                instructions=stats.total_instructions,
                cycles=stats.total_cycles,
                energy=energy,
            )
        )
        self._start_instruction += stats.total_instructions
        self._current = ExecutionStats()

    def on_retire(self, event: RetireEvent) -> None:
        apply_event(self._current, event, self._gpr)
        if self._current.total_instructions >= self.interval_instructions:
            self._close_interval()

    def on_run_finish(self, result: "SimulationResult") -> None:
        self._close_interval()
        self._report = TimelineReport(
            program_name=result.program.name,
            processor_name=result.config.name,
            interval_instructions=self.interval_instructions,
            intervals=self._intervals,
            total_energy=sum(iv.energy for iv in self._intervals),
        )

    @property
    def report(self) -> TimelineReport:
        return _require(self._report, type(self).__name__)


# ---------------------------------------------------------------------------
# hot-PC / basic-block histogram
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class HotSpot:
    """One hot location — a PC or a labelled block."""

    location: str
    addr: int
    count: int
    cycles: int


@dataclasses.dataclass
class HotSpotReport:
    """Execution histogram of one run, by PC and by labelled block."""

    program_name: str
    total_instructions: int
    total_cycles: int
    pcs: list[HotSpot]
    blocks: list[HotSpot]

    def table(self, top: Optional[int] = None) -> str:
        lines = [f"hot spots: {self.program_name}"]
        for title, rows in (("block", self.blocks), ("pc", self.pcs)):
            shown = rows if top is None else rows[:top]
            lines.append(f"{title:<26}{'count':>10}{'cycles':>10}{'cyc share':>10}")
            lines.append("-" * 56)
            for spot in shown:
                share = (
                    100.0 * spot.cycles / self.total_cycles if self.total_cycles else 0.0
                )
                lines.append(
                    f"{spot.location:<26}{spot.count:>10}{spot.cycles:>10}{share:>9.1f}%"
                )
            lines.append("")
        return "\n".join(lines).rstrip()

    def to_payload(self) -> dict:
        def rows(spots: list[HotSpot]) -> list[dict]:
            return [
                {
                    "location": s.location,
                    "addr": s.addr,
                    "count": s.count,
                    "cycles": s.cycles,
                }
                for s in spots
            ]

        return {
            "program": self.program_name,
            "total_instructions": self.total_instructions,
            "total_cycles": self.total_cycles,
            "blocks": rows(self.blocks),
            "pcs": rows(self.pcs),
        }


class HotSpotObserver(SimObserver):
    """Counts executions and cycles per PC, aggregated into labelled blocks.

    Memory is bounded by the *static* program size (one counter pair per
    distinct executed address), not by the dynamic instruction count.
    """

    wants_retire = True

    def __init__(self) -> None:
        self._counts: dict[int, int] = {}
        self._cycles: dict[int, int] = {}
        self._label_addrs: list[int] = []
        self._label_names: list[str] = []
        self._report: Optional[HotSpotReport] = None

    def on_run_start(self, config: "ProcessorConfig", program: "Program") -> None:
        self._counts = {}
        self._cycles = {}
        self._report = None
        text_addresses = set(program.instructions)
        labels = sorted(
            (addr, name)
            for name, addr in program.symbols.items()
            if addr in text_addresses
        )
        self._label_addrs = [addr for addr, _ in labels]
        self._label_names = [name for _, name in labels]

    def on_retire(self, event: RetireEvent) -> None:
        addr = event.addr
        self._counts[addr] = self._counts.get(addr, 0) + 1
        self._cycles[addr] = self._cycles.get(addr, 0) + event.cycles

    def _label_of(self, addr: int) -> tuple[str, int]:
        """(block label, block start) containing ``addr``."""
        i = bisect.bisect_right(self._label_addrs, addr) - 1
        if i < 0:
            return "<prologue>", addr
        return self._label_names[i], self._label_addrs[i]

    def on_run_finish(self, result: "SimulationResult") -> None:
        pcs = []
        block_counts: dict[tuple[str, int], list[int]] = {}
        for addr, count in self._counts.items():
            cycles = self._cycles[addr]
            label, start = self._label_of(addr)
            offset = addr - start
            location = label if offset == 0 else f"{label}+{offset:#x}"
            pcs.append(HotSpot(location=location, addr=addr, count=count, cycles=cycles))
            bucket = block_counts.setdefault((label, start), [0, 0])
            bucket[0] += count
            bucket[1] += cycles
        pcs.sort(key=lambda s: (-s.cycles, s.addr))
        blocks = [
            HotSpot(location=label, addr=start, count=count, cycles=cycles)
            for (label, start), (count, cycles) in block_counts.items()
        ]
        blocks.sort(key=lambda s: (-s.cycles, s.addr))
        self._report = HotSpotReport(
            program_name=result.program.name,
            total_instructions=result.stats.total_instructions,
            total_cycles=result.stats.total_cycles,
            pcs=pcs,
            blocks=blocks,
        )

    @property
    def report(self) -> HotSpotReport:
        return _require(self._report, type(self).__name__)


# ---------------------------------------------------------------------------
# cache-event tracker
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class CacheEventReport:
    """Counts (and hottest addresses) of the four penalty event kinds."""

    program_name: str
    icache_misses: int
    dcache_misses: int
    uncached_fetches: int
    interlocks: int
    hot_icache_lines: list[tuple[int, int]]  # (addr, misses), descending
    hot_dcache_lines: list[tuple[int, int]]

    def table(self, top: int = 8) -> str:
        lines = [
            f"cache events: {self.program_name}",
            f"  icache misses    {self.icache_misses:>10}",
            f"  dcache misses    {self.dcache_misses:>10}",
            f"  uncached fetches {self.uncached_fetches:>10}",
            f"  interlocks       {self.interlocks:>10}",
        ]
        for title, rows in (
            ("hot icache-miss addresses", self.hot_icache_lines),
            ("hot dcache-miss addresses", self.hot_dcache_lines),
        ):
            if rows:
                lines.append(f"  {title}:")
                for addr, misses in rows[:top]:
                    lines.append(f"    {addr:#010x}  {misses}")
        return "\n".join(lines)

    def to_payload(self) -> dict:
        return {
            "program": self.program_name,
            "icache_misses": self.icache_misses,
            "dcache_misses": self.dcache_misses,
            "uncached_fetches": self.uncached_fetches,
            "interlocks": self.interlocks,
            "hot_icache_lines": [
                {"addr": addr, "misses": n} for addr, n in self.hot_icache_lines
            ],
            "hot_dcache_lines": [
                {"addr": addr, "misses": n} for addr, n in self.hot_dcache_lines
            ],
        }


class CacheEventObserver(SimObserver):
    """Subscribes to the fine-grained event callbacks only — no retire
    stream — demonstrating the cheapest possible observer granularity."""

    wants_retire = False
    wants_events = True

    def __init__(self) -> None:
        self.icache_misses = 0
        self.dcache_misses = 0
        self.uncached_fetches = 0
        self.interlocks = 0
        self._icache_by_addr: dict[int, int] = {}
        self._dcache_by_addr: dict[int, int] = {}
        self._report: Optional[CacheEventReport] = None

    def on_run_start(self, config: "ProcessorConfig", program: "Program") -> None:
        self.icache_misses = 0
        self.dcache_misses = 0
        self.uncached_fetches = 0
        self.interlocks = 0
        self._icache_by_addr = {}
        self._dcache_by_addr = {}
        self._report = None

    def on_icache_miss(self, addr: int) -> None:
        self.icache_misses += 1
        self._icache_by_addr[addr] = self._icache_by_addr.get(addr, 0) + 1

    def on_dcache_miss(self, addr: int) -> None:
        self.dcache_misses += 1
        self._dcache_by_addr[addr] = self._dcache_by_addr.get(addr, 0) + 1

    def on_uncached_fetch(self, addr: int) -> None:
        self.uncached_fetches += 1

    def on_interlock(self, addr: int) -> None:
        self.interlocks += 1

    def on_run_finish(self, result: "SimulationResult") -> None:
        def ranked(by_addr: dict[int, int]) -> list[tuple[int, int]]:
            return sorted(by_addr.items(), key=lambda kv: (-kv[1], kv[0]))

        self._report = CacheEventReport(
            program_name=result.program.name,
            icache_misses=self.icache_misses,
            dcache_misses=self.dcache_misses,
            uncached_fetches=self.uncached_fetches,
            interlocks=self.interlocks,
            hot_icache_lines=ranked(self._icache_by_addr),
            hot_dcache_lines=ranked(self._dcache_by_addr),
        )

    @property
    def report(self) -> CacheEventReport:
        return _require(self._report, type(self).__name__)
