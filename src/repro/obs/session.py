"""``run_session`` — the one entry point every simulation consumer uses.

The CLI, the benchmark registry, the reference RTL estimator, the
characterization runtime, the macro-model fast path and the profilers all
used to construct :class:`~repro.xtcore.Simulator` by hand, each with its
own argument spelling.  ``run_session`` is the single seam: budgets,
trace policy and observer registration are configured here, and fault
harnesses (:meth:`repro.testing.faults.FaultPlan.wrap_session`) wrap this
signature.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from ..asm import Program
    from ..xtcore import ProcessorConfig, SimulationResult
    from .protocol import SimObserver

from ..xtcore.config import DEFAULT_MAX_INSTRUCTIONS

#: The injectable session seam: ``(config, program, *, observers,
#: collect_trace, max_instructions, entry) -> SimulationResult``.  All
#: options are keyword-only, so wrappers stay signature-compatible as the
#: session API grows.
SessionFn = Callable[..., "SimulationResult"]


def run_session(
    config: "ProcessorConfig",
    program: "Program",
    *,
    observers: Sequence["SimObserver"] = (),
    collect_trace: bool = False,
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    entry: Optional[int] = None,
    engine: str = "auto",
) -> "SimulationResult":
    """Simulate ``program`` on ``config``, streaming events to ``observers``.

    Aggregate statistics are always collected (``result.stats``); the full
    trace is materialized only with ``collect_trace=True`` — streaming
    consumers should register an observer instead and leave the trace
    off, which keeps per-run memory independent of instruction count.

    The program is lowered through the process-wide compilation cache
    (:func:`repro.xtcore.compilation_cache`), so repeated sessions over
    the same ``(program, config)`` content share one compiled form.

    ``engine`` picks the dispatch tier (``auto`` / ``reference`` /
    ``compiled`` / ``superop``).  The default ``auto`` resolves to fused
    superop blocks when nothing needs per-retire visibility and to the
    per-op compiled path when a trace or a retire/event observer is
    registered — see ``docs/PERFORMANCE.md`` for the selection matrix.
    """
    # Imported lazily: the simulator itself subscribes its bundled
    # observers from this package, so a module-level import would cycle.
    from ..xtcore.iss import Simulator

    return Simulator(
        config,
        program,
        collect_trace=collect_trace,
        max_instructions=max_instructions,
        observers=observers,
        engine=engine,
    ).run(entry=entry)
