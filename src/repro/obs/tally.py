"""Cross-run aggregation: one observer, many simulations.

Every bundled observer so far profiles a *single* run.  Long-lived
consumers — the estimation service, a DSE sweep, a soak test — instead
want cheap aggregate totals across *every* run that flows through them:
how many simulations, how many instructions and cycles, how much
wall-clock time inside the simulator.  :class:`RunTallyObserver` is that
accumulator.  It opts out of the per-retire stream entirely
(``wants_retire = False``), so registering it costs two callbacks per
run, independent of run length, and it folds the run's
:class:`~repro.obs.records.ExecutionStats` at ``on_run_finish`` instead
of re-counting events.

Tallies are plain dict snapshots and merge associatively, which is how
forked worker processes report back: each worker tallies locally, ships
``snapshot()`` with its results, and the parent ``merge()``\\ s them into
one service-wide view.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from .protocol import SimObserver

if TYPE_CHECKING:  # pragma: no cover
    from ..asm import Program
    from ..xtcore import ProcessorConfig, SimulationResult


class RunTallyObserver(SimObserver):
    """Aggregate run/instruction/cycle totals across many simulations."""

    wants_retire = False
    wants_events = False
    needs_result = False

    def __init__(self) -> None:
        self.runs_started = 0
        self.runs_finished = 0
        self.instructions = 0
        self.cycles = 0
        self.icache_misses = 0
        self.dcache_misses = 0
        self.sim_seconds = 0.0
        self._run_began: float | None = None

    # -- protocol ----------------------------------------------------------

    def on_run_start(self, config: "ProcessorConfig", program: "Program") -> None:
        self.runs_started += 1
        self._run_began = time.perf_counter()

    def on_run_finish(self, result: "SimulationResult") -> None:
        if self._run_began is not None:
            self.sim_seconds += time.perf_counter() - self._run_began
            self._run_began = None
        stats = result.stats
        self.runs_finished += 1
        self.instructions += stats.total_instructions
        self.cycles += stats.total_cycles
        self.icache_misses += stats.icache_misses
        self.dcache_misses += stats.dcache_misses

    # -- aggregation -------------------------------------------------------

    def snapshot(self) -> dict:
        """A merge-able plain-dict copy of the current totals."""
        return {
            "runs_started": self.runs_started,
            "runs_finished": self.runs_finished,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "icache_misses": self.icache_misses,
            "dcache_misses": self.dcache_misses,
            "sim_seconds": self.sim_seconds,
        }

    def merge(self, snapshot: dict) -> None:
        """Fold another tally's :meth:`snapshot` into this one."""
        self.runs_started += int(snapshot.get("runs_started", 0))
        self.runs_finished += int(snapshot.get("runs_finished", 0))
        self.instructions += int(snapshot.get("instructions", 0))
        self.cycles += int(snapshot.get("cycles", 0))
        self.icache_misses += int(snapshot.get("icache_misses", 0))
        self.dcache_misses += int(snapshot.get("dcache_misses", 0))
        self.sim_seconds += float(snapshot.get("sim_seconds", 0.0))

    def clear(self) -> None:
        self.__init__()

    def __repr__(self) -> str:
        return (
            f"RunTallyObserver({self.runs_finished} runs, "
            f"{self.instructions} instructions, {self.cycles} cycles)"
        )
