"""Automatic custom-instruction discovery (the closed ISE loop).

The paper evaluates *hand-written* instruction extensions; this package
closes the loop the authors leave open — finding those extensions
automatically from an execution profile:

1. **profile** — :class:`DataflowTraceObserver` rides the simulator's
   observer protocol and records per-block def-use chains plus block
   execution counts (:mod:`repro.discover.trace`);
2. **mine** — convex, connected subgraphs of hot blocks
   (:mod:`repro.discover.miner`) and symbolically-unrolled leaf
   subroutine calls (:mod:`repro.discover.unroll`) become candidate
   dataflow graphs, structurally deduplicated by canonical hash;
3. **legalize** — candidates are lifted to :class:`repro.tie.TieSpec`
   datapaths and compiled by the real TIE compiler under latency /
   operand-bus-tap / area budgets (:mod:`repro.discover.lift`,
   :mod:`repro.discover.legalize`);
4. **rewrite + prove** — each survivor's custom opcode replaces its
   matched sequences; the rewritten program must re-assemble and finish
   in a bitwise-identical architectural state
   (:mod:`repro.discover.rewrite`);
5. **estimate** — the macro-model fast path scores every proven
   candidate against the unmodified baseline
   (:mod:`repro.discover.pipeline`), and verified candidates feed
   ``discovered:<workload>`` search spaces for ``repro explore``
   (:mod:`repro.discover.space`).
"""

from .graph import CandidateGraph, GraphBuilder, GraphError, evaluate_graph
from .legalize import (
    LegalizedCandidate,
    LegalizeOptions,
    RejectedCandidate,
    legalize_candidates,
    legalize_one,
)
from .lift import LiftedCandidate, LiftError, lift_candidate
from .miner import (
    MinedCandidate,
    MinerOptions,
    Site,
    mine_programs,
    mine_report,
)
from .pipeline import (
    CandidateFailure,
    DiscoveryError,
    DiscoveryManifest,
    DiscoveryOptions,
    DiscoveryReport,
    EvaluatedCandidate,
    discover_case,
    discover_workload,
    software_case,
)
from .rewrite import (
    RewriteError,
    RewriteResult,
    rewrite_program,
    states_equivalent,
    verify_roundtrip,
)
from .space import discovered_space, register_discovered
from .trace import DataflowReport, DataflowTraceObserver, ObserverStateError
from .unroll import Unliftable, mine_call_sites, unroll_entry
from .vocab import LIFTABLE, SUPPORTED_BRANCHES, UnsupportedInstruction

__all__ = [
    "CandidateFailure",
    "CandidateGraph",
    "DataflowReport",
    "DataflowTraceObserver",
    "DiscoveryError",
    "DiscoveryManifest",
    "DiscoveryOptions",
    "DiscoveryReport",
    "EvaluatedCandidate",
    "GraphBuilder",
    "GraphError",
    "LIFTABLE",
    "LegalizeOptions",
    "LegalizedCandidate",
    "LiftError",
    "LiftedCandidate",
    "MinedCandidate",
    "MinerOptions",
    "ObserverStateError",
    "RejectedCandidate",
    "RewriteError",
    "RewriteResult",
    "SUPPORTED_BRANCHES",
    "Site",
    "Unliftable",
    "UnsupportedInstruction",
    "discover_case",
    "discover_workload",
    "discovered_space",
    "evaluate_graph",
    "legalize_candidates",
    "legalize_one",
    "lift_candidate",
    "mine_call_sites",
    "mine_programs",
    "mine_report",
    "register_discovered",
    "rewrite_program",
    "software_case",
    "states_equivalent",
    "unroll_entry",
    "verify_roundtrip",
]
