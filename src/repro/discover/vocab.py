"""Lowering of base-ISA instructions into candidate-graph nodes.

This is the miner's vocabulary: ``LIFTABLE`` names every base
instruction whose semantics can be expressed exactly over the
:mod:`repro.tie.nodes` operator library, and :func:`emit_instruction`
performs that lowering into a :class:`~repro.discover.graph.GraphBuilder`.

The lowering is *semantics-preserving by construction* — each mapping
mirrors the executable definition in :mod:`repro.isa.instructions`
(constant shifts become wiring, compares are 1-bit then zero-extended,
``mulh`` widens to 64 bits before slicing) — and is differential-tested
against the base semantics on random operand vectors.

Deliberately excluded:

* ``quos/quou/rems/remu`` — no divider in the component library;
* ``rotl/rotr`` (register-amount rotates) and ``clz/ctz/popc`` — no
  matching library operator (constant-amount ``roli/rori`` *are*
  liftable: they are pure wiring);
* ``moveqz`` family — their "write rd conditionally" semantics needs
  the *old* rd as a third input, which the miner models explicitly when
  profitable rather than hiding it here;
* loads, stores, branches, jumps and system instructions — candidates
  are pure dataflow (branches are handled by the unroller through
  :func:`branch_taken_cond`, not as candidate members).
"""

from __future__ import annotations

from ..isa.bits import to_unsigned, truncate
from ..isa.instructions import Instruction
from .graph import GraphBuilder

#: Base mnemonics that :func:`emit_instruction` can lower exactly.
LIFTABLE = frozenset(
    {
        # register-register ALU
        "add", "sub", "and", "or", "xor", "nor", "andn", "orn", "xnor",
        "addx2", "addx4", "addx8", "subx2", "subx4",
        "slt", "sltu", "min", "max", "minu", "maxu",
        "mull", "mulh", "mulhu",
        "sll", "srl", "sra",
        # unary
        "mov", "neg", "not", "abs", "sext8", "sext16", "zext8", "zext16", "bswap",
        # immediate ALU
        "addi", "addmi", "andi", "ori", "xori", "slti", "sltiu",
        "slli", "srli", "srai", "roli", "rori",
        # immediate loads
        "movi", "movhi",
    }
)

#: Branch mnemonics the subroutine unroller can turn into mux conditions.
SUPPORTED_BRANCHES = frozenset(
    {
        "beq", "bne", "blt", "bge", "bltu", "bgeu",
        "beqz", "bnez", "bltz", "bgez",
        "beqi", "bnei", "blti", "bgei",
        "bbs", "bbc",
    }
)

_B2_COMPARE = {
    "beq": "eq", "bne": "ne", "blt": "lt_s", "bge": "ge_s",
    "bltu": "lt_u", "bgeu": "ge_u",
}
_B1_COMPARE = {"beqz": "eq", "bnez": "ne", "bltz": "lt_s", "bgez": "ge_s"}
_BI_COMPARE = {"beqi": "eq", "bnei": "ne", "blti": "lt_s", "bgei": "ge_s"}


class UnsupportedInstruction(ValueError):
    """Raised when asked to lower a mnemonic outside ``LIFTABLE``."""


def _zext32(b: GraphBuilder, nid: int) -> int:
    """Widen a narrow (e.g. 1-bit compare) value to a 32-bit data value."""
    if b.width_of(nid) == 32:
        return nid
    return b.op("zext", [nid], 32)


def _shl_const(b: GraphBuilder, a: int, s: int) -> int:
    """``a << s`` for a compile-time ``s`` — pure wiring, no shifter."""
    if s == 0:
        return a
    hi = b.op("slice", [a], 32 - s, payload=0)
    return b.op("concat", [hi, b.const(0, s)], 32)


def _shr_const(b: GraphBuilder, a: int, s: int, *, arithmetic: bool) -> int:
    """``a >> s`` (logical or arithmetic) for compile-time ``s`` — wiring."""
    if s == 0:
        return a
    top = b.op("slice", [a], 32 - s, payload=s)
    return b.op("sext" if arithmetic else "zext", [top], 32)


def _rotl_const(b: GraphBuilder, a: int, s: int) -> int:
    """Rotate left by compile-time ``s`` — two slices and a concat."""
    s %= 32
    if s == 0:
        return a
    low = b.op("slice", [a], 32 - s, payload=0)
    top = b.op("slice", [a], s, payload=32 - s)
    return b.op("concat", [low, top], 32)


def _mul_wide(b: GraphBuilder, a: int, c: int, *, signed: bool) -> int:
    """High 32 bits of the 64-bit product — widen, multiply, slice."""
    ext = "sext" if signed else "zext"
    a64 = b.op(ext, [a], 64)
    c64 = b.op(ext, [c], 64)
    product = b.op("mul", [a64, c64], 64)
    return b.op("slice", [product], 32, payload=32)


def _signed_imm(b: GraphBuilder, ins: Instruction) -> int:
    return b.const(to_unsigned(ins.imm or 0))


def emit_instruction(
    b: GraphBuilder, mnemonic: str, srcs: list[int], ins: Instruction
) -> int:
    """Lower one liftable instruction; returns the 32-bit result node.

    ``srcs`` holds the graph nodes for the instruction's source
    registers, in :func:`~repro.isa.instructions.InstructionDef.source_registers`
    order (R3: ``[rs, rt]``; unary/immediate: ``[rs]``; loads of an
    immediate: ``[]``).
    """
    if mnemonic not in LIFTABLE:
        raise UnsupportedInstruction(f"cannot lift {mnemonic!r}")

    # -- direct binary operators ------------------------------------------
    direct = {
        "add": "add", "sub": "sub", "and": "and", "or": "or", "xor": "xor",
        "mull": "mul", "sll": "shl", "srl": "shr", "sra": "sar",
        "min": "min_s", "max": "max_s", "minu": "min_u", "maxu": "max_u",
    }
    if mnemonic in direct:
        return b.op(direct[mnemonic], srcs, 32)

    a = srcs[0] if srcs else None

    if mnemonic in ("nor", "xnor"):
        inner = b.op("or" if mnemonic == "nor" else "xor", srcs, 32)
        return b.op("not", [inner], 32)
    if mnemonic in ("andn", "orn"):
        nb = b.op("not", [srcs[1]], 32)
        return b.op("and" if mnemonic == "andn" else "or", [srcs[0], nb], 32)
    if mnemonic in ("addx2", "addx4", "addx8", "subx2", "subx4"):
        shift = {"2": 1, "4": 2, "8": 3}[mnemonic[-1]]
        scaled = _shl_const(b, srcs[0], shift)
        return b.op("sub" if mnemonic.startswith("sub") else "add", [scaled, srcs[1]], 32)
    if mnemonic in ("slt", "sltu"):
        cmp = b.op("lt_s" if mnemonic == "slt" else "lt_u", srcs, 1)
        return _zext32(b, cmp)
    if mnemonic in ("mulh", "mulhu"):
        return _mul_wide(b, srcs[0], srcs[1], signed=mnemonic == "mulh")

    # -- unary -------------------------------------------------------------
    if mnemonic == "mov":
        return a  # type: ignore[return-value]
    if mnemonic == "neg":
        return b.op("sub", [b.const(0), a], 32)
    if mnemonic == "not":
        return b.op("not", [a], 32)
    if mnemonic == "abs":
        non_negative = b.op("ge_s", [a, b.const(0)], 1)
        negated = b.op("sub", [b.const(0), a], 32)
        return b.op("mux", [non_negative, a, negated], 32)
    if mnemonic in ("sext8", "sext16", "zext8", "zext16"):
        width = 8 if mnemonic.endswith("8") else 16
        low = b.op("slice", [a], width, payload=0)
        return b.op("sext" if mnemonic.startswith("s") else "zext", [low], 32)
    if mnemonic == "bswap":
        b0, b1, b2, b3 = (b.op("slice", [a], 8, payload=8 * i) for i in range(4))
        hi = b.op("concat", [b0, b1], 16)
        lo = b.op("concat", [b2, b3], 16)
        return b.op("concat", [hi, lo], 32)

    # -- immediate ALU ------------------------------------------------------
    if mnemonic == "addi":
        return b.op("add", [a, _signed_imm(b, ins)], 32)
    if mnemonic == "addmi":
        shifted = truncate(to_unsigned(ins.imm or 0) << 8)
        return b.op("add", [a, b.const(shifted)], 32)
    if mnemonic in ("andi", "ori", "xori"):
        imm = b.const((ins.imm or 0) & 0xFFF)
        return b.op(mnemonic[:-1], [a, imm], 32)
    if mnemonic in ("slti", "sltiu"):
        cmp = b.op(
            "lt_s" if mnemonic == "slti" else "lt_u", [a, _signed_imm(b, ins)], 1
        )
        return _zext32(b, cmp)
    if mnemonic in ("slli", "srli", "srai"):
        s = (ins.imm or 0) & 31
        if mnemonic == "slli":
            return _shl_const(b, a, s)
        return _shr_const(b, a, s, arithmetic=mnemonic == "srai")
    if mnemonic in ("roli", "rori"):
        s = (ins.imm or 0) & 31
        return _rotl_const(b, a, s if mnemonic == "roli" else (32 - s) % 32)

    # -- immediate loads ----------------------------------------------------
    if mnemonic == "movi":
        return b.const(to_unsigned(ins.imm or 0))
    if mnemonic == "movhi":
        return b.const(truncate(((ins.imm or 0) & 0x3FFFF) << 12))

    raise UnsupportedInstruction(f"no lowering for {mnemonic!r}")  # pragma: no cover


def branch_taken_cond(
    b: GraphBuilder, ins: Instruction, srcs: list[int]
) -> tuple[int, bool]:
    """Lower a branch's *condition* to a 1-bit node.

    Returns ``(cond_node, taken_when_true)`` — the unroller muxes the
    taken/fall-through values with the condition, swapping mux arms when
    ``taken_when_true`` is ``False`` (``bbc``) instead of adding a NOT.
    """
    mnemonic = ins.mnemonic
    if mnemonic in _B2_COMPARE:
        return b.op(_B2_COMPARE[mnemonic], srcs, 1), True
    if mnemonic in _B1_COMPARE:
        return b.op(_B1_COMPARE[mnemonic], [srcs[0], b.const(0)], 1), True
    if mnemonic in _BI_COMPARE:
        imm = b.const(to_unsigned(ins.rt or 0))
        return b.op(_BI_COMPARE[mnemonic], [srcs[0], imm], 1), True
    if mnemonic in ("bbs", "bbc"):
        bit = b.op("slice", [srcs[0]], 1, payload=(ins.rt or 0) & 31)
        return bit, mnemonic == "bbs"
    raise UnsupportedInstruction(f"unsupported branch {mnemonic!r}")
