"""Discovered-instruction search spaces for ``repro explore``.

:func:`discovered_space` turns a :class:`~repro.discover.pipeline.
DiscoveryManifest` into a :class:`~repro.dse.SearchSpace` named
``discovered:<workload>``: one ``impl`` knob whose values are the
software baseline plus every verified discovered instruction, crossed
with the same cache-geometry knobs as the bundled ``*_tuned`` spaces.
Each discovered design point rebuilds deterministically from the
manifest — re-lift the stored graph, recompile its TIE extension,
rewrite the software program — so exploration workers never need the
profiling run that produced it.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..asm import Program, assemble
from ..dse.space import Knob, SearchSpace, register_space, with_operating_points
from ..xtcore import CacheConfig, ProcessorConfig, build_processor
from .pipeline import DiscoveryManifest, software_case
from .rewrite import rewrite_program


def _build_discovered_point(
    manifest: DiscoveryManifest, assignment: dict
) -> Tuple[ProcessorConfig, Program]:
    case = software_case(manifest.workload)
    base = ProcessorConfig(
        icache=CacheConfig(size_bytes=int(assignment.get("icache_kb", 16)) * 1024),
        dcache=CacheConfig(
            size_bytes=int(assignment.get("dcache_kb", 16)) * 1024,
            ways=int(assignment.get("dcache_ways", 4)),
        ),
    )
    impl = assignment["impl"]
    if impl == "sw":
        config = build_processor(f"xt-{case.name}", base=base)
        return config, assemble(case.source, case.name, isa=config.isa)
    entry = next(e for e in manifest.entries if e.mnemonic == impl)
    legalized = entry.legalize()
    config = build_processor(f"xt-{case.name}+{impl}", legalized.lifted.specs, base=base)
    program = assemble(case.source, case.name, isa=config.isa)
    return config, rewrite_program(program, config.isa, legalized).program


def discovered_space(
    manifest: DiscoveryManifest,
    operating_points: Optional[Sequence[str]] = None,
) -> SearchSpace:
    """The ``discovered:<workload>`` space for one manifest.

    ``operating_points`` optionally crosses the space with a technology
    operating-point axis (see :func:`repro.dse.with_operating_points`);
    the space keeps its canonical name either way so by-name lookup and
    manifests stay stable.
    """
    impls = ("sw",) + tuple(entry.mnemonic for entry in manifest.entries)
    space = SearchSpace(
        name=f"discovered:{manifest.workload}",
        description=(
            f"software {manifest.workload} vs {len(manifest.entries)} discovered "
            "instruction(s), crossed with cache-geometry knobs"
        ),
        knobs=(
            Knob("impl", impls),
            Knob("icache_kb", (4, 8, 16)),
            Knob("dcache_kb", (4, 8, 16)),
            Knob("dcache_ways", (1, 2, 4)),
        ),
        builder=lambda a: _build_discovered_point(manifest, a),
    )
    if operating_points:
        space = with_operating_points(space, operating_points, name=space.name)
    return space


def register_discovered(
    manifest: DiscoveryManifest,
    operating_points: Optional[Sequence[str]] = None,
) -> str:
    """Register the manifest's space for by-name lookup; returns its name."""
    space = discovered_space(manifest, operating_points)
    register_space(space.name, lambda: discovered_space(manifest, operating_points))
    return space.name
