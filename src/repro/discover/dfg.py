"""Static control-flow and liveness analysis over assembled programs.

The miner needs two facts the dynamic trace cannot give it: which
registers are *live* at the point where a candidate's matched sequence
ends (to bound the candidate's outputs), and where the basic-block
boundaries are (candidates never straddle them).  This module computes
both from the static instruction stream, conservatively:

* indirect control transfers (``jx``, ``callx``, ``ret``) are modelled
  as exits at which **every** register is live;
* ``call`` flows both into the callee (whose entry block then demands
  the argument registers) and to its fall-through;
* ``ret`` reads the link register ``a0`` even though its ``N`` format
  advertises no source operands.

Conservative liveness can only make the miner reject a legal candidate,
never accept an illegal one.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

from ..asm.program import Program
from ..isa.classes import InstructionClass
from ..isa.instructions import (
    INSTRUCTION_BYTES,
    LINK_REGISTER,
    NUM_REGISTERS,
    Instruction,
    InstructionDef,
    InstructionSet,
)

#: Mnemonics that end a block with no successors inside the program.
_TERMINATORS = frozenset({"halt", "break"})
#: Indirect transfers: successor unknown -> all registers live.
_INDIRECT = frozenset({"jx", "callx", "ret"})

ALL_REGS = frozenset(range(NUM_REGISTERS))


def reads(definition: InstructionDef, ins: Instruction) -> tuple[int, ...]:
    """Registers read by ``ins`` — ``source_registers`` plus the implicit
    link-register read of ``ret``."""
    if ins.mnemonic == "ret":
        return (LINK_REGISTER,)
    return definition.source_registers(ins)


def writes(definition: InstructionDef, ins: Instruction) -> tuple[int, ...]:
    """Registers written by ``ins`` (includes ``extra_writes``, e.g. the
    link register of ``call``)."""
    return definition.dest_registers(ins)


@dataclasses.dataclass
class Block:
    """One basic block: consecutive instruction addresses, single entry,
    control transfer (if any) only at the end."""

    start: int
    addrs: list[int]
    succ: list[int] = dataclasses.field(default_factory=list)
    #: True when the block ends in an indirect transfer (or falls off the
    #: end of the text image): treat every register as live-out.
    all_live_exit: bool = False
    live_in: frozenset[int] = frozenset()
    live_out: frozenset[int] = frozenset()

    @property
    def end(self) -> int:
        return self.addrs[-1] + INSTRUCTION_BYTES


class ProgramDfg:
    """Basic blocks + CFG + per-block (and per-point) register liveness."""

    def __init__(self, program: Program, isa: InstructionSet) -> None:
        self.program = program
        self.isa = isa
        self.blocks: dict[int, Block] = {}
        self._block_of: dict[int, int] = {}
        self._build_blocks()
        self._solve_liveness()

    # -- construction ------------------------------------------------------

    def _control_kind(self, ins: Instruction) -> str:
        definition = self.isa.lookup(ins.mnemonic)
        if ins.mnemonic in _TERMINATORS:
            return "halt"
        if ins.mnemonic in _INDIRECT:
            return "indirect"
        if definition.iclass is InstructionClass.BRANCH:
            return "branch"
        if ins.mnemonic == "call":
            return "call"
        if ins.mnemonic == "j":
            return "jump"
        return "plain"

    def _build_blocks(self) -> None:
        program = self.program
        addrs = sorted(program.instructions)
        addr_set = set(addrs)
        leaders: set[int] = {program.entry} & addr_set
        for rng in program.text_ranges():
            leaders.add(rng.start)
        for addr in addrs:
            ins = program.instructions[addr]
            kind = self._control_kind(ins)
            if kind == "plain":
                continue
            after = addr + INSTRUCTION_BYTES
            if after in addr_set:
                leaders.add(after)
            if kind in ("branch", "jump", "call"):
                target = ins.imm or 0
                if target in addr_set:
                    leaders.add(target)

        ordered = sorted(leaders)
        for i, start in enumerate(ordered):
            block = Block(start=start, addrs=[start])
            addr = start + INSTRUCTION_BYTES
            next_leader = ordered[i + 1] if i + 1 < len(ordered) else None
            while addr in addr_set and addr != next_leader:
                block.addrs.append(addr)
                addr += INSTRUCTION_BYTES
            self.blocks[start] = block
            for a in block.addrs:
                self._block_of[a] = start

        for block in self.blocks.values():
            last = self.program.instructions[block.addrs[-1]]
            kind = self._control_kind(last)
            after = block.end
            target = last.imm or 0
            if kind == "halt":
                pass
            elif kind == "indirect":
                block.all_live_exit = True
            elif kind == "jump":
                self._link(block, target)
            elif kind == "branch":
                self._link(block, after)
                self._link(block, target)
            elif kind == "call":
                self._link(block, target)
                self._link(block, after)
            else:  # plain fall-through
                if after in self._block_of:
                    self._link(block, after)
                else:
                    block.all_live_exit = True

    def _link(self, block: Block, target: int) -> None:
        if target in self.blocks:
            block.succ.append(target)
        else:
            # Transfer to an address we have no instructions for —
            # conservatively an all-live exit.
            block.all_live_exit = True

    # -- liveness ----------------------------------------------------------

    def _transfer(self, block: Block, live: set[int]) -> set[int]:
        """Backward transfer of ``live`` (the live-out set) through a block."""
        for addr in reversed(block.addrs):
            ins = self.program.instructions[addr]
            definition = self.isa.lookup(ins.mnemonic)
            live -= set(writes(definition, ins))
            live |= set(reads(definition, ins))
        return live

    def _solve_liveness(self) -> None:
        changed = True
        while changed:
            changed = False
            for block in self.blocks.values():
                out: set[int] = set(ALL_REGS) if block.all_live_exit else set()
                for succ in block.succ:
                    out |= self.blocks[succ].live_in
                live_in = frozenset(self._transfer(block, set(out)))
                live_out = frozenset(out)
                if live_in != block.live_in or live_out != block.live_out:
                    block.live_in = live_in
                    block.live_out = live_out
                    changed = True

    # -- queries -----------------------------------------------------------

    def block_of(self, addr: int) -> Block:
        return self.blocks[self._block_of[addr]]

    def live_after(self, addr: int) -> frozenset[int]:
        """Registers live immediately *after* the instruction at ``addr``
        (before its successor instruction executes)."""
        block = self.block_of(addr)
        live: set[int] = set(block.live_out)
        for a in reversed(block.addrs):
            if a == addr:
                return frozenset(live)
            ins = self.program.instructions[a]
            definition = self.isa.lookup(ins.mnemonic)
            live -= set(writes(definition, ins))
            live |= set(reads(definition, ins))
        raise KeyError(f"address {addr:#x} not in its own block")  # pragma: no cover

    def instructions_of(self, block: Block) -> Iterable[tuple[int, Instruction]]:
        for addr in block.addrs:
            yield addr, self.program.instructions[addr]
