"""Dynamic dataflow tracing: the profile half of the discovery loop.

:class:`DataflowTraceObserver` subscribes to the ``repro.obs`` retire
stream and records, per static basic block, (a) how many times the block
executed and (b) the def-use edges actually exercised between its
instructions — the producer/consumer register chains the miner grows
candidates along.  Block structure and liveness come from the static
:class:`~repro.discover.dfg.ProgramDfg` built at run start; the dynamic
pass contributes execution counts, which turn the miner's cycle-savings
arithmetic into real profile-weighted speedups (the role of
``HotSpotObserver`` in the paper's flow, at basic-block rather than
symbol granularity).
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Optional

from ..obs.protocol import SimObserver
from .dfg import ProgramDfg, reads, writes

if TYPE_CHECKING:  # pragma: no cover
    from ..asm import Program
    from ..obs.events import RetireEvent
    from ..xtcore import ProcessorConfig, SimulationResult


class ObserverStateError(RuntimeError):
    """A report was requested before the observed run finished."""


@dataclasses.dataclass(frozen=True)
class DefUseEdge:
    """Register ``reg`` flows from the def at ``producer`` to the use at
    ``consumer`` (both instruction addresses within one block)."""

    producer: int
    consumer: int
    reg: int


@dataclasses.dataclass(frozen=True)
class BlockTrace:
    """One executed basic block with its dynamic def-use profile."""

    start: int
    addrs: tuple[int, ...]
    count: int
    edges: frozenset[DefUseEdge]

    @property
    def dynamic_instructions(self) -> int:
        return self.count * len(self.addrs)


@dataclasses.dataclass(frozen=True)
class DataflowReport:
    """Profile summary: executed blocks (hottest first) + the static DFG."""

    blocks: tuple[BlockTrace, ...]
    total_instructions: int
    dfg: ProgramDfg

    def hot_blocks(self, min_coverage: float = 0.0) -> tuple[BlockTrace, ...]:
        """Blocks whose dynamic instruction share is >= ``min_coverage``."""
        if self.total_instructions == 0:
            return ()
        return tuple(
            b
            for b in self.blocks
            if b.dynamic_instructions / self.total_instructions >= min_coverage
        )


class DataflowTraceObserver(SimObserver):
    """Record per-block execution counts and dynamic def-use chains.

    Register with :func:`repro.obs.run_session` (or any
    ``ReferenceSimulator`` run); read :attr:`report` after the run.
    """

    wants_retire = True

    def __init__(self) -> None:
        self._report: Optional[DataflowReport] = None
        self._dfg: Optional[ProgramDfg] = None
        self._isa = None
        self._program: Optional["Program"] = None
        self._block_counts: dict[int, int] = {}
        self._edges: dict[int, set[DefUseEdge]] = {}
        self._last_writer: dict[int, int] = {}
        self._current_block: Optional[int] = None
        self._total = 0

    def on_run_start(self, config: "ProcessorConfig", program: "Program") -> None:
        self._report = None
        self._isa = config.isa
        self._program = program
        self._dfg = ProgramDfg(program, config.isa)
        self._block_counts = {}
        self._edges = {}
        self._last_writer = {}
        self._current_block = None
        self._total = 0

    def on_retire(self, event: "RetireEvent") -> None:
        assert self._dfg is not None and self._program is not None
        addr = event.addr
        block = self._dfg.block_of(addr)
        if addr == block.start or block.start != self._current_block:
            # Entered the block (at its leader, or mid-block via a
            # mispredicted model change — defensively reset the chains).
            self._current_block = block.start
            self._last_writer = {}
            if addr == block.start:
                self._block_counts[block.start] = self._block_counts.get(block.start, 0) + 1
        ins = self._program.instructions[addr]
        definition = self._isa.lookup(ins.mnemonic)  # type: ignore[union-attr]
        edges = self._edges.setdefault(block.start, set())
        for reg in reads(definition, ins):
            producer = self._last_writer.get(reg)
            if producer is not None:
                edges.add(DefUseEdge(producer=producer, consumer=addr, reg=reg))
        for reg in writes(definition, ins):
            self._last_writer[reg] = addr
        self._total += 1

    def on_run_finish(self, result: "SimulationResult") -> None:
        assert self._dfg is not None
        blocks = [
            BlockTrace(
                start=start,
                addrs=tuple(self._dfg.blocks[start].addrs),
                count=count,
                edges=frozenset(self._edges.get(start, set())),
            )
            for start, count in self._block_counts.items()
        ]
        blocks.sort(key=lambda b: (-b.dynamic_instructions, b.start))
        self._report = DataflowReport(
            blocks=tuple(blocks), total_instructions=self._total, dfg=self._dfg
        )

    @property
    def report(self) -> DataflowReport:
        if self._report is None:
            raise ObserverStateError(
                "DataflowTraceObserver has no report yet; register it with "
                "run_session() and read .report after the run finishes"
            )
        return self._report
