"""Symbolic unrolling of leaf subroutines into candidate graphs.

Block-level mining cannot see past a ``call`` — yet the richest custom
instructions hide exactly there (the Reed-Solomon software GF multiply
is a whole shift-and-xor *subroutine*).  This module closes that gap:
it symbolically executes small leaf subroutines with the caller's
argument registers as free inputs, concrete values folded through the
real ISA semantics, counted loops unrolled, and data-dependent forward
branches *if-converted* into mux nodes — producing one candidate graph
that computes the subroutine's entire effect, matched at every call
site (with argument ``mov`` chains folded into the port bindings).

Limits are deliberate: no loads/stores, no nested calls, no backward
branch on a symbolic condition (an unbounded loop), and a hard step
budget.  Anything outside raises :class:`Unliftable` and the call site
is simply skipped — discovery is best-effort.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Union

from ..asm.program import Program
from ..isa.instructions import INSTRUCTION_BYTES, LINK_REGISTER, InstructionSet
from ..isa.state import MachineState
from .dfg import ALL_REGS, ProgramDfg, reads, writes
from .graph import CandidateGraph, GraphBuilder, GraphError
from .miner import MinedCandidate, Site
from .trace import DataflowReport
from .vocab import (
    LIFTABLE,
    SUPPORTED_BRANCHES,
    UnsupportedInstruction,
    branch_taken_cond,
    emit_instruction,
)

#: Maximum instructions symbolically executed per subroutine (bounds
#: loop unrolling).
STEP_BUDGET = 512

Value = Union[int, "SymNode"]


@dataclasses.dataclass(frozen=True)
class SymNode:
    """A symbolic 32-bit value: a node in the builder's graph."""

    nid: int


class Unliftable(Exception):
    """The subroutine cannot be expressed as one pure dataflow graph."""


class _SymbolicExecutor:
    def __init__(self, program: Program, isa: InstructionSet, entry: int, end: int) -> None:
        self.program = program
        self.isa = isa
        self.entry = entry
        self.end = end  # address of the ret instruction
        self.builder = GraphBuilder()
        self.env: dict[int, Value] = {}
        self.port_regs: list[int] = []
        self.written: set[int] = set()
        self.steps = 0
        #: reg -> its lazily-created input node (the pre-call value)
        self._input_of: dict[int, int] = {}
        #: every write, in order — sliced to find per-region write sets
        self._write_log: list[int] = []

    # -- value plumbing ----------------------------------------------------

    def _read(self, reg: int) -> Value:
        value = self.env.get(reg)
        if value is None:
            value = SymNode(self._fresh_input(reg))
            self.env[reg] = value
        return value

    def _fresh_input(self, reg: int) -> int:
        """The input node carrying ``reg``'s pre-call value."""
        nid = self._input_of.get(reg)
        if nid is None:
            nid = self.builder.input()
            self.port_regs.append(reg)
            self._input_of[reg] = nid
        return nid

    def _as_node(self, value: Value) -> int:
        if isinstance(value, SymNode):
            return value.nid
        return self.builder.const(value & 0xFFFFFFFF)

    def _concrete_fold(self, ins, definition, srcs: list[int]) -> int:
        """Execute one liftable instruction on concrete operands using
        the *real* ISA semantics (no second interpretation of them)."""
        scratch = MachineState()
        for reg, value in zip(reads(definition, ins), srcs):
            scratch.set(reg, value)
        definition.semantics(scratch, ins)
        return scratch.get(ins.rd)

    # -- execution ---------------------------------------------------------

    def run(self) -> None:
        self._exec(self.entry, self.end)

    def _step_budget(self) -> None:
        self.steps += 1
        if self.steps > STEP_BUDGET:
            raise Unliftable("step budget exhausted (unbounded loop?)")

    def _exec(self, pc: int, end: int) -> None:
        """Execute [pc, end) symbolically; returns at ``end``."""
        while pc != end:
            ins = self.program.instructions.get(pc)
            if ins is None:
                raise Unliftable(f"fell off the instruction stream at {pc:#x}")
            if pc < self.entry or pc > self.end:
                raise Unliftable(f"escaped the subroutine extent at {pc:#x}")
            self._step_budget()
            mnemonic = ins.mnemonic
            definition = self.isa.lookup(mnemonic)

            if mnemonic in SUPPORTED_BRANCHES:
                pc = self._branch(pc, end, ins, definition)
                continue
            if mnemonic == "j":
                target = ins.imm or 0
                if not pc < target <= end:
                    raise Unliftable(f"jump outside forward extent at {pc:#x}")
                pc = target
                continue
            if mnemonic not in LIFTABLE:
                raise Unliftable(f"unsupported {mnemonic!r} at {pc:#x}")

            src_regs = reads(definition, ins)
            values = [self._read(r) for r in src_regs]
            if all(isinstance(v, int) for v in values):
                result: Value = self._concrete_fold(  # type: ignore[arg-type]
                    ins, definition, list(values)
                )
            else:
                nodes = [self._as_node(v) for v in values]
                try:
                    result = SymNode(emit_instruction(self.builder, mnemonic, nodes, ins))
                except (GraphError, UnsupportedInstruction) as exc:
                    raise Unliftable(str(exc)) from exc
            for reg in writes(definition, ins):
                self.env[reg] = result
                self.written.add(reg)
                self._write_log.append(reg)
            pc += INSTRUCTION_BYTES

    def _branch(self, pc: int, end: int, ins, definition) -> int:
        target = ins.imm or 0
        src_regs = reads(definition, ins)
        values = [self._read(r) for r in src_regs]

        if all(isinstance(v, int) for v in values):
            scratch = MachineState()
            for reg, value in zip(src_regs, values):
                scratch.set(reg, value)  # type: ignore[arg-type]
            taken = definition.semantics(scratch, ins) is not None
            next_pc = target if taken else pc + INSTRUCTION_BYTES
            if taken and not (self.entry <= target <= self.end):
                raise Unliftable(f"branch escapes the subroutine at {pc:#x}")
            return next_pc

        # Symbolic condition: only *forward* branches can be if-converted.
        if target <= pc:
            raise Unliftable(f"symbolic backward branch at {pc:#x}")
        if target > end:
            raise Unliftable(f"symbolic branch past region end at {pc:#x}")
        nodes = [self._as_node(v) for v in values]
        try:
            cond, taken_when_true = branch_taken_cond(self.builder, ins, nodes)
        except (GraphError, UnsupportedInstruction) as exc:
            raise Unliftable(str(exc)) from exc
        before = dict(self.env)
        mark = len(self._write_log)
        self._exec(pc + INSTRUCTION_BYTES, target)
        after = self.env
        region_writes = set(self._write_log[mark:])
        merged: dict[int, Value] = dict(after)
        for reg in sorted(region_writes):
            a = after[reg]
            # The not-taken value: whatever the register held before the
            # region — its pre-call input if this is its first mention.
            b = before.get(reg)
            if b is None:
                b = SymNode(self._fresh_input(reg))
            if b == a:
                continue
            nb, na = self._as_node(b), self._as_node(a)
            # cond true means *taken* (region skipped) for bbs-style
            # branches, *fall through* (region executed) for bbc.
            if taken_when_true:
                merged[reg] = SymNode(self.builder.op("mux", [cond, nb, na], 32))
            else:
                merged[reg] = SymNode(self.builder.op("mux", [cond, na, nb], 32))
        self.env = merged
        return target


def _leaf_extent(program: Program, isa: InstructionSet, entry: int) -> Optional[int]:
    """Address of the single ``ret`` ending a contiguous leaf subroutine
    at ``entry``; ``None`` if the shape doesn't match."""
    addr = entry
    while True:
        ins = program.instructions.get(addr)
        if ins is None:
            return None
        if ins.mnemonic == "ret":
            return addr
        if ins.mnemonic in ("call", "callx", "jx", "halt", "break"):
            return None
        if addr - entry > STEP_BUDGET * INSTRUCTION_BYTES:
            return None
        addr += INSTRUCTION_BYTES


@dataclasses.dataclass
class SubUnroll:
    """Executor snapshot: freeze a graph for any chosen output register."""

    executor: _SymbolicExecutor

    @property
    def written(self) -> frozenset[int]:
        return frozenset(self.executor.written)

    @property
    def steps(self) -> int:
        return self.executor.steps

    def freeze(self, output_reg: int) -> tuple[CandidateGraph, tuple[int, ...]]:
        """(graph, port index -> argument register) for ``output_reg``."""
        value = self.executor.env.get(output_reg)
        if value is None or output_reg not in self.executor.written:
            raise Unliftable(f"subroutine does not define a{output_reg}")
        out_node = self.executor._as_node(value)
        graph, port_map = self.executor.builder.finish(out_node)
        port_regs = [0] * graph.n_inputs
        for old_idx, reg in enumerate(self.executor.port_regs):
            new_idx = port_map.get(old_idx)
            if new_idx is not None:
                port_regs[new_idx] = reg
        return graph, tuple(port_regs)


def unroll_entry(program: Program, isa: InstructionSet, entry: int) -> SubUnroll:
    """Symbolically unroll the leaf subroutine at ``entry`` (or raise
    :class:`Unliftable`)."""
    end = _leaf_extent(program, isa, entry)
    if end is None:
        raise Unliftable(f"no leaf extent at {entry:#x}")
    for addr in range(entry, end, INSTRUCTION_BYTES):
        ins = program.instructions.get(addr)
        if ins is None:
            raise Unliftable(f"hole in subroutine at {addr:#x}")
        if ins.mnemonic in SUPPORTED_BRANCHES or ins.mnemonic == "j":
            target = ins.imm or 0
            if not entry <= target <= end:
                raise Unliftable(f"branch target {target:#x} outside subroutine")
    executor = _SymbolicExecutor(program, isa, entry, end)
    executor.run()
    executor.steps += 1  # the ret itself
    if not executor.written:
        raise Unliftable("subroutine computes nothing")
    return SubUnroll(executor)


def mine_call_sites(
    report: DataflowReport, max_ports: int = 2
) -> list[MinedCandidate]:
    """Candidates from every liftable ``call`` site in a profiled run.

    For each call whose target unrolls, the candidate's members are the
    foldable argument-``mov`` run plus the ``call`` itself; the custom
    instruction lands at the call's position and the callee body is left
    in place (it may have other callers — if not, it becomes dead code
    that never executes).
    """
    dfg: ProgramDfg = report.dfg
    program, isa = dfg.program, dfg.isa
    counts = {b.start: b.count for b in report.blocks}

    unrolls: dict[int, Optional[SubUnroll]] = {}
    merged: dict[str, MinedCandidate] = {}

    for addr in sorted(program.instructions):
        ins = program.instructions[addr]
        if ins.mnemonic != "call":
            continue
        entry = ins.imm or 0
        if entry not in unrolls:
            try:
                unrolls[entry] = unroll_entry(program, isa, entry)
            except Unliftable:
                unrolls[entry] = None
        sub = unrolls[entry]
        if sub is None:
            continue
        for graph, site in _lift_call_site(report, sub, addr, max_ports, counts):
            digest = graph.canonical_hash()
            existing = merged.get(digest)
            if existing is None:
                merged[digest] = MinedCandidate(graph=graph, hash=digest, sites=[site])
            elif site not in existing.sites:
                existing.sites.append(site)

    candidates = list(merged.values())
    candidates.sort(key=lambda c: (-c.static_saving, -c.dynamic_coverage, c.hash))
    return candidates


def _fold_arg_movs(
    program: Program,
    block_addrs: set[int],
    call_addr: int,
    port_regs: tuple[int, ...],
    live_after,
) -> Optional[tuple[list[int], dict[int, int]]]:
    """Fold the contiguous ``mov`` run feeding the callee's argument
    registers; returns (mov addresses, callee reg -> caller reg) or
    ``None`` when the run is self-referential."""
    mov_addrs: list[int] = []
    rebind: dict[int, int] = {}
    folded_sources: set[int] = set()
    addr = call_addr - INSTRUCTION_BYTES
    while addr in program.instructions and addr in block_addrs:
        mov = program.instructions[addr]
        if mov.mnemonic != "mov":
            break
        dest, source = mov.rd, mov.rs
        if (
            dest in port_regs
            and dest not in rebind
            and dest not in live_after
            and source not in rebind
        ):
            rebind[dest] = source  # type: ignore[index]
            folded_sources.add(source)  # type: ignore[arg-type]
            mov_addrs.append(addr)
        addr -= INSTRUCTION_BYTES
    if set(rebind) & folded_sources:
        return None  # a mov both consumes and feeds the folded run
    return mov_addrs, rebind


def _lift_call_site(
    report: DataflowReport,
    sub: SubUnroll,
    call_addr: int,
    max_ports: int,
    counts: dict[int, int],
) -> list[tuple[CandidateGraph, Site]]:
    dfg = report.dfg
    program = dfg.program
    block = dfg.block_of(call_addr)
    if block.addrs[-1] != call_addr:
        return []  # call must terminate its block (it always does)
    count = counts.get(block.start, 0)
    if count == 0:
        return []  # never executed — no profile weight

    fallthrough = call_addr + INSTRUCTION_BYTES
    fall_block = dfg.blocks.get(fallthrough)
    live_after = fall_block.live_in if fall_block is not None else ALL_REGS

    outs = sorted(sub.written & set(live_after))
    if len(outs) != 1:
        return []
    output_reg = outs[0]
    if LINK_REGISTER in live_after:
        return []  # deleting the call leaves a0 stale

    try:
        graph, port_regs = sub.freeze(output_reg)
    except (Unliftable, GraphError):
        return []
    if graph.n_inputs > max_ports or graph.is_identity:
        return []

    folded = _fold_arg_movs(
        program, set(block.addrs), call_addr, port_regs, live_after
    )
    if folded is None:
        return []
    mov_addrs, rebind = folded
    members = sorted(mov_addrs + [call_addr])
    bindings = [rebind.get(reg, reg) for reg in port_regs]
    clobbers = frozenset(
        (sub.written | {LINK_REGISTER} | set(rebind)) - {output_reg}
    )
    site = Site(
        block_start=block.start,
        members=tuple(members),
        port_regs=tuple(bindings),
        output_reg=output_reg,
        clobbers=clobbers,
        count=count,
        replaced_per_exec=len(members) + sub.steps,
    )
    results = [(graph, site)]
    grown = _absorb_consumers(report, sub, call_addr, max_ports, count, members, rebind)
    if grown is not None:
        results.append(grown)
    return results


def _rewritten_live_after(
    dfg: ProgramDfg,
    members: list[int],
    anchor: int,
    anchor_reads: frozenset[int],
    anchor_write: int,
) -> frozenset[int]:
    """Registers live after ``anchor`` once the rewrite is applied:
    non-anchor members are deleted (including the ``call``'s edge into
    the callee, which may become dead code) and the anchor becomes the
    custom instruction (reads ``anchor_reads``, writes ``anchor_write``)."""
    member_set = set(members)

    def effect(addr: int) -> tuple[set[int], set[int]]:
        if addr == anchor:
            return set(anchor_reads), {anchor_write}
        if addr in member_set:
            return set(), set()
        ins = dfg.program.instructions[addr]
        definition = dfg.isa.lookup(ins.mnemonic)
        return set(reads(definition, ins)), set(writes(definition, ins))

    def successors(block) -> list[int]:
        last = dfg.program.instructions[block.addrs[-1]]
        if block.addrs[-1] in member_set and last.mnemonic == "call":
            return [s for s in block.succ if s != last.imm]
        return block.succ

    live_in: dict[int, set[int]] = {start: set() for start in dfg.blocks}
    changed = True
    while changed:
        changed = False
        for start, block in dfg.blocks.items():
            out: set[int] = set(ALL_REGS) if block.all_live_exit else set()
            for succ in successors(block):
                out |= live_in[succ]
            for addr in reversed(block.addrs):
                rds, wrs = effect(addr)
                out -= wrs
                out |= rds
            if out != live_in[start]:
                live_in[start] = out
                changed = True

    block = dfg.block_of(anchor)
    out = set(ALL_REGS) if block.all_live_exit else set()
    for succ in successors(block):
        out |= live_in[succ]
    for addr in reversed(block.addrs):
        if addr == anchor:
            return frozenset(out)
        rds, wrs = effect(addr)
        out -= wrs
        out |= rds
    raise KeyError(f"address {anchor:#x} not in its own block")  # pragma: no cover


def _absorb_consumers(
    report: DataflowReport,
    sub: SubUnroll,
    call_addr: int,
    max_ports: int,
    count: int,
    members: list[int],
    rebind: dict[int, int],
) -> Optional[tuple[CandidateGraph, Site]]:
    """Grow the call-site candidate forward over liftable consumers.

    The richest patterns chain the callee's result straight into more
    dataflow — Reed-Solomon's Horner step is ``syn = gfmult(syn, α) ^
    byte``, one ``xor`` past the call.  This pass walks the fallthrough
    block in order, absorbing liftable instructions that consume a
    value the candidate already computes; everything else is a *gap*
    instruction that must neither read a member-defined register nor
    redefine an input port before the new anchor.  The grown candidate
    is emitted alongside the plain call fold (both are ranked; often
    the grown one wins because the accumulator promotion turns a
    three-port graph into custom state, exactly like the hand-written
    ``gfmac``).
    """
    dfg = report.dfg
    program, isa = dfg.program, dfg.isa
    executor = sub.executor
    fall_block = dfg.blocks.get(call_addr + INSTRUCTION_BYTES)
    if fall_block is None:
        return None

    # Machine state after the call: every register the callee wrote
    # holds its symbolic final value.
    env: dict[int, Value] = {reg: executor.env[reg] for reg in sub.written}
    pre_call_ports = set(executor._input_of)
    absorbed: list[int] = []
    defined: set[int] = set(sub.written)
    extra_first_read: dict[int, int] = {}
    gap_writes: list[tuple[int, int]] = []  # (position, register)

    for pos, addr in enumerate(fall_block.addrs):
        ins = program.instructions[addr]
        definition = isa.lookup(ins.mnemonic)
        rds = reads(definition, ins)
        if ins.mnemonic in LIFTABLE and any(r in env for r in rds):
            nodes = []
            for reg in rds:
                value = env.get(reg)
                if value is not None:
                    nodes.append(executor._as_node(value))
                    continue
                if reg not in executor._input_of:
                    extra_first_read.setdefault(reg, pos)
                nodes.append(executor._fresh_input(reg))
            try:
                result = emit_instruction(executor.builder, ins.mnemonic, nodes, ins)
            except (GraphError, UnsupportedInstruction):
                break
            for reg in writes(definition, ins):
                env[reg] = SymNode(result)
                defined.add(reg)
            absorbed.append(pos)
        else:
            if any(r in env for r in rds):
                break  # a survivor needs a member-defined value: stop here
            for reg in writes(definition, ins):
                gap_writes.append((pos, reg))
    if not absorbed:
        return None

    anchor_pos = absorbed[-1]
    anchor = fall_block.addrs[anchor_pos]
    grown_members = sorted(members + [fall_block.addrs[p] for p in absorbed])

    # Exactly one register of everything the candidate defines may be
    # live past the new anchor.  Program liveness is too conservative
    # here: in a loop, an absorbed member's *own* read (next iteration)
    # keeps its operand live around the back edge, yet that read is
    # deleted by the rewrite.  Disambiguate with liveness of the
    # rewritten world — members gone, the custom instruction at the
    # anchor reading the external inputs.
    outs = sorted(defined & set(dfg.live_after(anchor)))
    if not outs:
        return None
    if len(outs) > 1:
        ext_reads = frozenset(rebind.get(r, r) for r in executor.port_regs)
        outs = [
            reg
            for reg in outs
            if not (
                (defined - {reg})
                & _rewritten_live_after(dfg, grown_members, anchor, ext_reads, reg)
            )
        ]
        if len(outs) != 1:
            return None
    output_reg = outs[0]
    out_value = env[output_reg]

    graph, port_map = executor.builder.finish(executor._as_node(out_value))
    port_regs = [0] * graph.n_inputs
    for old_idx, reg in enumerate(executor.port_regs):
        new_idx = port_map.get(old_idx)
        if new_idx is not None:
            port_regs[new_idx] = reg
    bindings = [rebind.get(reg, reg) for reg in port_regs]

    # Port stability: each port is read at the anchor, so its register
    # must still hold the value the original sequence read.  Pre-call
    # ports tolerate no gap write at all; extra ports tolerate writes
    # only before their first read (that write IS their producer).
    for pos, reg in gap_writes:
        if pos >= anchor_pos:
            continue
        if reg in extra_first_read:
            if pos >= extra_first_read[reg]:
                return None
        elif reg in bindings or reg in pre_call_ports:
            return None

    acc_port: Optional[int] = None
    if graph.n_inputs > max_ports:
        if not (
            graph.n_inputs == max_ports + 1
            and output_reg in bindings
            and output_reg not in (0, 1)
        ):
            return None
        acc_port = bindings.index(output_reg)
        old_acc = next(o for o, n in port_map.items() if n == acc_port)
        graph, _ = executor.builder.finish(
            executor._as_node(out_value), acc_port=old_acc
        )
    if graph.is_identity:
        return None

    clobbers = frozenset(
        (defined | {LINK_REGISTER} | set(rebind)) - {output_reg}
    )
    site = Site(
        block_start=dfg.block_of(call_addr).start,
        members=tuple(grown_members),
        port_regs=tuple(bindings),
        output_reg=output_reg,
        clobbers=clobbers,
        count=count,
        replaced_per_exec=len(grown_members) + sub.steps,
    )
    return graph, site
