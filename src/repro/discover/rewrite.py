"""Program rewriting: replace matched sequences with the custom opcode.

For each applied :class:`~repro.discover.miner.Site` the member
instructions are deleted and the discovered instruction is emitted at
the anchor (the last member's position); the surrounding instructions
are *packed* — each text range keeps its start address and the stream
is renumbered contiguously, with every branch, jump, call, symbol and
the entry point remapped through the old→new address map.  Branch
targets that pointed *at* a deleted member resolve to the next retained
instruction, which is sound because members never straddle a basic
block: jumping to the first member originally executed the whole
member sequence, and its only surviving effect (the output register)
is produced by the custom instruction the target now falls through to.

Accumulator candidates additionally get a state-sync instruction
(``<mnemonic>_ld``) inserted after **every** external definition of the
accumulated register, so the custom state mirrors the GPR at all times.

The rewritten program must survive an assembler round-trip
(:func:`verify_roundtrip`) and a clobber-aware differential run against
the original (:func:`states_equivalent`) before it is trusted.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..asm import assemble, disassemble_program
from ..asm.program import Program
from ..isa.instructions import (
    BRANCHING_FORMATS,
    INSTRUCTION_BYTES,
    Instruction,
    InstructionSet,
)
from ..isa import LINK_REGISTER
from .dfg import writes
from .legalize import LegalizedCandidate
from .miner import Site


class RewriteError(Exception):
    """The program cannot be rewritten with this candidate."""


@dataclasses.dataclass
class RewriteResult:
    program: Program
    applied: list[Site]
    skipped: list[Site]
    #: every register an applied site stops writing (for the verifier)
    clobbers: frozenset[int]
    syncs_inserted: int


def rewrite_program(
    program: Program, isa: InstructionSet, legalized: LegalizedCandidate
) -> RewriteResult:
    """Apply every non-overlapping site of ``legalized`` to ``program``.

    ``isa`` must be the *extended* instruction set (it validates the
    custom mnemonic and, for accumulator candidates, the sync mnemonic).
    """
    if program.uncached_ranges:
        raise RewriteError(
            "programs with uncached ranges pin instruction addresses; refusing to pack"
        )
    if legalized.mnemonic not in isa:
        raise RewriteError(f"ISA does not define {legalized.mnemonic!r}")

    sites = sorted(legalized.candidate.sites, key=lambda s: s.members)
    applied: list[Site] = []
    skipped: list[Site] = []
    taken: set[int] = set()
    for site in sites:
        if any(addr not in program.instructions for addr in site.members):
            skipped.append(site)  # site mined from a different program
            continue
        if taken.intersection(site.members):
            skipped.append(site)  # overlaps an already-applied site
            continue
        taken.update(site.members)
        applied.append(site)
    if not applied:
        raise RewriteError("no applicable sites in this program")

    custom_at = {site.anchor: site for site in applied}
    deleted = {
        addr for site in applied for addr in site.members if addr != site.anchor
    }

    # Accumulator candidates: sync the state after every surviving
    # definition of the accumulated register.
    acc_reg = None
    sync_mnemonic = legalized.sync_mnemonic
    if legalized.candidate.graph.acc_port is not None:
        if sync_mnemonic is None or sync_mnemonic not in isa:
            raise RewriteError(
                f"ISA does not define the sync instruction for {legalized.mnemonic!r}"
            )
        acc_regs = {site.output_reg for site in applied}
        if len(acc_regs) != 1:
            raise RewriteError(
                f"accumulator candidate binds state to different registers: {sorted(acc_regs)}"
            )
        acc_reg = acc_regs.pop()

    new_instructions: dict[int, Instruction] = {}
    addr_map: dict[int, int] = {}
    syncs = 0
    link_moved = False

    ranges = program.text_ranges()
    for index, rng in enumerate(ranges):
        cursor = rng.start
        pending: list[int] = []  # deleted addrs awaiting their forward target

        def emit(ins: Instruction) -> None:
            nonlocal cursor
            new_instructions[cursor] = dataclasses.replace(ins, addr=cursor)
            cursor += INSTRUCTION_BYTES

        for addr in range(rng.start, rng.end, INSTRUCTION_BYTES):
            ins = program.instructions[addr]
            if addr in deleted:
                pending.append(addr)
                continue
            for waiting in pending:
                addr_map[waiting] = cursor
            pending.clear()
            addr_map[addr] = cursor
            site = custom_at.get(addr)
            if site is not None:
                emit(_custom_instruction(legalized, site))
                continue
            ins_writes = writes(isa.lookup(ins.mnemonic), ins)
            if LINK_REGISTER in ins_writes and cursor != addr:
                # Packing relocated this call: its saved return address is
                # a different (equally valid) value now, so the final a0
                # is excluded from the bitwise comparison.
                link_moved = True
            emit(ins)
            if acc_reg is not None and acc_reg in ins_writes:
                emit(Instruction(sync_mnemonic, rs=acc_reg))
                syncs += 1
        if pending:  # pragma: no cover - anchors always follow members
            raise RewriteError("deleted members with no following instruction")

        if index + 1 < len(ranges):
            limit: Optional[int] = ranges[index + 1].start
        else:
            limit = min(
                (addr for addr, _ in program.data if addr >= rng.start),
                default=None,
            )
        if limit is not None and cursor > limit:
            raise RewriteError(
                f"sync insertions overflow text range at {rng.start:#x} "
                f"(needs {cursor - rng.start} bytes, has {limit - rng.start})"
            )

    remapped: dict[int, Instruction] = {}
    for addr, ins in new_instructions.items():
        definition = isa.lookup(ins.mnemonic)
        if definition.fmt in BRANCHING_FORMATS and ins.imm is not None:
            target = addr_map.get(ins.imm)
            if target is not None and target != ins.imm:
                ins = dataclasses.replace(ins, imm=target)
        remapped[addr] = ins

    symbols = {
        name: addr_map.get(addr, addr) for name, addr in program.symbols.items()
    }
    rewritten = Program(
        name=f"{program.name}+{legalized.mnemonic}",
        instructions=remapped,
        data=program.data,
        symbols=symbols,
        entry=addr_map.get(program.entry, program.entry),
        uncached_ranges=program.uncached_ranges,
    )
    clobbers = frozenset().union(*(site.clobbers for site in applied))
    if link_moved:
        clobbers |= {LINK_REGISTER}
    return RewriteResult(
        program=rewritten,
        applied=applied,
        skipped=skipped,
        clobbers=clobbers,
        syncs_inserted=syncs,
    )


def _custom_instruction(legalized: LegalizedCandidate, site: Site) -> Instruction:
    """Assemble the custom opcode for one site's register bindings."""
    fields: dict[str, int] = {"rd": site.output_reg}
    for port, field in enumerate(legalized.lifted.port_fields):
        if field is not None:
            fields[field] = site.port_regs[port]
    return Instruction(
        legalized.mnemonic,
        rd=fields.get("rd"),
        rs=fields.get("rs"),
        rt=fields.get("rt"),
    )


def verify_roundtrip(program: Program, isa: InstructionSet) -> None:
    """Disassemble + re-assemble; raise if the streams disagree.

    Guards the rewriter's output against emitting anything the
    assembler dialect cannot express (the acceptance bar for rewritten
    programs entering the benchmark suite).
    """
    source = disassemble_program(program, isa)
    try:
        again = assemble(source, f"{program.name}-roundtrip", isa=isa)
    except Exception as exc:  # pragma: no cover - assembler rejects nothing we emit
        raise RewriteError(f"rewritten program does not re-assemble: {exc}") from exc
    ours = {
        addr: _operand_tuple(ins) for addr, ins in program.instructions.items()
    }
    theirs = {
        addr: _operand_tuple(ins) for addr, ins in again.instructions.items()
    }
    if ours != theirs:
        diff = sorted(set(ours.items()) ^ set(theirs.items()))[:4]
        raise RewriteError(f"assembler round-trip diverges: {diff}")


def _operand_tuple(ins: Instruction) -> tuple:
    return (ins.mnemonic, ins.rd, ins.rs, ins.rt, ins.imm)


def states_equivalent(
    original, rewritten, ignore_regs: frozenset[int]
) -> tuple[bool, str]:
    """Clobber-aware bitwise comparison of two final machine states.

    ``original``/``rewritten`` are :class:`~repro.isa.MachineState`;
    registers in ``ignore_regs`` (the rewrite's clobbers) and custom TIE
    state are excluded — everything else, including all of memory, must
    match exactly.
    """
    for reg in range(original.num_registers):
        if reg in ignore_regs:
            continue
        if original.regs[reg] != rewritten.regs[reg]:
            return False, (
                f"a{reg}: {original.regs[reg]:#010x} != {rewritten.regs[reg]:#010x}"
            )
    mem_a = original.memory.snapshot()
    mem_b = rewritten.memory.snapshot()
    if mem_a != mem_b:
        pages = sorted(set(mem_a) ^ set(mem_b)) or [
            p for p in mem_a if mem_a[p] != mem_b.get(p)
        ]
        return False, f"memory differs (pages {pages[:4]})"
    return True, ""
