"""Candidate dataflow graphs: the miner's portable intermediate form.

A :class:`CandidateGraph` is a small pure-dataflow program over the
vocabulary of :mod:`repro.tie.nodes` operators — the shape shared by
every stage of the discovery pipeline.  The block miner and the
subroutine unroller *build* graphs (through :class:`GraphBuilder`), the
lifter translates them 1:1 into :class:`repro.tie.TieSpec` datapaths,
and the manifest serializes them so a discovered extension can be
reconstructed in a fresh process.

Identity is structural: :meth:`CandidateGraph.canonical_hash` is a
bottom-up sha256 over ``(op, width, payload, argument positions)``,
independent of source addresses and register names, so the same
computation mined from two different blocks (or two different programs)
dedups to one candidate.  Builders construct nodes in deterministic
program order, which makes the hash stable across runs and processes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Optional, Sequence

#: Graph ops that lower to wiring (no hardware component, no latency).
WIRING_OPS = frozenset({"slice", "concat", "sext", "zext"})

#: Non-leaf ops the lifter knows how to translate into a TieSpec.
OPERATOR_OPS = frozenset(
    {
        "add", "sub", "and", "or", "xor", "not", "mux",
        "eq", "ne", "lt_s", "lt_u", "ge_s", "ge_u",
        "min_s", "min_u", "max_s", "max_u",
        "shl", "shr", "sar", "mul",
    }
    | WIRING_OPS
)

#: Leaf ops: an external input port, a hard-wired constant.
LEAF_OPS = frozenset({"in", "const"})


class GraphError(ValueError):
    """A malformed candidate graph or an invalid builder call."""


@dataclasses.dataclass(frozen=True)
class GNode:
    """One node: ``op`` over ``args`` (node ids), producing ``width`` bits.

    ``payload`` is the port index for ``in``, the value for ``const`` and
    the low bit for ``slice``; ``None`` otherwise.
    """

    op: str
    width: int
    args: tuple[int, ...] = ()
    payload: Optional[int] = None


@dataclasses.dataclass(frozen=True)
class CandidateGraph:
    """An immutable candidate: nodes in topological order plus its ports.

    ``acc_port`` marks the input port promoted to a custom state register
    (accumulator promotion) — ``None`` for plain candidates.
    """

    nodes: tuple[GNode, ...]
    output: int
    n_inputs: int
    acc_port: Optional[int] = None

    def __post_init__(self) -> None:
        for nid, node in enumerate(self.nodes):
            if node.op not in OPERATOR_OPS and node.op not in LEAF_OPS:
                raise GraphError(f"node {nid}: unknown op {node.op!r}")
            if any(arg >= nid or arg < 0 for arg in node.args):
                raise GraphError(f"node {nid}: args {node.args} not topologically ordered")
        if not 0 <= self.output < len(self.nodes):
            raise GraphError(f"output {self.output} out of range")
        ports = sorted(
            node.payload for node in self.nodes if node.op == "in"  # type: ignore[misc]
        )
        if ports != list(range(self.n_inputs)):
            raise GraphError(f"input ports {ports} are not 0..{self.n_inputs - 1}")
        if self.acc_port is not None and not 0 <= self.acc_port < self.n_inputs:
            raise GraphError(f"acc_port {self.acc_port} is not an input port")

    # -- metrics -----------------------------------------------------------

    @property
    def hardware_node_count(self) -> int:
        """Operator nodes that become library component instances."""
        return sum(
            1
            for node in self.nodes
            if node.op in OPERATOR_OPS and node.op not in WIRING_OPS
        )

    @property
    def is_identity(self) -> bool:
        """True when the output is just an input port or constant."""
        return self.nodes[self.output].op in LEAF_OPS

    # -- identity ----------------------------------------------------------

    def canonical_hash(self) -> str:
        """Structural sha256, stable across runs/blocks/programs."""
        payload = {
            "format": "repro-candidate-graph/1",
            "nodes": [
                [node.op, node.width, node.payload, list(node.args)]
                for node in self.nodes
            ],
            "output": self.output,
            "acc_port": self.acc_port,
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    # -- (de)serialization -------------------------------------------------

    def to_payload(self) -> dict:
        return {
            "nodes": [
                [node.op, node.width, node.payload, list(node.args)]
                for node in self.nodes
            ],
            "output": self.output,
            "n_inputs": self.n_inputs,
            "acc_port": self.acc_port,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CandidateGraph":
        nodes = tuple(
            GNode(op=op, width=width, payload=extra, args=tuple(args))
            for op, width, extra, args in payload["nodes"]
        )
        return cls(
            nodes=nodes,
            output=payload["output"],
            n_inputs=payload["n_inputs"],
            acc_port=payload.get("acc_port"),
        )


def evaluate_graph(graph: CandidateGraph, inputs: Sequence[int]) -> int:
    """Interpret a candidate graph on concrete port values.

    Semantics mirror :func:`repro.tie.nodes.evaluate_node` exactly
    (shift amounts modulo the node width, signed compares over the
    *input* widths, every result masked to the node width) — the lifted
    TieSpec and this interpreter must agree bit-for-bit.
    """
    if len(inputs) != graph.n_inputs:
        raise GraphError(f"expected {graph.n_inputs} inputs, got {len(inputs)}")
    vals: list[int] = [0] * len(graph.nodes)
    for nid, node in enumerate(graph.nodes):
        vals[nid] = _eval_one(graph, node, [vals[a] for a in node.args], inputs)
    return vals[graph.output]


def _mask(width: int) -> int:
    return (1 << width) - 1


def _signed(value: int, width: int) -> int:
    value &= _mask(width)
    return value - (1 << width) if value >> (width - 1) else value


def _eval_one(
    graph: CandidateGraph, node: GNode, vals: list[int], inputs: Sequence[int]
) -> int:
    op, width = node.op, node.width
    if op == "in":
        result = inputs[node.payload]  # type: ignore[index]
    elif op == "const":
        result = node.payload  # type: ignore[assignment]
    elif op == "add":
        result = vals[0] + vals[1]
    elif op == "sub":
        result = vals[0] - vals[1]
    elif op == "and":
        result = vals[0] & vals[1]
    elif op == "or":
        result = vals[0] | vals[1]
    elif op == "xor":
        result = vals[0] ^ vals[1]
    elif op == "not":
        result = ~vals[0]
    elif op == "mux":
        result = vals[1] if vals[0] else vals[2]
    elif op in ("eq", "ne"):
        result = int((vals[0] == vals[1]) == (op == "eq"))
    elif op in ("lt_s", "ge_s", "lt_u", "ge_u", "min_s", "max_s", "min_u", "max_u"):
        widths = [graph.nodes[a].width for a in node.args]
        a, b = vals
        if op.endswith("_s"):
            a, b = _signed(a, widths[0]), _signed(b, widths[1])
        if op.startswith("lt"):
            result = int(a < b)
        elif op.startswith("ge"):
            result = int(a >= b)
        elif op.startswith("min"):
            result = min(a, b)
        else:
            result = max(a, b)
    elif op in ("shl", "shr", "sar"):
        amount = vals[1] % width
        if op == "shl":
            result = vals[0] << amount
        elif op == "shr":
            result = vals[0] >> amount
        else:
            result = _signed(vals[0], graph.nodes[node.args[0]].width) >> amount
    elif op == "mul":
        result = vals[0] * vals[1]
    elif op == "slice":
        result = vals[0] >> node.payload  # type: ignore[operator]
    elif op == "concat":
        result = (vals[0] << graph.nodes[node.args[1]].width) | vals[1]
    elif op == "sext":
        result = _signed(vals[0], graph.nodes[node.args[0]].width)
    elif op == "zext":
        result = vals[0]
    else:  # pragma: no cover - validated at construction
        raise GraphError(f"no evaluator for op {op!r}")
    return result & _mask(width)


class GraphBuilder:
    """Append-only graph construction with constant dedup and dead-node
    pruning at :meth:`finish` time.

    Node ids are handed out in call order; arguments must already exist,
    which keeps every build topologically ordered by construction.
    """

    def __init__(self) -> None:
        self._nodes: list[GNode] = []
        self._ports: list[int] = []  # node id per port index
        self._const_memo: dict[tuple[int, int], int] = {}

    def __len__(self) -> int:
        return len(self._nodes)

    def width_of(self, nid: int) -> int:
        return self._nodes[nid].width

    def input(self, width: int = 32) -> int:
        nid = len(self._nodes)
        self._nodes.append(GNode("in", width, (), payload=len(self._ports)))
        self._ports.append(nid)
        return nid

    def const(self, value: int, width: int = 32) -> int:
        if not 0 <= value < (1 << width):
            raise GraphError(f"constant {value} does not fit {width} bits")
        memo = self._const_memo.get((value, width))
        if memo is not None:
            return memo
        nid = len(self._nodes)
        self._nodes.append(GNode("const", width, (), payload=value))
        self._const_memo[(value, width)] = nid
        return nid

    def op(
        self,
        op: str,
        args: Sequence[int],
        width: int,
        payload: Optional[int] = None,
    ) -> int:
        if op not in OPERATOR_OPS:
            raise GraphError(f"unknown graph op {op!r}")
        nid = len(self._nodes)
        for arg in args:
            if not 0 <= arg < nid:
                raise GraphError(f"{op}: argument {arg} does not exist yet")
        self._nodes.append(GNode(op, width, tuple(args), payload=payload))
        return nid

    def finish(
        self, output: int, acc_port: Optional[int] = None
    ) -> tuple[CandidateGraph, dict[int, int]]:
        """Freeze the graph rooted at ``output``.

        Dead nodes are pruned and the surviving input ports renumbered
        consecutively; the returned map translates *old* port indices to
        the frozen graph's ports (callers must re-map any per-site
        register bindings through it).  Non-destructive: the builder can
        be finished again with a different output.
        """
        if not 0 <= output < len(self._nodes):
            raise GraphError(f"output node {output} does not exist")
        reachable: set[int] = set()
        stack = [output]
        while stack:
            nid = stack.pop()
            if nid in reachable:
                continue
            reachable.add(nid)
            stack.extend(self._nodes[nid].args)
        keep = sorted(reachable)
        remap = {old: new for new, old in enumerate(keep)}
        port_map: dict[int, int] = {}
        nodes: list[GNode] = []
        for old in keep:
            node = self._nodes[old]
            if node.op == "in":
                new_port = len(port_map)
                port_map[node.payload] = new_port  # type: ignore[index]
                node = dataclasses.replace(node, payload=new_port)
            nodes.append(
                dataclasses.replace(node, args=tuple(remap[a] for a in node.args))
            )
        new_acc = None
        if acc_port is not None:
            if acc_port not in port_map:
                raise GraphError(f"acc_port {acc_port} is dead in the finished graph")
            new_acc = port_map[acc_port]
        graph = CandidateGraph(
            nodes=tuple(nodes),
            output=remap[output],
            n_inputs=len(port_map),
            acc_port=new_acc,
        )
        return graph, port_map
