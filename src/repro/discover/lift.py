"""Lifting candidate graphs into :class:`repro.tie.TieSpec` datapaths.

A :class:`~repro.discover.graph.CandidateGraph` and a ``TieSpec`` speak
the same operator vocabulary by construction, so lifting is a 1:1
translation: input ports become GPR operand reads (``rs``/``rt``),
constants become hard-wired constants, every operator maps to the
corresponding spec builder call, and the graph output drives
``spec.result``.

Accumulator-promoted candidates (``graph.acc_port`` set) lift to **two**
specs sharing one custom state register: the main instruction reads the
state in place of the promoted port and writes the result to both the
destination GPR and the state; a companion *sync* instruction
(``<mnemonic>_ld``) loads the state from a GPR, inserted by the
rewriter after every external definition of the accumulated register so
the state always mirrors it.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..tie import TieSpec, TieState
from ..tie.spec import Node
from .graph import CandidateGraph

#: graph op -> TieSpec builder call, for the regular binary/unary ops
_FMT_BY_PORTS = {0: "RD1", 1: "R2", 2: "R3"}
_GPR_FIELDS = ("rs", "rt")


class LiftError(ValueError):
    """The candidate graph cannot be expressed as a TieSpec."""


@dataclasses.dataclass(frozen=True)
class LiftedCandidate:
    """The spec bundle one candidate compiles to."""

    spec: TieSpec
    #: companion state-load spec for accumulator candidates
    sync_spec: Optional[TieSpec]
    #: GPR operand field per graph input port (``None`` for the acc port)
    port_fields: tuple[Optional[str], ...]

    @property
    def specs(self) -> list[TieSpec]:
        return [self.spec] + ([self.sync_spec] if self.sync_spec else [])

    @property
    def state_name(self) -> Optional[str]:
        return next(iter(self.spec.states)) if self.spec.states else None


def lift_candidate(graph: CandidateGraph, mnemonic: str, description: str = "") -> LiftedCandidate:
    """Translate ``graph`` into TieSpec(s) named ``mnemonic``."""
    gpr_ports = [p for p in range(graph.n_inputs) if p != graph.acc_port]
    if len(gpr_ports) > len(_GPR_FIELDS):
        raise LiftError(
            f"{mnemonic}: {len(gpr_ports)} GPR ports exceed the R-format's two operand buses"
        )
    fmt = _FMT_BY_PORTS[len(gpr_ports)]
    spec = TieSpec(mnemonic, fmt=fmt, description=description or f"discovered {mnemonic}")

    state: Optional[TieState] = None
    if graph.acc_port is not None:
        state = TieState(f"{mnemonic}_acc", width=32)
        spec.use_state(state)

    port_fields: list[Optional[str]] = [None] * graph.n_inputs
    for field, port in zip(_GPR_FIELDS, gpr_ports):
        port_fields[port] = field

    values: list[Node] = []
    for gnode in graph.nodes:
        values.append(_lift_node(spec, state, gnode, values, port_fields))

    out = values[graph.output]
    if out.width < 32:
        out = spec.zero_extend(out, 32)
    elif out.width > 32:
        out = spec.slice(out, 0, 32)
    spec.result(out)

    sync_spec: Optional[TieSpec] = None
    if state is not None:
        spec.write_state(state, out)
        sync_spec = TieSpec(
            f"{mnemonic}_ld",
            fmt="RS1",
            description=f"{mnemonic}_acc = rs (state sync)",
        )
        sync_state = TieState(f"{mnemonic}_acc", width=32)
        sync_spec.use_state(sync_state)
        sync_spec.write_state(sync_state, sync_spec.source("rs"))

    return LiftedCandidate(
        spec=spec, sync_spec=sync_spec, port_fields=tuple(port_fields)
    )


def _lift_node(
    spec: TieSpec,
    state: Optional[TieState],
    gnode,
    values: list[Node],
    port_fields: list[Optional[str]],
) -> Node:
    op, width = gnode.op, gnode.width
    args = [values[a] for a in gnode.args]
    if op == "in":
        field = port_fields[gnode.payload]
        if field is None:
            assert state is not None
            return spec.read_state(state)
        return spec.source(field, width=width)
    if op == "const":
        return spec.const(gnode.payload, width)
    if op == "add":
        return spec.add(args[0], args[1], width=width)
    if op == "sub":
        return spec.sub(args[0], args[1], width=width)
    if op == "and":
        return spec.bit_and(args[0], args[1])
    if op == "or":
        return spec.bit_or(args[0], args[1])
    if op == "xor":
        return spec.bit_xor(args[0], args[1])
    if op == "not":
        return spec.bit_not(args[0])
    if op == "mux":
        return spec.mux(args[0], args[1], args[2])
    if op in ("eq", "ne", "lt_s", "lt_u", "ge_s", "ge_u"):
        return spec.compare(op, args[0], args[1])
    if op in ("min_s", "min_u"):
        return spec.minimum(args[0], args[1], signed=op == "min_s")
    if op in ("max_s", "max_u"):
        return spec.maximum(args[0], args[1], signed=op == "max_s")
    if op == "shl":
        return spec.shift_left(args[0], args[1], width=width)
    if op == "shr":
        return spec.shift_right(args[0], args[1], width=width)
    if op == "sar":
        return spec.shift_right_arith(args[0], args[1], width=width)
    if op == "mul":
        return spec.mul(args[0], args[1], width=width)
    if op == "slice":
        return spec.slice(args[0], gnode.payload, width)
    if op == "concat":
        return spec.concat(args[0], args[1])
    if op == "sext":
        return spec.sign_extend(args[0], width)
    if op == "zext":
        return spec.zero_extend(args[0], width)
    raise LiftError(f"{spec.mnemonic}: no lifting for graph op {op!r}")  # pragma: no cover
