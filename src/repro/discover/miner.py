"""Convex-subgraph enumeration over profiled basic blocks.

This is the MaxMISO-style identification step of the classic ISE flow
(profile → enumerate → legalize → evaluate): within each hot basic
block the miner grows connected sets of *liftable* instructions along
def-use edges, keeps only the *convex* ones (no dataflow path from a
member through an outsider back to a member — otherwise the candidate
cannot be scheduled as one atomic instruction), bounds their GPR port
usage to the two read ports of the R-format, and emits each surviving
set as a :class:`MinedCandidate` carrying its dataflow graph plus every
*site* (block occurrence) it matched.

Candidates are deduplicated **structurally**: two sites whose
computations lift to the same canonical graph — across blocks or even
programs — merge into one candidate whose coverage is the sum of its
sites'.  A three-input accumulation pattern (``acc = acc op f(a, b)``)
is rescued from the two-port bound by *accumulator promotion*: the port
that matches the output register becomes a custom state register
(``graph.acc_port``), mirroring how the hand-written ``mac16``
extension keeps its running sum out of the GPR file.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Iterable, Optional

from ..isa.instructions import InstructionSet
from .dfg import reads, writes
from .graph import CandidateGraph, GraphBuilder, GraphError
from .trace import BlockTrace, DataflowReport
from .vocab import LIFTABLE, emit_instruction

#: Registers never promoted to accumulator state: a0 is the link
#: register, a1 the stack pointer — both carry ABI meaning the custom
#: state register must not shadow.
_RESERVED_REGS = frozenset({0, 1})

#: Source key for a register that is live into the block.
_LIVE_IN = -1


@dataclasses.dataclass(frozen=True)
class Site:
    """One concrete occurrence of a candidate in a program.

    ``members`` are the instruction addresses replaced by the custom
    opcode (inserted at the last member, the *anchor*); ``port_regs``
    binds each graph input port to the GPR read at this site;
    ``clobbers`` are registers the original sequence defined that the
    rewritten program no longer writes (all dead at the anchor — the
    differential verifier masks them).
    """

    block_start: int
    members: tuple[int, ...]
    port_regs: tuple[int, ...]
    output_reg: int
    clobbers: frozenset[int]
    count: int
    #: dynamic base instructions one execution of the custom replaces —
    #: ``len(members)`` for block sites, the whole unrolled body for
    #: call sites (members + callee instructions per invocation).
    replaced_per_exec: int = 0

    def __post_init__(self) -> None:
        if self.replaced_per_exec == 0:
            object.__setattr__(self, "replaced_per_exec", len(self.members))

    @property
    def anchor(self) -> int:
        return self.members[-1]


@dataclasses.dataclass
class MinedCandidate:
    """A structurally-unique candidate and everywhere it matched."""

    graph: CandidateGraph
    hash: str
    sites: list[Site]

    @property
    def dynamic_coverage(self) -> int:
        """Dynamic base instructions this candidate would replace."""
        return sum(site.count * site.replaced_per_exec for site in self.sites)

    @property
    def static_saving(self) -> int:
        """Net dynamic instruction-count reduction (one custom per site
        execution replaces ``replaced_per_exec`` base instructions)."""
        return sum(site.count * (site.replaced_per_exec - 1) for site in self.sites)


@dataclasses.dataclass(frozen=True)
class MinerOptions:
    """Enumeration bounds — all deterministic."""

    #: largest candidate, in member instructions
    max_nodes: int = 6
    #: GPR input ports (the R3 format reads two operand buses)
    max_ports: int = 2
    #: enumeration budget per block, in grown sets
    max_sets_per_block: int = 256
    #: promote three-port accumulation patterns to custom state
    allow_state: bool = True
    #: drop blocks below this share of dynamic instructions
    min_coverage: float = 0.0


def mine_report(
    report: DataflowReport, options: MinerOptions = MinerOptions()
) -> list[MinedCandidate]:
    """Mine every hot block of a profiled run; structurally deduped."""
    miner = _Miner(report.dfg.isa, options)
    for block in report.hot_blocks(options.min_coverage):
        miner.mine_block(report, block)
    return miner.finish()


class _Miner:
    def __init__(self, isa: InstructionSet, options: MinerOptions) -> None:
        self.isa = isa
        self.options = options
        self._by_hash: dict[str, MinedCandidate] = {}

    # -- public ------------------------------------------------------------

    def mine_block(self, report: DataflowReport, block: BlockTrace) -> None:
        program = report.dfg.program
        instructions = [program.instructions[a] for a in block.addrs]
        definitions = [self.isa.lookup(ins.mnemonic) for ins in instructions]
        n = len(instructions)
        liftable = [ins.mnemonic in LIFTABLE for ins in instructions]

        # Static def-use edges between positions (last-writer scan).
        producers: list[dict[int, int]] = []  # position -> {reg: producer pos}
        last_writer: dict[int, int] = {}
        consumers: list[set[int]] = [set() for _ in range(n)]
        for i in range(n):
            srcs = {}
            for reg in reads(definitions[i], instructions[i]):
                producer = last_writer.get(reg)
                if producer is not None:
                    srcs[reg] = producer
                    consumers[producer].add(i)
            producers.append(srcs)
            for reg in writes(definitions[i], instructions[i]):
                last_writer[reg] = i

        # Ancestor/descendant bitmasks for the convexity check.
        anc = [0] * n
        for i in range(n):
            for p in producers[i].values():
                anc[i] |= anc[p] | (1 << p)
        desc = [0] * n
        for i in range(n - 1, -1, -1):
            for c in consumers[i]:
                desc[i] |= desc[c] | (1 << c)

        def convex(members: frozenset[int]) -> bool:
            mask = 0
            for m in members:
                mask |= 1 << m
            for outsider in range(n):
                if outsider in members:
                    continue
                if anc[outsider] & mask and desc[outsider] & mask:
                    return False
            return True

        # Grow connected sets along def-use edges, BFS with dedup.
        neighbors: list[set[int]] = [
            {p for p in producers[i].values() if liftable[p]}
            | {c for c in consumers[i] if liftable[c]}
            for i in range(n)
        ]
        seen: set[frozenset[int]] = set()
        frontier: deque[frozenset[int]] = deque(
            frozenset({i}) for i in range(n) if liftable[i]
        )
        seen.update(frontier)
        emitted = 0
        while frontier and emitted < self.options.max_sets_per_block:
            members = frontier.popleft()
            if convex(members):
                emitted += 1
                self._emit(report, block, instructions, definitions, producers, members)
            if len(members) >= self.options.max_nodes:
                continue
            grown = sorted(
                {m for i in members for m in neighbors[i]} - members
            )
            for extra in grown:
                new = members | {extra}
                if new not in seen:
                    seen.add(new)
                    frontier.append(new)

    def finish(self) -> list[MinedCandidate]:
        candidates = list(self._by_hash.values())
        for candidate in candidates:
            candidate.sites.sort(key=lambda s: (s.block_start, s.members))
        candidates.sort(key=lambda c: (-c.static_saving, -c.dynamic_coverage, c.hash))
        return candidates

    # -- candidate emission ------------------------------------------------

    def _emit(
        self,
        report: DataflowReport,
        block: BlockTrace,
        instructions: list,
        definitions: list,
        producers: list[dict[int, int]],
        members: frozenset[int],
    ) -> None:
        """Lift one convex member set; silently drop illegal sites."""
        ordered = sorted(members)
        anchor = ordered[-1]
        builder = GraphBuilder()
        env: dict[int, int] = {}  # reg -> graph node, for member-internal defs
        ports: dict[tuple[int, int], int] = {}  # (reg, source pos) -> node
        port_order: list[tuple[int, int]] = []

        for i in ordered:
            ins, definition = instructions[i], definitions[i]
            srcs = []
            for reg in reads(definition, ins):
                producer = producers[i].get(reg, _LIVE_IN)
                if producer in members:
                    srcs.append(env[reg])
                else:
                    key = (reg, producer)
                    node = ports.get(key)
                    if node is None:
                        node = builder.input()
                        ports[key] = node
                        port_order.append(key)
                    srcs.append(node)
            try:
                result = emit_instruction(builder, ins.mnemonic, srcs, ins)
            except GraphError:
                return
            for reg in writes(definition, ins):
                env[reg] = result

        # Any register may be read by two different external sources only
        # if a member redefined it in between — those reads already go
        # through ``env``; two *distinct external* sources are illegal.
        regs_seen: dict[int, int] = {}
        for reg, source in port_order:
            if reg in regs_seen and regs_seen[reg] != source:
                return
            regs_seen[reg] = source

        # Exactly one live output.
        defined = set(env)
        live = report.dfg.live_after(block.addrs[anchor])
        outs = sorted(defined & set(live))
        if len(outs) != 1:
            return
        output_reg = outs[0]

        # Gap legality: outsiders between the first member and the anchor
        # must neither read a member def nor redefine a port register
        # after its source.
        first = ordered[0]
        for g in range(first, anchor):
            if g in members:
                continue
            ins, definition = instructions[g], definitions[g]
            for reg in reads(definition, ins):
                producer = producers[g].get(reg, _LIVE_IN)
                if producer in members:
                    return
            for reg in writes(definition, ins):
                for port_reg, source in port_order:
                    if reg == port_reg and source < g:
                        return

        try:
            graph, port_map = builder.finish(env[output_reg])
        except GraphError:
            return
        if graph.is_identity:
            return

        # Re-bind surviving ports in the *frozen* graph's order.
        port_regs: list[int] = [0] * graph.n_inputs
        for old_idx, key in enumerate(port_order):
            new_idx = port_map.get(old_idx)
            if new_idx is not None:
                port_regs[new_idx] = key[0]

        acc_port: Optional[int] = None
        if graph.n_inputs > self.options.max_ports:
            if not (
                self.options.allow_state
                and graph.n_inputs == self.options.max_ports + 1
                and output_reg in port_regs
                and output_reg not in _RESERVED_REGS
            ):
                return
            acc_port = port_regs.index(output_reg)
            # Re-finish with the promotion recorded; structure and port
            # numbering are unchanged (finish() is deterministic).
            graph, _ = builder.finish(env[output_reg], acc_port=_old_port(port_map, acc_port))
            assert graph.n_inputs == len(port_regs)

        clobbers = frozenset(defined - {output_reg})
        site = Site(
            block_start=block.start,
            members=tuple(block.addrs[i] for i in ordered),
            port_regs=tuple(port_regs),
            output_reg=output_reg,
            clobbers=clobbers,
            count=block.count,
        )
        digest = graph.canonical_hash()
        candidate = self._by_hash.get(digest)
        if candidate is None:
            self._by_hash[digest] = MinedCandidate(graph=graph, hash=digest, sites=[site])
        elif site not in candidate.sites:
            candidate.sites.append(site)


def _old_port(port_map: dict[int, int], new_port: int) -> int:
    """Invert the builder's old→new port map for one new index."""
    for old, new in port_map.items():
        if new == new_port:
            return old
    raise KeyError(new_port)  # pragma: no cover


def mine_programs(
    reports: Iterable[DataflowReport], options: MinerOptions = MinerOptions()
) -> list[MinedCandidate]:
    """Mine several profiled runs into one structurally-deduped pool."""
    merged: dict[str, MinedCandidate] = {}
    for report in reports:
        for candidate in mine_report(report, options):
            existing = merged.get(candidate.hash)
            if existing is None:
                merged[candidate.hash] = candidate
            else:
                existing.sites.extend(
                    s for s in candidate.sites if s not in existing.sites
                )
    candidates = list(merged.values())
    candidates.sort(key=lambda c: (-c.static_saving, -c.dynamic_coverage, c.hash))
    return candidates
