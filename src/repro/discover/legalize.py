"""Legalization: which mined candidates can actually become hardware.

Every candidate that survives mining is lifted to a TieSpec and pushed
through the real TIE compiler (:mod:`repro.tie.compiler`); anything the
spec layer rejects — malformed widths, operand-bus misuse, state
inconsistencies — surfaces here as a :class:`RejectedCandidate` with
the offending node and category from the enriched
:class:`~repro.tie.TieSpecError`.  On top of spec validity the
legalizer enforces the microarchitectural budgets the paper's energy
model cares about:

* **latency** — deep datapaths schedule over multiple execute cycles;
  beyond ``max_latency`` the candidate stalls the pipeline more than it
  saves;
* **operand-bus taps** — components fed directly from the shared GPR
  operand buses switch spuriously on *every* base instruction (paper
  Example 1); each tap adds a standing energy cost, so candidates whose
  datapaths hang too much logic straight off the buses are rejected;
* **GPR side-effects** — a discovered instruction always reads and
  writes the register file (``N_sd``); instructions that would need
  more than the two R-format read ports were already culled by the
  miner, but the check is re-asserted here after lifting.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..tie import TieImplementation, TieSpecError, compile_extension
from .lift import LiftedCandidate, LiftError, lift_candidate
from .miner import MinedCandidate


@dataclasses.dataclass(frozen=True)
class LegalizeOptions:
    """Microarchitectural budgets for discovered instructions."""

    #: maximum issue latency (execute cycles) of the custom instruction
    max_latency: int = 6
    #: maximum components tapping the shared GPR operand buses.  The
    #: hand-written extensions tap 0-4 components (they lean on lookup
    #: tables); a logic-heavy unrolled datapath legitimately taps ~10,
    #: and the macro-model charges every tap's spurious-activation
    #: energy regardless — this bound only culls pathological graphs.
    max_bus_taps: int = 16
    #: maximum hardware component instances across the candidate's specs
    max_instances: int = 96


@dataclasses.dataclass(frozen=True)
class RejectedCandidate:
    """A candidate that failed legalization, with an actionable reason."""

    candidate: MinedCandidate
    reason: str
    category: str
    #: offending spec node, when the spec layer identified one
    node: Optional[int] = None


@dataclasses.dataclass
class LegalizedCandidate:
    """A mined candidate with compiled, schedulable hardware."""

    candidate: MinedCandidate
    mnemonic: str
    lifted: LiftedCandidate
    implementations: list[TieImplementation]

    @property
    def implementation(self) -> TieImplementation:
        """The main instruction's implementation (sync spec excluded)."""
        return self.implementations[0]

    @property
    def latency(self) -> int:
        return self.implementation.latency

    @property
    def bus_taps(self) -> int:
        return len(self.implementation.bus_tapped)

    @property
    def sync_mnemonic(self) -> Optional[str]:
        if self.lifted.sync_spec is None:
            return None
        return self.lifted.sync_spec.mnemonic


def legalize_candidates(
    candidates: list[MinedCandidate],
    options: LegalizeOptions = LegalizeOptions(),
    prefix: str = "disc",
) -> tuple[list[LegalizedCandidate], list[RejectedCandidate]]:
    """Lift + compile every candidate; split into (legal, rejected).

    Mnemonics are assigned ``<prefix>0``, ``<prefix>1``, ... in candidate
    order, so the same ranked input yields the same names every run.
    """
    legal: list[LegalizedCandidate] = []
    rejected: list[RejectedCandidate] = []
    for index, candidate in enumerate(candidates):
        mnemonic = f"{prefix}{index}"
        outcome = legalize_one(candidate, mnemonic, options)
        if isinstance(outcome, LegalizedCandidate):
            legal.append(outcome)
        else:
            rejected.append(outcome)
    return legal, rejected


def legalize_one(
    candidate: MinedCandidate,
    mnemonic: str,
    options: LegalizeOptions = LegalizeOptions(),
) -> "LegalizedCandidate | RejectedCandidate":
    try:
        lifted = lift_candidate(candidate.graph, mnemonic)
    except LiftError as exc:
        return RejectedCandidate(candidate, str(exc), category="ports")
    except TieSpecError as exc:
        return RejectedCandidate(
            candidate, str(exc), category=exc.category or "spec", node=exc.node
        )

    try:
        implementations = compile_extension(lifted.specs)
    except TieSpecError as exc:
        return RejectedCandidate(
            candidate, str(exc), category=exc.category or "spec", node=exc.node
        )

    main = implementations[0]
    if main.latency > options.max_latency:
        return RejectedCandidate(
            candidate,
            f"{mnemonic}: latency {main.latency} exceeds budget {options.max_latency}",
            category="latency",
        )
    if len(main.bus_tapped) > options.max_bus_taps:
        return RejectedCandidate(
            candidate,
            f"{mnemonic}: {len(main.bus_tapped)} operand-bus taps exceed "
            f"budget {options.max_bus_taps}",
            category="bus-taps",
        )
    instances = sum(len(impl.instances) for impl in implementations)
    if instances > options.max_instances:
        return RejectedCandidate(
            candidate,
            f"{mnemonic}: {instances} hardware instances exceed budget "
            f"{options.max_instances}",
            category="area",
        )
    return LegalizedCandidate(
        candidate=candidate,
        mnemonic=mnemonic,
        lifted=lifted,
        implementations=implementations,
    )
