"""The closed loop: profile → mine → legalize → rewrite → estimate.

:func:`discover_case` drives one benchmark through the whole discovery
flow.  A profiled reference run feeds the block miner and the
call-site unroller; the merged candidate pool is ranked by saved
dynamic instructions, legalized against the TIE compiler's budgets, and
the top candidates are *proven* — each one's rewritten program must
round-trip through the assembler and finish in a bitwise-identical
architectural state (modulo the candidate's declared clobbers) before
the macro-model is allowed to score it.  The result ranks every
surviving candidate by energy-delay product against the unmodified
program.

The :class:`DiscoveryManifest` serializes the survivors (graphs +
sites) so a later process — notably ``repro explore`` workers — can
rebuild the rewritten design points without re-profiling.
"""

from __future__ import annotations

import dataclasses
import json
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Callable, Optional

from ..core.model import EnergyMacroModel
from ..programs.registry import BenchmarkCase
from ..rtl import generate_netlist
from ..xtcore import DEFAULT_MAX_INSTRUCTIONS, ReferenceSimulator, build_processor
from .legalize import (
    LegalizedCandidate,
    LegalizeOptions,
    RejectedCandidate,
    legalize_candidates,
    legalize_one,
)
from .miner import MinedCandidate, MinerOptions, Site, mine_report
from .rewrite import rewrite_program, states_equivalent, verify_roundtrip
from .trace import DataflowTraceObserver
from .unroll import mine_call_sites

ProgressFn = Callable[[str], None]

#: the bundled workloads discovery knows how to profile (their software
#: baselines are the programs the miner sees)
SOFTWARE_CASES: dict[str, str] = {"fir": "fir_software", "reed_solomon": "rs_software"}


class DiscoveryError(Exception):
    """The discovery flow cannot proceed (no candidates, bad workload)."""


@dataclasses.dataclass(frozen=True)
class DiscoveryOptions:
    """End-to-end knobs; everything downstream of profiling is pure."""

    #: candidates carried past legalization into rewrite + estimation
    top_k: int = 8
    max_nodes: int = 6
    max_ports: int = 2
    min_coverage: float = 0.0
    legalize: LegalizeOptions = LegalizeOptions()
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS
    jobs: int = 1

    def miner_options(self) -> MinerOptions:
        return MinerOptions(
            max_nodes=self.max_nodes,
            max_ports=self.max_ports,
            min_coverage=self.min_coverage,
        )


@dataclasses.dataclass
class EvaluatedCandidate:
    """A verified candidate with its macro-model score."""

    mnemonic: str
    hash: str
    sites: int
    static_saving: int
    latency: int
    bus_taps: int
    syncs: int
    energy: float
    cycles: int
    area: float
    instructions: int

    @property
    def edp(self) -> float:
        return self.energy * self.cycles

    def to_payload(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["edp"] = self.edp
        return payload


@dataclasses.dataclass
class CandidateFailure:
    """A legalized candidate that failed rewrite, verification or scoring."""

    mnemonic: str
    stage: str  # rewrite | verify | estimate
    message: str

    def describe(self) -> str:
        return f"{self.mnemonic} [{self.stage}] {self.message}"


@dataclasses.dataclass
class DiscoveryReport:
    """Everything one discovery run learned, ranked best-EDP-first."""

    workload: str
    case_name: str
    mined: int
    legal: list[LegalizedCandidate]
    rejected: list[RejectedCandidate]
    evaluated: list[EvaluatedCandidate]
    failures: list[CandidateFailure]
    baseline_energy: float
    baseline_cycles: int
    baseline_instructions: int

    @property
    def baseline_edp(self) -> float:
        return self.baseline_energy * self.baseline_cycles

    @property
    def best(self) -> Optional[EvaluatedCandidate]:
        return self.evaluated[0] if self.evaluated else None

    def table(self, top_k: Optional[int] = None) -> str:
        header = (
            f"{'candidate':<10}{'sites':>6}{'saved':>9}{'lat':>5}{'taps':>6}"
            f"{'cycles':>10}{'energy':>12}{'EDP':>13}{'vs base':>9}"
        )
        lines = [
            f"discovered instructions for {self.workload} ({self.case_name}): "
            f"{self.mined} mined, {len(self.legal)} legalized, "
            f"{len(self.evaluated)} verified+scored",
            header,
            "-" * len(header),
            f"{'(baseline)':<10}{'':>6}{'':>9}{'':>5}{'':>6}"
            f"{self.baseline_cycles:>10}{self.baseline_energy:>12.1f}"
            f"{self.baseline_edp:>13.4g}{'':>9}",
        ]
        rows = self.evaluated if top_k is None else self.evaluated[:top_k]
        for cand in rows:
            ratio = cand.edp / self.baseline_edp if self.baseline_edp else float("inf")
            lines.append(
                f"{cand.mnemonic:<10}{cand.sites:>6}{cand.static_saving:>9}"
                f"{cand.latency:>5}{cand.bus_taps:>6}{cand.cycles:>10}"
                f"{cand.energy:>12.1f}{cand.edp:>13.4g}{ratio:>8.2f}x"
            )
        if self.rejected:
            lines.append("")
            lines.append(f"rejected during legalization ({len(self.rejected)}):")
            for reject in self.rejected[:8]:
                lines.append(f"  [{reject.category}] {reject.reason}")
            if len(self.rejected) > 8:
                lines.append(f"  ... and {len(self.rejected) - 8} more")
        if self.failures:
            lines.append("")
            lines.append(f"failed after legalization ({len(self.failures)}):")
            for failure in self.failures:
                lines.append(f"  {failure.describe()}")
        return "\n".join(lines)

    def to_json(self) -> str:
        payload = {
            "workload": self.workload,
            "case": self.case_name,
            "mined": self.mined,
            "legalized": len(self.legal),
            "baseline": {
                "energy": self.baseline_energy,
                "cycles": self.baseline_cycles,
                "edp": self.baseline_edp,
                "instructions": self.baseline_instructions,
            },
            "candidates": [cand.to_payload() for cand in self.evaluated],
            "rejected": [
                {"category": r.category, "reason": r.reason, "node": r.node}
                for r in self.rejected
            ],
            "failures": [dataclasses.asdict(f) for f in self.failures],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def manifest(self) -> "DiscoveryManifest":
        """Serializable survivors for cross-process space registration."""
        verified = {cand.mnemonic for cand in self.evaluated}
        entries = [
            ManifestEntry(
                mnemonic=legalized.mnemonic,
                graph=legalized.candidate.graph.to_payload(),
                sites=[_site_payload(site) for site in legalized.candidate.sites],
            )
            for legalized in self.legal
            if legalized.mnemonic in verified
        ]
        return DiscoveryManifest(workload=self.workload, entries=entries)


# ---------------------------------------------------------------------------
# manifest (the cross-process form of a discovery result)
# ---------------------------------------------------------------------------


def _site_payload(site: Site) -> dict:
    return {
        "block_start": site.block_start,
        "members": list(site.members),
        "port_regs": list(site.port_regs),
        "output_reg": site.output_reg,
        "clobbers": sorted(site.clobbers),
        "count": site.count,
        "replaced_per_exec": site.replaced_per_exec,
    }


def _site_from_payload(payload: dict) -> Site:
    return Site(
        block_start=int(payload["block_start"]),
        members=tuple(payload["members"]),
        port_regs=tuple(payload["port_regs"]),
        output_reg=int(payload["output_reg"]),
        clobbers=frozenset(payload["clobbers"]),
        count=int(payload["count"]),
        replaced_per_exec=int(payload["replaced_per_exec"]),
    )


@dataclasses.dataclass(frozen=True)
class ManifestEntry:
    mnemonic: str
    graph: dict
    sites: list[dict]

    def to_candidate(self) -> MinedCandidate:
        from .graph import CandidateGraph

        graph = CandidateGraph.from_payload(self.graph)
        return MinedCandidate(
            graph=graph,
            hash=graph.canonical_hash(),
            sites=[_site_from_payload(site) for site in self.sites],
        )

    def legalize(self) -> LegalizedCandidate:
        """Recompile the candidate's hardware from its stored graph."""
        outcome = legalize_one(self.to_candidate(), self.mnemonic)
        if not isinstance(outcome, LegalizedCandidate):
            raise DiscoveryError(
                f"manifest candidate {self.mnemonic!r} no longer legalizes: "
                f"{outcome.reason}"
            )
        return outcome


@dataclasses.dataclass(frozen=True)
class DiscoveryManifest:
    """Verified candidates of one workload, in a JSON-stable form."""

    workload: str
    entries: list[ManifestEntry]

    def to_json(self) -> str:
        return json.dumps(
            {
                "format": "repro-discovery-manifest/1",
                "workload": self.workload,
                "candidates": [dataclasses.asdict(entry) for entry in self.entries],
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "DiscoveryManifest":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise DiscoveryError(f"malformed manifest JSON: {exc}") from exc
        if payload.get("format") != "repro-discovery-manifest/1":
            raise DiscoveryError(
                f"not a discovery manifest (format={payload.get('format')!r})"
            )
        return cls(
            workload=payload["workload"],
            entries=[
                ManifestEntry(
                    mnemonic=entry["mnemonic"],
                    graph=entry["graph"],
                    sites=entry["sites"],
                )
                for entry in payload["candidates"]
            ],
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "DiscoveryManifest":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


# ---------------------------------------------------------------------------
# the flow
# ---------------------------------------------------------------------------


def software_case(workload: str) -> BenchmarkCase:
    """The pure-software baseline the miner profiles for ``workload``."""
    if workload == "fir":
        from ..programs.fir import fir_software

        return fir_software()
    if workload == "reed_solomon":
        from ..programs.reed_solomon import rs_software

        return rs_software()
    raise DiscoveryError(
        f"unknown workload {workload!r}; available: "
        + ", ".join(sorted(SOFTWARE_CASES))
    )


def discover_workload(
    workload: str,
    model: EnergyMacroModel,
    options: DiscoveryOptions = DiscoveryOptions(),
    progress: Optional[ProgressFn] = None,
) -> DiscoveryReport:
    """Run the whole discovery flow on a bundled workload's software case."""
    return discover_case(
        software_case(workload), model, options, progress=progress, workload=workload
    )


def discover_case(
    case: BenchmarkCase,
    model: EnergyMacroModel,
    options: DiscoveryOptions = DiscoveryOptions(),
    progress: Optional[ProgressFn] = None,
    workload: Optional[str] = None,
) -> DiscoveryReport:
    """Profile ``case``, mine+legalize candidates, verify and score them."""

    def emit(message: str) -> None:
        if progress is not None:
            progress(message)

    config, program = case.build()
    observer = DataflowTraceObserver()
    base = ReferenceSimulator(
        config, program, observers=[observer], max_instructions=options.max_instructions
    ).run()
    trace_report = observer.report
    emit(
        f"profiled {case.name}: {base.instructions} instructions, "
        f"{len(trace_report.blocks)} blocks"
    )

    candidates = mine_call_sites(trace_report, max_ports=options.max_ports)
    candidates += mine_report(trace_report, options.miner_options())
    candidates.sort(key=lambda c: (-c.static_saving, -c.dynamic_coverage, c.hash))
    emit(f"mined {len(candidates)} structurally-distinct candidates")
    if not candidates:
        raise DiscoveryError(f"{case.name}: no liftable candidates found")

    legal, rejected = legalize_candidates(candidates, options.legalize)
    emit(f"legalized {len(legal)}, rejected {len(rejected)}")

    baseline = model.estimate(config, program, max_instructions=options.max_instructions)
    chosen = legal[: options.top_k]
    outcomes = _prove_and_score(
        chosen, case, base.state, model, options, emit
    )
    evaluated = [o for o in outcomes if isinstance(o, EvaluatedCandidate)]
    failures = [o for o in outcomes if isinstance(o, CandidateFailure)]
    evaluated.sort(key=lambda c: (c.edp, c.mnemonic))

    return DiscoveryReport(
        workload=workload or case.name,
        case_name=case.name,
        mined=len(candidates),
        legal=legal,
        rejected=rejected,
        evaluated=evaluated,
        failures=failures,
        baseline_energy=float(baseline.energy),
        baseline_cycles=int(baseline.cycles),
        baseline_instructions=base.instructions,
    )


def _prove_one(
    legalized: LegalizedCandidate,
    case: BenchmarkCase,
    base_state,
    model: EnergyMacroModel,
    options: DiscoveryOptions,
) -> "EvaluatedCandidate | CandidateFailure":
    """Rewrite, differential-verify and score one legalized candidate."""
    config, program = case.build()
    stage = "rewrite"
    try:
        extended = build_processor(
            f"{config.name}+{legalized.mnemonic}", legalized.lifted.specs, base=config
        )
        result = rewrite_program(program, extended.isa, legalized)
        verify_roundtrip(result.program, extended.isa)
        stage = "verify"
        rerun = ReferenceSimulator(
            extended, result.program, max_instructions=options.max_instructions
        ).run()
        ok, why = states_equivalent(base_state, rerun.state, result.clobbers)
        if not ok:
            return CandidateFailure(legalized.mnemonic, "verify", why)
        stage = "estimate"
        estimate = model.estimate(
            extended, result.program, max_instructions=options.max_instructions
        )
        area = generate_netlist(extended).custom_area
    except Exception as exc:  # noqa: BLE001 — per-candidate isolation
        return CandidateFailure(legalized.mnemonic, stage, str(exc))
    return EvaluatedCandidate(
        mnemonic=legalized.mnemonic,
        hash=legalized.candidate.hash,
        sites=len(result.applied),
        static_saving=legalized.candidate.static_saving,
        latency=legalized.latency,
        bus_taps=legalized.bus_taps,
        syncs=result.syncs_inserted,
        energy=float(estimate.energy),
        cycles=int(estimate.cycles),
        area=float(area),
        instructions=rerun.instructions,
    )


# -- optional fork-pool parallelism (mirrors repro.dse.evaluate) -------------

_WORKER_STATE: dict = {}


def _prove_worker_init(chosen, case, base_state, model, options) -> None:
    _WORKER_STATE.update(
        chosen=chosen, case=case, base_state=base_state, model=model, options=options
    )


def _prove_worker(index: int) -> "EvaluatedCandidate | CandidateFailure":
    return _prove_one(
        _WORKER_STATE["chosen"][index],
        _WORKER_STATE["case"],
        _WORKER_STATE["base_state"],
        _WORKER_STATE["model"],
        _WORKER_STATE["options"],
    )


def _prove_and_score(
    chosen: list[LegalizedCandidate],
    case: BenchmarkCase,
    base_state,
    model: EnergyMacroModel,
    options: DiscoveryOptions,
    emit: ProgressFn,
) -> list["EvaluatedCandidate | CandidateFailure"]:
    from ..dse.evaluate import _fork_context

    context = _fork_context() if options.jobs > 1 and len(chosen) > 1 else None
    if context is not None:
        executor = ProcessPoolExecutor(
            max_workers=min(options.jobs, len(chosen)),
            mp_context=context,
            initializer=_prove_worker_init,
            initargs=(chosen, case, base_state, model, options),
        )
        try:
            futures = [executor.submit(_prove_worker, i) for i in range(len(chosen))]
            outcomes: list["EvaluatedCandidate | CandidateFailure"] = []
            for legalized, future in zip(chosen, futures):
                try:
                    outcomes.append(future.result())
                except BrokenExecutor:
                    emit(f"worker pool died on {legalized.mnemonic}; retrying serially")
                    outcomes.append(_prove_one(legalized, case, base_state, model, options))
            return outcomes
        finally:
            executor.shutdown(wait=False)
    outcomes = []
    for legalized in chosen:
        outcome = _prove_one(legalized, case, base_state, model, options)
        if isinstance(outcome, EvaluatedCandidate):
            emit(f"verified {outcome.mnemonic}: edp {outcome.edp:.3g}")
        else:
            emit(f"FAILED {outcome.describe()}")
        outcomes.append(outcome)
    return outcomes
