"""Seeded random-program generation for differential simulator testing.

The compiled dispatch engine (:mod:`repro.xtcore.iss`) must be
bit-for-bit equivalent to the retained reference interpreter
(:mod:`repro.xtcore.interp`) — on statistics, trace records and final
machine state.  The bundled benchmark suite pins the realistic cases;
this generator pins the *adversarial* ones: hundreds of seeded random
programs mixing straight-line ALU blocks, loads/stores with load-use
hazards, short bounded loops, forward branch skips and (occasionally)
uncached code regions.

Every generated program terminates: loops count a dedicated register
down from a small constant, all other control flow is forward, and the
program ends in ``halt``.  Generation is a pure function of the seed.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Optional

from ..asm import Program, assemble
from ..isa import InstructionSet, base_isa

#: Register roles: a2..a9 are the scratch pool the generator mutates
#: freely, a10 holds the data-buffer base, a11 the loop counter.  a0/a1
#: (link/stack) are never touched, so ``ret``-style exits stay intact.
SCRATCH_REGISTERS = tuple(range(2, 10))
BUFFER_REGISTER = 10
COUNTER_REGISTER = 11

#: Number of 32-bit words in the data buffer all loads/stores stay inside.
BUFFER_WORDS = 32

_R3_OPS = (
    "add", "sub", "and", "or", "xor", "nor", "andn", "orn", "xnor",
    "min", "max", "minu", "maxu", "slt", "sltu", "sll", "srl", "sra",
    "rotl", "rotr", "mull", "mulh", "mulhu", "addx2", "addx4", "addx8",
    "subx2", "subx4", "moveqz", "movnez", "movltz", "movgez",
    "quos", "quou", "rems", "remu",  # divide-by-zero is defined (no traps)
)
_R2_OPS = (
    "mov", "neg", "not", "abs", "sext8", "sext16", "zext8", "zext16",
    "clz", "ctz", "popc", "bswap",
)
_I_OPS = ("addi", "addmi", "slti", "sltiu")
_IU_OPS = ("andi", "ori", "xori")
_SHI_OPS = ("slli", "srli", "srai", "roli", "rori")
_LOAD_OPS = ("l32i", "l16ui", "l16si", "l8ui", "l8si")
_STORE_OPS = ("s32i", "s16i", "s8i")
_B2_OPS = ("beq", "bne", "blt", "bge", "bltu", "bgeu")
_B1_OPS = ("beqz", "bnez", "bltz", "bgez")
_BI_OPS = ("beqi", "bnei", "blti", "bgei", "bbs", "bbc")


def _alu_line(rng: random.Random) -> str:
    """One random ALU instruction over the scratch pool."""
    rd = rng.choice(SCRATCH_REGISTERS)
    rs = rng.choice(SCRATCH_REGISTERS)
    kind = rng.randrange(6)
    if kind == 0:
        rt = rng.choice(SCRATCH_REGISTERS)
        return f"    {rng.choice(_R3_OPS)} a{rd}, a{rs}, a{rt}"
    if kind == 1:
        return f"    {rng.choice(_R2_OPS)} a{rd}, a{rs}"
    if kind == 2:
        return f"    {rng.choice(_I_OPS)} a{rd}, a{rs}, {rng.randint(-2048, 2047)}"
    if kind == 3:
        return f"    {rng.choice(_IU_OPS)} a{rd}, a{rs}, {rng.randint(0, 2047)}"
    if kind == 4:
        return f"    {rng.choice(_SHI_OPS)} a{rd}, a{rs}, {rng.randint(0, 31)}"
    return f"    movi a{rd}, {rng.randint(-2048, 2047)}"


def _mem_line(rng: random.Random) -> str:
    """One random load or store confined to the data buffer."""
    reg = rng.choice(SCRATCH_REGISTERS)
    if rng.random() < 0.55:
        mnemonic = rng.choice(_LOAD_OPS)
    else:
        mnemonic = rng.choice(_STORE_OPS)
    width = {"3": 4, "1": 2, "8": 1}[mnemonic[1]]  # l32i/s32i→4, l16*/s16i→2, l8*/s8i→1
    limit = BUFFER_WORDS * 4 - width
    offset = rng.randrange(0, limit + 1, width)
    return f"    {mnemonic} a{reg}, a{BUFFER_REGISTER}, {offset}"


def _branch_line(rng: random.Random, target: str) -> str:
    """One random conditional branch to ``target``."""
    rs = rng.choice(SCRATCH_REGISTERS)
    kind = rng.randrange(3)
    if kind == 0:
        rt = rng.choice(SCRATCH_REGISTERS)
        return f"    {rng.choice(_B2_OPS)} a{rs}, a{rt}, {target}"
    if kind == 1:
        return f"    {rng.choice(_B1_OPS)} a{rs}, {target}"
    return f"    {rng.choice(_BI_OPS)} a{rs}, {rng.randint(0, 7)}, {target}"


def generate_source(
    seed: int,
    min_blocks: int = 3,
    max_blocks: int = 9,
    uncached_probability: float = 0.25,
) -> str:
    """Deterministically generate one terminating assembly program."""
    rng = random.Random(seed)
    lines = ["    .data", "buf:"]
    words = ", ".join(str(rng.randrange(0, 2**31)) for _ in range(BUFFER_WORDS))
    lines.append(f"    .word {words}")
    lines += ["    .text", "main:", f"    la a{BUFFER_REGISTER}, buf"]
    for reg in SCRATCH_REGISTERS:
        lines.append(f"    movi a{reg}, {rng.randint(-2048, 2047)}")

    label_counter = 0

    def fresh_label(prefix: str) -> str:
        nonlocal label_counter
        label_counter += 1
        return f"{prefix}{label_counter}"

    blocks = rng.randint(min_blocks, max_blocks)
    emitted_uncached = False
    for _ in range(blocks):
        kind = rng.random()
        if kind < 0.35:  # straight-line ALU
            for _ in range(rng.randint(2, 6)):
                lines.append(_alu_line(rng))
        elif kind < 0.55:  # memory burst (load-use hazards arise naturally)
            for _ in range(rng.randint(1, 4)):
                lines.append(_mem_line(rng))
                if rng.random() < 0.5:
                    lines.append(_alu_line(rng))
        elif kind < 0.75:  # bounded counted loop
            head = fresh_label("loop")
            lines.append(f"    movi a{COUNTER_REGISTER}, {rng.randint(1, 5)}")
            lines.append(f"{head}:")
            for _ in range(rng.randint(1, 3)):
                lines.append(_mem_line(rng) if rng.random() < 0.4 else _alu_line(rng))
            lines.append(f"    addi a{COUNTER_REGISTER}, a{COUNTER_REGISTER}, -1")
            lines.append(f"    bnez a{COUNTER_REGISTER}, {head}")
        elif kind < 0.92:  # forward conditional skip
            skip = fresh_label("skip")
            lines.append(_branch_line(rng, skip))
            for _ in range(rng.randint(1, 3)):
                lines.append(_alu_line(rng))
            lines.append(f"{skip}:")
        elif not emitted_uncached and rng.random() < uncached_probability:
            # one excursion through an uncached code region
            emitted_uncached = True
            there = fresh_label("ucode")
            back = fresh_label("back")
            lines.append(f"    j {there}")
            lines.append("    .utext")
            lines.append(f"{there}:")
            for _ in range(rng.randint(1, 3)):
                lines.append(_alu_line(rng))
            lines.append(f"    j {back}")
            lines.append("    .text")
            lines.append(f"{back}:")
        else:  # unconditional forward jump over dead code
            over = fresh_label("over")
            lines.append(f"    j {over}")
            for _ in range(rng.randint(1, 2)):
                lines.append(_alu_line(rng))
            lines.append(f"{over}:")
    lines.append("    halt")
    return "\n".join(lines) + "\n"


def generate_program(
    seed: int,
    isa: Optional[InstructionSet] = None,
    name: Optional[str] = None,
    **kwargs,
) -> Program:
    """Generate and assemble the program for ``seed`` (base ISA default)."""
    return assemble(
        generate_source(seed, **kwargs),
        name if name is not None else f"progen-{seed}",
        isa=isa if isa is not None else base_isa(),
    )


# ---------------------------------------------------------------------------
# Superop side-exit stress programs
# ---------------------------------------------------------------------------
#
# The block-level superop engine fuses straight interior runs into one
# dispatch and *side-exits* to the per-op path for everything that could
# make the fusion observable.  Random programs rarely pin those seams
# hard, so each case below is built around exactly one of them: blocks
# of a single instruction, taken branches whose target is the very next
# address, a dynamic jump landing mid-block, the instruction budget
# expiring inside a would-be block, and faults (wild jumps, running off
# the end of the text segment) that must surface identically.


@dataclasses.dataclass(frozen=True)
class StressCase:
    """One side-exit stress program for differential engine testing."""

    name: str
    source: str
    max_instructions: int = 200_000
    #: True when the program is *supposed* to raise (same exception type
    #: and message across engines) rather than run to completion.
    faulting: bool = False


def stress_cases() -> tuple[StressCase, ...]:
    """The handwritten superop side-exit suite (pure function)."""
    single_op_blocks = "\n".join(
        [
            "    .text",
            "main:",
            "    movi a2, 0",
            "    movi a3, 12",
            "tick:",
            "    addi a2, a2, 1",  # single-instruction block per iteration
            "    bne a2, a3, tick",
            "    halt",
        ]
    )
    back_to_back_taken = "\n".join(
        [
            "    .text",
            "main:",
            "    movi a2, 8",
            "    movi a3, 0",
            "chain:",
            # taken branches whose target is the fall-through address:
            # three block boundaries with no interior ops between them
            "    bnez a2, c1",
            "c1:",
            "    bnez a2, c2",
            "c2:",
            "    bnez a2, c3",
            "c3:",
            "    addi a2, a2, -1",
            "    addi a3, a3, 1",
            "    bnez a2, chain",
            "    halt",
        ]
    )
    midblock_landing = "\n".join(
        [
            "    .text",
            "main:",
            "    la a5, mid",
            "    movi a2, 1",
            "    jx a5",
            "run:",
            # `mid` is never a static branch target, so this whole run
            # fuses into one block; the dynamic jx lands in its middle
            # and must walk per-op to the next leader
            "    add a2, a2, a2",
            "    add a2, a2, a2",
            "mid:",
            "    addi a2, a2, 3",
            "    add a2, a2, a2",
            "    halt",
        ]
    )
    budget_in_block = "\n".join(
        [
            "    .text",
            "main:",
            "    movi a2, 1",
            "spin:",
        ]
        + ["    add a2, a2, a2"] * 6
        + ["    addi a2, a2, 1"] * 6
        + [
            "    j spin",
        ]
    )
    wild_jump = "\n".join(
        [
            "    .data",
            "buf:",
            "    .word 1, 2, 3, 4",
            "    .text",
            "main:",
            "    movi a2, 7",
            "    la a5, buf",
            "    jx a5",
            "    halt",
        ]
    )
    fall_off_end = "\n".join(
        [
            "    .text",
            "main:",
            "    movi a2, 1",
            "    j tail",
            "    halt",
            "tail:",
            # the block's last op has no successor address: the fused
            # fall-off path must raise the same invalid-pc diagnostic
            "    add a2, a2, a2",
            "    addi a2, a2, 5",
        ]
    )
    return (
        StressCase("stress_single_op_blocks", single_op_blocks),
        StressCase("stress_back_to_back_taken", back_to_back_taken),
        StressCase("stress_midblock_landing", midblock_landing),
        # 1 preamble op + 8 full 12-op spins + 3 ops: expiry lands 3 ops
        # into a block, forcing the budget side exit mid-run
        StressCase(
            "stress_budget_in_block",
            budget_in_block,
            max_instructions=100,
            faulting=True,
        ),
        StressCase("stress_wild_jump", wild_jump, faulting=True),
        StressCase("stress_fall_off_end", fall_off_end, faulting=True),
    )


def stress_programs() -> tuple[tuple[StressCase, Program], ...]:
    """Assembled stress cases against the base ISA."""
    isa = base_isa()
    return tuple(
        (case, assemble(case.source + "\n", case.name, isa=isa))
        for case in stress_cases()
    )
